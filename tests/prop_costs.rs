//! Property-based tests of the cost model (Eqs. 1–3) on randomly
//! generated miniature systems.

use proptest::prelude::*;
use recluster_core::{best_response, cost, global, is_nash_equilibrium, pcost, GameConfig, System};
use recluster_overlay::{ContentStore, Overlay, Theta};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

/// A randomly generated miniature system description.
#[derive(Debug, Clone)]
struct RandomSystem {
    n_peers: usize,
    /// Per peer: documents, each a set of symbol ids.
    docs: Vec<Vec<Vec<u32>>>,
    /// Per peer: (symbol, count) query entries.
    queries: Vec<Vec<(u32, u8)>>,
    /// Per peer: cluster assignment (< n_peers).
    assignment: Vec<u32>,
    alpha: f64,
    theta_kind: u8,
}

fn arb_system() -> impl Strategy<Value = RandomSystem> {
    (2usize..7).prop_flat_map(|n_peers| {
        let docs = proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(0u32..10, 1..4), 0..4),
            n_peers,
        );
        let queries =
            proptest::collection::vec(proptest::collection::vec((0u32..10, 1u8..4), 0..4), n_peers);
        let assignment = proptest::collection::vec(0u32..(n_peers as u32), n_peers);
        (
            Just(n_peers),
            docs,
            queries,
            assignment,
            0.0f64..3.0,
            0u8..3,
        )
            .prop_map(|(n_peers, docs, queries, assignment, alpha, theta_kind)| {
                RandomSystem {
                    n_peers,
                    docs,
                    queries,
                    assignment,
                    alpha,
                    theta_kind,
                }
            })
    })
}

fn build(desc: &RandomSystem) -> System {
    let mut overlay = Overlay::unassigned(desc.n_peers);
    for (i, &c) in desc.assignment.iter().enumerate() {
        overlay.assign(PeerId::from_index(i), ClusterId(c));
    }
    let mut store = ContentStore::new(desc.n_peers);
    for (i, docs) in desc.docs.iter().enumerate() {
        for attrs in docs {
            store.add(
                PeerId::from_index(i),
                Document::new(attrs.iter().map(|&a| Sym(a)).collect()),
            );
        }
    }
    let workloads: Vec<Workload> = desc
        .queries
        .iter()
        .map(|qs| {
            let mut w = Workload::new();
            for &(sym, n) in qs {
                w.add(Query::keyword(Sym(sym)), n as u64);
            }
            w
        })
        .collect();
    let theta = match desc.theta_kind {
        0 => Theta::Linear,
        1 => Theta::Logarithmic,
        _ => Theta::Sqrt,
    };
    System::new(
        overlay,
        store,
        workloads,
        GameConfig {
            alpha: desc.alpha,
            theta,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 2 exactly: SCost is the sum of individual costs.
    #[test]
    fn scost_is_sum_of_pcosts(desc in arb_system()) {
        let sys = build(&desc);
        let manual: f64 = sys
            .overlay()
            .peers()
            .map(|p| pcost(&sys, p, sys.overlay().cluster_of(p).unwrap()))
            .sum();
        prop_assert!((global::scost(&sys) - manual).abs() < 1e-9);
    }

    /// The recall shares of every answerable query sum to one across
    /// peers, and the per-cluster masses reproduce that total.
    #[test]
    fn recall_shares_partition_unity(desc in arb_system()) {
        let sys = build(&desc);
        let index = sys.index();
        for qid in 0..index.n_queries() as u32 {
            let share: f64 = (0..desc.n_peers)
                .map(|i| index.r(qid, PeerId::from_index(i)))
                .sum();
            if index.total(qid) > 0 {
                prop_assert!((share - 1.0).abs() < 1e-9);
                let mass: f64 = sys
                    .overlay()
                    .cluster_ids()
                    .map(|c| index.cluster_mass(qid, c))
                    .sum();
                prop_assert!((mass - 1.0).abs() < 1e-9);
            } else {
                prop_assert_eq!(share, 0.0);
            }
        }
    }

    /// pcost is non-negative and bounded by α·θ(|P|)/|P| + 1.
    #[test]
    fn pcost_is_bounded(desc in arb_system()) {
        let sys = build(&desc);
        let cfg = sys.config();
        let bound = cfg.alpha * cfg.theta.cost(desc.n_peers + 1) / desc.n_peers as f64 + 1.0;
        for peer in sys.overlay().peers() {
            for cid in sys.overlay().cluster_ids() {
                let c = pcost(&sys, peer, cid);
                prop_assert!(c >= -1e-12, "negative pcost {c}");
                prop_assert!(c <= bound + 1e-9, "pcost {c} above bound {bound}");
            }
        }
    }

    /// The membership terms of SCost and WCost agree (§2.2's derivation).
    #[test]
    fn membership_terms_agree(desc in arb_system()) {
        let sys = build(&desc);
        let (s_mem, _) = global::scost_terms(&sys);
        let w_mem = global::wcost_membership_term(&sys);
        prop_assert!((s_mem - w_mem).abs() < 1e-9);
    }

    /// Property 1: forcing equal demand makes the normalized recall
    /// terms proportional (social = |P| · workload).
    #[test]
    fn property1_under_equalized_demand(desc in arb_system()) {
        let mut desc = desc;
        // Equalize: every peer gets the same single-query count on its
        // first query symbol (or symbol 0 if it has none).
        for qs in desc.queries.iter_mut() {
            let sym = qs.first().map(|&(s, _)| s).unwrap_or(0);
            *qs = vec![(sym, 2)];
        }
        let sys = build(&desc);
        prop_assert!(global::equal_demand(&sys));
        let (social, workload) = global::property1_recall_terms(&sys);
        prop_assert!(
            (social - desc.n_peers as f64 * workload).abs() < 1e-9,
            "social {social}, workload {workload}"
        );
    }

    /// Moving a peer away and back restores every cost exactly.
    #[test]
    fn move_roundtrip_restores_costs(desc in arb_system()) {
        let mut sys = build(&desc);
        let peer = PeerId(0);
        let home = sys.overlay().cluster_of(peer).unwrap();
        let away = ClusterId(((home.0 as usize + 1) % desc.n_peers) as u32);
        let before: Vec<f64> = sys.overlay().peers().map(|p| cost::pcost_current(&sys, p)).collect();
        sys.move_peer(peer, away);
        sys.move_peer(peer, home);
        let after: Vec<f64> = sys.overlay().peers().map(|p| cost::pcost_current(&sys, p)).collect();
        for (b, a) in before.iter().zip(after.iter()) {
            prop_assert!((b - a).abs() < 1e-12);
        }
    }

    /// Equilibrium ⇔ no peer has positive best-response gain.
    #[test]
    fn equilibrium_iff_no_positive_gain(desc in arb_system()) {
        let sys = build(&desc);
        let nash = is_nash_equilibrium(&sys, true);
        let max_gain = sys
            .overlay()
            .peers()
            .map(|p| best_response(&sys, p, true).gain)
            .fold(0.0f64, f64::max);
        prop_assert_eq!(nash, max_gain <= 1e-9);
    }

    /// Playing the best response never increases the mover's cost.
    #[test]
    fn best_response_never_hurts_the_mover(desc in arb_system()) {
        let mut sys = build(&desc);
        let peer = PeerId(0);
        let before = cost::pcost_current(&sys, peer);
        let br = best_response(&sys, peer, true);
        sys.move_peer(peer, br.cluster);
        let after = cost::pcost_current(&sys, peer);
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
        // And the realized improvement equals the predicted gain.
        prop_assert!((before - after - br.gain).abs() < 1e-9);
    }
}
