//! The paper's analytical claims, verified end-to-end: the §2.3
//! no-equilibrium example, Property 1, and the qualitative shapes of the
//! evaluation section on the miniature testbed.

use recluster_core::{best_response, global, is_nash_equilibrium, pcost, GameConfig, System};
use recluster_overlay::{ContentStore, Overlay, Theta};
use recluster_sim::fig4::run_curve;
use recluster_sim::runner::StrategyKind;
use recluster_sim::scenario::ExperimentConfig;
use recluster_sim::scenario::{InitialConfig, Scenario};
use recluster_sim::table1::{run_cell, Table1Config};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

/// §2.3: the two-peer system where every configuration is unstable for
/// 0 < α < 2.
#[test]
fn section_2_3_no_equilibrium_example() {
    let build = |assignment: [u32; 2], alpha: f64| {
        let mut ov = Overlay::unassigned(2);
        ov.assign(PeerId(0), ClusterId(assignment[0]));
        ov.assign(PeerId(1), ClusterId(assignment[1]));
        let mut store = ContentStore::new(2);
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(2)]));
        let mut w1 = Workload::new();
        w1.add(Query::keyword(Sym(1)), 1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w1, w2],
            GameConfig {
                alpha,
                theta: Theta::Linear,
            },
        )
    };
    for alpha in [0.5, 1.0, 1.5] {
        // All three distinct configurations are unstable.
        for assignment in [[0, 1], [1, 0], [0, 0]] {
            let sys = build(assignment, alpha);
            assert!(
                !is_nash_equilibrium(&sys, true),
                "α={alpha}, assignment {assignment:?} must be unstable"
            );
        }
    }
    // And the paper's specific arithmetic at α = 1.
    let sys = build([0, 1], 1.0);
    assert!((pcost(&sys, PeerId(0), ClusterId(0)) - 1.5).abs() < 1e-12);
    assert!((pcost(&sys, PeerId(0), ClusterId(1)) - 1.0).abs() < 1e-12);
    assert!((pcost(&sys, PeerId(1), ClusterId(1)) - 0.5).abs() < 1e-12);
}

/// §2.2 Property 1: equal per-peer demand makes the (normalized) recall
/// terms of SCost and WCost coincide.
#[test]
fn property_1_on_a_generated_testbed() {
    let mut cfg = ExperimentConfig::small(110);
    cfg.demand = recluster_sim::scenario::DemandSplit::Uniform;
    let tb =
        recluster_sim::scenario::build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let sys = &tb.system;
    assert!(global::equal_demand(sys));
    let (social_recall, workload_recall) = global::property1_recall_terms(sys);
    assert!(social_recall > 0.0, "random start must lose recall");
    assert!(
        (social_recall - sys.n_peers() as f64 * workload_recall).abs() < 1e-6,
        "social {social_recall} vs |P|·workload {}",
        sys.n_peers() as f64 * workload_recall
    );
}

/// Table 1, row block 1: scenario 1 converges to a Nash equilibrium
/// whose cost is pure membership (recall loss zero).
#[test]
fn table1_scenario1_reaches_membership_only_cost() {
    let cfg = Table1Config::small(111);
    let row = run_cell(
        Scenario::SameCategory,
        InitialConfig::Singletons,
        StrategyKind::Selfish,
        &cfg,
    );
    assert!(row.rounds.is_some());
    assert!(row.nash);
    // SCost == WCost when the recall terms vanish.
    assert!((row.scost - row.wcost).abs() < 1e-9);
}

/// Table 1, scenario ordering: same-category < different-category <
/// uniform in final social cost (singleton starts).
#[test]
fn table1_scenario_cost_ordering() {
    let cfg = Table1Config::small(112);
    let cost = |scenario| {
        run_cell(
            scenario,
            InitialConfig::Singletons,
            StrategyKind::Selfish,
            &cfg,
        )
        .scost
    };
    let s1 = cost(Scenario::SameCategory);
    let s2 = cost(Scenario::DifferentCategory);
    let s3 = cost(Scenario::Uniform);
    assert!(s1 < s2, "scenario 1 ({s1}) must beat scenario 2 ({s2})");
    assert!(s2 < s3, "scenario 2 ({s2}) must beat scenario 3 ({s3})");
}

/// Figure 4: the relocation threshold is non-decreasing in α, and before
/// relocating the peer's cost grows linearly with the changed fraction.
#[test]
fn figure4_threshold_monotone_in_alpha() {
    let cfg = ExperimentConfig::small(113);
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut last = 0.0;
    for alpha in [0.0, 1.0, 2.0] {
        let curve = run_curve(&cfg, alpha, &fractions);
        let threshold = curve.relocation_threshold.unwrap_or(1.5);
        assert!(
            threshold >= last,
            "threshold at α={alpha} ({threshold}) below α-smaller one ({last})"
        );
        last = threshold;
        // Pre-threshold, cost is non-decreasing in the fraction.
        for w in curve.points.windows(2) {
            if w[1].0 < threshold {
                assert!(w[1].1 >= w[0].1 - 1e-9);
            }
        }
    }
}

/// The best response never has negative gain, and its cost is a lower
/// bound over every explicit alternative.
#[test]
fn best_response_is_actually_best() {
    let cfg = ExperimentConfig::small(114);
    let tb = recluster_sim::scenario::build_system(
        Scenario::DifferentCategory,
        InitialConfig::RandomM,
        &cfg,
    );
    let sys = &tb.system;
    for peer in sys.overlay().peers().take(10) {
        let br = best_response(sys, peer, true);
        assert!(br.gain >= 0.0);
        let best_cost = pcost(sys, peer, br.cluster);
        for cid in sys.overlay().cluster_ids() {
            assert!(
                pcost(sys, peer, cid) >= best_cost - 1e-9,
                "{peer}: {cid} beats the best response"
            );
        }
    }
}
