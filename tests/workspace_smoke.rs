//! Workspace smoke test: exercises every facade re-export
//! (`recluster::types`, `::corpus`, `::overlay`, `::core`,
//! `::baselines`, `::sim`) end-to-end on a tiny seeded system, so a
//! manifest or re-export regression fails tier-1 directly instead of
//! only breaking downstream binaries.

use recluster::baselines::{cosine, peer_profile};
use recluster::core::{is_nash_equilibrium, scost_normalized, wcost_normalized, ProtocolConfig};
use recluster::overlay::Theta;
use recluster::sim::runner::{run_protocol, StrategyKind};
use recluster::sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster::types::{derive_seed, seeded_rng, PeerId};

#[test]
fn facade_covers_the_whole_pipeline() {
    // types: deterministic seeding primitives.
    let _rng = seeded_rng(derive_seed(7, 1));

    // sim + corpus + overlay: build the miniature seeded testbed.
    let cfg = ExperimentConfig::small(7);
    assert_eq!(cfg.theta, Theta::Linear);
    let mut tb = build_system(Scenario::SameCategory, InitialConfig::Singletons, &cfg);
    assert_eq!(tb.system.overlay().n_peers(), cfg.n_peers);
    assert_eq!(tb.corpus.n_categories(), cfg.n_categories);

    // baselines: content profiles of the generated stores.
    let p0 = peer_profile(tb.system.store(), PeerId(0));
    let p1 = peer_profile(tb.system.store(), PeerId(1));
    let sim01 = cosine(&p0, &p1);
    assert!((0.0..=1.0 + 1e-9).contains(&sim01), "cosine {sim01}");

    // core: run the reformulation protocol to quiescence and check the
    // global cost measures.
    let before = scost_normalized(&tb.system);
    let mut net = recluster::overlay::SimNetwork::new();
    let outcome = run_protocol(
        &mut tb.system,
        StrategyKind::Selfish,
        ProtocolConfig::builder().max_rounds(60).build(),
        &mut net,
    );
    let after = scost_normalized(&tb.system);
    assert!(outcome.converged, "small testbed must converge");
    assert!(
        after <= before + 1e-9,
        "protocol must not worsen social cost: {before} -> {after}"
    );
    assert!(after.is_finite() && wcost_normalized(&tb.system).is_finite());
    assert!(is_nash_equilibrium(&tb.system, true));
    assert!(net.total_messages() > 0, "protocol must exchange messages");
    tb.system
        .overlay()
        .check_invariants()
        .expect("overlay invariants after maintenance");
}
