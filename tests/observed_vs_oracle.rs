//! The observed-statistics path (§3.1) equals the oracle under flood
//! routing, across scenarios and seeds — the property that makes the
//! paper's distributed strategies implementable from purely local
//! information.

use recluster_core::{
    best_response, pcost, simulate_period, AltruisticStrategy, RelocationStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn check_scenario(scenario: Scenario, seed: u64) {
    let cfg = ExperimentConfig::small(seed);
    let tb = build_system(scenario, InitialConfig::RandomM, &cfg);
    let sys = &tb.system;

    let mut net = SimNetwork::new();
    let obs = simulate_period(sys, &mut net);

    let mut altruism = AltruisticStrategy::new();
    altruism.prepare(sys);

    for peer in sys.overlay().peers() {
        let current = sys.overlay().cluster_of(peer);
        // Selfish: observed pcost equals the oracle for every cluster.
        for cid in sys.overlay().cluster_ids() {
            let estimated = obs.estimated_pcost(sys, peer, cid, current);
            let oracle = pcost(sys, peer, cid);
            assert!(
                (estimated - oracle).abs() < 1e-9,
                "{scenario:?} seed {seed}: pcost({peer},{cid}) observed {estimated} vs {oracle}"
            );
            // Altruistic: observed contribution equals Eq. 6.
            let est_c = obs.estimated_contribution(peer, cid);
            let oracle_c = altruism.contribution(peer, cid);
            assert!(
                (est_c - oracle_c).abs() < 1e-9,
                "{scenario:?} seed {seed}: contribution({peer},{cid}) {est_c} vs {oracle_c}"
            );
        }
        // The Eq. 5 selection made from observations equals the oracle
        // best response.
        let (choice, est_cost) = obs.selfish_choice(sys, peer, current, true).unwrap();
        let br = best_response(sys, peer, true);
        assert_eq!(
            choice, br.cluster,
            "{scenario:?} seed {seed}: {peer} selected {choice}, oracle {}",
            br.cluster
        );
        let oracle_cost = pcost(sys, peer, br.cluster);
        assert!(
            (est_cost - oracle_cost).abs() < 1e-9,
            "{scenario:?} seed {seed}: {peer} selected {choice} at {est_cost}, oracle {oracle_cost}"
        );
    }
}

#[test]
fn observed_equals_oracle_same_category() {
    check_scenario(Scenario::SameCategory, 201);
}

#[test]
fn observed_equals_oracle_different_category() {
    check_scenario(Scenario::DifferentCategory, 202);
}

#[test]
fn observed_equals_oracle_uniform() {
    check_scenario(Scenario::Uniform, 203);
}

#[test]
fn observed_equals_oracle_across_seeds() {
    for seed in [211, 212, 213] {
        check_scenario(Scenario::SameCategory, seed);
    }
}

#[test]
fn observation_traffic_scales_with_demand() {
    let cfg_small_demand = {
        let mut c = ExperimentConfig::small(220);
        c.total_queries = 200;
        c
    };
    let cfg_big_demand = {
        let mut c = ExperimentConfig::small(220);
        c.total_queries = 2000;
        c
    };
    let measure = |cfg: &ExperimentConfig| {
        let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut net = SimNetwork::new();
        let _ = simulate_period(&tb.system, &mut net);
        net.total_messages()
    };
    assert!(measure(&cfg_big_demand) > measure(&cfg_small_demand));
}
