//! Cross-crate integration: corpus generation → testbed construction →
//! protocol runs → global quality, exercising the whole pipeline the way
//! the experiment binaries do.

use recluster_core::{is_nash_equilibrium, EmptyTargetPolicy, ProtocolConfig};
use recluster_overlay::SimNetwork;
use recluster_sim::runner::{run_protocol, StrategyKind};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn protocol(max_rounds: usize) -> ProtocolConfig {
    ProtocolConfig::builder()
        .epsilon(1e-3)
        .max_rounds(max_rounds)
        .empty_targets(EmptyTargetPolicy::Always)
        .use_locks(true)
        .build()
}

#[test]
fn full_pipeline_scenario1_selfish() {
    let cfg = ExperimentConfig::small(101);
    let mut tb = build_system(Scenario::SameCategory, InitialConfig::Singletons, &cfg);
    let before = recluster_core::scost_normalized(&tb.system);
    let mut net = SimNetwork::new();
    let outcome = run_protocol(
        &mut tb.system,
        StrategyKind::Selfish,
        protocol(100),
        &mut net,
    );

    assert!(outcome.converged);
    assert!(outcome.final_scost() < before / 2.0);
    assert!(is_nash_equilibrium(&tb.system, true));
    tb.system.overlay().check_invariants().unwrap();

    // Clusters are category-pure at the equilibrium.
    for cid in tb.system.overlay().cluster_ids() {
        let members = tb.system.overlay().cluster(cid).members();
        if members.len() > 1 {
            let cat = tb.peer_category[members[0].index()];
            assert!(
                members.iter().all(|m| tb.peer_category[m.index()] == cat),
                "mixed cluster at equilibrium"
            );
        }
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let cfg = ExperimentConfig::small(102);
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
        let mut net = SimNetwork::new();
        let outcome = run_protocol(
            &mut tb.system,
            StrategyKind::Selfish,
            protocol(60),
            &mut net,
        );
        (
            outcome.rounds_to_converge(),
            outcome.final_scost(),
            tb.system.overlay().sizes(),
            net.total_messages(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn every_strategy_leaves_a_consistent_overlay() {
    for kind in [
        StrategyKind::Selfish,
        StrategyKind::Altruistic,
        StrategyKind::Hybrid(0.5),
        StrategyKind::Random(0.2, 9),
        StrategyKind::NoMaintenance,
    ] {
        let cfg = ExperimentConfig::small(103);
        let mut tb = build_system(Scenario::DifferentCategory, InitialConfig::RandomM, &cfg);
        let mut net = SimNetwork::new();
        let _ = run_protocol(&mut tb.system, kind, protocol(30), &mut net);
        tb.system.overlay().check_invariants().unwrap();
        // Every live peer still in exactly one cluster.
        assert_eq!(tb.system.overlay().n_peers(), cfg.n_peers);
    }
}

#[test]
fn scenario2_pairs_providers_with_consumers() {
    let cfg = ExperimentConfig::small(104);
    let mut tb = build_system(Scenario::DifferentCategory, InitialConfig::Singletons, &cfg);
    let mut net = SimNetwork::new();
    let outcome = run_protocol(
        &mut tb.system,
        StrategyKind::Selfish,
        protocol(100),
        &mut net,
    );
    assert!(outcome.converged, "mutual interests must converge");

    // In most multi-peer clusters, some member's query category equals
    // another member's data category (provider/consumer co-location).
    let mut matched = 0;
    let mut multi = 0;
    for cid in tb.system.overlay().cluster_ids() {
        let members = tb.system.overlay().cluster(cid).members();
        if members.len() < 2 {
            continue;
        }
        multi += 1;
        let has_match = members.iter().any(|a| {
            members.iter().any(|b| {
                a != b && tb.query_category[a.index()] == Some(tb.peer_category[b.index()])
            })
        });
        if has_match {
            matched += 1;
        }
    }
    assert!(multi > 0, "some pairs must have formed");
    assert!(
        matched * 10 >= multi * 8,
        "at least 80% of multi-member clusters must pair a consumer with its provider ({matched}/{multi})"
    );
}

#[test]
fn uniform_scenario_does_not_converge_with_selfish_peers() {
    let cfg = ExperimentConfig::small(105);
    let mut tb = build_system(Scenario::Uniform, InitialConfig::RandomM, &cfg);
    let mut net = SimNetwork::new();
    let outcome = run_protocol(
        &mut tb.system,
        StrategyKind::Selfish,
        protocol(40),
        &mut net,
    );
    // The paper's scenario 3: "does not reach convergence".
    assert!(!outcome.converged);
}

#[test]
fn network_ledger_reflects_protocol_phases() {
    use recluster_overlay::MsgKind;
    let cfg = ExperimentConfig::small(106);
    let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut net = SimNetwork::new();
    let outcome = run_protocol(
        &mut tb.system,
        StrategyKind::Selfish,
        protocol(60),
        &mut net,
    );
    // Phase 1 traffic: one gain report per live peer per round.
    let rounds = outcome.rounds.len() as u64;
    assert_eq!(
        net.messages(MsgKind::GainReport),
        rounds * cfg.n_peers as u64
    );
    // Every granted move cost two coordination messages.
    assert_eq!(
        net.messages(MsgKind::GrantCoordination),
        2 * outcome.total_moves() as u64
    );
}
