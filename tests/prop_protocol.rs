//! Property-based tests of the reformulation protocol: the anti-cycle
//! lock rule, grant determinism, and round/run invariants.

use proptest::prelude::*;
use recluster_core::protocol::LockSet;
use recluster_core::{
    EmptyTargetPolicy, ProtocolConfig, ProtocolEngine, RelocationRequest, SelfishStrategy,
};
use recluster_core::{GameConfig, System};
use recluster_overlay::{ContentStore, Overlay, SimNetwork, Theta};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

fn arb_requests() -> impl Strategy<Value = Vec<RelocationRequest>> {
    proptest::collection::vec(
        (0u32..6, 0u32..6, 0u32..16, 0.0f64..2.0).prop_filter_map(
            "src != dst",
            |(src, dst, peer, gain)| {
                (src != dst).then_some(RelocationRequest {
                    src: ClusterId(src),
                    dst: ClusterId(dst),
                    peer: PeerId(peer),
                    gain,
                })
            },
        ),
        0..12,
    )
}

/// Replays the engine's phase-2 logic on a raw request list.
fn grant(requests: &[RelocationRequest]) -> Vec<RelocationRequest> {
    let mut sorted = requests.to_vec();
    RelocationRequest::sort_requests(&mut sorted);
    let mut locks = LockSet::new();
    let mut granted = Vec::new();
    for req in sorted {
        if locks.admissible(req.src, req.dst) {
            locks.grant(req.src, req.dst);
            granted.push(req);
        }
    }
    granted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No two granted requests violate the lock rule: once ci→cj is
    /// granted, nothing later joins ci or leaves cj.
    #[test]
    fn grants_respect_the_lock_rule(requests in arb_requests()) {
        let granted = grant(&requests);
        for (i, a) in granted.iter().enumerate() {
            for b in granted.iter().skip(i + 1) {
                prop_assert_ne!(b.dst, a.src, "later join into leave-locked cluster");
                prop_assert_ne!(b.src, a.dst, "later leave from join-locked cluster");
            }
        }
    }

    /// In particular no swap (a→b, b→a) and no 2-cycle is ever granted.
    #[test]
    fn no_move_cycles_granted(requests in arb_requests()) {
        let granted = grant(&requests);
        for a in &granted {
            for b in &granted {
                if a.src != b.src {
                    prop_assert!(!(a.src == b.dst && a.dst == b.src), "swap granted");
                }
            }
        }
    }

    /// Grant decisions are independent of request arrival order — the
    /// property that lets every representative decide alone (§3.2).
    #[test]
    fn grants_are_order_independent(requests in arb_requests(), seed in 0u64..1000) {
        let baseline = grant(&requests);
        let mut shuffled = requests.clone();
        // Deterministic shuffle.
        let mut state = seed.wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(baseline, grant(&shuffled));
    }

    /// The highest-gain request is always granted.
    #[test]
    fn top_request_always_granted(requests in arb_requests()) {
        prop_assume!(!requests.is_empty());
        let granted = grant(&requests);
        let mut sorted = requests.clone();
        RelocationRequest::sort_requests(&mut sorted);
        prop_assert_eq!(granted.first(), sorted.first());
    }
}

/// A deterministic random system for round-level invariants.
fn toy_system(seed: u64, n_peers: usize) -> System {
    use rand::Rng;
    let mut rng = recluster_types::seeded_rng(seed);
    let mut overlay = Overlay::unassigned(n_peers);
    for i in 0..n_peers {
        let c = rng.gen_range(0..n_peers) as u32;
        overlay.assign(PeerId::from_index(i), ClusterId(c));
    }
    let mut store = ContentStore::new(n_peers);
    let mut workloads = Vec::new();
    for i in 0..n_peers {
        for _ in 0..rng.gen_range(0..3) {
            let attrs: Vec<Sym> = (0..rng.gen_range(1..3))
                .map(|_| Sym(rng.gen_range(0..8)))
                .collect();
            store.add(PeerId::from_index(i), Document::new(attrs));
        }
        let mut w = Workload::new();
        for _ in 0..rng.gen_range(0..3) {
            w.add(
                Query::keyword(Sym(rng.gen_range(0..8))),
                rng.gen_range(1..4),
            );
        }
        workloads.push(w);
    }
    System::new(
        overlay,
        store,
        workloads,
        GameConfig {
            alpha: 1.0,
            theta: Theta::Linear,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round invariants across random systems: at most one request per
    /// source cluster, granted ⊆ requests, granted moves applied, and
    /// the overlay stays structurally sound.
    #[test]
    fn round_invariants(seed in 0u64..500, n in 3usize..8) {
        let mut sys = toy_system(seed, n);
        let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
        let mut net = SimNetwork::new();
        for round in 0..5 {
            let outcome = engine.run_round(&mut sys, &mut net, round);
            let mut srcs: Vec<ClusterId> = outcome.requests.iter().map(|r| r.src).collect();
            srcs.sort();
            let len_before = srcs.len();
            srcs.dedup();
            prop_assert_eq!(srcs.len(), len_before, "duplicate src in one round");
            for g in &outcome.granted {
                prop_assert!(outcome.requests.contains(g));
                prop_assert_eq!(sys.overlay().cluster_of(g.peer), Some(g.dst));
            }
            sys.overlay().check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
            if outcome.requests.is_empty() {
                break;
            }
        }
    }

    /// A full run with empty targets disabled never increases the number
    /// of non-empty clusters.
    #[test]
    fn never_policy_never_grows_cluster_count(seed in 0u64..200) {
        let mut sys = toy_system(seed, 6);
        let before = sys.overlay().non_empty_clusters();
        let cfg = ProtocolConfig::builder()
            .empty_targets(EmptyTargetPolicy::Never)
            .max_rounds(20)
            .build();
        let mut engine = ProtocolEngine::new(SelfishStrategy, cfg);
        let mut net = SimNetwork::new();
        let _ = engine.run(&mut sys, &mut net);
        prop_assert!(sys.overlay().non_empty_clusters() <= before);
    }

    /// Convergence means an exact ε-equilibrium: afterwards no peer has
    /// a gain above ε (with the same target policy).
    #[test]
    fn converged_runs_are_epsilon_stable(seed in 0u64..200) {
        let mut sys = toy_system(seed, 6);
        let cfg = ProtocolConfig::builder().max_rounds(60).build();
        let mut engine = ProtocolEngine::new(SelfishStrategy, cfg);
        let mut net = SimNetwork::new();
        let outcome = engine.run(&mut sys, &mut net);
        if outcome.converged {
            for p in sys.overlay().peers() {
                let br = recluster_core::best_response(&sys, p, true);
                prop_assert!(br.gain <= cfg.epsilon + 1e-9, "{p} kept gain {}", br.gain);
            }
        }
    }
}
