//! Property-based tests of the corpus substrate: Zipf sampling, the
//! text pipeline, workload arithmetic, and the match predicate.

use proptest::prelude::*;
use recluster_corpus::pipeline::{stem, TextPipeline};
use recluster_corpus::Zipf;
use recluster_types::{seeded_rng, Document, Query, Sym, Workload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Zipf pmf is a probability distribution and monotone in rank.
    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..80, s in 0.0f64..2.5) {
        let z = Zipf::new(n, s);
        let sum: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// Integer shares sum exactly and respect the rank ordering.
    #[test]
    fn zipf_integer_shares_sum(n in 1usize..40, s in 0.0f64..2.0, total in 0u64..5000) {
        let z = Zipf::new(n, s);
        let shares = z.integer_shares(total);
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
        if s > 0.0 {
            for w in shares.windows(2) {
                prop_assert!(w[0] + 1 >= w[1], "shares must be near-monotone");
            }
        }
    }

    /// Zipf samples are always in range.
    #[test]
    fn zipf_samples_in_range(n in 1usize..50, s in 0.0f64..2.0, seed in 0u64..100) {
        let z = Zipf::new(n, s);
        let mut rng = seeded_rng(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// The tokenizer only emits lowercase alphabetic tokens.
    #[test]
    fn tokenizer_emits_clean_tokens(text in ".{0,100}") {
        for token in TextPipeline::tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    /// The stemmer never grows a word and never empties a word of length
    /// ≥ 3.
    #[test]
    fn stemmer_shrinks_but_preserves(word in "[a-z]{3,12}") {
        let stemmed = stem(&word);
        prop_assert!(stemmed.len() <= word.len());
        prop_assert!(!stemmed.is_empty(), "{word} stemmed to nothing");
    }

    /// Workload::apportion hits the exact target, never exceeds original
    /// per-query counts, and keeps proportions within one unit.
    #[test]
    fn apportion_is_exact_and_proportional(
        counts in proptest::collection::vec((0u32..8, 1u64..30), 1..6),
        target_frac in 0.0f64..=1.0,
    ) {
        let mut w = Workload::new();
        for &(sym, n) in &counts {
            w.add(Query::keyword(Sym(sym)), n);
        }
        let target = (w.total() as f64 * target_frac).floor() as u64;
        let scaled = w.apportion(target);
        prop_assert_eq!(scaled.total(), target);
        for (q, n) in scaled.iter() {
            let orig = w.count(q);
            prop_assert!(n <= orig);
            let exact = orig as f64 * target as f64 / w.total() as f64;
            prop_assert!((n as f64 - exact).abs() <= 1.0, "count {n} vs exact {exact}");
        }
    }

    /// Workload totals always equal the sum of per-query counts.
    #[test]
    fn workload_total_is_consistent(
        ops in proptest::collection::vec((0u32..6, 0u64..10, proptest::bool::ANY), 0..20),
    ) {
        let mut w = Workload::new();
        for &(sym, n, add) in &ops {
            if add {
                w.add(Query::keyword(Sym(sym)), n);
            } else {
                w.remove(&Query::keyword(Sym(sym)), n);
            }
        }
        let sum: u64 = w.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(w.total(), sum);
        if w.total() > 0 {
            let freq_sum: f64 = w.iter().map(|(q, _)| w.frequency(q)).sum();
            prop_assert!((freq_sum - 1.0).abs() < 1e-9);
        }
    }

    /// The document match predicate agrees with the naive set-subset
    /// check.
    #[test]
    fn match_predicate_is_subset(
        doc_attrs in proptest::collection::vec(0u32..16, 0..10),
        query_attrs in proptest::collection::vec(0u32..16, 0..5),
    ) {
        let doc = Document::new(doc_attrs.iter().map(|&a| Sym(a)).collect());
        let query = Query::new(query_attrs.iter().map(|&a| Sym(a)).collect());
        let doc_set: std::collections::HashSet<u32> = doc_attrs.iter().copied().collect();
        let naive = query_attrs.iter().all(|a| doc_set.contains(a));
        prop_assert_eq!(query.matches(&doc), naive);
    }
}
