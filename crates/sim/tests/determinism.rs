//! Determinism suite for the parallel sweep runner **and** the parallel
//! protocol round: a multi-threaded sweep must produce a report
//! byte-identical to the sequential runner's — same cells, same order,
//! same rendered bytes — and a protocol round whose phase 1 is sharded
//! across workers (or served from the proposal memo) must produce
//! byte-identical requests, grants, costs and traffic, no matter how
//! the OS schedules the workers.

use std::fmt::Write as _;

use recluster_core::{
    CrashWindow, DecisionSource, FaultSchedule, NetConfig, Partition, PartitionKind,
    ProtocolConfig, ProtocolEngine, RuntimeChurn, RuntimeEngine, SelfishStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_sim::netsim::{
    render_liar_audit, render_midround_churn, render_net_sweep, render_observed_audit,
    render_partition_heal, run_liar_audit, run_midround_churn, run_net_sweep,
    run_observed_liar_audit, run_partition_heal,
};
use recluster_sim::report::{f3, render_table, to_csv};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster_sim::table1::{run_table1_with, Table1Config};
use recluster_sim::{
    run_churn_with_fidelity, run_protocol, sweep_map, ChurnConfig, Parallelism, StrategyKind,
};
use recluster_types::PeerId;

/// One sweep cell: strategy × seed, each building its own testbed.
fn cells() -> Vec<(StrategyKind, u64)> {
    let strategies = [
        StrategyKind::Selfish,
        StrategyKind::Altruistic,
        StrategyKind::Hybrid(0.5),
        StrategyKind::Random(0.2, 7),
    ];
    let seeds = [11u64, 22, 33];
    let mut cells = Vec::new();
    for &s in &strategies {
        for &seed in &seeds {
            cells.push((s, seed));
        }
    }
    cells
}

/// Runs one cell to a rendered report row.
fn run_cell(&(kind, seed): &(StrategyKind, u64)) -> Vec<String> {
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::RandomM,
        &ExperimentConfig::small(seed),
    );
    let mut net = SimNetwork::new();
    let cfg = ProtocolConfig::builder().max_rounds(25).build();
    let outcome = run_protocol(&mut tb.system, kind, cfg, &mut net);
    vec![
        kind.label(),
        seed.to_string(),
        outcome.rounds.len().to_string(),
        f3(outcome.final_scost()),
        f3(outcome.final_wcost()),
        outcome.final_clusters().to_string(),
        net.total_messages().to_string(),
    ]
}

fn render(rows: &[Vec<String>]) -> (String, String) {
    let headers = [
        "strategy", "seed", "rounds", "scost", "wcost", "clusters", "messages",
    ];
    (to_csv(&headers, rows), render_table(&headers, rows))
}

#[test]
fn parallel_sweep_report_is_byte_identical_to_sequential() {
    let cells = cells();
    assert!(cells.len() >= 9, "≥3 strategies × ≥3 seeds");

    let sequential = sweep_map(Parallelism::Sequential, &cells, run_cell);
    let (seq_csv, seq_table) = render(&sequential);

    // Run the parallel sweep several times: scheduling noise across
    // repetitions must never reach the report bytes.
    for run in 0..3 {
        let parallel = sweep_map(Parallelism::Auto, &cells, run_cell);
        let (par_csv, par_table) = render(&parallel);
        assert_eq!(seq_csv.as_bytes(), par_csv.as_bytes(), "csv, run {run}");
        assert_eq!(
            seq_table.as_bytes(),
            par_table.as_bytes(),
            "table, run {run}"
        );
    }

    // A pinned two-worker pool agrees too.
    let two = sweep_map(Parallelism::Threads(2), &cells, run_cell);
    let (two_csv, _) = render(&two);
    assert_eq!(seq_csv.as_bytes(), two_csv.as_bytes());
}

/// CI runs this suite under a thread matrix (`RECLUSTER_THREADS=1,2,8`,
/// mirrored into `RAYON_NUM_THREADS` so the shim's auto mode follows):
/// a pool pinned to the matrix width must agree with the sequential
/// runner byte for byte, so merge-order bugs in the rayon shim cannot
/// hide behind a single-thread runner.
#[test]
fn matrix_pinned_pool_equals_sequential() {
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let cells = cells();
    let sequential = sweep_map(Parallelism::Sequential, &cells, run_cell);
    let pinned = sweep_map(Parallelism::Threads(width), &cells, run_cell);
    let (seq_csv, _) = render(&sequential);
    let (pin_csv, _) = render(&pinned);
    assert_eq!(
        seq_csv.as_bytes(),
        pin_csv.as_bytes(),
        "{width}-thread pool diverged from sequential"
    );
}

/// Runs a full protocol convergence (singletons → equilibrium) and
/// renders every round to full bit precision: requests and grants with
/// gain bits, post-round costs, phase-1 memo counters excluded (they
/// are compared separately — memoization must change *counters*, never
/// protocol bytes).
fn round_trace(min_parallel_peers: usize, memoize: bool) -> String {
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::Singletons,
        &ExperimentConfig::small(23),
    );
    let mut net = SimNetwork::new();
    let cfg = ProtocolConfig::builder()
        .max_rounds(40)
        .min_parallel_peers(min_parallel_peers)
        .memoize(memoize)
        .build();
    let mut engine = ProtocolEngine::new(SelfishStrategy, cfg);
    let outcome = engine.run(&mut tb.system, &mut net);
    let mut out = String::new();
    for r in &outcome.rounds {
        let _ = write!(out, "round {}:", r.round);
        for q in &r.requests {
            let _ = write!(
                out,
                " req({},{},{},{:016x})",
                q.src,
                q.dst,
                q.peer,
                q.gain.to_bits()
            );
        }
        for g in &r.granted {
            let _ = write!(out, " grant({},{})", g.peer, g.dst);
        }
        let _ = writeln!(
            out,
            " scost={:016x} wcost={:016x} clusters={}",
            r.scost.to_bits(),
            r.wcost.to_bits(),
            r.non_empty_clusters
        );
    }
    let _ = writeln!(out, "msgs={}", net.total_messages());
    out
}

/// Phase-1 sharding honours the CI thread matrix: a forced-parallel run
/// under pinned 1/2/8-worker pools (and the matrix width) is
/// byte-identical to the forced-sequential run.
#[test]
fn protocol_round_parallel_equals_sequential() {
    let sequential = round_trace(usize::MAX, true);
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build never fails");
        let parallel = pool.install(|| round_trace(1, true));
        assert_eq!(
            sequential.as_bytes(),
            parallel.as_bytes(),
            "{threads}-thread phase 1 diverged from sequential"
        );
    }
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let pinned = rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("shim pool build never fails")
        .install(|| round_trace(1, true));
    assert_eq!(sequential.as_bytes(), pinned.as_bytes());
}

/// The traffic engine rendered to bytes, with phase 1 forced parallel
/// (`min_parallel_peers: 1`) so its repair rounds actually shard across
/// whatever pool is installed.
fn traffic_trace() -> String {
    let (cfg, mut traffic) = recluster_sim::traffic::traffic_small_config(37);
    traffic.protocol.min_parallel_peers = 1;
    recluster_sim::traffic::run_traffic(&cfg, &traffic).render("traffic_det", 37)
}

/// The streamed traffic engine — sampling, routing, churn, batched
/// summary flushes *and* its embedded repair rounds — is byte-identical
/// under pinned 1/2/8-worker pools and the CI matrix width. Same shape
/// as [`protocol_round_parallel_equals_sequential`]: the only parallel
/// section anywhere on the engine's path is protocol phase 1.
#[test]
fn traffic_engine_parallel_equals_sequential() {
    let baseline = traffic_trace();
    for threads in [1usize, 2, 8] {
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build never fails")
            .install(traffic_trace);
        assert_eq!(
            baseline.as_bytes(),
            parallel.as_bytes(),
            "{threads}-thread traffic run diverged"
        );
    }
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let pinned = rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("shim pool build never fails")
        .install(traffic_trace);
    assert_eq!(baseline.as_bytes(), pinned.as_bytes());
}

/// Proposal memoization changes how many proposals are recomputed —
/// never what the protocol does: traces with the memo on and off are
/// byte-identical, and the memo-on run actually serves hits (the
/// terminal converged round re-emits every clean peer's proposal).
#[test]
fn proposal_memo_preserves_protocol_bytes() {
    assert_eq!(
        round_trace(usize::MAX, true).as_bytes(),
        round_trace(usize::MAX, false).as_bytes()
    );

    // Count the hits directly: a converged system re-runs one round.
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::Singletons,
        &ExperimentConfig::small(23),
    );
    let mut net = SimNetwork::new();
    let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
    let first = engine.run(&mut tb.system, &mut net);
    assert!(first.converged);
    let rerun = engine.run(&mut tb.system, &mut net);
    assert!(rerun.converged);
    assert_eq!(
        rerun.total_recomputed(),
        0,
        "a quiet re-run must be served entirely from the memo"
    );
    assert!(rerun.total_memoized() > 0);
}

/// Observed-mode churn rendered to full bit precision: every period row
/// plus the fidelity report (agreement rate and both repair costs), so
/// any float drift on the observation pass, the EMA fold, the cloned
/// oracle reference run or the observed repair itself reaches the trace.
fn observed_churn_trace() -> String {
    let cfg = ExperimentConfig::small(29);
    let churn = ChurnConfig {
        periods: 4,
        leaves_per_period: 1,
        joins_per_period: 1,
        decisions: DecisionSource::Observed { decay: 0.25 },
        ..ChurnConfig::default()
    };
    let (rows, fidelity) = run_churn_with_fidelity(&cfg, &churn);
    let mut out = String::new();
    for r in &rows {
        let _ = writeln!(
            out,
            "period {}: churn={:016x} repair={:016x} peers={} moves={} msgs={} fpq={:016x} fnr={:016x}",
            r.period,
            r.scost_after_churn.to_bits(),
            r.scost_after_repair.to_bits(),
            r.peers,
            r.moves,
            r.query_messages,
            r.forwards_per_query.to_bits(),
            r.false_negative_rate.to_bits()
        );
    }
    let report = fidelity.expect("observed mode always reports fidelity");
    for f in &report.periods {
        let _ = writeln!(
            out,
            "fidelity {}: agree={:016x} obs={:016x} oracle={:016x}",
            f.period,
            f.agreement_rate.to_bits(),
            f.scost_observed_repair.to_bits(),
            f.scost_oracle_repair.to_bits()
        );
    }
    out
}

/// The observed relocation pipeline honours the CI thread matrix the
/// same way the oracle paths do: churn with observed decisions is
/// byte-identical under pinned 1/2/8-worker pools and the matrix width.
#[test]
fn observed_churn_parallel_equals_sequential() {
    let baseline = observed_churn_trace();
    for threads in [1usize, 2, 8] {
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build never fails")
            .install(observed_churn_trace);
        assert_eq!(
            baseline.as_bytes(),
            parallel.as_bytes(),
            "{threads}-thread observed churn diverged"
        );
    }
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let pinned = rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("shim pool build never fails")
        .install(observed_churn_trace);
    assert_eq!(baseline.as_bytes(), pinned.as_bytes());
}

/// The observed traffic engine — observation pass, EMA fold, agreement
/// audit, reference oracle repair and the observed repair — rendered to
/// bytes with phase 1 forced parallel, mirroring [`traffic_trace`].
fn observed_traffic_trace() -> String {
    let (cfg, mut traffic) = recluster_sim::traffic::traffic_small_observed_config(41);
    traffic.protocol.min_parallel_peers = 1;
    recluster_sim::traffic::run_traffic(&cfg, &traffic).render("traffic_det_observed", 41)
}

/// Observed traffic under pinned 1/2/8-worker pools and the CI matrix
/// width is byte-identical to the ambient run, fidelity lines included.
#[test]
fn observed_traffic_engine_parallel_equals_sequential() {
    let baseline = observed_traffic_trace();
    assert!(
        baseline.contains("fidelity"),
        "observed traffic must render fidelity lines"
    );
    for threads in [1usize, 2, 8] {
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build never fails")
            .install(observed_traffic_trace);
        assert_eq!(
            baseline.as_bytes(),
            parallel.as_bytes(),
            "{threads}-thread observed traffic run diverged"
        );
    }
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let pinned = rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("shim pool build never fails")
        .install(observed_traffic_trace);
    assert_eq!(baseline.as_bytes(), pinned.as_bytes());
}

/// Oracle churn rendered to full bit precision — the pipeline the
/// million-peer run drives, just small enough to re-run under every
/// pool width here.
fn oracle_churn_trace() -> String {
    let cfg = ExperimentConfig::small(31);
    let churn = ChurnConfig {
        periods: 4,
        leaves_per_period: 1,
        joins_per_period: 1,
        ..ChurnConfig::default()
    };
    let (rows, _) = run_churn_with_fidelity(&cfg, &churn);
    let mut out = String::new();
    for r in &rows {
        let _ = writeln!(
            out,
            "period {}: churn={:016x} repair={:016x} peers={} moves={} msgs={} fpq={:016x} fnr={:016x}",
            r.period,
            r.scost_after_churn.to_bits(),
            r.scost_after_repair.to_bits(),
            r.peers,
            r.moves,
            r.query_messages,
            r.forwards_per_query.to_bits(),
            r.false_negative_rate.to_bits()
        );
    }
    out
}

/// The sharded flush/fan-out path (peer-range sharding of the cost
/// cache flush and the per-period tracker walk, normally gated behind
/// `RECLUSTER_SHARD_MIN`) is byte-identical to the forced-sequential
/// path under pinned 1/2/8-worker pools and the CI matrix width. CI
/// additionally runs the whole suite with `RECLUSTER_SHARD_MIN=1`, so
/// every *other* trace in this file crosses the sharded path too.
#[test]
fn sharded_churn_trace_parallel_equals_sequential() {
    use recluster_core::shard::set_shard_min_override;

    set_shard_min_override(Some(usize::MAX));
    let sequential = oracle_churn_trace();
    set_shard_min_override(Some(1));
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    for threads in [1usize, 2, 8, width] {
        let sharded = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build never fails")
            .install(oracle_churn_trace);
        assert_eq!(
            sequential.as_bytes(),
            sharded.as_bytes(),
            "{threads}-thread sharded churn diverged from sequential"
        );
    }
    set_shard_min_override(None);
}

/// A full runtime convergence under a *degraded* schedule (delay 0..3,
/// 10% loss), rendered to full bit precision: every forwarded request
/// and grant with gain bits, post-round costs, and the fabric ledger.
/// Any nondeterminism in the scheduler — heap tie-breaks, RNG draws,
/// machine polling order — reaches these bytes.
fn runtime_trace(seed: u64) -> String {
    runtime_trace_with(seed, FaultSchedule::none(), Vec::new())
}

/// `runtime_trace` under an explicit fault schedule and churn script —
/// the partition-tolerant paths (cut/crash attribution, voided grants,
/// mid-round teardown) feed the same bit-precision bytes.
fn runtime_trace_with(seed: u64, faults: FaultSchedule, churn: Vec<(u64, RuntimeChurn)>) -> String {
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::RandomM,
        &ExperimentConfig::small(23),
    );
    let mut net = SimNetwork::new();
    let cfg = ProtocolConfig::builder()
        .max_rounds(30)
        .memoize(false)
        .build();
    let mut engine = RuntimeEngine::new(SelfishStrategy, cfg, NetConfig::degraded(seed, 0, 3, 0.1))
        .with_faults(faults)
        .with_churn(churn);
    let outcome = engine.run(&mut tb.system, &mut net);
    let mut out = String::new();
    for r in &outcome.rounds {
        let _ = write!(out, "round {}:", r.round);
        for q in &r.requests {
            let _ = write!(
                out,
                " req({},{},{},{:016x})",
                q.src,
                q.dst,
                q.peer,
                q.gain.to_bits()
            );
        }
        for g in &r.granted {
            let _ = write!(out, " grant({},{})", g.peer, g.dst);
        }
        let _ = writeln!(
            out,
            " scost={:016x} wcost={:016x} clusters={}",
            r.scost.to_bits(),
            r.wcost.to_bits(),
            r.non_empty_clusters
        );
    }
    let _ = writeln!(
        out,
        "net={:?} msgs={}",
        engine.net_stats(),
        net.total_messages()
    );
    out
}

/// Seed discipline of the simulated fabric: an identical-seed replay of
/// a lossy, reordering schedule is byte-identical down to the gain
/// bits, and two different seeds actually produce different schedules.
#[test]
fn runtime_replay_is_byte_identical_and_seeds_diverge() {
    let first = runtime_trace(7);
    assert_eq!(
        first.as_bytes(),
        runtime_trace(7).as_bytes(),
        "identical-seed replay diverged"
    );
    let other = runtime_trace(8);
    assert_ne!(
        first.as_bytes(),
        other.as_bytes(),
        "different fabric seeds produced identical degraded runs"
    );
}

/// The faulted runtime keeps the same contract: a degraded schedule
/// *plus* a bisection, a crash window and mid-round churn replays
/// byte-identically under the same seed, and still diverges across
/// fabric seeds (the faults shift traffic, they do not freeze it).
#[test]
fn faulted_runtime_replay_is_byte_identical_and_seeds_diverge() {
    let scripted = |seed| {
        let faults = FaultSchedule {
            partitions: vec![Partition {
                kind: PartitionKind::Bisect { pivot: 20 },
                start: 4,
                heal: 40,
            }],
            crashes: vec![CrashWindow {
                peer: PeerId(3),
                down: 10,
                up: 30,
            }],
        };
        let churn = vec![
            (6, RuntimeChurn::Depart { peer: PeerId(7) }),
            (12, RuntimeChurn::Depart { peer: PeerId(11) }),
        ];
        runtime_trace_with(seed, faults, churn)
    };
    let first = scripted(7);
    assert_eq!(
        first.as_bytes(),
        scripted(7).as_bytes(),
        "identical-seed faulted replay diverged"
    );
    assert_ne!(
        first.as_bytes(),
        scripted(8).as_bytes(),
        "different fabric seeds produced identical faulted runs"
    );
    assert_ne!(
        first.as_bytes(),
        runtime_trace(7).as_bytes(),
        "the fault schedule left no trace in the run"
    );
}

/// The runtime honours the CI thread matrix the way every other engine
/// does: a degraded-schedule trace under pinned 1/2/8-worker pools (and
/// the matrix width) is byte-identical to the ambient run.
#[test]
fn runtime_trace_parallel_equals_sequential() {
    let baseline = runtime_trace(7);
    for threads in [1usize, 2, 8] {
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build never fails")
            .install(|| runtime_trace(7));
        assert_eq!(
            baseline.as_bytes(),
            parallel.as_bytes(),
            "{threads}-thread runtime trace diverged"
        );
    }
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let pinned = rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("shim pool build never fails")
        .install(|| runtime_trace(7));
    assert_eq!(baseline.as_bytes(), pinned.as_bytes());
}

/// All five runtime sweeps — delay/reorder, liar audit, partition/heal,
/// mid-round churn and the observed commitment-reveal audit — render
/// byte-identically under sequential, 1/2/8-pinned and matrix-width
/// runners: every golden snapshot in the family is thread-invariant.
#[test]
fn netsim_sweeps_parallel_equal_sequential() {
    let cfg = ExperimentConfig::small(17);
    // Short budgets: byte-identity is the claim here, not convergence.
    let renders = |p: Parallelism| {
        [
            render_net_sweep(&run_net_sweep(&cfg, 20, 5, p), 5),
            render_liar_audit(&run_liar_audit(&cfg, 20, 5, p), 5),
            render_partition_heal(&run_partition_heal(&cfg, 20, 5, p), 5),
            render_midround_churn(&run_midround_churn(&cfg, 20, 5, p), 5),
            render_observed_audit(&run_observed_liar_audit(&cfg, 8, 5, p), 5),
        ]
    };
    let seq = renders(Parallelism::Sequential);
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    for threads in [1usize, 2, 8, width] {
        let par = renders(Parallelism::Threads(threads));
        for (name, (s, p)) in [
            "net sweep",
            "liar audit",
            "partition heal",
            "midround churn",
            "observed audit",
        ]
        .iter()
        .zip(seq.iter().zip(&par))
        {
            assert_eq!(
                s.as_bytes(),
                p.as_bytes(),
                "{threads}-thread {name} diverged"
            );
        }
    }
}

#[test]
fn table1_parallel_equals_sequential() {
    let mut cfg = Table1Config::small(19);
    cfg.max_rounds = 15; // keep the full 24-cell grid fast

    let fmt = |rows: &[recluster_sim::table1::Table1Row]| -> String {
        rows.iter()
            .map(|r| {
                format!(
                    "{}|{}|{}|{:?}|{}|{}|{}|{}|{}\n",
                    r.scenario.label(),
                    r.init.label(),
                    r.strategy,
                    r.rounds,
                    r.clusters,
                    // Full bit-precision rendering: any float drift
                    // between the runners would show here.
                    r.scost.to_bits(),
                    r.wcost.to_bits(),
                    r.nash,
                    r.messages
                )
            })
            .collect()
    };

    let seq = fmt(&run_table1_with(&cfg, Parallelism::Sequential));
    let par = fmt(&run_table1_with(&cfg, Parallelism::Auto));
    assert_eq!(seq.as_bytes(), par.as_bytes());
}
