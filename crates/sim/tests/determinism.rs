//! Determinism suite for the parallel sweep runner: a multi-threaded
//! sweep must produce a report **byte-identical** to the sequential
//! runner's — same cells, same order, same rendered bytes — no matter
//! how the OS schedules the workers.

use recluster_core::ProtocolConfig;
use recluster_overlay::SimNetwork;
use recluster_sim::report::{f3, render_table, to_csv};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster_sim::table1::{run_table1_with, Table1Config};
use recluster_sim::{run_protocol, sweep_map, Parallelism, StrategyKind};

/// One sweep cell: strategy × seed, each building its own testbed.
fn cells() -> Vec<(StrategyKind, u64)> {
    let strategies = [
        StrategyKind::Selfish,
        StrategyKind::Altruistic,
        StrategyKind::Hybrid(0.5),
        StrategyKind::Random(0.2, 7),
    ];
    let seeds = [11u64, 22, 33];
    let mut cells = Vec::new();
    for &s in &strategies {
        for &seed in &seeds {
            cells.push((s, seed));
        }
    }
    cells
}

/// Runs one cell to a rendered report row.
fn run_cell(&(kind, seed): &(StrategyKind, u64)) -> Vec<String> {
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::RandomM,
        &ExperimentConfig::small(seed),
    );
    let mut net = SimNetwork::new();
    let cfg = ProtocolConfig {
        max_rounds: 25,
        ..Default::default()
    };
    let outcome = run_protocol(&mut tb.system, kind, cfg, &mut net);
    vec![
        kind.label(),
        seed.to_string(),
        outcome.rounds.len().to_string(),
        f3(outcome.final_scost()),
        f3(outcome.final_wcost()),
        outcome.final_clusters().to_string(),
        net.total_messages().to_string(),
    ]
}

fn render(rows: &[Vec<String>]) -> (String, String) {
    let headers = [
        "strategy", "seed", "rounds", "scost", "wcost", "clusters", "messages",
    ];
    (to_csv(&headers, rows), render_table(&headers, rows))
}

#[test]
fn parallel_sweep_report_is_byte_identical_to_sequential() {
    let cells = cells();
    assert!(cells.len() >= 9, "≥3 strategies × ≥3 seeds");

    let sequential = sweep_map(Parallelism::Sequential, &cells, run_cell);
    let (seq_csv, seq_table) = render(&sequential);

    // Run the parallel sweep several times: scheduling noise across
    // repetitions must never reach the report bytes.
    for run in 0..3 {
        let parallel = sweep_map(Parallelism::Auto, &cells, run_cell);
        let (par_csv, par_table) = render(&parallel);
        assert_eq!(seq_csv.as_bytes(), par_csv.as_bytes(), "csv, run {run}");
        assert_eq!(
            seq_table.as_bytes(),
            par_table.as_bytes(),
            "table, run {run}"
        );
    }

    // A pinned two-worker pool agrees too.
    let two = sweep_map(Parallelism::Threads(2), &cells, run_cell);
    let (two_csv, _) = render(&two);
    assert_eq!(seq_csv.as_bytes(), two_csv.as_bytes());
}

/// CI runs this suite under a thread matrix (`RECLUSTER_THREADS=1,2,8`,
/// mirrored into `RAYON_NUM_THREADS` so the shim's auto mode follows):
/// a pool pinned to the matrix width must agree with the sequential
/// runner byte for byte, so merge-order bugs in the rayon shim cannot
/// hide behind a single-thread runner.
#[test]
fn matrix_pinned_pool_equals_sequential() {
    let width: usize = std::env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let cells = cells();
    let sequential = sweep_map(Parallelism::Sequential, &cells, run_cell);
    let pinned = sweep_map(Parallelism::Threads(width), &cells, run_cell);
    let (seq_csv, _) = render(&sequential);
    let (pin_csv, _) = render(&pinned);
    assert_eq!(
        seq_csv.as_bytes(),
        pin_csv.as_bytes(),
        "{width}-thread pool diverged from sequential"
    );
}

#[test]
fn table1_parallel_equals_sequential() {
    let mut cfg = Table1Config::small(19);
    cfg.max_rounds = 15; // keep the full 24-cell grid fast

    let fmt = |rows: &[recluster_sim::table1::Table1Row]| -> String {
        rows.iter()
            .map(|r| {
                format!(
                    "{}|{}|{}|{:?}|{}|{}|{}|{}|{}\n",
                    r.scenario.label(),
                    r.init.label(),
                    r.strategy,
                    r.rounds,
                    r.clusters,
                    // Full bit-precision rendering: any float drift
                    // between the runners would show here.
                    r.scost.to_bits(),
                    r.wcost.to_bits(),
                    r.nash,
                    r.messages
                )
            })
            .collect()
    };

    let seq = fmt(&run_table1_with(&cfg, Parallelism::Sequential));
    let par = fmt(&run_table1_with(&cfg, Parallelism::Auto));
    assert_eq!(seq.as_bytes(), par.as_bytes());
}
