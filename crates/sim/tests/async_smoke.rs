//! Integration smoke for the asynchronous engine (`run_async`, §6):
//! uncoordinated one-at-a-time play on the 40-peer testbed must reach
//! the same cost neighbourhood as the synchronized two-phase protocol,
//! deterministically.

use recluster_core::{
    run_async, scost_normalized, ProtocolConfig, ProtocolEngine, SelfishStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

#[test]
fn async_play_matches_the_sync_engine_on_the_small_testbed() {
    let cfg = ExperimentConfig::small(101);
    let protocol = ProtocolConfig {
        epsilon: 1e-3,
        max_rounds: 60,
        ..Default::default()
    };

    // Synchronized reference.
    let mut sync_tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut sync_net = SimNetwork::new();
    let sync_outcome =
        ProtocolEngine::new(SelfishStrategy, protocol).run(&mut sync_tb.system, &mut sync_net);
    assert!(sync_outcome.converged, "sync engine must converge");
    let sync_scost = scost_normalized(&sync_tb.system);

    // Asynchronous run from the same initial state.
    let mut async_tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut async_net = SimNetwork::new();
    let mut strategy = SelfishStrategy;
    let outcome = run_async(
        &mut async_tb.system,
        &mut strategy,
        protocol,
        60,
        7,
        &mut async_net,
    );
    assert!(outcome.converged, "async play must reach a moveless sweep");
    assert!(outcome.steps > 0 && outcome.moves > 0);
    assert_eq!(outcome.scost_per_sweep.len(), outcome.wcost_per_sweep.len());
    async_tb.system.overlay().check_invariants().unwrap();

    // Both engines optimize the same game from the same start: the
    // uncoordinated run must land in the same cost neighbourhood as the
    // coordinated one (both near the paper-ideal for scenario 1).
    let async_scost = scost_normalized(&async_tb.system);
    assert!(
        (async_scost - sync_scost).abs() < 0.05,
        "async {async_scost} vs sync {sync_scost}"
    );

    // Deterministic in (config, seed): a replay is bitwise identical.
    let mut replay_tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut replay_net = SimNetwork::new();
    let mut replay_strategy = SelfishStrategy;
    let replay = run_async(
        &mut replay_tb.system,
        &mut replay_strategy,
        protocol,
        60,
        7,
        &mut replay_net,
    );
    assert_eq!(replay.steps, outcome.steps);
    assert_eq!(replay.moves, outcome.moves);
    for (a, b) in outcome
        .scost_per_sweep
        .iter()
        .zip(replay.scost_per_sweep.iter())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
