//! Golden regression tests for the paper-figure scenario outputs.
//!
//! Small fixed configurations of `fig1`, `fig4`, and `table1` are
//! rendered to text and compared against committed snapshots under
//! `tests/golden/`, so future performance work (index refactors,
//! parallelism changes) cannot silently shift the reproduced paper
//! numbers. Each snapshot ends with a bit-level FNV-1a digest of every
//! `f64` in the output, making even ulp-sized drift visible while the
//! human-readable rows stay at the paper's 3-decimal precision.
//!
//! Regenerate after an *intentional* change with:
//! `RECLUSTER_UPDATE_GOLDEN=1 cargo test -p recluster-sim --test golden`

use std::fmt::Write as _;
use std::path::PathBuf;

use recluster_sim::churn::{
    churn_100k_config, churn_10k_config, churn_10k_observed_config, churn_1m_config, run_churn,
    run_churn_with_fidelity, ChurnPeriod,
};
use recluster_sim::fig1::run_fig1_with;
use recluster_sim::fig4::run_fig4_with;
use recluster_sim::netsim::{
    render_liar_audit, render_midround_churn, render_net_sweep, render_observed_audit,
    render_partition_heal, run_liar_audit, run_midround_churn, run_net_sweep,
    run_observed_liar_audit, run_partition_heal,
};
use recluster_sim::report::{f3, rounds_cell};
use recluster_sim::scenario::ExperimentConfig;
use recluster_sim::table1::{run_table1_with, Table1Config};
use recluster_sim::traffic::{
    run_traffic, traffic_demo_config, traffic_small_config, traffic_small_observed_config,
};
use recluster_sim::Parallelism;

/// FNV-1a over the raw bits of every recorded float, so the digest is
/// exactly reproducible wherever IEEE-754 doubles are.
#[derive(Default)]
struct BitDigest {
    hash: u64,
    count: usize,
}

impl BitDigest {
    fn new() -> Self {
        BitDigest {
            hash: 0xcbf29ce484222325,
            count: 0,
        }
    }

    fn push(&mut self, x: f64) {
        for b in x.to_bits().to_le_bytes() {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x100000001b3);
        }
        self.count += 1;
    }

    fn line(&self) -> String {
        format!(
            "f64-digest: {:016x} over {} values\n",
            self.hash, self.count
        )
    }
}

fn render_fig1() -> String {
    let series = run_fig1_with(&ExperimentConfig::small(31), 60, Parallelism::Sequential);
    let mut out = String::from("fig1 scenario=same-category init=singletons seed=31\n");
    let mut digest = BitDigest::new();
    for s in &series {
        let fmt_series = |values: &[f64], digest: &mut BitDigest| -> String {
            values
                .iter()
                .map(|&v| {
                    digest.push(v);
                    f3(v)
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        let scost = fmt_series(&s.scost, &mut digest);
        let wcost = fmt_series(&s.wcost, &mut digest);
        let _ = writeln!(out, "{} converged={}", s.strategy, s.converged);
        let _ = writeln!(out, "  scost: {scost}");
        let _ = writeln!(out, "  wcost: {wcost}");
    }
    out.push_str(&digest.line());
    out
}

fn render_fig4() -> String {
    let alphas = [0.0, 1.0, 2.0];
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let curves = run_fig4_with(
        &ExperimentConfig::small(51),
        &alphas,
        &fractions,
        Parallelism::Sequential,
    );
    let mut out = String::from("fig4 ideal-scenario1 seed=51\n");
    let mut digest = BitDigest::new();
    for c in &curves {
        let pts = c
            .points
            .iter()
            .map(|&(f, cost)| {
                digest.push(cost);
                format!("{f:.2}:{}", f3(cost))
            })
            .collect::<Vec<_>>()
            .join(" ");
        let threshold = c
            .relocation_threshold
            .map_or_else(|| "-".into(), |t| format!("{t:.2}"));
        let _ = writeln!(out, "alpha={} threshold={threshold} {pts}", c.alpha);
    }
    out.push_str(&digest.line());
    out
}

fn render_table1() -> String {
    let mut cfg = Table1Config::small(21);
    cfg.max_rounds = 40;
    let rows = run_table1_with(&cfg, Parallelism::Sequential);
    let mut out = String::from("table1 small seed=21 max_rounds=40\n");
    let mut digest = BitDigest::new();
    for r in &rows {
        digest.push(r.scost);
        digest.push(r.wcost);
        let _ = writeln!(
            out,
            "{}|{}|{}|rounds={}|clusters={}|scost={}|wcost={}|nash={}|msgs={}",
            r.scenario.label(),
            r.init.label(),
            r.strategy,
            rounds_cell(r.rounds),
            r.clusters,
            f3(r.scost),
            f3(r.wcost),
            r.nash,
            r.messages
        );
    }
    out.push_str(&digest.line());
    out
}

fn render_churn_scale(
    name: &str,
    cfg: &ExperimentConfig,
    churn: &recluster_sim::churn::ChurnConfig,
    rows: &[ChurnPeriod],
    seed: u64,
) -> String {
    let mut out = format!(
        "{name} peers={} periods={} leaves={} joins={} routing={} seed={seed}\n",
        cfg.n_peers, churn.periods, churn.leaves_per_period, churn.joins_per_period, churn.routing
    );
    let mut digest = BitDigest::new();
    for r in rows {
        digest.push(r.scost_after_churn);
        digest.push(r.scost_after_repair);
        digest.push(r.forwards_per_query);
        digest.push(r.false_negative_rate);
        let _ = writeln!(
            out,
            "period={}|peers={}|churned={}|repaired={}|moves={}|msgs={}|fwd/q={}|fn={}",
            r.period,
            r.peers,
            f3(r.scost_after_churn),
            f3(r.scost_after_repair),
            r.moves,
            r.query_messages,
            f3(r.forwards_per_query),
            f3(r.false_negative_rate),
        );
    }
    out.push_str(&digest.line());
    out
}

fn render_churn_10k() -> String {
    let (cfg, churn) = churn_10k_config(2008);
    let rows = run_churn(&cfg, &churn);
    render_churn_scale("churn_10k", &cfg, &churn, &rows, 2008)
}

fn render_churn_100k() -> String {
    let (cfg, churn) = churn_100k_config(2008);
    let rows = run_churn(&cfg, &churn);
    render_churn_scale("churn_100k", &cfg, &churn, &rows, 2008)
}

/// Renders the observed-mode 10k churn run: the per-period rows plus
/// the decision-fidelity block — observed-vs-oracle agreement and both
/// repaired costs, bit-digested. Pinning both costs is what holds the
/// "observed converges within 5 % of the oracle" claim over time.
fn render_churn_10k_observed() -> (String, f64) {
    let (cfg, churn) = churn_10k_observed_config(2008);
    let (rows, fidelity) = run_churn_with_fidelity(&cfg, &churn);
    let mut out = render_churn_scale("churn_10k_observed", &cfg, &churn, &rows, 2008);
    let report = fidelity.expect("observed runs report fidelity");
    let mut digest = BitDigest::new();
    for f in &report.periods {
        digest.push(f.agreement_rate);
        digest.push(f.scost_observed_repair);
        digest.push(f.scost_oracle_repair);
        let _ = writeln!(
            out,
            "fidelity period={}|agree={:.6}|scost_obs={:.6}|scost_oracle={:.6}|gap={:+.4}",
            f.period,
            f.agreement_rate,
            f.scost_observed_repair,
            f.scost_oracle_repair,
            f.scost_gap()
        );
    }
    let _ = writeln!(
        out,
        "fidelity mean_agree={:.6} final_gap={:+.6}",
        report.mean_agreement(),
        report.final_scost_gap()
    );
    out.push_str(&digest.line());
    (out, report.final_scost_gap())
}

/// Renders the million-peer churn run and returns the last period's
/// repaired scost, so the test can pin the paper-ideal acceptance bound
/// (≈ 0.101: membership 10 clusters / 1M peers plus residual recall
/// loss) alongside the bit-level snapshot.
fn render_churn_1m() -> (String, f64) {
    let (cfg, churn) = churn_1m_config(2008);
    let rows = run_churn(&cfg, &churn);
    let final_scost = rows.last().map_or(0.0, |r| r.scost_after_repair);
    (
        render_churn_scale("churn_1M", &cfg, &churn, &rows, 2008),
        final_scost,
    )
}

fn render_traffic_small() -> String {
    let (cfg, traffic) = traffic_small_config(2008);
    run_traffic(&cfg, &traffic).render("traffic_small", 2008)
}

fn render_traffic_small_observed() -> String {
    let (cfg, traffic) = traffic_small_observed_config(2008);
    run_traffic(&cfg, &traffic).render("traffic_small_observed", 2008)
}

fn render_traffic_1m() -> String {
    let (cfg, traffic) = traffic_demo_config(2008);
    run_traffic(&cfg, &traffic).render("traffic_1m", 2008)
}

fn render_net_sweep_snapshot() -> String {
    let rows = run_net_sweep(&ExperimentConfig::small(17), 40, 5, Parallelism::Sequential);
    render_net_sweep(&rows, 5)
}

fn render_liar_audit_snapshot() -> String {
    let rows = run_liar_audit(&ExperimentConfig::small(17), 40, 5, Parallelism::Sequential);
    render_liar_audit(&rows, 5)
}

/// Renders the partition/heal scenario and returns the worst post-heal
/// gap to the ideal equilibrium, so the test can pin the acceptance
/// bound (every faulted cell repairs to within 5 %) alongside the
/// snapshot itself.
fn render_partition_heal_snapshot() -> (String, f64) {
    let rows = run_partition_heal(&ExperimentConfig::small(17), 40, 5, Parallelism::Sequential);
    let worst_gap = rows.iter().map(|r| r.gap.abs()).fold(0.0, f64::max);
    (render_partition_heal(&rows, 5), worst_gap)
}

fn render_midround_churn_snapshot() -> String {
    let rows = run_midround_churn(&ExperimentConfig::small(17), 60, 5, Parallelism::Sequential);
    render_midround_churn(&rows, 5)
}

/// Renders the observed-mode commitment-reveal audit and returns the
/// per-row (precision, recall, flagged-at-zero-liars) triple needed to
/// pin the frame-provable acceptance bound next to the snapshot.
fn render_observed_audit_snapshot() -> (String, Vec<(f64, f64, usize)>) {
    let rows =
        run_observed_liar_audit(&ExperimentConfig::small(17), 12, 5, Parallelism::Sequential);
    let scores = rows
        .iter()
        .map(|r| {
            (
                r.precision,
                r.recall,
                if r.liars == 0 { r.flagged } else { 0 },
            )
        })
        .collect();
    (render_observed_audit(&rows, 5), scores)
}

/// The trailing digest line of a snapshot (`f64-digest:` for the
/// figure/churn renders, `traffic-digest:` for the traffic engine,
/// `netsim-digest:` for the runtime scenarios — all feed every float's
/// raw bits, so they pinpoint sub-rounding drift).
fn digest_line(text: &str) -> &str {
    text.lines()
        .rev()
        .find(|l| {
            l.starts_with("f64-digest:")
                || l.starts_with("traffic-digest:")
                || l.starts_with("netsim-digest:")
        })
        .unwrap_or("<no digest line>")
}

fn check(name: &str, actual: String) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var("RECLUSTER_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    if actual == expected {
        return;
    }
    // Point straight at the damage: the first diverging line (1-based)
    // and the two bit-level digests, instead of a bare inequality.
    let diverged = actual
        .lines()
        .zip(expected.lines())
        .position(|(a, e)| a != e)
        .map(|i| {
            format!(
                "first diverging line {}:\n  actual:   {}\n  expected: {}",
                i + 1,
                actual.lines().nth(i).unwrap_or(""),
                expected.lines().nth(i).unwrap_or(""),
            )
        })
        .unwrap_or_else(|| {
            format!(
                "line counts differ: actual {} vs expected {} (common prefix identical)",
                actual.lines().count(),
                expected.lines().count()
            )
        });
    panic!(
        "{name} drifted from its committed snapshot.\n{diverged}\n\
         actual   {}\nexpected {}\n\
         If the change is intentional, regenerate with RECLUSTER_UPDATE_GOLDEN=1",
        digest_line(&actual),
        digest_line(&expected),
    );
}

#[test]
fn fig1_matches_golden_snapshot() {
    check("fig1.txt", render_fig1());
}

#[test]
fn fig4_matches_golden_snapshot() {
    check("fig4.txt", render_fig4());
}

#[test]
fn table1_matches_golden_snapshot() {
    check("table1.txt", render_table1());
}

/// The typed-message runtime under degraded schedules: scost vs
/// delay/drop with the grant/deny/drop/stale ledger per cell.
#[test]
fn net_sweep_matches_golden_snapshot() {
    check("net_sweep.txt", render_net_sweep_snapshot());
}

/// Fault attribution of inflated claimed gains against observed
/// statistics, scored per liar fraction.
#[test]
fn liar_audit_matches_golden_snapshot() {
    check("liar_audit.txt", render_liar_audit_snapshot());
}

/// The runtime under timed partitions and a crash/restart window: after
/// the fault heals, every cell must repair to within 5 % of the
/// ideal-schedule equilibrium — the partition-tolerance acceptance
/// bound — and the snapshot pins the loss-attribution ledger per cell.
#[test]
fn partition_heal_matches_golden_snapshot() {
    let (rendered, worst_gap) = render_partition_heal_snapshot();
    assert!(
        worst_gap < 0.05,
        "post-heal equilibrium must sit within 5% of ideal, worst gap {worst_gap}"
    );
    check("partition_heal.txt", rendered);
}

/// Mid-round churn: departures tear down cleanly (voided commits and
/// grants ledgered, membership shrinks by exactly the departed count)
/// and arrivals are admitted and converge.
#[test]
fn midround_churn_matches_golden_snapshot() {
    check("midround_churn.txt", render_midround_churn_snapshot());
}

/// Observed-mode commitment-reveal audit: every flagged peer is provable
/// from frames alone (precision 1), every liar is caught (recall 1), and
/// the honest cell flags nobody — estimation error is never fraud.
#[test]
fn observed_liar_audit_matches_golden_snapshot() {
    let (rendered, scores) = render_observed_audit_snapshot();
    for (precision, recall, honest_flagged) in scores {
        assert_eq!(
            honest_flagged, 0,
            "an honest run must flag nobody: staleness is not fraud"
        );
        assert!(
            precision == 1.0 && recall == 1.0,
            "audit must be exact: precision {precision} recall {recall}"
        );
    }
    check("observed_liar_audit.txt", rendered);
}

/// The 10k-peer churn scenario under routed queries — no per-period
/// `rebuild_index()` anywhere on its path, pinned to the bit. ~15 s in
/// release and far too slow unoptimized, so it is ignored by the debug
/// tier-1 run; CI executes it via `--include-ignored` in the release
/// golden step (and regeneration needs the same flag).
#[test]
#[ignore = "10k peers: release-only, run with --include-ignored"]
fn churn_10k_matches_golden_snapshot() {
    check("churn_10k.txt", render_churn_10k());
}

/// The 100 000-peer churn scenario — the read/write split's proof at
/// scale: sparse tracker walk, snapshot-backed parallel phase 1 and
/// proposal memoization keep a period sub-O(peers) where it matters,
/// and the repaired scost pins at the paper-ideal ≈ 0.1. Release-only
/// via `--include-ignored`, like `churn_10k`.
#[test]
#[ignore = "100k peers: release-only, run with --include-ignored"]
fn churn_100k_matches_golden_snapshot() {
    check("churn_100k.txt", render_churn_100k());
}

/// The 1 000 000-peer churn scenario — the sharded flush/fan-out and
/// the per-(peer, cluster) proposal memo's proof at scale: a repair
/// round after convergence recomputes only the churn-dirtied proposals
/// (everything else is memo-served), the cost-cache flush and the
/// tracker's member walks shard across cores byte-identically, and the
/// traffic probe never materializes observations. The repaired scost
/// must land within 1 % of the paper-ideal ≈ 0.101. Release-only via
/// `--include-ignored`, like the other scale goldens.
#[test]
#[ignore = "1M peers: release-only, run with --include-ignored"]
fn churn_1m_matches_golden_snapshot() {
    let (rendered, final_scost) = render_churn_1m();
    assert!(
        (final_scost / 0.101 - 1.0).abs() < 0.01,
        "million-peer repair must reach the paper-ideal scost, got {final_scost}"
    );
    check("churn_1M.txt", rendered);
}

/// Observed-mode counterpart of `churn_10k`: relocation driven by the
/// folded tracker estimates (decay 0) under exact routing. Pins the
/// acceptance bound end-to-end — the observed run's repaired scost must
/// converge within 5 % of the oracle reference — alongside the full
/// fidelity block. Release-only via `--include-ignored`.
#[test]
#[ignore = "10k peers: release-only, run with --include-ignored"]
fn churn_10k_observed_matches_golden_snapshot() {
    let (rendered, final_gap) = render_churn_10k_observed();
    assert!(
        final_gap.abs() < 0.05,
        "observed repair must converge within 5% of the oracle, gap {final_gap}"
    );
    check("churn_10k_observed.txt", rendered);
}

/// The miniature traffic-engine run — streamed routed queries with
/// churn, batched summary publication and repair over the 40-peer
/// testbed. Fast enough for the debug tier-1 suite, so engine drift
/// is caught long before the release golden step.
#[test]
fn traffic_small_matches_golden_snapshot() {
    check("traffic_small.txt", render_traffic_small());
}

/// Observed-mode counterpart of `traffic_small` (decay 0.25 — the EMA
/// fold): the report's fidelity rows ride the same digest, so observed
/// decision drift is caught in the debug tier on every run.
#[test]
fn traffic_small_observed_matches_golden_snapshot() {
    check(
        "traffic_small_observed.txt",
        render_traffic_small_observed(),
    );
}

/// The `traffic_demo` scenario: ≈1.29 M routed query occurrences over
/// 10 000 peers with diurnal/flash/drift workload shaping, churn every
/// 10 slices and batched summary publication at each repair. Pins the
/// full report — per-window rows, fan-out tail, batching ledger and the
/// engine digest. ~15 s in release and far too slow unoptimized;
/// release-only via `--include-ignored`, like the churn goldens.
#[test]
#[ignore = "1M+ query stream: release-only, run with --include-ignored"]
fn traffic_1m_matches_golden_snapshot() {
    check("traffic_1m.txt", render_traffic_1m());
}
