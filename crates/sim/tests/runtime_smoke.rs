//! Integration smoke for the typed-message runtime on the 40-peer
//! testbed (the successor of the retired `run_async` smoke): under the
//! ideal schedule the runtime must be bit-identical to the sync engine,
//! under a degraded schedule it must stay deterministic and land in the
//! same cost neighbourhood.

use recluster_core::{
    scost_normalized, NetConfig, ProtocolConfig, ProtocolEngine, RuntimeChurn, RuntimeEngine,
    SelfishStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster_types::PeerId;

fn protocol() -> ProtocolConfig {
    ProtocolConfig::builder()
        .epsilon(1e-3)
        .max_rounds(60)
        .memoize(false)
        .build()
}

#[test]
fn runtime_matches_the_sync_engine_on_the_small_testbed() {
    let cfg = ExperimentConfig::small(101);

    // Synchronized reference.
    let mut sync_tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut sync_net = SimNetwork::new();
    let sync_outcome =
        ProtocolEngine::new(SelfishStrategy, protocol()).run(&mut sync_tb.system, &mut sync_net);
    assert!(sync_outcome.converged, "sync engine must converge");

    // Runtime over the degenerate schedule: bit-identical, round for
    // round, move for move.
    let mut rt_tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut rt_net = SimNetwork::new();
    let mut runtime = RuntimeEngine::new(SelfishStrategy, protocol(), NetConfig::ideal());
    let rt_outcome = runtime.run(&mut rt_tb.system, &mut rt_net);
    assert!(rt_outcome.converged);
    assert_eq!(sync_outcome.rounds.len(), rt_outcome.rounds.len());
    for (a, b) in sync_outcome.rounds.iter().zip(&rt_outcome.rounds) {
        assert_eq!(a.scost.to_bits(), b.scost.to_bits(), "round {}", a.round);
        assert_eq!(a.granted, b.granted, "round {}", a.round);
    }
    for i in 0..sync_tb.system.overlay().n_slots() {
        let p = PeerId::from_index(i);
        assert_eq!(
            sync_tb.system.overlay().cluster_of(p),
            rt_tb.system.overlay().cluster_of(p),
        );
    }
    rt_tb.system.overlay().check_invariants().unwrap();
}

#[test]
fn degraded_runtime_is_deterministic_and_lands_nearby() {
    let cfg = ExperimentConfig::small(101);
    let net = NetConfig::degraded(7, 0, 3, 0.05);

    let run = || {
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
        let mut ledger = SimNetwork::new();
        let mut engine = RuntimeEngine::new(SelfishStrategy, protocol(), net);
        let outcome = engine.run(&mut tb.system, &mut ledger);
        tb.system.overlay().check_invariants().unwrap();
        (outcome, scost_normalized(&tb.system), engine.net_stats())
    };

    let (outcome, scost, stats) = run();
    assert!(stats.dropped > 0, "5% drop over a full run must bite");

    // Same cost neighbourhood as the ideal run (both near the
    // paper-ideal for scenario 1): loss delays convergence, it does not
    // wreck the equilibrium.
    let mut ideal_tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut ideal_net = SimNetwork::new();
    RuntimeEngine::new(SelfishStrategy, protocol(), NetConfig::ideal())
        .run(&mut ideal_tb.system, &mut ideal_net);
    let ideal_scost = scost_normalized(&ideal_tb.system);
    assert!(
        (scost - ideal_scost).abs() < 0.15,
        "degraded {scost} vs ideal {ideal_scost}"
    );

    // Deterministic in (config, seed): a replay is bitwise identical.
    let (replay_outcome, replay_scost, replay_stats) = run();
    assert_eq!(outcome.rounds.len(), replay_outcome.rounds.len());
    assert_eq!(scost.to_bits(), replay_scost.to_bits());
    assert_eq!(stats, replay_stats);
    for (a, b) in outcome.rounds.iter().zip(&replay_outcome.rounds) {
        assert_eq!(a.scost.to_bits(), b.scost.to_bits());
        assert_eq!(a.granted, b.granted);
    }
}

/// The loss ledger attributes, it never conflates: frames to a peer
/// that left mid-round are `departed` losses (even on a lossless
/// fabric), and fabric drops are `dropped` (even with nobody leaving).
#[test]
fn loss_ledger_splits_departed_peers_from_fabric_drops() {
    let cfg = ExperimentConfig::small(101);

    // Lossless fabric, one early departure: every loss is a departure.
    let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let departing = tb
        .system
        .overlay()
        .cluster(tb.system.overlay().non_empty_ids()[0])
        .members()
        .first()
        .copied()
        .expect("non-empty cluster");
    let mut ledger = SimNetwork::new();
    let mut engine = RuntimeEngine::new(SelfishStrategy, protocol(), NetConfig::ideal())
        .with_churn(vec![(1, RuntimeChurn::Depart { peer: departing })]);
    engine.run(&mut tb.system, &mut ledger);
    let stats = engine.net_stats();
    assert!(
        stats.departed > 0,
        "frames to the departed peer must be attributed: {stats:?}"
    );
    assert_eq!(stats.dropped, 0, "ideal fabric never drops: {stats:?}");
    assert_eq!(stats.cut, 0);
    assert_eq!(stats.crashed, 0);

    // Lossy fabric, nobody leaves: every loss is a fabric drop.
    let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut ledger = SimNetwork::new();
    let mut engine = RuntimeEngine::new(
        SelfishStrategy,
        protocol(),
        NetConfig::degraded(7, 0, 3, 0.05),
    );
    engine.run(&mut tb.system, &mut ledger);
    let stats = engine.net_stats();
    assert!(stats.dropped > 0, "5% drop must bite: {stats:?}");
    assert_eq!(
        stats.departed, 0,
        "no churn was scheduled, so no departed losses: {stats:?}"
    );
}
