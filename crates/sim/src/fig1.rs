//! Experiment E2 — Figure 1: social and workload cost through
//! progressing rounds (§4.1).
//!
//! "We also measured the progress of the social and workload cost during
//! the different rounds of the relocation protocol. We report the results
//! for the first scenario. […] the workload cost decreases faster in the
//! first rounds when the demanding peers are catered, while the social
//! cost decreases linearly through all rounds."

use recluster_core::{EmptyTargetPolicy, ProtocolConfig};
use recluster_overlay::SimNetwork;

use crate::runner::{run_protocol, sweep_map, Parallelism, StrategyKind};
use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

/// Per-round cost series for one strategy.
#[derive(Debug, Clone)]
pub struct CostSeries {
    /// Strategy label.
    pub strategy: String,
    /// Normalized social cost; index 0 is the initial configuration,
    /// index `r + 1` the state after round `r`.
    pub scost: Vec<f64>,
    /// Normalized workload cost, same indexing.
    pub wcost: Vec<f64>,
    /// Whether the run converged within the budget.
    pub converged: bool,
}

/// Runs Figure 1: the first scenario from singleton clusters, both
/// strategies (as independent parallel cells), recording costs after
/// every round.
pub fn run_fig1(cfg: &ExperimentConfig, max_rounds: usize) -> Vec<CostSeries> {
    run_fig1_with(cfg, max_rounds, Parallelism::Auto)
}

/// Runs Figure 1 under an explicit parallelism mode.
pub fn run_fig1_with(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    parallelism: Parallelism,
) -> Vec<CostSeries> {
    sweep_map(parallelism, &StrategyKind::paper_pair(), |&kind| {
        run_series(cfg, kind, max_rounds)
    })
}

/// Runs the per-round series for one strategy.
pub fn run_series(cfg: &ExperimentConfig, kind: StrategyKind, max_rounds: usize) -> CostSeries {
    let mut testbed = build_system(Scenario::SameCategory, InitialConfig::Singletons, cfg);
    let initial_scost = recluster_core::scost_normalized(&testbed.system);
    let initial_wcost = recluster_core::wcost_normalized(&testbed.system);
    let mut net = SimNetwork::new();
    let protocol = ProtocolConfig::builder()
        .epsilon(1e-3)
        .max_rounds(max_rounds)
        .empty_targets(EmptyTargetPolicy::Always)
        .use_locks(true)
        .build();
    let outcome = run_protocol(&mut testbed.system, kind, protocol, &mut net);
    let mut scost = vec![initial_scost];
    let mut wcost = vec![initial_wcost];
    for round in &outcome.rounds {
        scost.push(round.scost);
        wcost.push(round.wcost);
    }
    CostSeries {
        strategy: kind.label(),
        scost,
        wcost,
        converged: outcome.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_decrease_from_initial_to_final() {
        let series = run_series(&ExperimentConfig::small(31), StrategyKind::Selfish, 60);
        assert!(series.converged);
        let first = series.scost[0];
        let last = *series.scost.last().unwrap();
        assert!(
            last < first * 0.7,
            "social cost must drop substantially: {first} -> {last}"
        );
        let wfirst = series.wcost[0];
        let wlast = *series.wcost.last().unwrap();
        assert!(wlast < wfirst * 0.7);
    }

    #[test]
    fn series_lengths_match_rounds_plus_initial() {
        let series = run_series(&ExperimentConfig::small(32), StrategyKind::Selfish, 60);
        assert_eq!(series.scost.len(), series.wcost.len());
        assert!(series.scost.len() >= 2);
    }

    #[test]
    fn demanding_peers_served_first_under_zipf() {
        // The paper's observation: WCost (which over-weights demanding
        // peers) falls faster early. Compare the fraction of total
        // improvement achieved by the midpoint round.
        let series = run_series(&ExperimentConfig::small(33), StrategyKind::Selfish, 60);
        let mid = series.scost.len() / 2;
        let s_drop_total = series.scost[0] - series.scost.last().unwrap();
        let w_drop_total = series.wcost[0] - series.wcost.last().unwrap();
        if s_drop_total > 1e-6 && w_drop_total > 1e-6 {
            let s_frac = (series.scost[0] - series.scost[mid]) / s_drop_total;
            let w_frac = (series.wcost[0] - series.wcost[mid]) / w_drop_total;
            // The effect is clear at paper scale (see `--bin fig1`);
            // at the miniature scale it is noisy, so allow slack.
            assert!(
                w_frac >= s_frac - 0.35,
                "workload cost should lead the drop: w {w_frac} vs s {s_frac}"
            );
        }
    }

    #[test]
    fn both_strategies_produce_series() {
        let all = run_fig1(&ExperimentConfig::small(34), 40);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].strategy, "selfish");
        assert_eq!(all[1].strategy, "altruistic");
    }
}
