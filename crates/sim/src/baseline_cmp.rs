//! Baseline comparison (our extension, quantifying the paper's §1
//! motivation).
//!
//! From the same degraded starting overlay, repair the clustering with
//! (a) the paper's local protocol (selfish / altruistic), (b) global
//! k-means re-clustering from scratch, (c) random relocation, and (d) no
//! maintenance — recording final quality *and* communication cost. The
//! paper's argument is that (a) approaches (b)'s quality at a fraction of
//! its global-knowledge traffic.

use recluster_baselines::{recluster_kmeans, KMeansConfig};
use recluster_core::{EmptyTargetPolicy, ProtocolConfig};
use recluster_overlay::SimNetwork;

use crate::runner::{run_protocol, StrategyKind};
use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Maintenance scheme.
    pub name: String,
    /// Final normalized social cost.
    pub scost: f64,
    /// Final normalized workload cost.
    pub wcost: f64,
    /// Non-empty clusters at the end.
    pub clusters: usize,
    /// Total messages spent by the scheme.
    pub messages: u64,
    /// Total bytes spent by the scheme.
    pub bytes: u64,
}

/// Runs the comparison starting from a random `m = M` scenario-1
/// configuration.
pub fn run_baseline_comparison(cfg: &ExperimentConfig, max_rounds: usize) -> Vec<BaselineRow> {
    let mut rows = Vec::new();

    // Local protocol runs.
    for kind in [
        StrategyKind::Selfish,
        StrategyKind::Altruistic,
        StrategyKind::Random(0.3, cfg.seed),
        StrategyKind::NoMaintenance,
    ] {
        let mut testbed = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut net = SimNetwork::new();
        let protocol = ProtocolConfig::builder()
            .epsilon(1e-3)
            .max_rounds(max_rounds)
            .empty_targets(EmptyTargetPolicy::Always)
            .use_locks(true)
            .build();
        run_protocol(&mut testbed.system, kind, protocol, &mut net);
        rows.push(BaselineRow {
            name: kind.label(),
            scost: recluster_core::scost_normalized(&testbed.system),
            wcost: recluster_core::wcost_normalized(&testbed.system),
            clusters: testbed.system.overlay().non_empty_clusters(),
            messages: net.total_messages(),
            bytes: net.total_bytes(),
        });
    }

    // Global re-clustering from scratch.
    let mut testbed = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
    let mut net = SimNetwork::new();
    recluster_kmeans(
        &mut testbed.system,
        KMeansConfig {
            k: cfg.n_categories,
            max_iters: 50,
            seed: cfg.seed,
        },
        &mut net,
    );
    rows.push(BaselineRow {
        name: "kmeans-global".into(),
        scost: recluster_core::scost_normalized(&testbed.system),
        wcost: recluster_core::wcost_normalized(&testbed.system),
        clusters: testbed.system.overlay().non_empty_clusters(),
        messages: net.total_messages(),
        bytes: net.total_bytes(),
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_all_rows() {
        let rows = run_baseline_comparison(&ExperimentConfig::small(61), 40);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"selfish"));
        assert!(names.contains(&"altruistic"));
        assert!(names.contains(&"none"));
        assert!(names.contains(&"kmeans-global"));
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn selfish_beats_no_maintenance() {
        let rows = run_baseline_comparison(&ExperimentConfig::small(62), 60);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(
            get("selfish").scost < get("none").scost,
            "selfish {} must beat none {}",
            get("selfish").scost,
            get("none").scost
        );
    }

    #[test]
    fn selfish_matches_kmeans_quality_ballpark() {
        let rows = run_baseline_comparison(&ExperimentConfig::small(63), 60);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        let selfish = get("selfish").scost;
        let kmeans = get("kmeans-global").scost;
        assert!(
            selfish <= kmeans + 0.15,
            "local repair ({selfish}) should approach global re-clustering ({kmeans})"
        );
    }

    #[test]
    fn selfish_beats_random_walk() {
        let rows = run_baseline_comparison(&ExperimentConfig::small(64), 60);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(get("selfish").scost < get(&StrategyKind::Random(0.3, 64).label()).scost);
    }

    #[test]
    fn every_active_scheme_spends_messages() {
        let rows = run_baseline_comparison(&ExperimentConfig::small(65), 40);
        for row in &rows {
            if row.name != "none" {
                assert!(row.messages > 0, "{} spent no messages", row.name);
            }
        }
    }
}
