//! Churn experiment (the §1 motivation the paper defers: "peers that
//! join or leave the system constantly … may render the original
//! clustered overlay inappropriate").
//!
//! Starting from the converged scenario-1 overlay, each *period* applies
//! a batch of churn events — departures of random peers and arrivals of
//! fresh peers carrying hold-out articles of a random category, assigned
//! to a random cluster (a newcomer does not know where it belongs) —
//! then optionally runs the maintenance protocol. The social cost with
//! and without maintenance quantifies how well the strategies "cope with
//! the changes in the overlay configuration".
//!
//! Every churn event flows through the `System` hooks, which
//! delta-maintain the recall index (masses *and* content totals), the
//! routing summaries and the cost cache — a period costs O(events +
//! affected peers), never a full `rebuild_index()`, which is what makes
//! the [`churn_10k_config`] scale (10 000+ peers under routed queries)
//! tractable.
//!
//! # Examples
//!
//! One maintained period on the miniature testbed:
//!
//! ```
//! use recluster_sim::churn::{run_churn, ChurnConfig};
//! use recluster_sim::scenario::ExperimentConfig;
//!
//! let churn = ChurnConfig {
//!     periods: 1,
//!     leaves_per_period: 1,
//!     joins_per_period: 1,
//!     maintenance: None,
//!     ..ChurnConfig::default()
//! };
//! let records = run_churn(&ExperimentConfig::small(7), &churn);
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].peers, 40, "one leave + one join is net zero");
//! assert!(records[0].query_messages > 0);
//! ```

use rand::Rng;
use recluster_core::{
    simulate_period_routed, DecisionSource, EmptyTargetPolicy, ObservedStats, ProtocolConfig,
};
use recluster_corpus::{QueryBias, QuerySampler, WorkloadBuilder};
use recluster_overlay::churn::{random_leave, ChurnDelta, ChurnEvent};
use recluster_overlay::{RoutingMode, SimNetwork, SummaryMode};
use recluster_types::{derive_seed, seeded_rng, Workload};

use crate::runner::{
    decision_agreement, measure_query_traffic, run_protocol, run_protocol_observed, StrategyKind,
};
use crate::scenario::{ideal_scenario1_system, ExperimentConfig, TestBed};

/// One period's record.
#[derive(Debug, Clone)]
pub struct ChurnPeriod {
    /// Period index.
    pub period: usize,
    /// Normalized social cost right after the churn batch.
    pub scost_after_churn: f64,
    /// Normalized social cost after maintenance (equals
    /// `scost_after_churn` when maintenance is off).
    pub scost_after_repair: f64,
    /// Live peers at the end of the period.
    pub peers: usize,
    /// Relocations performed by maintenance.
    pub moves: usize,
    /// Messages the period's query workload cost under the configured
    /// routing mode (forwards + result returns).
    pub query_messages: u64,
    /// Forward messages per query occurrence under the configured mode.
    pub forwards_per_query: f64,
    /// Fraction of flood results the routing missed (nonzero only for
    /// lossy summaries).
    pub false_negative_rate: f64,
}

/// Configuration of the churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Periods to simulate.
    pub periods: usize,
    /// Departures per period.
    pub leaves_per_period: usize,
    /// Arrivals per period.
    pub joins_per_period: usize,
    /// Maintenance strategy (`None` = no maintenance).
    pub maintenance: Option<StrategyKind>,
    /// Round budget per maintenance run.
    pub max_rounds: usize,
    /// How each period's query workload is forwarded.
    pub routing: RoutingMode,
    /// Where maintenance decisions read their statistics from. Under
    /// [`DecisionSource::Observed`] each period's query workload runs
    /// *before* repair (that is what the peers observe) and the
    /// maintenance strategy consumes the folded tracker estimates
    /// instead of oracle state.
    pub decisions: DecisionSource,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            periods: 10,
            leaves_per_period: 2,
            joins_per_period: 2,
            maintenance: Some(StrategyKind::Selfish),
            max_rounds: 60,
            routing: RoutingMode::Flood,
            decisions: DecisionSource::Oracle,
        }
    }
}

/// The `churn_10k` scenario: 10 000+ peers from the ideal scenario-1
/// clustering, 25 leaves + 25 joins per period, selfish maintenance,
/// queries forwarded under **exact cluster-directed routing**. Feasible
/// only because every structure is delta-maintained: a period never
/// pays a full `rebuild_index()` (O(queries × peers), ~10⁷ result
/// evaluations at this scale) and the routed tracker never floods.
/// Deterministic in `seed` — the golden suite pins its digest and the
/// `churn_scale` bench records its per-period cost metric.
pub fn churn_10k_config(seed: u64) -> (ExperimentConfig, ChurnConfig) {
    (
        ExperimentConfig::large(seed),
        ChurnConfig {
            periods: 4,
            leaves_per_period: 25,
            joins_per_period: 25,
            maintenance: Some(StrategyKind::Selfish),
            max_rounds: 6,
            routing: RoutingMode::Routed(SummaryMode::Exact),
            decisions: DecisionSource::Oracle,
        },
    )
}

/// [`churn_10k_config`] with relocation driven by *observed* statistics
/// (decay 0: each repair acts on exactly the latest period's
/// observations). Under exact routing the observations are lossless, so
/// the repaired cost converges to within a few percent of the oracle
/// run — the `churn_10k_observed` golden pins both numbers, and the
/// fidelity metrics feed `bench-trend`.
pub fn churn_10k_observed_config(seed: u64) -> (ExperimentConfig, ChurnConfig) {
    let (cfg, mut churn) = churn_10k_config(seed);
    churn.decisions = DecisionSource::Observed { decay: 0.0 };
    (cfg, churn)
}

/// The `churn_100k` scenario: 100 000 peers from the ideal scenario-1
/// clustering, 50 leaves + 50 joins per period, selfish maintenance
/// under exact cluster-directed routing. One order of magnitude past
/// [`churn_10k_config`] — the scale the read/write split exists for:
///
/// * the tracker's period walk evaluates each *distinct* query once
///   (vocabulary-bounded) via the query → holder lists instead of
///   walking 100 000 workloads;
/// * phase 1 of every maintenance round runs against a [`SystemView`]
///   snapshot (one cache flush, then pure reads, sharded across cores)
///   and re-emits memoized proposals for peers whose epoch stamps did
///   not move.
///
/// Deterministic in `seed`; the golden suite pins its digest (repaired
/// scost sits at the paper-ideal ≈ 0.1) and `round_scale` gates the
/// protocol metrics.
///
/// [`SystemView`]: recluster_core::SystemView
pub fn churn_100k_config(seed: u64) -> (ExperimentConfig, ChurnConfig) {
    (
        ExperimentConfig::huge(seed),
        ChurnConfig {
            periods: 3,
            leaves_per_period: 50,
            joins_per_period: 50,
            maintenance: Some(StrategyKind::Selfish),
            max_rounds: 6,
            routing: RoutingMode::Routed(SummaryMode::Exact),
            decisions: DecisionSource::Oracle,
        },
    )
}

/// The `churn_1M` scenario: 1 000 000 peers from the ideal scenario-1
/// clustering, 100 leaves + 100 joins per period, selfish maintenance
/// under exact cluster-directed routing. Another order of magnitude
/// past [`churn_100k_config`] — the scale the sharded flush/fan-out and
/// the per-(peer, cluster) proposal memo exist for:
///
/// * after the first converged repair, a quiet round recomputes only
///   the O(churned) peers whose epoch stamps moved — every other
///   proposal is re-emitted from the memo through the fine-grained
///   changed-cluster gate;
/// * the cost-cache flush after a churn batch and the tracker's
///   per-period member walks shard across cores via
///   [`map_ranges`](recluster_core::shard::map_ranges), byte-identical
///   to sequential;
/// * the oracle traffic probe runs the observation-free period walk, so
///   no per-peer observation records are ever materialized.
///
/// Deterministic in `seed`; the golden suite pins its digest (release
/// builds only — see `goldens/churn_1M.txt`) and the `churn_scale`
/// bench gates its repair time and peak RSS.
pub fn churn_1m_config(seed: u64) -> (ExperimentConfig, ChurnConfig) {
    (
        ExperimentConfig::million(seed),
        ChurnConfig {
            periods: 2,
            leaves_per_period: 100,
            joins_per_period: 100,
            maintenance: Some(StrategyKind::Selfish),
            max_rounds: 6,
            routing: RoutingMode::Routed(SummaryMode::Exact),
            decisions: DecisionSource::Oracle,
        },
    )
}

/// One period's decision-fidelity measurements (observed mode only).
#[derive(Debug, Clone)]
pub struct FidelityPeriod {
    /// Period index.
    pub period: usize,
    /// Fraction of live peers whose observed proposal named the same
    /// destination as the oracle strategy's proposal on the pre-repair
    /// state (both proposing nothing counts as agreement).
    pub agreement_rate: f64,
    /// Normalized social cost after the *observed* repair.
    pub scost_observed_repair: f64,
    /// Normalized social cost a reference *oracle* repair reaches from
    /// the same pre-repair state.
    pub scost_oracle_repair: f64,
}

impl FidelityPeriod {
    /// Relative cost excess of the observed repair over the oracle one
    /// (`0` = identical quality; positive = observed repairs worse).
    pub fn scost_gap(&self) -> f64 {
        if self.scost_oracle_repair == 0.0 {
            0.0
        } else {
            self.scost_observed_repair / self.scost_oracle_repair - 1.0
        }
    }
}

/// Decision-fidelity report of an observed-mode churn run: how closely
/// the observed relocation pipeline tracks the oracle it replaces.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// One entry per maintained period.
    pub periods: Vec<FidelityPeriod>,
}

impl FidelityReport {
    /// Mean per-period agreement rate.
    pub fn mean_agreement(&self) -> f64 {
        if self.periods.is_empty() {
            return 1.0;
        }
        self.periods.iter().map(|p| p.agreement_rate).sum::<f64>() / self.periods.len() as f64
    }

    /// The scost gap at convergence — the last period's relative excess.
    pub fn final_scost_gap(&self) -> f64 {
        self.periods.last().map_or(0.0, |p| p.scost_gap())
    }
}

/// Runs the churn experiment. Deterministic in `cfg.seed`.
pub fn run_churn(cfg: &ExperimentConfig, churn: &ChurnConfig) -> Vec<ChurnPeriod> {
    run_churn_with_fidelity(cfg, churn).0
}

/// [`run_churn`] that also returns the decision-fidelity report —
/// `Some` exactly when `churn.decisions` is observed. Oracle runs take
/// the historical code path (post-repair traffic probe, no reference
/// repair) and produce byte-identical records to earlier releases.
pub fn run_churn_with_fidelity(
    cfg: &ExperimentConfig,
    churn: &ChurnConfig,
) -> (Vec<ChurnPeriod>, Option<FidelityReport>) {
    let mut testbed = ideal_scenario1_system(cfg);
    let mut rng = seeded_rng(derive_seed(cfg.seed, 0xC4A9));
    let mut net = SimNetwork::new();
    let mut records = Vec::with_capacity(churn.periods);
    let demand_per_peer = (cfg.total_queries / cfg.n_peers as u64).max(1);
    // Per-category query samplers for newcomers, built lazily once —
    // sampler construction walks the category's visible docs, far too
    // much to repeat per join at the 100k-peer scale.
    let mut samplers: Vec<Option<QuerySampler>> = vec![None; testbed.holdout.len()];
    let mut stats = match churn.decisions {
        DecisionSource::Observed { decay } => Some(ObservedStats::new(decay)),
        DecisionSource::Oracle => None,
    };
    let mut fidelity: Vec<FidelityPeriod> = Vec::new();

    for period in 0..churn.periods {
        apply_churn_batch(
            &mut testbed,
            churn,
            demand_per_peer,
            &mut samplers,
            &mut rng,
            &mut net,
        );
        let scost_after_churn = recluster_core::scost_normalized(&testbed.system);
        let protocol = ProtocolConfig::builder()
            .epsilon(1e-3)
            .max_rounds(churn.max_rounds)
            .empty_targets(EmptyTargetPolicy::Always)
            .use_locks(true)
            .build();

        let mut moves = 0;
        let (query_net, routing) = if let Some(stats) = stats.as_mut() {
            // Observed mode: the period's queries run *first* — they are
            // both the traffic being measured and the only statistics
            // the strategies get to see — then repair acts on the
            // folded estimates.
            let mut query_net = SimNetwork::new();
            let (observations, routing) =
                simulate_period_routed(&testbed.system, &mut query_net, churn.routing);
            stats.absorb(&observations);
            if let Some(kind) = churn.maintenance {
                let agreement_rate = decision_agreement(&mut testbed.system, kind, stats, true);
                // Reference oracle repair from the same pre-repair state,
                // on a fork whose traffic goes to a scratch ledger.
                let mut reference = testbed.system.clone();
                let mut scratch = SimNetwork::new();
                run_protocol(&mut reference, kind, protocol, &mut scratch);
                let outcome =
                    run_protocol_observed(&mut testbed.system, kind, stats, protocol, &mut net);
                moves = outcome.total_moves();
                fidelity.push(FidelityPeriod {
                    period,
                    agreement_rate,
                    scost_observed_repair: recluster_core::scost_normalized(&testbed.system),
                    scost_oracle_repair: recluster_core::scost_normalized(&reference),
                });
            }
            (query_net, routing)
        } else {
            if let Some(kind) = churn.maintenance {
                let outcome = run_protocol(&mut testbed.system, kind, protocol, &mut net);
                moves = outcome.total_moves();
            }
            // The period's query workload, forwarded per the configured
            // routing mode over the (repaired) overlay, on its own
            // ledger so the per-period record isolates query traffic
            // from maintenance traffic.
            measure_query_traffic(&testbed.system, churn.routing)
        };

        records.push(ChurnPeriod {
            period,
            scost_after_churn,
            scost_after_repair: recluster_core::scost_normalized(&testbed.system),
            peers: testbed.system.overlay().n_peers(),
            moves,
            query_messages: query_net.total_messages(),
            forwards_per_query: routing.forwards_per_query(),
            false_negative_rate: routing.false_negative_rate(),
        });
    }
    let report = stats.map(|_| FidelityReport { periods: fidelity });
    (records, report)
}

fn apply_churn_batch(
    testbed: &mut TestBed,
    churn: &ChurnConfig,
    demand_per_peer: u64,
    samplers: &mut [Option<QuerySampler>],
    rng: &mut rand::rngs::StdRng,
    net: &mut SimNetwork,
) {
    // Departures: the event flows through the System churn hook, which
    // delta-updates membership masses, retires the leaver's documents
    // from the recall totals, and invalidates exactly the affected
    // cached cost terms — no rebuild, mid-batch state is always exact.
    for _ in 0..churn.leaves_per_period {
        if let Some(event) = random_leave(testbed.system.overlay(), rng) {
            if let Some(ChurnDelta::Left { peer, .. }) =
                testbed.system.apply_churn_event(net, event)
            {
                testbed.system.set_workload(peer, Workload::new());
            }
        }
    }

    // Arrivals: a fresh peer with hold-out articles of a random category,
    // querying that category, dropped into a random non-empty cluster.
    let n_categories = testbed.holdout.len();
    for _ in 0..churn.joins_per_period {
        let cat = rng.gen_range(0..n_categories);
        let pool = &testbed.holdout[cat];
        let docs: Vec<_> = (0..5)
            .map(|_| pool[rng.gen_range(0..pool.len())].clone())
            .collect();
        let target = {
            let non_empty = testbed.system.overlay().non_empty_ids();
            non_empty[rng.gen_range(0..non_empty.len())]
        };
        // The join hook grows overlay/store/workloads in lockstep,
        // delta-updates membership, and indexes the newcomer's content
        // immediately; `set_workload` registers any genuinely new
        // queries with fresh result columns.
        let delta = testbed
            .system
            .apply_churn_event(
                net,
                ChurnEvent::Join {
                    cluster: target,
                    docs,
                },
            )
            .expect("join events always apply");
        let mut wrng = seeded_rng(derive_seed(rng.gen(), 0x10));
        let builder = WorkloadBuilder::new(QueryBias::Uniform)
            .with_doc_limit(testbed.distributable_per_category);
        let sampler = samplers[cat].get_or_insert_with(|| builder.sampler(&testbed.corpus, cat));
        let workload = builder.build_with(sampler, demand_per_peer, &mut wrng);
        testbed.system.set_workload(delta.peer(), workload);
        testbed.peer_category.push(cat);
        testbed.query_category.push(Some(cat));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(81)
    }

    #[test]
    fn churn_degrades_and_maintenance_repairs() {
        let churn = ChurnConfig {
            periods: 6,
            leaves_per_period: 1,
            joins_per_period: 1,
            maintenance: Some(StrategyKind::Selfish),
            max_rounds: 40,
            routing: RoutingMode::Flood,
            ..ChurnConfig::default()
        };
        let with = run_churn(&cfg(), &churn);
        let without = run_churn(
            &cfg(),
            &ChurnConfig {
                maintenance: None,
                ..churn
            },
        );
        let avg = |rows: &[ChurnPeriod]| {
            rows.iter().map(|r| r.scost_after_repair).sum::<f64>() / rows.len() as f64
        };
        assert!(
            avg(&with) < avg(&without),
            "maintenance must help under churn: {} vs {}",
            avg(&with),
            avg(&without)
        );
    }

    #[test]
    fn repair_never_exceeds_post_churn_cost_much() {
        let rows = run_churn(&cfg(), &ChurnConfig::default());
        for r in &rows {
            assert!(
                r.scost_after_repair <= r.scost_after_churn + 0.05,
                "period {}: {} -> {}",
                r.period,
                r.scost_after_churn,
                r.scost_after_repair
            );
        }
    }

    #[test]
    fn peer_count_tracks_joins_and_leaves() {
        let churn = ChurnConfig {
            periods: 3,
            leaves_per_period: 2,
            joins_per_period: 3,
            maintenance: None,
            max_rounds: 10,
            routing: RoutingMode::Flood,
            ..ChurnConfig::default()
        };
        let rows = run_churn(&cfg(), &churn);
        // Net +1 peer per period from 40.
        assert_eq!(rows.last().unwrap().peers, 40 + 3);
    }

    #[test]
    fn overlay_invariants_survive_churn() {
        let rows = run_churn(&cfg(), &ChurnConfig::default());
        assert_eq!(rows.len(), 10);
        // Determinism.
        let again = run_churn(&cfg(), &ChurnConfig::default());
        for (a, b) in rows.iter().zip(again.iter()) {
            assert_eq!(a.peers, b.peers);
            assert!((a.scost_after_repair - b.scost_after_repair).abs() < 1e-12);
            assert_eq!(a.query_messages, b.query_messages);
        }
    }

    #[test]
    fn oracle_runs_report_no_fidelity() {
        let (rows, fidelity) = run_churn_with_fidelity(&cfg(), &ChurnConfig::default());
        assert_eq!(rows.len(), 10);
        assert!(fidelity.is_none());
    }

    #[test]
    fn observed_churn_tracks_the_oracle_under_flood() {
        let churn = ChurnConfig {
            periods: 4,
            leaves_per_period: 1,
            joins_per_period: 1,
            decisions: DecisionSource::Observed { decay: 0.0 },
            ..ChurnConfig::default()
        };
        let (rows, fidelity) = run_churn_with_fidelity(&cfg(), &churn);
        let fidelity = fidelity.expect("observed runs report fidelity");
        assert_eq!(fidelity.periods.len(), rows.len());
        // Flood observations are lossless and decay 0 folds nothing old
        // in, so the observed selfish choice names the oracle's cluster
        // for (nearly) every peer and the repaired costs stay close.
        assert!(
            fidelity.mean_agreement() > 0.95,
            "agreement {}",
            fidelity.mean_agreement()
        );
        assert!(
            fidelity.final_scost_gap().abs() < 0.05,
            "gap {}",
            fidelity.final_scost_gap()
        );
        // Determinism over the observed path.
        let (again, fid2) = run_churn_with_fidelity(&cfg(), &churn);
        for (a, b) in rows.iter().zip(again.iter()) {
            assert_eq!(
                a.scost_after_repair.to_bits(),
                b.scost_after_repair.to_bits()
            );
            assert_eq!(a.query_messages, b.query_messages);
            assert_eq!(a.moves, b.moves);
        }
        for (a, b) in fidelity.periods.iter().zip(fid2.unwrap().periods.iter()) {
            assert_eq!(a.agreement_rate.to_bits(), b.agreement_rate.to_bits());
        }
    }

    #[test]
    fn lossy_routing_degrades_observed_fidelity() {
        let churn = ChurnConfig {
            periods: 3,
            leaves_per_period: 1,
            joins_per_period: 1,
            decisions: DecisionSource::Observed { decay: 0.5 },
            ..ChurnConfig::default()
        };
        let exact = ChurnConfig {
            routing: RoutingMode::Routed(SummaryMode::Exact),
            ..churn.clone()
        };
        let lossy = ChurnConfig {
            routing: RoutingMode::Routed(SummaryMode::TopK(1)),
            ..churn
        };
        let (_, exact_fid) = run_churn_with_fidelity(&cfg(), &exact);
        let (lossy_rows, lossy_fid) = run_churn_with_fidelity(&cfg(), &lossy);
        let exact_fid = exact_fid.unwrap();
        let lossy_fid = lossy_fid.unwrap();
        // Top-1 summaries drop results, so the observed estimates — and
        // with them relocation quality — degrade relative to lossless
        // exact routing. The run must still be deterministic.
        assert!(
            lossy_fid.mean_agreement() <= exact_fid.mean_agreement() + 1e-12,
            "lossy {} vs exact {}",
            lossy_fid.mean_agreement(),
            exact_fid.mean_agreement()
        );
        let (again, _) = run_churn_with_fidelity(&cfg(), &lossy);
        for (a, b) in lossy_rows.iter().zip(again.iter()) {
            assert_eq!(
                a.scost_after_repair.to_bits(),
                b.scost_after_repair.to_bits()
            );
            assert_eq!(a.query_messages, b.query_messages);
        }
    }

    #[test]
    fn routed_churn_repairs_identically_with_less_traffic() {
        use recluster_overlay::SummaryMode;
        let flood = run_churn(&cfg(), &ChurnConfig::default());
        let routed = run_churn(
            &cfg(),
            &ChurnConfig {
                routing: RoutingMode::Routed(SummaryMode::Exact),
                ..ChurnConfig::default()
            },
        );
        for (f, r) in flood.iter().zip(routed.iter()) {
            // Routing changes what queries *cost*, never what the
            // protocol decides: costs and moves are identical.
            assert_eq!(
                f.scost_after_repair.to_bits(),
                r.scost_after_repair.to_bits()
            );
            assert_eq!(f.moves, r.moves);
            assert_eq!(f.peers, r.peers);
            assert!(
                r.query_messages < f.query_messages,
                "period {}: routed {} >= flood {}",
                f.period,
                r.query_messages,
                f.query_messages
            );
            assert_eq!(r.false_negative_rate, 0.0);
            assert!(r.forwards_per_query < f.forwards_per_query);
        }
    }
}
