//! Plain-text table and series rendering (no external dependencies).

/// Renders an aligned text table. The first row is the header.
///
/// # Examples
/// ```
/// use recluster_sim::report::render_table;
/// let s = render_table(
///     &["a", "b"],
///     &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
/// );
/// assert!(s.contains("a"));
/// assert!(s.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (no quoting — experiment output contains no
/// commas).
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with three decimals (the paper's table precision is
/// two; three keeps small differences visible).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an optional round count, `-` when absent (as Table 1 does for
/// the non-converging scenario).
pub fn rounds_cell(rounds: Option<usize>) -> String {
    rounds.map_or_else(|| "-".into(), |r| r.to_string())
}

/// Renders an ASCII sparkline-style series: `label: v0 v1 v2 …`.
pub fn render_series(label: &str, values: &[f64]) -> String {
    let vals: Vec<String> = values.iter().map(|v| f3(*v)).collect();
    format!("{label}: {}", vals.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(&["x", "long-header"], &[vec!["123456".into(), "1".into()]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equally wide.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn f3_rounds() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(1.0), "1.000");
    }

    #[test]
    fn rounds_cell_uses_dash_for_none() {
        assert_eq!(rounds_cell(None), "-");
        assert_eq!(rounds_cell(Some(17)), "17");
    }

    #[test]
    fn series_renders_all_points() {
        let s = render_series("scost", &[0.5, 0.25]);
        assert_eq!(s, "scost: 0.500 0.250");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let _ = render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
