//! Experiment E5 — Figure 4: the influence of `α` (§4.2).
//!
//! "We consider the case of peers following the selfish strategy and
//! evaluate the individual cost of a single peer when its query workload
//! gradually changes over time. As the value of α increases, the
//! membership cost becomes more expensive, thus a larger portion of the
//! query workload needs to change for a peer to benefit from joining a
//! cluster with more members."

use recluster_core::{best_response, pcost, GameConfig};
use recluster_corpus::{QueryBias, WorkloadBuilder};
use recluster_types::{derive_seed, seeded_rng, PeerId};

use crate::runner::{sweep_map, Parallelism};
use crate::scenario::{ideal_scenario1_system, ExperimentConfig};

/// The individual-cost curve of the probe peer for one `α`.
#[derive(Debug, Clone)]
pub struct AlphaCurve {
    /// The `α` value.
    pub alpha: f64,
    /// `(workload-change fraction, individual cost after playing the
    /// selfish best response)` points.
    pub points: Vec<(f64, f64)>,
    /// The smallest swept fraction at which the peer relocates
    /// (`None` if it never does).
    pub relocation_threshold: Option<f64>,
}

/// Runs Figure 4: sweeps the probe peer's workload-change fraction for
/// each `α` (one parallel cell per `α`), recording its
/// post-best-response individual cost.
pub fn run_fig4(cfg: &ExperimentConfig, alphas: &[f64], fractions: &[f64]) -> Vec<AlphaCurve> {
    run_fig4_with(cfg, alphas, fractions, Parallelism::Auto)
}

/// Runs Figure 4 under an explicit parallelism mode.
pub fn run_fig4_with(
    cfg: &ExperimentConfig,
    alphas: &[f64],
    fractions: &[f64],
    parallelism: Parallelism,
) -> Vec<AlphaCurve> {
    sweep_map(parallelism, alphas, |&alpha| {
        run_curve(cfg, alpha, fractions)
    })
}

/// Runs the sweep for one `α`.
pub fn run_curve(cfg: &ExperimentConfig, alpha: f64, fractions: &[f64]) -> AlphaCurve {
    let mut points = Vec::with_capacity(fractions.len());
    let mut relocation_threshold = None;
    for &fraction in fractions {
        let (cost, moved) = probe_cost(cfg, alpha, fraction);
        if moved && relocation_threshold.is_none() {
            relocation_threshold = Some(fraction);
        }
        points.push((fraction, cost));
    }
    AlphaCurve {
        alpha,
        points,
        relocation_threshold,
    }
}

/// Builds the ideal scenario-1 testbed with the destination enlarged
/// (clusters 2 and 3 folded into cluster 1, so relocating means
/// "joining a cluster with more members" as Fig. 4 discusses), shifts
/// `fraction` of the probe peer's workload to the neighbor category,
/// sets `α`, and returns the probe's individual cost after it plays its
/// selfish best response (over non-empty clusters — the §4.2 setting)
/// plus whether it moved.
fn probe_cost(cfg: &ExperimentConfig, alpha: f64, fraction: f64) -> (f64, bool) {
    assert!((0.0..=1.0).contains(&fraction));
    let mut testbed = ideal_scenario1_system(cfg);
    let mut game = testbed.system.config();
    game = GameConfig { alpha, ..game };
    testbed.system.set_config(game);

    // Enlarge the destination: the α-dependence of the relocation
    // threshold only shows when the destination is substantially larger
    // than the probe's home cluster (the membership delta scales with
    // the size difference).
    let big = recluster_types::ClusterId::from_index(crate::fig23::NEW_CATEGORY);
    let mut merges = Vec::new();
    for donor in [2usize, 3] {
        let cid = recluster_types::ClusterId::from_index(donor);
        for &m in testbed.system.overlay().cluster(cid).members() {
            merges.push((m, big));
        }
    }
    testbed.system.move_peers(&merges);

    let probe: PeerId = testbed
        .system
        .overlay()
        .cluster(crate::fig23::C_CUR)
        .members()[0];
    let new_category = crate::fig23::NEW_CATEGORY;

    // Blend the probe's workload: keep (1-f), spend f on one provider of
    // the new category.
    let old = testbed.system.workloads()[probe.index()].clone();
    let total = old.total();
    let moved_demand = (fraction * total as f64).round() as u64;
    let mut blended = old.apportion(total - moved_demand);
    let mut rng = seeded_rng(derive_seed(cfg.seed, 0x4A + (fraction * 100.0) as u64));
    let fresh = WorkloadBuilder::new(QueryBias::Uniform)
        .with_doc_limit(testbed.distributable_per_category)
        .build(&testbed.corpus, new_category, moved_demand, &mut rng);
    blended.merge(&fresh);
    testbed.system.set_workload(probe, blended);

    let br = best_response(&testbed.system, probe, false);
    let moved = br.gain > 0.0;
    let cost = pcost(&testbed.system, probe, br.cluster);
    (cost, moved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(51)
    }

    #[test]
    fn zero_alpha_relocates_early() {
        let curve = run_curve(&cfg(), 0.0, &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        // With free membership the peer relocates as soon as the remote
        // recall outweighs what its old cluster still offers (its own
        // category's results stay behind, so the break-even is near 1/2
        // rather than 0).
        let threshold = curve.relocation_threshold.expect("α=0 must relocate");
        assert!(threshold <= 0.7, "threshold {threshold} too late for α=0");
    }

    #[test]
    fn larger_alpha_needs_larger_change() {
        let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let curves = run_fig4(&cfg(), &[0.0, 1.0, 2.0], &fractions);
        let thresholds: Vec<f64> = curves
            .iter()
            .map(|c| c.relocation_threshold.unwrap_or(2.0))
            .collect();
        assert!(
            thresholds[0] <= thresholds[1] && thresholds[1] <= thresholds[2],
            "thresholds must be non-decreasing in α: {thresholds:?}"
        );
    }

    #[test]
    fn cost_rises_before_relocation() {
        let curve = run_curve(&cfg(), 2.0, &[0.0, 0.2, 0.4]);
        // While the peer stays, its recall loss (and thus cost) grows
        // with the changed fraction.
        assert!(curve.points[1].1 >= curve.points[0].1 - 1e-9);
    }

    #[test]
    fn higher_alpha_means_higher_cost_everywhere() {
        let fractions = [0.0, 0.5, 1.0];
        let lo = run_curve(&cfg(), 0.0, &fractions);
        let hi = run_curve(&cfg(), 2.0, &fractions);
        for (l, h) in lo.points.iter().zip(hi.points.iter()) {
            assert!(h.1 >= l.1, "α=2 cost below α=0 at f={}", l.0);
        }
    }

    #[test]
    fn curves_cover_requested_grid() {
        let curves = run_fig4(&cfg(), &[0.0, 1.0], &[0.0, 0.5, 1.0]);
        assert_eq!(curves.len(), 2);
        for c in &curves {
            assert_eq!(c.points.len(), 3);
            assert_eq!(c.points[0].0, 0.0);
            assert_eq!(c.points[2].0, 1.0);
        }
    }
}
