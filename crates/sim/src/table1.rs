//! Experiment E1 — Table 1: "Results for fixed query workload and
//! content" (§4.1).
//!
//! For each of the three data/query scenarios, each of the four initial
//! configurations (i)–(iv), and each strategy (selfish, altruistic):
//! run the relocation protocol for multiple rounds, check whether a
//! (protocol) equilibrium is reached and in how many rounds, and report
//! the final number of clusters and the normalized social and workload
//! costs.

use recluster_core::{is_nash_equilibrium, EmptyTargetPolicy, ProtocolConfig};
use recluster_overlay::SimNetwork;

use crate::runner::{run_protocol, sweep_map, Parallelism, StrategyKind};
use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

/// One cell of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Data/query scenario.
    pub scenario: Scenario,
    /// Initial configuration (i)–(iv).
    pub init: InitialConfig,
    /// Strategy label.
    pub strategy: String,
    /// Rounds to convergence; `None` when the round budget expired
    /// (reported as "-" like the paper's third scenario).
    pub rounds: Option<usize>,
    /// Non-empty clusters at the end.
    pub clusters: usize,
    /// Final normalized social cost.
    pub scost: f64,
    /// Final normalized workload cost.
    pub wcost: f64,
    /// Whether the final state is an exact Nash equilibrium (over all
    /// `Cmax` clusters).
    pub nash: bool,
    /// Protocol messages spent.
    pub messages: u64,
}

/// Table-1 driver parameters.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Testbed parameters.
    pub experiment: ExperimentConfig,
    /// Round budget per cell.
    pub max_rounds: usize,
    /// Gain threshold `ε`.
    pub epsilon: f64,
}

impl Table1Config {
    /// Paper-scale setup.
    pub fn paper(seed: u64) -> Self {
        Table1Config {
            experiment: ExperimentConfig::paper(seed),
            max_rounds: 300,
            epsilon: 1e-3,
        }
    }

    /// Miniature setup for tests.
    pub fn small(seed: u64) -> Self {
        Table1Config {
            experiment: ExperimentConfig::small(seed),
            max_rounds: 60,
            epsilon: 1e-3,
        }
    }
}

/// Runs one cell of Table 1.
pub fn run_cell(
    scenario: Scenario,
    init: InitialConfig,
    strategy: StrategyKind,
    cfg: &Table1Config,
) -> Table1Row {
    let mut testbed = build_system(scenario, init, &cfg.experiment);
    let mut net = SimNetwork::new();
    let protocol = ProtocolConfig::builder()
        .epsilon(cfg.epsilon)
        .max_rounds(cfg.max_rounds)
        .empty_targets(EmptyTargetPolicy::Always)
        .use_locks(true)
        .build();
    let outcome = run_protocol(&mut testbed.system, strategy, protocol, &mut net);
    let sys = &testbed.system;
    Table1Row {
        scenario,
        init,
        strategy: strategy.label(),
        rounds: outcome.converged.then(|| outcome.rounds_to_converge()),
        clusters: sys.overlay().non_empty_clusters(),
        scost: recluster_core::scost_normalized(sys),
        wcost: recluster_core::wcost_normalized(sys),
        nash: is_nash_equilibrium(sys, true),
        messages: net.total_messages(),
    }
}

/// The Table-1 grid in report order: 3 scenarios × 4 initial
/// configurations × the paper's two strategies.
pub fn table1_grid() -> Vec<(Scenario, InitialConfig, StrategyKind)> {
    let mut cells = Vec::with_capacity(24);
    for scenario in [
        Scenario::SameCategory,
        Scenario::DifferentCategory,
        Scenario::Uniform,
    ] {
        for init in [
            InitialConfig::Singletons,
            InitialConfig::RandomM,
            InitialConfig::Fewer,
            InitialConfig::More,
        ] {
            for strategy in StrategyKind::paper_pair() {
                cells.push((scenario, init, strategy));
            }
        }
    }
    cells
}

/// Runs the full Table-1 grid, fanning the independent cells across
/// cores (results merged in grid order — byte-identical to
/// [`run_table1_with`]`(cfg, Parallelism::Sequential)`).
pub fn run_table1(cfg: &Table1Config) -> Vec<Table1Row> {
    run_table1_with(cfg, Parallelism::Auto)
}

/// Runs the full Table-1 grid under an explicit parallelism mode.
pub fn run_table1_with(cfg: &Table1Config, parallelism: Parallelism) -> Vec<Table1Row> {
    sweep_map(
        parallelism,
        &table1_grid(),
        |&(scenario, init, strategy)| run_cell(scenario, init, strategy, cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_singletons_converges_to_category_clusters() {
        let cfg = Table1Config::small(21);
        let row = run_cell(
            Scenario::SameCategory,
            InitialConfig::Singletons,
            StrategyKind::Selfish,
            &cfg,
        );
        assert!(row.rounds.is_some(), "scenario 1 must converge");
        assert_eq!(
            row.clusters, 4,
            "peers must form one cluster per category (M = 4)"
        );
        // Cost ≈ membership only: 10/40 = 0.25.
        assert!((row.scost - 0.25).abs() < 0.05, "scost {}", row.scost);
        assert!((row.wcost - 0.25).abs() < 0.05, "wcost {}", row.wcost);
        assert!(row.nash);
    }

    #[test]
    fn scenario1_converges_from_every_initial_config() {
        let cfg = Table1Config::small(22);
        for init in [
            InitialConfig::Singletons,
            InitialConfig::RandomM,
            InitialConfig::Fewer,
            InitialConfig::More,
        ] {
            let row = run_cell(Scenario::SameCategory, init, StrategyKind::Selfish, &cfg);
            assert!(row.rounds.is_some(), "{init:?} must converge");
            assert!(row.nash, "{init:?} must end at a Nash equilibrium");
            // The abstract claims convergence to well-formed clusters
            // "for most initial system configurations": the m < M start
            // can leave two categories stacked in one stable cluster (a
            // genuine Nash equilibrium the game cannot split), so we
            // accept M or slightly fewer clusters there.
            // At the miniature scale the equilibrium cluster count can
            // deviate from M by one in either direction: random starts
            // can leave two categories stacked in one stable cluster,
            // and a sparse category can stably split in two. (The
            // paper-scale run — `cargo run -p recluster-bench --bin
            // table1 --release` — lands on M = 10 exactly from the
            // singleton start.)
            assert!(
                (2..=6).contains(&row.clusters),
                "{init:?}: {} clusters",
                row.clusters
            );
        }
    }

    #[test]
    fn altruistic_also_converges_on_scenario1() {
        let cfg = Table1Config::small(23);
        let row = run_cell(
            Scenario::SameCategory,
            InitialConfig::RandomM,
            StrategyKind::Altruistic,
            &cfg,
        );
        assert!(row.rounds.is_some());
        // Altruists never split clusters and can stall early on random
        // starts (providers serve their own cluster most): the count can
        // undershoot M and the cost can stay well above the selfish
        // outcome. Sanity-bound both.
        assert!(row.clusters >= 1 && row.clusters <= 8);
        assert!(row.scost < 1.1);
    }

    #[test]
    fn scenario2_costs_exceed_scenario1() {
        // Compare against the singleton start, which reliably reaches
        // the ideal M-cluster configuration (random starts can stack
        // categories and inflate the scenario-1 cost).
        let cfg = Table1Config::small(24);
        let s1 = run_cell(
            Scenario::SameCategory,
            InitialConfig::Singletons,
            StrategyKind::Selfish,
            &cfg,
        );
        let s2 = run_cell(
            Scenario::DifferentCategory,
            InitialConfig::Singletons,
            StrategyKind::Selfish,
            &cfg,
        );
        assert!(
            s2.scost > s1.scost,
            "different-category clustering costs more: {} vs {}",
            s2.scost,
            s1.scost
        );
    }

    #[test]
    fn scenario2_splits_social_and_workload_cost() {
        // Zipf demand makes SCost ≠ WCost once recall losses exist.
        let cfg = Table1Config::small(25);
        let row = run_cell(
            Scenario::DifferentCategory,
            InitialConfig::RandomM,
            StrategyKind::Selfish,
            &cfg,
        );
        assert!(
            (row.scost - row.wcost).abs() > 1e-4,
            "scost {} vs wcost {} should differ under zipf demand",
            row.scost,
            row.wcost
        );
    }

    #[test]
    fn uniform_scenario_is_the_hardest() {
        let cfg = Table1Config::small(26);
        let s1 = run_cell(
            Scenario::SameCategory,
            InitialConfig::RandomM,
            StrategyKind::Selfish,
            &cfg,
        );
        let s3 = run_cell(
            Scenario::Uniform,
            InitialConfig::RandomM,
            StrategyKind::Selfish,
            &cfg,
        );
        assert!(s3.scost > s1.scost);
    }

    #[test]
    fn full_grid_has_24_rows() {
        // Smoke-test the full driver on the miniature testbed.
        let mut cfg = Table1Config::small(27);
        cfg.max_rounds = 25; // keep the test fast
        let rows = run_table1(&cfg);
        assert_eq!(rows.len(), 24);
        for row in &rows {
            assert!(row.scost >= 0.0 && row.scost <= 1.5);
            assert!(row.clusters >= 1);
        }
    }
}
