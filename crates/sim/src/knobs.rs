//! Environment-knob parsing shared by the sim binaries.
//!
//! Every reader here distinguishes *unset* (silent default) from *set
//! but malformed*: a malformed value gets a stderr warning naming the
//! knob and the rejected value before the default applies, so a typo'd
//! override can never masquerade as a deliberate choice.

use recluster_core::DecisionSource;

/// Reads `name` as a `u64`. Unset → `None` silently; set but
/// unparsable → a stderr warning, then `None` (the caller's default
/// applies).
pub fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("unknown {name}={raw:?}, ignoring");
            None
        }
    }
}

/// Reads the decision source (`RECLUSTER_DECISIONS`): `oracle`
/// (default), `observed` (decay 0 — each repair acts on exactly the
/// latest period's observations), or `observed:<decay>` for an
/// exponential fold with the given weight in `[0, 1)`. Unset → `None`
/// silently; malformed → a stderr warning, then `None`.
pub fn decisions_from_env() -> Option<DecisionSource> {
    let raw = std::env::var("RECLUSTER_DECISIONS").ok()?;
    match DecisionSource::parse(&raw) {
        Some(d) => Some(d),
        None => {
            eprintln!("unknown RECLUSTER_DECISIONS={raw:?}, using oracle");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a distinct variable name, so the suite stays safe
    // under the parallel test runner.

    #[test]
    fn env_u64_parses_and_rejects() {
        std::env::set_var("RECLUSTER_KNOBTEST_GOOD", "42");
        assert_eq!(env_u64("RECLUSTER_KNOBTEST_GOOD"), Some(42));
        std::env::set_var("RECLUSTER_KNOBTEST_BAD", "not-a-number");
        assert_eq!(env_u64("RECLUSTER_KNOBTEST_BAD"), None);
        assert_eq!(env_u64("RECLUSTER_KNOBTEST_UNSET"), None);
    }

    #[test]
    fn decisions_knob_round_trips() {
        for (raw, want) in [
            ("oracle", DecisionSource::Oracle),
            ("observed", DecisionSource::Observed { decay: 0.0 }),
            ("observed:0.5", DecisionSource::Observed { decay: 0.5 }),
        ] {
            assert_eq!(DecisionSource::parse(raw), Some(want));
        }
        assert_eq!(DecisionSource::parse("observed:1.5"), None);
        assert_eq!(DecisionSource::parse("psychic"), None);
    }
}
