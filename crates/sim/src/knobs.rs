//! Environment-knob parsing shared by the sim binaries.
//!
//! Every reader here distinguishes *unset* (silent default) from *set
//! but malformed*: a malformed value gets a stderr warning naming the
//! knob and the rejected value before the default applies, so a typo'd
//! override can never masquerade as a deliberate choice.
//!
//! [`Knobs::from_env`] is the single entry point the binaries use: it
//! reads every `RECLUSTER_*` runtime knob once into a typed struct, so
//! a new knob lands in exactly one place (here) instead of scattered
//! `std::env::var` calls.

use recluster_core::{
    CrashWindow, DecisionSource, DelayDist, FaultSchedule, LiarConfig, LiarMode, NetConfig,
    Partition, PartitionKind,
};
use recluster_overlay::{RoutingMode, SummaryMode};
use recluster_types::PeerId;

/// A partition spec parsed from `RECLUSTER_NET_PARTITION`, before the
/// peer count is known. [`Knobs::fault_schedule`] resolves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// `start..heal` — bisect the peer set at half its size.
    BisectHalf,
    /// `bisect:<pivot>@start..heal` — bisect at an explicit pivot.
    Bisect(u32),
    /// `isolate:<peer>@start..heal` — cut one peer off.
    Isolate(u32),
}

/// Reads `name` as a timed partition: `start..heal` (bisect at half
/// the peer set), `bisect:<pivot>@start..heal`, or
/// `isolate:<peer>@start..heal`. Same warning discipline as
/// [`env_u64`].
pub fn env_partition(name: &str) -> Option<(PartitionSpec, u64, u64)> {
    let raw = std::env::var(name).ok()?;
    let parse_window = |s: &str| -> Option<(u64, u64)> {
        let (lo, hi) = s.split_once("..")?;
        match (lo.trim().parse(), hi.trim().parse()) {
            (Ok(lo), Ok(hi)) if lo < hi => Some((lo, hi)),
            _ => None,
        }
    };
    let parsed = match raw.split_once('@') {
        None => parse_window(&raw).map(|(start, heal)| (PartitionSpec::BisectHalf, start, heal)),
        Some((kind, window)) => {
            let spec = match kind.trim().split_once(':') {
                Some(("bisect", pivot)) => pivot.trim().parse().ok().map(PartitionSpec::Bisect),
                Some(("isolate", peer)) => peer.trim().parse().ok().map(PartitionSpec::Isolate),
                _ => None,
            };
            match (spec, parse_window(window)) {
                (Some(spec), Some((start, heal))) => Some((spec, start, heal)),
                _ => None,
            }
        }
    };
    if parsed.is_none() {
        eprintln!("unknown {name}={raw:?}, ignoring");
    }
    parsed
}

/// Reads `name` as a comma-separated crash list: each entry is
/// `peer@down..up` (the peer is down for ticks `[down, up)`). One
/// malformed entry rejects the whole list, with the usual warning.
pub fn env_crashes(name: &str) -> Vec<CrashWindow> {
    let Ok(raw) = std::env::var(name) else {
        return Vec::new();
    };
    let parse_one = |s: &str| -> Option<CrashWindow> {
        let (peer, window) = s.split_once('@')?;
        let (lo, hi) = window.split_once("..")?;
        match (peer.trim().parse(), lo.trim().parse(), hi.trim().parse()) {
            (Ok(peer), Ok(down), Ok(up)) if down < up => Some(CrashWindow {
                peer: PeerId(peer),
                down,
                up,
            }),
            _ => None,
        }
    };
    match raw.split(',').map(parse_one).collect() {
        Some(windows) => windows,
        None => {
            eprintln!("unknown {name}={raw:?}, ignoring");
            Vec::new()
        }
    }
}

/// Reads `name` as a `u64`. Unset → `None` silently; set but
/// unparsable → a stderr warning, then `None` (the caller's default
/// applies).
pub fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("unknown {name}={raw:?}, ignoring");
            None
        }
    }
}

/// Reads `name` as an `f64` constrained to `[0, max]`. Same warning
/// discipline as [`env_u64`].
pub fn env_fraction(name: &str, max: f64) -> Option<f64> {
    let raw = std::env::var(name).ok()?;
    match raw.parse::<f64>() {
        Ok(v) if (0.0..=max).contains(&v) => Some(v),
        _ => {
            eprintln!("unknown {name}={raw:?}, ignoring");
            None
        }
    }
}

/// Reads `name` as a tick range: either a single `u64` (`"3"` →
/// `(3, 3)`) or `min..max` (`"0..5"` → `(0, 5)`). Same warning
/// discipline as [`env_u64`].
pub fn env_tick_range(name: &str) -> Option<(u64, u64)> {
    let raw = std::env::var(name).ok()?;
    let parsed = match raw.split_once("..") {
        Some((lo, hi)) => match (lo.trim().parse(), hi.trim().parse()) {
            (Ok(lo), Ok(hi)) if lo <= hi => Some((lo, hi)),
            _ => None,
        },
        None => raw.trim().parse().ok().map(|v: u64| (v, v)),
    };
    if parsed.is_none() {
        eprintln!("unknown {name}={raw:?}, ignoring");
    }
    parsed
}

/// Reads the decision source (`RECLUSTER_DECISIONS`): `oracle`
/// (default), `observed` (decay 0 — each repair acts on exactly the
/// latest period's observations), or `observed:<decay>` for an
/// exponential fold with the given weight in `[0, 1)`. Unset → `None`
/// silently; malformed → a stderr warning, then `None`.
pub fn decisions_from_env() -> Option<DecisionSource> {
    let raw = std::env::var("RECLUSTER_DECISIONS").ok()?;
    match DecisionSource::parse(&raw) {
        Some(d) => Some(d),
        None => {
            eprintln!("unknown RECLUSTER_DECISIONS={raw:?}, using oracle");
            None
        }
    }
}

/// Every `RECLUSTER_*` runtime knob, read once. `None`/`false` means
/// "unset, use the binary's default" — the per-knob parse warnings have
/// already been printed by the time `from_env` returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Knobs {
    /// `RECLUSTER_SEED` — experiment seed.
    pub seed: Option<u64>,
    /// `RECLUSTER_SMALL` — `1`/`true`: miniature config.
    pub small: bool,
    /// `RECLUSTER_ROUTING` — `flood`, `exact` or `lossy:<k>`.
    pub routing: Option<RoutingMode>,
    /// `RECLUSTER_DECISIONS` — `oracle`, `observed`, `observed:<decay>`.
    pub decisions: Option<DecisionSource>,
    /// `RECLUSTER_TRAFFIC_QUERIES` — base query occurrences per slice.
    pub traffic_queries: Option<u64>,
    /// `RECLUSTER_TRAFFIC_SLICES` — number of traffic slices.
    pub traffic_slices: Option<u64>,
    /// `RECLUSTER_NET_DELAY` — extra per-message delay in ticks:
    /// `"3"` fixed, `"0..5"` uniform.
    pub net_delay: Option<(u64, u64)>,
    /// `RECLUSTER_NET_DROP` — per-message drop probability in `[0, 1)`.
    pub net_drop: Option<f64>,
    /// `RECLUSTER_NET_SEED` — seed of the simulated fabric's RNG.
    pub net_seed: Option<u64>,
    /// `RECLUSTER_NET_LIARS` — fraction of peers inflating claimed
    /// gains, in `[0, 1]`.
    pub net_liars: Option<f64>,
    /// `RECLUSTER_NET_PARTITION` — a timed partition: `start..heal`,
    /// `bisect:<pivot>@start..heal`, or `isolate:<peer>@start..heal`.
    pub net_partition: Option<(PartitionSpec, u64, u64)>,
    /// `RECLUSTER_NET_CRASH` — crash/restart windows, comma-separated
    /// `peer@down..up` entries.
    pub net_crash: Vec<CrashWindow>,
    /// `RECLUSTER_THREADS` — sweep worker count (`1` sequential,
    /// unset/`0` all cores).
    pub threads: Option<u64>,
}

impl Knobs {
    /// Reads every knob from the environment, warning on stderr about
    /// each malformed value as it goes.
    pub fn from_env() -> Self {
        let small = std::env::var("RECLUSTER_SMALL")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));
        let routing = std::env::var("RECLUSTER_ROUTING").ok().map(|raw| {
            RoutingMode::parse(&raw).unwrap_or_else(|| {
                eprintln!("unknown RECLUSTER_ROUTING={raw:?}, using exact");
                RoutingMode::Routed(SummaryMode::Exact)
            })
        });
        Knobs {
            seed: env_u64("RECLUSTER_SEED"),
            small,
            routing,
            decisions: decisions_from_env(),
            traffic_queries: env_u64("RECLUSTER_TRAFFIC_QUERIES"),
            traffic_slices: env_u64("RECLUSTER_TRAFFIC_SLICES"),
            net_delay: env_tick_range("RECLUSTER_NET_DELAY"),
            // drop_rate 1.0 would sever every link; the fabric rejects it.
            net_drop: env_fraction("RECLUSTER_NET_DROP", 0.999),
            net_seed: env_u64("RECLUSTER_NET_SEED"),
            net_liars: env_fraction("RECLUSTER_NET_LIARS", 1.0),
            net_partition: env_partition("RECLUSTER_NET_PARTITION"),
            net_crash: env_crashes("RECLUSTER_NET_CRASH"),
            threads: env_u64("RECLUSTER_THREADS"),
        }
    }

    /// The sweep parallelism the `RECLUSTER_THREADS` knob describes:
    /// `1` forces the sequential runner, any larger value pins that
    /// worker count, unset or `0` uses every core. Sweeps are
    /// byte-identical under all three, so this only trades wall clock.
    pub fn parallelism(&self) -> crate::runner::Parallelism {
        match self.threads {
            Some(1) => crate::runner::Parallelism::Sequential,
            Some(0) | None => crate::runner::Parallelism::Auto,
            Some(n) => crate::runner::Parallelism::Threads(n as usize),
        }
    }

    /// The network schedule the `RECLUSTER_NET_*` knobs describe —
    /// [`NetConfig::ideal`] when none of them is set.
    pub fn net_config(&self) -> NetConfig {
        let mut cfg = NetConfig::ideal();
        if let Some(seed) = self.net_seed {
            cfg.seed = seed;
        }
        if let Some((min, max)) = self.net_delay {
            cfg.delay = if min == max {
                DelayDist::Fixed(min)
            } else {
                DelayDist::Uniform { min, max }
            };
            cfg.phase_ticks = max + 2;
        }
        if let Some(drop_rate) = self.net_drop {
            cfg.drop_rate = drop_rate;
        }
        cfg
    }

    /// The fault schedule the `RECLUSTER_NET_PARTITION` and
    /// `RECLUSTER_NET_CRASH` knobs describe — empty when neither is
    /// set. `n_peers` resolves the bare `start..heal` form's "bisect at
    /// half" pivot; the explicit forms ignore it.
    pub fn fault_schedule(&self, n_peers: usize) -> FaultSchedule {
        let mut faults = FaultSchedule::none();
        if let Some((spec, start, heal)) = self.net_partition {
            let kind = match spec {
                PartitionSpec::BisectHalf => PartitionKind::Bisect {
                    pivot: (n_peers / 2) as u32,
                },
                PartitionSpec::Bisect(pivot) => PartitionKind::Bisect { pivot },
                PartitionSpec::Isolate(peer) => PartitionKind::Isolate { peer: PeerId(peer) },
            };
            faults.partitions.push(Partition { kind, start, heal });
        }
        faults.crashes = self.net_crash.clone();
        faults
    }

    /// The liar population the `RECLUSTER_NET_LIARS` knob describes
    /// (inflation ×10, selection hashed from the fabric seed) — honest
    /// when unset.
    pub fn liar_config(&self) -> LiarConfig {
        match self.net_liars {
            Some(fraction) => LiarConfig {
                fraction,
                boost: 10.0,
                seed: self.net_seed.unwrap_or(0),
                mode: LiarMode::Consistent,
            },
            None => LiarConfig::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a distinct variable name, so the suite stays safe
    // under the parallel test runner.

    #[test]
    fn env_u64_parses_and_rejects() {
        std::env::set_var("RECLUSTER_KNOBTEST_GOOD", "42");
        assert_eq!(env_u64("RECLUSTER_KNOBTEST_GOOD"), Some(42));
        std::env::set_var("RECLUSTER_KNOBTEST_BAD", "not-a-number");
        assert_eq!(env_u64("RECLUSTER_KNOBTEST_BAD"), None);
        assert_eq!(env_u64("RECLUSTER_KNOBTEST_UNSET"), None);
    }

    #[test]
    fn env_fraction_enforces_range() {
        std::env::set_var("RECLUSTER_KNOBTEST_FRAC", "0.25");
        assert_eq!(env_fraction("RECLUSTER_KNOBTEST_FRAC", 1.0), Some(0.25));
        std::env::set_var("RECLUSTER_KNOBTEST_FRAC_BIG", "1.5");
        assert_eq!(env_fraction("RECLUSTER_KNOBTEST_FRAC_BIG", 1.0), None);
        std::env::set_var("RECLUSTER_KNOBTEST_FRAC_NEG", "-0.1");
        assert_eq!(env_fraction("RECLUSTER_KNOBTEST_FRAC_NEG", 1.0), None);
    }

    #[test]
    fn env_tick_range_accepts_fixed_and_span() {
        std::env::set_var("RECLUSTER_KNOBTEST_TICKS_ONE", "3");
        assert_eq!(env_tick_range("RECLUSTER_KNOBTEST_TICKS_ONE"), Some((3, 3)));
        std::env::set_var("RECLUSTER_KNOBTEST_TICKS_SPAN", "0..5");
        assert_eq!(
            env_tick_range("RECLUSTER_KNOBTEST_TICKS_SPAN"),
            Some((0, 5))
        );
        std::env::set_var("RECLUSTER_KNOBTEST_TICKS_INV", "5..0");
        assert_eq!(env_tick_range("RECLUSTER_KNOBTEST_TICKS_INV"), None);
        std::env::set_var("RECLUSTER_KNOBTEST_TICKS_BAD", "fast");
        assert_eq!(env_tick_range("RECLUSTER_KNOBTEST_TICKS_BAD"), None);
    }

    #[test]
    fn decisions_knob_round_trips() {
        for (raw, want) in [
            ("oracle", DecisionSource::Oracle),
            ("observed", DecisionSource::Observed { decay: 0.0 }),
            ("observed:0.5", DecisionSource::Observed { decay: 0.5 }),
        ] {
            assert_eq!(DecisionSource::parse(raw), Some(want));
        }
        assert_eq!(DecisionSource::parse("observed:1.5"), None);
        assert_eq!(DecisionSource::parse("psychic"), None);
    }

    #[test]
    fn default_knobs_describe_the_ideal_network() {
        let knobs = Knobs::default();
        assert_eq!(knobs.net_config(), NetConfig::ideal());
        assert_eq!(knobs.liar_config(), LiarConfig::none());
        assert!(knobs.fault_schedule(40).is_empty());
    }

    #[test]
    fn env_partition_accepts_all_three_forms() {
        std::env::set_var("RECLUSTER_KNOBTEST_PART_BARE", "5..40");
        assert_eq!(
            env_partition("RECLUSTER_KNOBTEST_PART_BARE"),
            Some((PartitionSpec::BisectHalf, 5, 40))
        );
        std::env::set_var("RECLUSTER_KNOBTEST_PART_BISECT", "bisect:7@5..40");
        assert_eq!(
            env_partition("RECLUSTER_KNOBTEST_PART_BISECT"),
            Some((PartitionSpec::Bisect(7), 5, 40))
        );
        std::env::set_var("RECLUSTER_KNOBTEST_PART_ISO", "isolate:3@5..40");
        assert_eq!(
            env_partition("RECLUSTER_KNOBTEST_PART_ISO"),
            Some((PartitionSpec::Isolate(3), 5, 40))
        );
        // Empty and inverted windows, and unknown kinds, are rejected.
        std::env::set_var("RECLUSTER_KNOBTEST_PART_EMPTY", "5..5");
        assert_eq!(env_partition("RECLUSTER_KNOBTEST_PART_EMPTY"), None);
        std::env::set_var("RECLUSTER_KNOBTEST_PART_KIND", "split:7@5..40");
        assert_eq!(env_partition("RECLUSTER_KNOBTEST_PART_KIND"), None);
        assert_eq!(env_partition("RECLUSTER_KNOBTEST_PART_UNSET"), None);
    }

    #[test]
    fn env_crashes_parses_a_list_and_rejects_whole_on_one_bad_entry() {
        std::env::set_var("RECLUSTER_KNOBTEST_CRASH_LIST", "3@5..40, 9@10..20");
        assert_eq!(
            env_crashes("RECLUSTER_KNOBTEST_CRASH_LIST"),
            vec![
                CrashWindow {
                    peer: PeerId(3),
                    down: 5,
                    up: 40
                },
                CrashWindow {
                    peer: PeerId(9),
                    down: 10,
                    up: 20
                },
            ]
        );
        std::env::set_var("RECLUSTER_KNOBTEST_CRASH_BAD", "3@5..40,oops");
        assert_eq!(env_crashes("RECLUSTER_KNOBTEST_CRASH_BAD"), Vec::new());
        assert_eq!(env_crashes("RECLUSTER_KNOBTEST_CRASH_UNSET"), Vec::new());
    }

    #[test]
    fn fault_knobs_shape_the_schedule() {
        let knobs = Knobs {
            net_partition: Some((PartitionSpec::BisectHalf, 5, 40)),
            net_crash: vec![CrashWindow {
                peer: PeerId(3),
                down: 10,
                up: 20,
            }],
            ..Knobs::default()
        };
        let faults = knobs.fault_schedule(40);
        assert_eq!(
            faults.partitions,
            vec![Partition {
                kind: PartitionKind::Bisect { pivot: 20 },
                start: 5,
                heal: 40
            }]
        );
        assert_eq!(faults.crashes, knobs.net_crash);
        let isolate = Knobs {
            net_partition: Some((PartitionSpec::Isolate(3), 5, 40)),
            ..Knobs::default()
        };
        assert_eq!(
            isolate.fault_schedule(40).partitions[0].kind,
            PartitionKind::Isolate { peer: PeerId(3) }
        );
    }

    #[test]
    fn net_knobs_shape_the_config() {
        let knobs = Knobs {
            net_delay: Some((0, 5)),
            net_drop: Some(0.1),
            net_seed: Some(7),
            net_liars: Some(0.25),
            ..Knobs::default()
        };
        let cfg = knobs.net_config();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.delay, DelayDist::Uniform { min: 0, max: 5 });
        assert_eq!(cfg.drop_rate, 0.1);
        assert_eq!(cfg.phase_ticks, 7);
        let liars = knobs.liar_config();
        assert_eq!(liars.fraction, 0.25);
        assert_eq!(liars.seed, 7);
        let fixed = Knobs {
            net_delay: Some((4, 4)),
            ..Knobs::default()
        };
        assert_eq!(fixed.net_config().delay, DelayDist::Fixed(4));
    }
}
