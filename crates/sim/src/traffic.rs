//! Query-serving traffic engine: a streamed, routed query workload
//! interleaved with live churn and repair rounds on one deterministic
//! timeline.
//!
//! The paper evaluates the overlay with a periodic *batch* workload
//! ([`simulate_period_routed`]
//! walks every live workload once per period). A serving system sees
//! something else entirely: queries arrive continuously while peers
//! join, leave and relocate underneath them, and the routing state the
//! queries use is necessarily *stale* — summaries propagate at the
//! maintenance cadence, not per event. This module models that regime:
//!
//! * [`WorkloadDynamics`] generates the stream from the corpus's
//!   zipf/query machinery: Zipf-distributed topic popularity whose
//!   rank→category mapping *drifts* over time, flash-crowd windows that
//!   multiply demand on a small topic set, and a diurnal rate swing
//!   modeled as an integer triangle wave (never a platform-dependent
//!   `sin`).
//! * [`TrafficEngine`] advances a slice clock. Each slice routes its
//!   queries through a [`RoutePlan`] built from the **published**
//!   summaries; churn ticks apply join/leave batches whose summary
//!   deltas are recorded into a [`SummaryBatch`] instead of being
//!   broadcast; repair ticks flush the batch (one coalesced publication
//!   per touched cluster), rebuild the plan, run the maintenance
//!   protocol, and record the repair's relocations into the next batch
//!   by membership diff.
//! * [`TrafficReport`] aggregates throughput (queries, forwards,
//!   results), the per-query fan-out tail
//!   ([`ForwardHistogram`] p50/p99/max), false negatives (lossy
//!   summaries *and* staleness), the batching ledger (per-event vs
//!   batched `SummaryUpdate` messages), and per-repair-window rows —
//!   everything integer-derived, pinned by a golden digest.
//!
//! Determinism: one seeded RNG stream drives sampling and churn; the
//! query loop is sequential; the only parallel section is protocol
//! phase 1, which is byte-identical to sequential under any worker
//! count (CI runs this engine under a 1/2/8-thread matrix). Two runs of
//! the same config produce identical reports, including
//! [`TrafficReport::digest`].
//!
//! # Examples
//!
//! The miniature configuration streams a few thousand queries over 40
//! peers with churn and repairs in a debug-build-friendly instant:
//!
//! ```
//! use recluster_sim::traffic::{run_traffic, traffic_small_config};
//!
//! let (cfg, traffic) = traffic_small_config(7);
//! let report = run_traffic(&cfg, &traffic);
//! assert!(report.queries > 1_000);
//! assert!(report.repairs > 0 && report.churn_events > 0);
//! // Routing never fans wider than flooding would.
//! assert!(report.forwards <= report.flood_forwards);
//! // Batching publishes (far) fewer summary messages than eager
//! // per-event broadcast.
//! assert!(report.summary_updates_batched <= report.summary_updates_per_event);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::Rng;
use recluster_core::{
    scost_normalized, simulate_period_routed, DecisionSource, ForwardHistogram, ObservedStats,
    ProtocolConfig, System,
};
use recluster_corpus::{QueryBias, QuerySampler, WorkloadBuilder, Zipf};
use recluster_overlay::churn::{random_leave, ChurnDelta, ChurnEvent};
use recluster_overlay::{
    ClusterSummaries, MsgKind, RoutePlan, RoutingMode, SimNetwork, SummaryBatch, SummaryMode,
};
use recluster_types::{derive_seed, seeded_rng, ClusterId, PeerId, Query};

use crate::runner::{decision_agreement, run_protocol, run_protocol_observed, StrategyKind};
use crate::scenario::{ideal_scenario1_system, ExperimentConfig, TestBed};

/// Shape of the streamed workload and the churn/repair schedule, all in
/// units of *slices* (the engine's time step).
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Slices to simulate.
    pub slices: usize,
    /// Base query occurrences per slice (before diurnal/flash shaping).
    pub queries_per_slice: u64,
    /// Slices per full diurnal cycle (`0` disables the swing).
    pub diurnal_period: usize,
    /// Peak amplitude of the diurnal swing, in percent of the base rate
    /// (an integer triangle wave: rate goes `base − a% … base + a%`).
    pub diurnal_amplitude_pct: u64,
    /// Zipf exponent over topic (category) popularity ranks.
    pub zipf_s: f64,
    /// Slices between one-step rotations of the rank→topic mapping
    /// (`0` disables drift).
    pub drift_every: usize,
    /// Slices between flash-crowd windows (`0` disables them).
    pub flash_every: usize,
    /// Length of each flash window, in slices.
    pub flash_len: usize,
    /// Topics a flash crowd concentrates on.
    pub flash_topics: usize,
    /// Extra demand during a flash window, in percent of the base rate.
    pub flash_boost_pct: u64,
    /// Slices between churn ticks (`0` disables churn).
    pub churn_every: usize,
    /// Departures per churn tick.
    pub leaves_per_tick: usize,
    /// Arrivals per churn tick.
    pub joins_per_tick: usize,
    /// Slices between repair ticks — also the summary *publication*
    /// cadence (`0` disables both; the initial plan then serves the
    /// whole run).
    pub repair_every: usize,
    /// Maintenance strategy run at each repair tick.
    pub maintenance: StrategyKind,
    /// Protocol parameters for each repair run.
    pub protocol: ProtocolConfig,
    /// How queries are forwarded.
    pub mode: RoutingMode,
    /// Where repair decisions read their statistics from. Under
    /// [`DecisionSource::Observed`] each repair tick first runs an
    /// observation pass — every peer's workload routed under `mode`, so
    /// lossy summaries degrade what the peers learn — and the
    /// maintenance strategy consumes the folded estimates instead of
    /// oracle state; the report then carries per-repair fidelity rows.
    pub decisions: DecisionSource,
}

/// The deterministic workload generator: Zipf topic popularity with
/// rank drift, flash-crowd windows, and a triangle-wave diurnal rate.
///
/// All shaping arithmetic is integer (the triangle wave replaces the
/// obvious `sin`, whose libm implementation varies across platforms),
/// so a seeded run is reproducible to the bit anywhere.
pub struct WorkloadDynamics {
    zipf: Zipf,
    samplers: Vec<QuerySampler>,
    n_categories: usize,
}

impl WorkloadDynamics {
    /// Builds the generator over the testbed's categories: one
    /// occurrence-biased sampler per category, restricted to the
    /// distributed (queryable) articles, and a Zipf distribution over
    /// popularity ranks.
    pub fn new(testbed: &TestBed, zipf_s: f64) -> Self {
        let n_categories = testbed.holdout.len();
        let builder = WorkloadBuilder::new(QueryBias::Occurrence)
            .with_doc_limit(testbed.distributable_per_category);
        let samplers = (0..n_categories)
            .map(|cat| builder.sampler(&testbed.corpus, cat))
            .collect();
        WorkloadDynamics {
            zipf: Zipf::new(n_categories, zipf_s),
            samplers,
            n_categories,
        }
    }

    /// The base rate shaped by the diurnal triangle wave at slice `t`
    /// (flash demand not included). Pure integer arithmetic.
    pub fn slice_rate(&self, cfg: &TrafficConfig, t: usize) -> u64 {
        let base = cfg.queries_per_slice;
        let period = cfg.diurnal_period;
        if period < 2 || cfg.diurnal_amplitude_pct == 0 {
            return base;
        }
        let half = (period / 2) as i64;
        let phase = (t % period) as i64;
        // 0 → half → 0 over one period, recentred to −half…+half.
        let tri = if phase <= half {
            phase
        } else {
            period as i64 - phase
        };
        let offset = 2 * tri - half;
        let swing = base as i64 * cfg.diurnal_amplitude_pct as i64 * offset / (100 * half.max(1));
        (base as i64 + swing).max(0) as u64
    }

    /// Extra flash-crowd occurrences at slice `t`, with the flash
    /// window's index (`None` outside every window).
    pub fn flash_at(&self, cfg: &TrafficConfig, t: usize) -> Option<(usize, u64)> {
        if cfg.flash_every == 0 || cfg.flash_len == 0 || cfg.flash_topics == 0 {
            return None;
        }
        if t % cfg.flash_every < cfg.flash_len {
            let window = t / cfg.flash_every;
            Some((window, cfg.queries_per_slice * cfg.flash_boost_pct / 100))
        } else {
            None
        }
    }

    /// The topic (category) behind popularity rank `rank` at slice `t`:
    /// the mapping rotates one step every `drift_every` slices, so the
    /// head of the Zipf distribution wanders across the catalogue.
    pub fn topic_at(&self, cfg: &TrafficConfig, t: usize, rank: usize) -> usize {
        let shift = t.checked_div(cfg.drift_every).unwrap_or(0);
        (rank + shift) % self.n_categories
    }

    /// Samples one slice's query stream, coalesced to distinct queries
    /// with occurrence counts (sorted — `BTreeMap` — so downstream
    /// iteration order is deterministic). Advances `rng` by exactly the
    /// occurrence count drawn.
    pub fn sample_slice(
        &self,
        cfg: &TrafficConfig,
        t: usize,
        rng: &mut StdRng,
    ) -> BTreeMap<Query, u64> {
        let mut out: BTreeMap<Query, u64> = BTreeMap::new();
        for _ in 0..self.slice_rate(cfg, t) {
            let rank = self.zipf.sample(rng);
            let cat = self.topic_at(cfg, t, rank);
            *out.entry(self.samplers[cat].sample(rng)).or_insert(0) += 1;
        }
        if let Some((window, extra)) = self.flash_at(cfg, t) {
            // The window's topic set is a deterministic function of its
            // index, spread over the catalogue by a co-prime-ish stride.
            for _ in 0..extra {
                let pick = rng.gen_range(0..cfg.flash_topics);
                let cat = (window * 7 + pick) % self.n_categories;
                *out.entry(self.samplers[cat].sample(rng)).or_insert(0) += 1;
            }
        }
        out
    }
}

/// One repair window's aggregates (the stretch of slices since the
/// previous repair tick, plus the tail window at the end of the run).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficWindow {
    /// Slice index at which the window closed.
    pub slice: usize,
    /// Query occurrences routed in the window.
    pub queries: u64,
    /// `QueryForward` messages charged.
    pub forwards: u64,
    /// Results returned to requesters.
    pub returned: u64,
    /// Results flooding would have returned but routing missed.
    pub missed: u64,
    /// Relocations the window's repair performed (0 for the tail).
    pub moves: usize,
    /// Normalized social cost at window close.
    pub scost: f64,
}

/// One repair tick's decision-fidelity row (observed mode only): how
/// closely the observed relocation decisions tracked the oracle's on
/// the same pre-repair state.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficFidelity {
    /// Slice index of the repair tick.
    pub slice: usize,
    /// Fraction of live peers whose observed proposal named the oracle
    /// destination (both proposing nothing counts as agreement).
    pub agreement_rate: f64,
    /// Normalized social cost after the *observed* repair.
    pub scost_observed_repair: f64,
    /// Normalized social cost a reference *oracle* repair reaches from
    /// the same pre-repair state.
    pub scost_oracle_repair: f64,
}

/// What a [`TrafficEngine`] run did, in exact integers plus
/// integer-derived floats — reproducible to the bit for a fixed config.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Routing mode the stream ran under.
    pub mode: RoutingMode,
    /// Slices simulated.
    pub slices: usize,
    /// Live peers at the end of the run.
    pub peers: usize,
    /// Query occurrences streamed.
    pub queries: u64,
    /// Distinct (cluster, query) evaluations actually computed — cache
    /// misses; the amortization the eval cache buys is visible as
    /// `queries × clusters` minus this.
    pub distinct_evaluations: u64,
    /// `QueryForward` messages charged.
    pub forwards: u64,
    /// `QueryForward` messages flooding every live non-empty cluster
    /// would have charged.
    pub flood_forwards: u64,
    /// Results returned to requesters (occurrence-weighted).
    pub returned_results: u64,
    /// Results flooding would have returned but routing missed —
    /// lossy-summary drops *plus* staleness (a cluster whose content
    /// arrived after the last publication), occurrence-weighted.
    pub missed_results: u64,
    /// Churn events applied (joins + leaves).
    pub churn_events: u64,
    /// Repair runs executed.
    pub repairs: usize,
    /// Total relocations across all repairs.
    pub moves: usize,
    /// Summary-delta events coalesced through the batch.
    pub summary_events: u64,
    /// `SummaryUpdate` messages the batched flushes published.
    pub summary_updates_batched: u64,
    /// `SummaryUpdate` messages eager per-event publication would have
    /// cost (charged by the `System` churn hooks; the baseline the
    /// batch is saving against).
    pub summary_updates_per_event: u64,
    /// Occurrence-weighted per-query fan-out distribution.
    pub histogram: ForwardHistogram,
    /// Per-repair-window rows (repairs plus the tail window).
    pub windows: Vec<TrafficWindow>,
    /// Per-repair fidelity rows — non-empty exactly when the run used
    /// [`DecisionSource::Observed`] and at least one repair tick fired.
    pub fidelity: Vec<TrafficFidelity>,
    /// Normalized social cost at the end of the run.
    pub final_scost: f64,
}

impl TrafficReport {
    /// Fraction of flood results the routed stream failed to return
    /// (lossy drops + staleness).
    pub fn false_negative_rate(&self) -> f64 {
        let total = self.returned_results + self.missed_results;
        if total == 0 {
            0.0
        } else {
            self.missed_results as f64 / total as f64
        }
    }

    /// Forward messages per query occurrence.
    pub fn forwards_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.forwards as f64 / self.queries as f64
        }
    }

    /// Throughput for a measured wall-clock duration. The only
    /// machine-dependent number in the report, which is why the elapsed
    /// time is an argument instead of a field: everything stored is
    /// deterministic.
    pub fn queries_per_sec(&self, elapsed_seconds: f64) -> f64 {
        if elapsed_seconds <= 0.0 {
            0.0
        } else {
            self.queries as f64 / elapsed_seconds
        }
    }

    /// Mean per-repair agreement rate (`1.0` when the run was
    /// oracle-driven and produced no fidelity rows).
    pub fn mean_agreement(&self) -> f64 {
        if self.fidelity.is_empty() {
            return 1.0;
        }
        self.fidelity.iter().map(|f| f.agreement_rate).sum::<f64>() / self.fidelity.len() as f64
    }

    /// Relative cost excess of the last observed repair over its oracle
    /// reference (`0` when oracle-driven or no repairs fired).
    pub fn final_scost_gap(&self) -> f64 {
        self.fidelity.last().map_or(0.0, |f| {
            if f.scost_oracle_repair == 0.0 {
                0.0
            } else {
                f.scost_observed_repair / f.scost_oracle_repair - 1.0
            }
        })
    }

    /// FNV-1a digest over every deterministic field (counters as
    /// integers, floats by raw bits) — one number that moves if
    /// anything in the run moved.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.slices as u64);
        h.u64(self.peers as u64);
        h.u64(self.queries);
        h.u64(self.distinct_evaluations);
        h.u64(self.forwards);
        h.u64(self.flood_forwards);
        h.u64(self.returned_results);
        h.u64(self.missed_results);
        h.u64(self.churn_events);
        h.u64(self.repairs as u64);
        h.u64(self.moves as u64);
        h.u64(self.summary_events);
        h.u64(self.summary_updates_batched);
        h.u64(self.summary_updates_per_event);
        h.u64(self.histogram.total_occurrences());
        h.u64(self.histogram.p50());
        h.u64(self.histogram.p99());
        h.u64(self.histogram.max());
        for w in &self.windows {
            h.u64(w.slice as u64);
            h.u64(w.queries);
            h.u64(w.forwards);
            h.u64(w.returned);
            h.u64(w.missed);
            h.u64(w.moves as u64);
            h.f64(w.scost);
        }
        // Folded only when present so oracle-mode digests are
        // byte-identical to releases that predate observed decisions.
        for f in &self.fidelity {
            h.u64(f.slice as u64);
            h.f64(f.agreement_rate);
            h.f64(f.scost_observed_repair);
            h.f64(f.scost_oracle_repair);
        }
        h.f64(self.final_scost);
        h.finish()
    }

    /// Renders the report as the golden-snapshot text: a header, one
    /// row per window, a summary block, and the digest line. No
    /// wall-clock anything — byte-stable across machines.
    pub fn render(&self, name: &str, seed: u64) -> String {
        let mut out = format!(
            "{name} mode={} slices={} peers={} seed={seed}\n",
            self.mode, self.slices, self.peers
        );
        for w in &self.windows {
            let _ = writeln!(
                out,
                "window@{}|queries={}|forwards={}|returned={}|missed={}|moves={}|scost={:.3}",
                w.slice, w.queries, w.forwards, w.returned, w.missed, w.moves, w.scost
            );
        }
        let _ = writeln!(
            out,
            "queries={} forwards={} flood={} fwd/q={:.3} fn={:.6}",
            self.queries,
            self.forwards,
            self.flood_forwards,
            self.forwards_per_query(),
            self.false_negative_rate()
        );
        let _ = writeln!(
            out,
            "fanout p50={} p99={} max={} evals={}",
            self.histogram.p50(),
            self.histogram.p99(),
            self.histogram.max(),
            self.distinct_evaluations
        );
        let _ = writeln!(
            out,
            "churn={} repairs={} moves={} summary_events={} summary_msgs batched={} per_event={}",
            self.churn_events,
            self.repairs,
            self.moves,
            self.summary_events,
            self.summary_updates_batched,
            self.summary_updates_per_event
        );
        for f in &self.fidelity {
            let _ = writeln!(
                out,
                "fidelity@{}|agree={:.6}|scost_obs={:.6}|scost_oracle={:.6}",
                f.slice, f.agreement_rate, f.scost_observed_repair, f.scost_oracle_repair
            );
        }
        if !self.fidelity.is_empty() {
            let _ = writeln!(
                out,
                "fidelity mean_agree={:.6} final_gap={:.6}",
                self.mean_agreement(),
                self.final_scost_gap()
            );
        }
        let _ = writeln!(out, "final_scost={:.6}", self.final_scost);
        let _ = writeln!(out, "traffic-digest: {:016x}", self.digest());
        out
    }
}

/// Tiny FNV-1a accumulator for [`TrafficReport::digest`] — same offset
/// basis and prime as the golden suite's `BitDigest`.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Per-cluster result cache behind the streamed evaluation: for each
/// `(cluster, query)` pair the total result count and the number of
/// answering peers, invalidated per cluster whenever membership or
/// content changes. Between invalidations a repeated query costs one
/// map lookup per target cluster instead of a member walk — the
/// amortization that makes a million-occurrence stream tractable.
struct EvalCache {
    per_cluster: Vec<BTreeMap<Query, (u64, u64)>>,
    misses: u64,
}

impl EvalCache {
    fn new(cmax: usize) -> Self {
        EvalCache {
            per_cluster: vec![BTreeMap::new(); cmax],
            misses: 0,
        }
    }

    fn ensure_cmax(&mut self, cmax: usize) {
        if self.per_cluster.len() < cmax {
            self.per_cluster.resize(cmax, BTreeMap::new());
        }
    }

    fn invalidate(&mut self, cid: ClusterId) {
        self.per_cluster[cid.index()].clear();
    }

    /// `(results, answering peers)` of `query` in `cid`, from cache or
    /// by walking the cluster's members once.
    fn eval(&mut self, system: &System, cid: ClusterId, query: &Query) -> (u64, u64) {
        if let Some(&hit) = self.per_cluster[cid.index()].get(query) {
            return hit;
        }
        self.misses += 1;
        let mut results = 0u64;
        let mut peers = 0u64;
        for &peer in system.overlay().cluster(cid).members() {
            let count = system.store().result_count(query, peer);
            if count > 0 {
                results += count;
                peers += 1;
            }
        }
        self.per_cluster[cid.index()].insert(query.clone(), (results, peers));
        (results, peers)
    }
}

/// The streamed-traffic engine. Build with [`TrafficEngine::new`], run
/// to completion with [`TrafficEngine::run`] (or use the [`run_traffic`]
/// convenience).
pub struct TrafficEngine {
    testbed: TestBed,
    cfg: TrafficConfig,
    dynamics: WorkloadDynamics,
    rng: StdRng,
    /// The summaries queries route against — stale between flushes.
    published: ClusterSummaries,
    /// Pending deltas since the last publication.
    batch: SummaryBatch,
    plan: Option<RoutePlan>,
    cache: EvalCache,
    /// Maintenance-side ledger (churn, protocol, eager summary hooks).
    net: SimNetwork,
    demand_per_peer: u64,
    /// Folded observation estimates (observed decision mode only).
    stats: Option<ObservedStats>,
    // Running aggregates.
    histogram: ForwardHistogram,
    windows: Vec<TrafficWindow>,
    fidelity: Vec<TrafficFidelity>,
    queries: u64,
    forwards: u64,
    flood_forwards: u64,
    returned: u64,
    missed: u64,
    churn_events: u64,
    repairs: usize,
    moves: usize,
    summary_events: u64,
    summary_updates_batched: u64,
    // Window-relative marks.
    win_queries: u64,
    win_forwards: u64,
    win_returned: u64,
    win_missed: u64,
}

impl TrafficEngine {
    /// Builds the engine over the ideal scenario-1 overlay for `cfg`
    /// (cluster k = category k — the converged state a serving system
    /// operates from), with the initial summaries published and an
    /// initial route plan in place.
    pub fn new(cfg: &ExperimentConfig, traffic: TrafficConfig) -> Self {
        let testbed = ideal_scenario1_system(cfg);
        let dynamics = WorkloadDynamics::new(&testbed, traffic.zipf_s);
        let published = testbed.system.summaries().clone();
        let plan = match traffic.mode {
            RoutingMode::Flood => None,
            RoutingMode::Routed(precision) => Some(RoutePlan::build(&published, precision)),
        };
        let cmax = testbed.system.overlay().cmax();
        let demand_per_peer = (cfg.total_queries / cfg.n_peers as u64).max(1);
        TrafficEngine {
            rng: seeded_rng(derive_seed(cfg.seed, 0x7AF1C)),
            dynamics,
            published,
            batch: SummaryBatch::new(),
            plan,
            cache: EvalCache::new(cmax),
            net: SimNetwork::new(),
            demand_per_peer,
            stats: match traffic.decisions {
                DecisionSource::Observed { decay } => Some(ObservedStats::new(decay)),
                DecisionSource::Oracle => None,
            },
            testbed,
            cfg: traffic,
            histogram: ForwardHistogram::new(),
            windows: Vec::new(),
            fidelity: Vec::new(),
            queries: 0,
            forwards: 0,
            flood_forwards: 0,
            returned: 0,
            missed: 0,
            churn_events: 0,
            repairs: 0,
            moves: 0,
            summary_events: 0,
            summary_updates_batched: 0,
            win_queries: 0,
            win_forwards: 0,
            win_returned: 0,
            win_missed: 0,
        }
    }

    /// Runs the full schedule and returns the report.
    pub fn run(mut self) -> TrafficReport {
        for t in 0..self.cfg.slices {
            if self.cfg.churn_every > 0 && t > 0 && t % self.cfg.churn_every == 0 {
                self.churn_tick();
            }
            if self.cfg.repair_every > 0 && t > 0 && t % self.cfg.repair_every == 0 {
                self.repair_tick(t);
            }
            self.query_slice(t);
        }
        self.close_window(self.cfg.slices, 0);
        let final_scost = scost_normalized(&self.testbed.system);
        TrafficReport {
            mode: self.cfg.mode,
            slices: self.cfg.slices,
            peers: self.testbed.system.overlay().n_peers(),
            queries: self.queries,
            distinct_evaluations: self.cache.misses,
            forwards: self.forwards,
            flood_forwards: self.flood_forwards,
            returned_results: self.returned,
            missed_results: self.missed,
            churn_events: self.churn_events,
            repairs: self.repairs,
            moves: self.moves,
            summary_events: self.summary_events,
            summary_updates_batched: self.summary_updates_batched,
            summary_updates_per_event: self.net.messages(MsgKind::SummaryUpdate),
            histogram: self.histogram,
            windows: self.windows,
            fidelity: self.fidelity,
            final_scost,
        }
    }

    /// One churn tick: leaves then joins, every summary delta recorded
    /// into the batch (the `System` hooks keep the *oracle* summaries
    /// eagerly exact; the published copy waits for the next flush).
    fn churn_tick(&mut self) {
        for _ in 0..self.cfg.leaves_per_tick {
            let Some(event) = random_leave(self.testbed.system.overlay(), &mut self.rng) else {
                continue;
            };
            let ChurnEvent::Leave { peer } = event else {
                unreachable!("random_leave only emits leaves");
            };
            // Snapshot before the hook drops the docs from the store.
            let docs = self.testbed.system.store().docs(peer).to_vec();
            if let Some(ChurnDelta::Left { peer, cluster }) =
                self.testbed.system.apply_churn_event(&mut self.net, event)
            {
                self.testbed
                    .system
                    .set_workload(peer, recluster_types::Workload::new());
                self.batch.record_leave(&docs, cluster);
                self.cache.invalidate(cluster);
                self.churn_events += 1;
            }
        }
        let n_categories = self.testbed.holdout.len();
        for _ in 0..self.cfg.joins_per_tick {
            let cat = self.rng.gen_range(0..n_categories);
            let pool = &self.testbed.holdout[cat];
            let docs: Vec<_> = (0..5)
                .map(|_| pool[self.rng.gen_range(0..pool.len())].clone())
                .collect();
            let target = {
                let non_empty = self.testbed.system.overlay().non_empty_ids();
                non_empty[self.rng.gen_range(0..non_empty.len())]
            };
            let delta = self
                .testbed
                .system
                .apply_churn_event(
                    &mut self.net,
                    ChurnEvent::Join {
                        cluster: target,
                        docs,
                    },
                )
                .expect("join events always apply");
            let peer = delta.peer();
            let mut wrng = seeded_rng(derive_seed(self.rng.gen(), 0x10));
            let builder = WorkloadBuilder::new(QueryBias::Uniform)
                .with_doc_limit(self.testbed.distributable_per_category);
            let sampler = builder.sampler(&self.testbed.corpus, cat);
            let workload = builder.build_with(&sampler, self.demand_per_peer, &mut wrng);
            self.testbed.system.set_workload(peer, workload);
            self.testbed.peer_category.push(cat);
            self.testbed.query_category.push(Some(cat));
            self.batch
                .record_join(self.testbed.system.store().docs(peer), target);
            self.cache.ensure_cmax(self.testbed.system.overlay().cmax());
            self.cache.invalidate(target);
            self.churn_events += 1;
        }
    }

    /// One repair tick: flush → republish → repair → record the
    /// repair's moves for the *next* flush. Queries between this tick
    /// and the next therefore see the pre-repair content map — exactly
    /// the staleness a real publication cadence implies.
    fn repair_tick(&mut self, t: usize) {
        // Publish: apply the coalesced deltas and charge one broadcast
        // per *touched* cluster (events that cancelled out cost zero).
        let stats = self.batch.flush_into(&mut self.published);
        // Joins may have grown the slot space past the highest *touched*
        // slot; mirror the oracle's width so untouched trailing slots
        // compare equal.
        self.published
            .ensure_cmax(self.testbed.system.overlay().cmax());
        self.summary_events += stats.events;
        let theta = self.testbed.system.config().theta;
        for &(cid, terms) in &stats.clusters {
            let fanout = theta.broadcast_messages(self.testbed.system.overlay().size(cid));
            let _ = terms; // payload size would be 16 + 4·terms bytes
            self.summary_updates_batched += fanout;
        }
        debug_assert_eq!(
            &self.published,
            self.testbed.system.summaries(),
            "flush must land exactly on the eagerly maintained oracle"
        );
        self.plan = match self.cfg.mode {
            RoutingMode::Flood => None,
            RoutingMode::Routed(precision) => Some(RoutePlan::build(&self.published, precision)),
        };

        // Repair, then diff membership to feed the next batch: the
        // protocol relocates peers through the System hooks (eager
        // oracle), and the published view learns about it at the next
        // flush, like every other delta.
        let n_slots = self.testbed.system.overlay().n_slots();
        let before: Vec<Option<ClusterId>> = (0..n_slots)
            .map(|s| {
                self.testbed
                    .system
                    .overlay()
                    .cluster_of(PeerId::from_index(s))
            })
            .collect();
        let outcome = if let Some(stats) = self.stats.as_mut() {
            // Observation pass: every peer's workload routed under the
            // configured mode — with lossy summaries the peers learn a
            // degraded picture, and the repair quality follows it. Runs
            // on a scratch ledger: observation traffic is the query
            // stream already measured above, not extra messages.
            let mut obs_net = SimNetwork::new();
            let (observations, _) =
                simulate_period_routed(&self.testbed.system, &mut obs_net, self.cfg.mode);
            stats.absorb(&observations);
            let agreement_rate =
                decision_agreement(&mut self.testbed.system, self.cfg.maintenance, stats, true);
            // Reference oracle repair from the same pre-repair state.
            let mut reference = self.testbed.system.clone();
            let mut scratch = SimNetwork::new();
            run_protocol(
                &mut reference,
                self.cfg.maintenance,
                self.cfg.protocol,
                &mut scratch,
            );
            let outcome = run_protocol_observed(
                &mut self.testbed.system,
                self.cfg.maintenance,
                stats,
                self.cfg.protocol,
                &mut self.net,
            );
            self.fidelity.push(TrafficFidelity {
                slice: t,
                agreement_rate,
                scost_observed_repair: scost_normalized(&self.testbed.system),
                scost_oracle_repair: scost_normalized(&reference),
            });
            outcome
        } else {
            run_protocol(
                &mut self.testbed.system,
                self.cfg.maintenance,
                self.cfg.protocol,
                &mut self.net,
            )
        };
        let window_moves = outcome.total_moves();
        self.moves += window_moves;
        self.repairs += 1;
        for (slot, &was) in before.iter().enumerate() {
            let peer = PeerId::from_index(slot);
            let now = self.testbed.system.overlay().cluster_of(peer);
            if was == now {
                continue;
            }
            let docs = self.testbed.system.store().docs(peer);
            match (was, now) {
                (Some(from), Some(to)) => {
                    self.batch.record_move(docs, from, to);
                    self.cache.invalidate(from);
                    self.cache.invalidate(to);
                }
                // The protocol never churns peers, but stay total.
                (None, Some(to)) => {
                    self.batch.record_join(docs, to);
                    self.cache.invalidate(to);
                }
                (Some(from), None) => {
                    self.batch.record_leave(docs, from);
                    self.cache.invalidate(from);
                }
                (None, None) => unreachable!("guarded by the inequality above"),
            }
        }
        self.close_window(t, window_moves);
    }

    /// Routes one slice's sampled stream through the (possibly stale)
    /// plan, evaluating each distinct query once per target cluster via
    /// the cache and weighting by its occurrence count.
    fn query_slice(&mut self, t: usize) {
        let slice = self.dynamics.sample_slice(&self.cfg, t, &mut self.rng);
        let mut targets: Vec<ClusterId> = Vec::new();
        for (query, &occ) in &slice {
            let live: &[ClusterId] = self.testbed.system.overlay().non_empty_ids();
            match &self.plan {
                None => {
                    targets.clear();
                    targets.extend_from_slice(live);
                }
                Some(plan) => plan.route_into(query, &mut targets),
            }
            let mut fanned = 0u64;
            let mut returned = 0u64;
            for &cid in &targets {
                // A stale plan may point at a cluster that emptied since
                // the last publication; like `route_to_clusters`, an
                // empty cluster is skipped without traffic.
                if self.testbed.system.overlay().cluster(cid).is_empty() {
                    continue;
                }
                fanned += 1;
                let (results, _peers) = self.cache.eval(&self.testbed.system, cid, query);
                returned += results;
            }
            // What flooding the *live* overlay would have found in the
            // clusters the plan skipped: lossy drops plus staleness.
            let mut missed = 0u64;
            for &cid in live {
                if targets.binary_search(&cid).is_ok() {
                    continue;
                }
                let (results, _) = self.cache.eval(&self.testbed.system, cid, query);
                missed += results;
            }
            self.histogram.record(fanned as usize, occ);
            self.queries += occ;
            self.forwards += fanned * occ;
            self.flood_forwards += live.len() as u64 * occ;
            self.returned += returned * occ;
            self.missed += missed * occ;
            self.win_queries += occ;
            self.win_forwards += fanned * occ;
            self.win_returned += returned * occ;
            self.win_missed += missed * occ;
        }
    }

    fn close_window(&mut self, slice: usize, moves: usize) {
        self.windows.push(TrafficWindow {
            slice,
            queries: self.win_queries,
            forwards: self.win_forwards,
            returned: self.win_returned,
            missed: self.win_missed,
            moves,
            scost: scost_normalized(&self.testbed.system),
        });
        self.win_queries = 0;
        self.win_forwards = 0;
        self.win_returned = 0;
        self.win_missed = 0;
    }
}

/// Builds and runs a [`TrafficEngine`] in one call.
pub fn run_traffic(cfg: &ExperimentConfig, traffic: &TrafficConfig) -> TrafficReport {
    TrafficEngine::new(cfg, traffic.clone()).run()
}

/// The `traffic_demo` scenario: 10 000 peers serving ≈1.3 M routed
/// query occurrences over 250 slices, with a 40 %-amplitude diurnal
/// swing, topic drift every 40 slices, five flash-crowd windows, churn
/// every 10 slices and repair (with summary publication) every 25.
/// Deterministic in `seed` — the golden suite pins the full report
/// digest and `traffic_scale` gates its metrics.
pub fn traffic_demo_config(seed: u64) -> (ExperimentConfig, TrafficConfig) {
    (
        ExperimentConfig::large(seed),
        TrafficConfig {
            slices: 250,
            queries_per_slice: 4_500,
            diurnal_period: 50,
            diurnal_amplitude_pct: 40,
            zipf_s: 0.9,
            drift_every: 40,
            flash_every: 60,
            flash_len: 5,
            flash_topics: 2,
            flash_boost_pct: 150,
            churn_every: 10,
            leaves_per_tick: 2,
            joins_per_tick: 2,
            repair_every: 25,
            maintenance: StrategyKind::Selfish,
            protocol: ProtocolConfig::builder()
                .epsilon(1e-3)
                .max_rounds(3)
                .build(),
            mode: RoutingMode::Routed(SummaryMode::Exact),
            decisions: DecisionSource::Oracle,
        },
    )
}

/// Miniature traffic scenario over the 40-peer testbed — the
/// debug-build tier: a few thousand occurrences, every dynamic
/// (diurnal, drift, flash, churn, repair) exercised.
pub fn traffic_small_config(seed: u64) -> (ExperimentConfig, TrafficConfig) {
    (
        ExperimentConfig::small(seed),
        TrafficConfig {
            slices: 24,
            queries_per_slice: 120,
            diurnal_period: 12,
            diurnal_amplitude_pct: 50,
            zipf_s: 1.0,
            drift_every: 6,
            flash_every: 10,
            flash_len: 2,
            flash_topics: 1,
            flash_boost_pct: 100,
            churn_every: 4,
            leaves_per_tick: 1,
            joins_per_tick: 1,
            repair_every: 8,
            maintenance: StrategyKind::Selfish,
            protocol: ProtocolConfig::builder()
                .epsilon(1e-3)
                .max_rounds(10)
                .build(),
            mode: RoutingMode::Routed(SummaryMode::Exact),
            decisions: DecisionSource::Oracle,
        },
    )
}

/// [`traffic_small_config`] with repair decisions driven by *observed*
/// statistics (decay 0.25 — the EMA path, folding a quarter of the
/// previous window's estimates into each new one). Debug-tier golden:
/// the report carries per-repair fidelity rows pinning observed-vs-
/// oracle agreement and repair quality.
pub fn traffic_small_observed_config(seed: u64) -> (ExperimentConfig, TrafficConfig) {
    let (cfg, mut traffic) = traffic_small_config(seed);
    traffic.decisions = DecisionSource::Observed { decay: 0.25 };
    (cfg, traffic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_deterministic_and_consistent() {
        let (cfg, traffic) = traffic_small_config(11);
        let a = run_traffic(&cfg, &traffic);
        let b = run_traffic(&cfg, &traffic);
        assert_eq!(a, b, "two identical runs must agree field for field");
        assert_eq!(a.digest(), b.digest());
        assert!(a.queries > 1_000);
        assert_eq!(
            a.histogram.total_occurrences(),
            a.queries,
            "every occurrence lands in the fan-out histogram"
        );
        assert!(a.forwards <= a.flood_forwards);
        assert_eq!(a.windows.len(), a.repairs + 1, "repair windows + tail");
        let win_q: u64 = a.windows.iter().map(|w| w.queries).sum();
        assert_eq!(win_q, a.queries, "windows partition the stream");
    }

    #[test]
    fn flood_mode_misses_nothing_and_fans_maximally() {
        let (cfg, mut traffic) = traffic_small_config(13);
        traffic.mode = RoutingMode::Flood;
        let report = run_traffic(&cfg, &traffic);
        assert_eq!(report.missed_results, 0);
        assert_eq!(report.forwards, report.flood_forwards);
        assert_eq!(report.false_negative_rate(), 0.0);
    }

    #[test]
    fn routed_beats_flood_on_forwards_with_identical_repairs() {
        let (cfg, traffic) = traffic_small_config(17);
        let routed = run_traffic(&cfg, &traffic);
        let flood = run_traffic(
            &cfg,
            &TrafficConfig {
                mode: RoutingMode::Flood,
                ..traffic
            },
        );
        // Routing changes what queries cost, never what repair does.
        assert_eq!(routed.moves, flood.moves);
        assert_eq!(routed.final_scost.to_bits(), flood.final_scost.to_bits());
        assert_eq!(routed.queries, flood.queries);
        assert!(routed.forwards < flood.forwards);
    }

    #[test]
    fn lossy_summaries_induce_false_negatives() {
        let (cfg, mut traffic) = traffic_small_config(19);
        traffic.mode = RoutingMode::Routed(SummaryMode::TopK(2));
        let report = run_traffic(&cfg, &traffic);
        assert!(
            report.missed_results > 0,
            "a 2-term summary must drop something"
        );
        assert!(report.false_negative_rate() > 0.0);
        assert!(report.false_negative_rate() < 1.0);
    }

    #[test]
    fn batching_coalesces_summary_traffic() {
        let (cfg, traffic) = traffic_small_config(23);
        let report = run_traffic(&cfg, &traffic);
        assert!(report.summary_events > 0, "churn + moves feed the batch");
        assert!(
            report.summary_updates_batched <= report.summary_updates_per_event,
            "batched {} > per-event {}",
            report.summary_updates_batched,
            report.summary_updates_per_event
        );
    }

    #[test]
    fn oracle_runs_carry_no_fidelity_rows() {
        let (cfg, traffic) = traffic_small_config(11);
        let report = run_traffic(&cfg, &traffic);
        assert!(report.fidelity.is_empty());
        assert_eq!(report.mean_agreement(), 1.0);
        assert_eq!(report.final_scost_gap(), 0.0);
    }

    #[test]
    fn observed_runs_report_fidelity_and_stay_deterministic() {
        let (cfg, traffic) = traffic_small_observed_config(11);
        let a = run_traffic(&cfg, &traffic);
        let b = run_traffic(&cfg, &traffic);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.fidelity.len(), a.repairs, "one fidelity row per repair");
        // Exact routing gives lossless observations: the observed
        // decisions track the oracle closely and repairs stay effective.
        assert!(a.mean_agreement() > 0.9, "agreement {}", a.mean_agreement());
        assert!(
            a.final_scost_gap().abs() < 0.1,
            "gap {}",
            a.final_scost_gap()
        );
    }

    #[test]
    fn lossy_observations_degrade_fidelity() {
        let (cfg, traffic) = traffic_small_observed_config(13);
        let exact = run_traffic(&cfg, &traffic);
        let lossy = run_traffic(
            &cfg,
            &TrafficConfig {
                mode: RoutingMode::Routed(SummaryMode::TopK(1)),
                ..traffic
            },
        );
        assert!(
            lossy.mean_agreement() <= exact.mean_agreement() + 1e-12,
            "lossy {} vs exact {}",
            lossy.mean_agreement(),
            exact.mean_agreement()
        );
    }

    #[test]
    fn dynamics_shapes_are_integer_exact() {
        let (cfg, traffic) = traffic_small_config(29);
        let tb = ideal_scenario1_system(&cfg);
        let dyn_ = WorkloadDynamics::new(&tb, traffic.zipf_s);
        // Triangle wave: extremes at ±amplitude, exact integers.
        let rates: Vec<u64> = (0..traffic.diurnal_period)
            .map(|t| dyn_.slice_rate(&traffic, t))
            .collect();
        let base = traffic.queries_per_slice;
        let amp = base * traffic.diurnal_amplitude_pct / 100;
        assert_eq!(rates.iter().copied().max(), Some(base + amp));
        assert_eq!(rates.iter().copied().min(), Some(base - amp));
        // Drift rotates the rank→topic mapping one step per interval.
        assert_eq!(dyn_.topic_at(&traffic, 0, 0), 0);
        assert_eq!(
            dyn_.topic_at(&traffic, traffic.drift_every, 0),
            1 % tb.holdout.len()
        );
        // Flash windows open exactly on schedule.
        assert!(dyn_.flash_at(&traffic, 0).is_some());
        assert!(dyn_.flash_at(&traffic, traffic.flash_len).is_none());
        let (w, extra) = dyn_.flash_at(&traffic, traffic.flash_every).unwrap();
        assert_eq!(w, 1);
        assert_eq!(extra, base * traffic.flash_boost_pct / 100);
    }

    #[test]
    fn slice_sampling_is_coalesced_and_totals_match_rate() {
        let (cfg, traffic) = traffic_small_config(31);
        let tb = ideal_scenario1_system(&cfg);
        let dyn_ = WorkloadDynamics::new(&tb, traffic.zipf_s);
        let mut rng = seeded_rng(1);
        let t = 1; // no flash at t=1 (flash_len=2 ⇒ t=0,1 are in window)
        let slice = dyn_.sample_slice(&traffic, 3, &mut rng);
        let _ = t;
        let drawn: u64 = slice.values().sum();
        assert_eq!(drawn, dyn_.slice_rate(&traffic, 3));
        assert!(slice.len() as u64 <= drawn, "coalescing never expands");
    }
}
