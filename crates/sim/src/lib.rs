//! Experiment harness reproducing the paper's evaluation (§4).
//!
//! * [`scenario`] — builds the testbed: 200 peers sharing synthetic
//!   Newsgroup-like articles from 10 categories, the three data/query
//!   distributions of §4.1 (same category, different categories,
//!   uniform) and the four initial cluster configurations (i)–(iv).
//! * [`updates`] — the §4.2 update generators: workload retargeting and
//!   blending, data replacement and blending.
//! * [`table1`] — Experiment E1 (Table 1): convergence, cluster counts
//!   and costs for every scenario × initial configuration × strategy.
//! * [`fig1`] — Experiment E2 (Figure 1): per-round social and workload
//!   cost.
//! * [`fig23`] — Experiments E3/E4 (Figures 2 and 3): social cost after
//!   maintenance vs. the fraction of updated peers / workload / data.
//! * [`fig4`] — Experiment E5 (Figure 4): individual cost of a selfish
//!   peer under gradual workload change for α ∈ {0, 1, 2}.
//! * [`baseline_cmp`] — our extension: message-cost and quality
//!   comparison against global k-means re-clustering, random relocation
//!   and no maintenance.
//! * [`traffic`] — our extension: the streamed query-serving engine —
//!   routed queries under live churn with batched summary publication
//!   and throughput/p99 fan-out observability.
//! * [`netsim`] — our extension: the typed-message runtime under
//!   degraded schedules — the delay/reorder sweep (does equilibrium
//!   scost survive stale grants?) and the liar audit (inflated claims
//!   attributed against observed statistics).
//! * [`knobs`] — shared `RECLUSTER_*` environment-knob parsing for the
//!   experiment binaries; malformed values warn on stderr, never
//!   silently fall back.
//! * [`report`] — plain-text table/series rendering and CSV export.
//!
//! The churn and traffic scenarios both honour
//! [`DecisionSource`](recluster_core::DecisionSource): under
//! `Observed` peers relocate on traffic-folded estimates and the run
//! reports per-repair observed-vs-oracle fidelity
//! ([`FidelityReport`], [`TrafficFidelity`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baseline_cmp;
pub mod churn;
pub mod fig1;
pub mod fig23;
pub mod fig4;
pub mod knobs;
pub mod lookup;
pub mod netsim;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod table1;
pub mod traffic;
pub mod updates;

pub use churn::{
    run_churn, run_churn_with_fidelity, ChurnConfig, ChurnPeriod, FidelityPeriod, FidelityReport,
};
pub use recluster_overlay::{RoutingMode, SummaryMode};
pub use runner::{
    decision_agreement, measure_query_traffic, run_protocol, run_protocol_observed, sweep_map,
    Parallelism, StrategyKind,
};
pub use scenario::{
    build_system, ideal_scenario1_system, ExperimentConfig, InitialConfig, Scenario, TestBed,
};
pub use traffic::{
    run_traffic, traffic_demo_config, traffic_small_config, traffic_small_observed_config,
    TrafficConfig, TrafficEngine, TrafficFidelity, TrafficReport, TrafficWindow, WorkloadDynamics,
};
