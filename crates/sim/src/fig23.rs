//! Experiments E3/E4 — Figures 2 and 3: social cost after maintenance
//! under workload and data updates (§4.2).
//!
//! Starting from the converged scenario-1 overlay with uniform demand,
//! one cluster (`c_cur`) is perturbed — its peers' *workload* retargets
//! to the data of another cluster (Figure 2) or its *data* is replaced by
//! another category (Figure 3) — by a varying fraction; the protocol then
//! runs to quiescence with the cluster count held fixed
//! ([`EmptyTargetPolicy::Never`], ε = 0.001 as in the paper) and the
//! final normalized social cost is recorded.

use recluster_core::{EmptyTargetPolicy, ProtocolConfig};
use recluster_corpus::QueryBias;
use recluster_overlay::SimNetwork;
use recluster_types::ClusterId;

use crate::runner::{run_protocol, StrategyKind};
use crate::scenario::{ideal_scenario1_system, ExperimentConfig};
use crate::updates;

/// Which §4.2 update is swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Fig. 2 (left): a varying fraction of `c_cur`'s peers retarget
    /// their entire workload.
    WorkloadPeers,
    /// Fig. 2 (right): all of `c_cur`'s peers retarget a varying fraction
    /// of their workload.
    WorkloadBlend,
    /// Fig. 3 (left): a varying fraction of `c_cur`'s peers have their
    /// data replaced by another category.
    DataPeers,
    /// Fig. 3 (right): all of `c_cur`'s peers replace a varying fraction
    /// of their data.
    DataBlend,
}

impl UpdateMode {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateMode::WorkloadPeers => "updated-peers(workload)",
            UpdateMode::WorkloadBlend => "updated-workload",
            UpdateMode::DataPeers => "updated-peers(data)",
            UpdateMode::DataBlend => "updated-data",
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Update fraction in `[0, 1]`.
    pub fraction: f64,
    /// Normalized social cost immediately after the update (before any
    /// maintenance).
    pub scost_before: f64,
    /// Normalized social cost after the protocol quiesces.
    pub scost_after: f64,
    /// Rounds the maintenance run took.
    pub rounds: usize,
    /// Peers relocated.
    pub moves: usize,
}

/// One strategy's sweep.
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// Strategy label.
    pub strategy: String,
    /// The update mode swept.
    pub mode: UpdateMode,
    /// Points in ascending fraction order.
    pub points: Vec<SweepPoint>,
}

/// The perturbed cluster: the paper's `c_cur` (we use category-0's
/// cluster).
pub const C_CUR: ClusterId = ClusterId(0);
/// The cluster holding the data the updates shift toward (`c_new`).
pub const NEW_CATEGORY: usize = 1;

/// Runs one update sweep for one strategy.
pub fn run_update_sweep(
    cfg: &ExperimentConfig,
    mode: UpdateMode,
    kind: StrategyKind,
    fractions: &[f64],
    max_rounds: usize,
) -> SweepSeries {
    let points = fractions
        .iter()
        .map(|&fraction| run_point(cfg, mode, kind, fraction, max_rounds))
        .collect();
    SweepSeries {
        strategy: kind.label(),
        mode,
        points,
    }
}

/// Runs a single `(mode, strategy, fraction)` cell from a fresh testbed.
pub fn run_point(
    cfg: &ExperimentConfig,
    mode: UpdateMode,
    kind: StrategyKind,
    fraction: f64,
    max_rounds: usize,
) -> SweepPoint {
    let mut testbed = ideal_scenario1_system(cfg);
    let seed = recluster_types::derive_seed(cfg.seed, (fraction * 1000.0) as u64);
    match mode {
        UpdateMode::WorkloadPeers => {
            updates::retarget_peers(
                &mut testbed,
                C_CUR,
                NEW_CATEGORY,
                fraction,
                QueryBias::Uniform,
                seed,
            );
        }
        UpdateMode::WorkloadBlend => {
            updates::blend_workload(
                &mut testbed,
                C_CUR,
                NEW_CATEGORY,
                fraction,
                QueryBias::Uniform,
                seed,
            );
        }
        UpdateMode::DataPeers => {
            updates::replace_data_peers(&mut testbed, C_CUR, NEW_CATEGORY, fraction);
        }
        UpdateMode::DataBlend => {
            updates::blend_data(&mut testbed, C_CUR, NEW_CATEGORY, fraction);
        }
    }
    let scost_before = recluster_core::scost_normalized(&testbed.system);
    let mut net = SimNetwork::new();
    // §4.2: cluster count fixed (no empty targets).
    let protocol = ProtocolConfig::builder()
        .epsilon(1e-3)
        .max_rounds(max_rounds)
        .empty_targets(EmptyTargetPolicy::Never)
        .use_locks(true)
        .build();
    let outcome = run_protocol(&mut testbed.system, kind, protocol, &mut net);
    SweepPoint {
        fraction,
        scost_before,
        scost_after: recluster_core::scost_normalized(&testbed.system),
        rounds: outcome.rounds_to_converge(),
        moves: outcome.total_moves(),
    }
}

/// Runs a full figure (both strategies over the standard fraction grid).
pub fn run_figure(
    cfg: &ExperimentConfig,
    mode: UpdateMode,
    fractions: &[f64],
    max_rounds: usize,
) -> Vec<SweepSeries> {
    StrategyKind::paper_pair()
        .into_iter()
        .map(|k| run_update_sweep(cfg, mode, k, fractions, max_rounds))
        .collect()
}

/// The fraction grid the paper plots (0, 0.1, …, 1.0).
pub fn standard_fractions() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(41)
    }

    #[test]
    fn zero_fraction_leaves_cost_at_baseline() {
        let p = run_point(
            &cfg(),
            UpdateMode::WorkloadPeers,
            StrategyKind::Selfish,
            0.0,
            40,
        );
        assert!((p.scost_before - p.scost_after).abs() < 1e-6);
        assert_eq!(p.moves, 0);
    }

    #[test]
    fn workload_update_raises_cost_before_maintenance() {
        let p0 = run_point(
            &cfg(),
            UpdateMode::WorkloadPeers,
            StrategyKind::Selfish,
            0.0,
            40,
        );
        let p1 = run_point(
            &cfg(),
            UpdateMode::WorkloadPeers,
            StrategyKind::Selfish,
            1.0,
            40,
        );
        assert!(
            p1.scost_before > p0.scost_before + 0.05,
            "full retarget must hurt: {} vs {}",
            p1.scost_before,
            p0.scost_before
        );
    }

    #[test]
    fn selfish_maintenance_repairs_large_workload_updates() {
        let p = run_point(
            &cfg(),
            UpdateMode::WorkloadPeers,
            StrategyKind::Selfish,
            1.0,
            60,
        );
        assert!(p.moves > 0, "selfish peers must relocate");
        assert!(
            p.scost_after < p.scost_before - 0.05,
            "maintenance must repair: {} -> {}",
            p.scost_before,
            p.scost_after
        );
    }

    #[test]
    fn altruistic_ignores_small_workload_updates() {
        // The paper: providers only move once external demand overtakes
        // what they serve at home — a 20% update must not trigger moves.
        let p = run_point(
            &cfg(),
            UpdateMode::WorkloadPeers,
            StrategyKind::Altruistic,
            0.2,
            60,
        );
        assert_eq!(p.moves, 0, "altruists must sit tight at 20%");
    }

    #[test]
    fn selfish_cannot_repair_data_updates_but_altruists_can() {
        // Fig. 3's claim: after a data change the selfish strategy does
        // not recover quality (the affected peers' workloads are
        // unchanged), while altruistic providers relocate to where their
        // new data is demanded and end up strictly better.
        let selfish = run_point(
            &cfg(),
            UpdateMode::DataPeers,
            StrategyKind::Selfish,
            0.8,
            60,
        );
        let altruistic = run_point(
            &cfg(),
            UpdateMode::DataPeers,
            StrategyKind::Altruistic,
            0.8,
            60,
        );
        assert!(
            selfish.scost_after >= selfish.scost_before - 0.02,
            "selfish must not repair data updates: {} -> {}",
            selfish.scost_before,
            selfish.scost_after
        );
        assert!(altruistic.moves > 0, "altruists must relocate providers");
        // The claim is qualitative: across seeds the altruistic run
        // settles at the repaired configuration while the selfish one
        // only ever matches it by luck, so allow per-seed noise of a few
        // cost percent instead of demanding strict dominance.
        assert!(
            altruistic.scost_after <= selfish.scost_after + 0.05,
            "altruistic ({}) must not lose to selfish ({}) on data updates",
            altruistic.scost_after,
            selfish.scost_after
        );
    }

    #[test]
    fn altruists_tip_on_large_workload_updates() {
        // Fig. 2's altruistic claim: providers move only once the demand
        // from c_cur overtakes what they serve at home — at 100% the
        // demand balance tips for every provider and the move repairs
        // the cost.
        let p = run_point(
            &cfg(),
            UpdateMode::WorkloadPeers,
            StrategyKind::Altruistic,
            1.0,
            60,
        );
        assert!(p.moves > 0, "altruists must move at 100%");
        assert!(
            p.scost_after < p.scost_before - 0.02,
            "altruistic repair failed: {} -> {}",
            p.scost_before,
            p.scost_after
        );
    }

    #[test]
    fn standard_fraction_grid_is_the_papers() {
        let f = standard_fractions();
        assert_eq!(f.len(), 11);
        assert_eq!(f[0], 0.0);
        assert_eq!(f[10], 1.0);
    }

    #[test]
    fn sweep_collects_all_points() {
        let series = run_update_sweep(
            &cfg(),
            UpdateMode::WorkloadBlend,
            StrategyKind::Selfish,
            &[0.0, 0.5, 1.0],
            40,
        );
        assert_eq!(series.points.len(), 3);
        assert_eq!(series.mode, UpdateMode::WorkloadBlend);
    }
}
