//! Strategy dispatch and the deterministic sweep runner.
//!
//! Experiments select strategies by value ([`StrategyKind`]); this module
//! maps each kind onto a concrete [`ProtocolEngine`] run, and provides
//! [`sweep_map`] — the fan-out primitive every figure/table driver uses
//! to evaluate independent scenario cells (strategy × α × seed × …)
//! across cores.
//!
//! # Determinism contract
//!
//! Each cell builds its own [`System`] from its own seed and shares no
//! mutable state with its siblings, and [`sweep_map`] merges results in
//! **index order** (the in-tree rayon shim's `collect` guarantees this),
//! so a parallel sweep is byte-identical to the sequential one — the
//! equivalence is asserted in `tests/determinism.rs`, not just claimed.

use rayon::prelude::*;
use recluster_baselines::{NoMaintenance, RandomStrategy};
use recluster_core::{
    simulate_period_traffic, AltruisticStrategy, HybridStrategy, ObservedStats, ObservedStrategy,
    ProtocolConfig, ProtocolEngine, RelocationStrategy, RoutingReport, RunOutcome, SelfishStrategy,
    System,
};
use recluster_overlay::{RoutingMode, SimNetwork};
use recluster_types::PeerId;

/// The strategy roster available to experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// §3.1.1 — individual-cost minimization.
    Selfish,
    /// §3.1.2 — contribution maximization.
    Altruistic,
    /// §6 future work — convex combination with weight `λ`.
    Hybrid(f64),
    /// Null baseline: random moves with the given probability and seed.
    Random(f64, u64),
    /// Null baseline: never move.
    NoMaintenance,
}

impl StrategyKind {
    /// Label used in reports.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Selfish => "selfish".into(),
            StrategyKind::Altruistic => "altruistic".into(),
            StrategyKind::Hybrid(l) => format!("hybrid(λ={l})"),
            StrategyKind::Random(p, _) => format!("random(p={p})"),
            StrategyKind::NoMaintenance => "none".into(),
        }
    }

    /// The two strategies the paper evaluates.
    pub fn paper_pair() -> [StrategyKind; 2] {
        [StrategyKind::Selfish, StrategyKind::Altruistic]
    }
}

/// How a sweep distributes its independent cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run cells one after another on the calling thread.
    Sequential,
    /// Fan cells across all available cores (the shim honours
    /// `RAYON_NUM_THREADS`).
    #[default]
    Auto,
    /// Fan cells across exactly this many worker threads.
    Threads(usize),
}

impl Parallelism {
    /// The worker count this mode resolves to (1 = sequential).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => rayon::current_num_threads(),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Evaluates `f` over every cell, fanning across threads per
/// `parallelism`, and returns the results **in cell order** — the
/// parallel output is byte-identical to the sequential one as long as
/// `f` is a pure function of its cell (which every figure/table cell
/// is: it builds its own seeded testbed).
pub fn sweep_map<T, R, F>(parallelism: Parallelism, cells: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match parallelism {
        Parallelism::Sequential => cells.iter().map(f).collect(),
        Parallelism::Auto => cells.par_iter().map(f).collect(),
        // An explicit pool installed for this sweep only: the pinned
        // count is scoped to the closure, so concurrent sweeps and any
        // process-wide `build_global` pin are unaffected.
        Parallelism::Threads(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n.max(1))
            .build()
            .expect("shim pool build never fails")
            .install(|| cells.par_iter().map(f).collect()),
    }
}

/// Runs one query-observation period under `mode` on a fresh ledger and
/// returns the ledger together with the routing report — the
/// query-traffic probe the churn experiment and the experiment binaries
/// use to compare flood against cluster-directed routing. Uses the
/// traffic-only period walk: the ledger and report are bit-identical to
/// the full observation run, but no per-peer observation records are
/// materialized (the oracle churn path never reads them, and at a
/// million peers they dominate peak RSS).
pub fn measure_query_traffic(system: &System, mode: RoutingMode) -> (SimNetwork, RoutingReport) {
    let mut net = SimNetwork::new();
    let (report, _) = simulate_period_traffic(system, &mut net, mode);
    (net, report)
}

/// Runs the reformulation protocol with the chosen strategy.
pub fn run_protocol(
    system: &mut System,
    kind: StrategyKind,
    config: ProtocolConfig,
    net: &mut SimNetwork,
) -> RunOutcome {
    match kind {
        StrategyKind::Selfish => ProtocolEngine::new(SelfishStrategy, config).run(system, net),
        StrategyKind::Altruistic => {
            ProtocolEngine::new(AltruisticStrategy::new(), config).run(system, net)
        }
        StrategyKind::Hybrid(lambda) => {
            ProtocolEngine::new(HybridStrategy::new(lambda), config).run(system, net)
        }
        StrategyKind::Random(p, seed) => {
            ProtocolEngine::new(RandomStrategy::new(p, seed), config).run(system, net)
        }
        StrategyKind::NoMaintenance => ProtocolEngine::new(NoMaintenance, config).run(system, net),
    }
}

/// Runs the reformulation protocol with the chosen strategy's *observed*
/// counterpart: the same objective, evaluated over the decayed tracker
/// estimates in `stats` instead of oracle view state. The null baselines
/// (`Random`, `NoMaintenance`) consult no statistics at all and fall
/// back to [`run_protocol`] unchanged.
pub fn run_protocol_observed(
    system: &mut System,
    kind: StrategyKind,
    stats: &ObservedStats,
    config: ProtocolConfig,
    net: &mut SimNetwork,
) -> RunOutcome {
    match kind {
        StrategyKind::Selfish => {
            ProtocolEngine::new(ObservedStrategy::selfish(stats), config).run(system, net)
        }
        StrategyKind::Altruistic => {
            ProtocolEngine::new(ObservedStrategy::altruistic(stats), config).run(system, net)
        }
        StrategyKind::Hybrid(lambda) => {
            ProtocolEngine::new(ObservedStrategy::hybrid(stats, lambda), config).run(system, net)
        }
        other => run_protocol(system, other, config, net),
    }
}

/// Fraction of live peers whose observed proposal names the same
/// destination as the oracle strategy's proposal on the current state
/// (both proposing nothing also counts as agreement) — the per-round
/// decision-fidelity measure of the observed-mode reports. `1.0` for the
/// null baselines, whose decisions ignore statistics entirely.
pub fn decision_agreement(
    system: &mut System,
    kind: StrategyKind,
    stats: &ObservedStats,
    allow_empty: bool,
) -> f64 {
    match kind {
        StrategyKind::Selfish => agreement_with(
            system,
            SelfishStrategy,
            ObservedStrategy::selfish(stats),
            allow_empty,
        ),
        StrategyKind::Altruistic => agreement_with(
            system,
            AltruisticStrategy::new(),
            ObservedStrategy::altruistic(stats),
            allow_empty,
        ),
        StrategyKind::Hybrid(lambda) => agreement_with(
            system,
            HybridStrategy::new(lambda),
            ObservedStrategy::hybrid(stats, lambda),
            allow_empty,
        ),
        StrategyKind::Random(..) | StrategyKind::NoMaintenance => 1.0,
    }
}

fn agreement_with<O: RelocationStrategy>(
    system: &mut System,
    mut oracle: O,
    observed: ObservedStrategy<'_>,
    allow_empty: bool,
) -> f64 {
    oracle.prepare(system);
    let view = system.view();
    let peers: Vec<PeerId> = view.overlay().peers().collect();
    if peers.is_empty() {
        return 1.0;
    }
    let agree = peers
        .iter()
        .filter(|&&p| {
            let want = oracle.propose(&view, p, allow_empty).map(|pr| pr.to);
            let got = observed.propose(&view, p, allow_empty).map(|pr| pr.to);
            want == got
        })
        .count();
    agree as f64 / peers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

    #[test]
    fn all_kinds_run_to_completion() {
        for kind in [
            StrategyKind::Selfish,
            StrategyKind::Altruistic,
            StrategyKind::Hybrid(0.5),
            StrategyKind::Random(0.2, 3),
            StrategyKind::NoMaintenance,
        ] {
            let mut tb = build_system(
                Scenario::SameCategory,
                InitialConfig::RandomM,
                &ExperimentConfig::small(13),
            );
            let mut net = SimNetwork::new();
            let cfg = ProtocolConfig::builder().max_rounds(30).build();
            let outcome = run_protocol(&mut tb.system, kind, cfg, &mut net);
            assert!(!outcome.rounds.is_empty() || outcome.converged);
            tb.system.overlay().check_invariants().unwrap();
        }
    }

    #[test]
    fn sweep_map_parallel_equals_sequential() {
        let cells: Vec<u64> = (0..37).collect();
        let f = |&seed: &u64| {
            // A cheap but seed-sensitive computation standing in for a
            // scenario cell.
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03;
            for _ in 0..10 {
                x ^= x >> 27;
                x = x.wrapping_mul(0x3C79AC492BA7B653);
            }
            format!("{x:016x}")
        };
        let seq = sweep_map(Parallelism::Sequential, &cells, f);
        let auto = sweep_map(Parallelism::Auto, &cells, f);
        let two = sweep_map(Parallelism::Threads(2), &cells, f);
        assert_eq!(seq, auto);
        assert_eq!(seq, two);
    }

    #[test]
    fn query_traffic_probe_shows_routed_savings() {
        use recluster_overlay::SummaryMode;
        let tb = build_system(
            Scenario::SameCategory,
            InitialConfig::Singletons,
            &ExperimentConfig::small(17),
        );
        let (flood_net, flood) = measure_query_traffic(&tb.system, RoutingMode::Flood);
        let (routed_net, routed) =
            measure_query_traffic(&tb.system, RoutingMode::Routed(SummaryMode::Exact));
        assert_eq!(flood.returned_results, routed.returned_results);
        assert_eq!(routed.missed_results, 0);
        assert!(routed.forwards < flood.forwards);
        assert!(routed_net.total_messages() < flood_net.total_messages());
    }

    #[test]
    fn parallelism_workers_resolve() {
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            StrategyKind::Selfish,
            StrategyKind::Altruistic,
            StrategyKind::Hybrid(0.5),
            StrategyKind::Random(0.2, 3),
            StrategyKind::NoMaintenance,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
