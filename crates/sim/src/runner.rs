//! Strategy dispatch for experiment runners.
//!
//! Experiments select strategies by value ([`StrategyKind`]); this module
//! maps each kind onto a concrete [`ProtocolEngine`] run.

use recluster_baselines::{NoMaintenance, RandomStrategy};
use recluster_core::{
    AltruisticStrategy, HybridStrategy, ProtocolConfig, ProtocolEngine, RunOutcome,
    SelfishStrategy, System,
};
use recluster_overlay::SimNetwork;

/// The strategy roster available to experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// §3.1.1 — individual-cost minimization.
    Selfish,
    /// §3.1.2 — contribution maximization.
    Altruistic,
    /// §6 future work — convex combination with weight `λ`.
    Hybrid(f64),
    /// Null baseline: random moves with the given probability and seed.
    Random(f64, u64),
    /// Null baseline: never move.
    NoMaintenance,
}

impl StrategyKind {
    /// Label used in reports.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Selfish => "selfish".into(),
            StrategyKind::Altruistic => "altruistic".into(),
            StrategyKind::Hybrid(l) => format!("hybrid(λ={l})"),
            StrategyKind::Random(p, _) => format!("random(p={p})"),
            StrategyKind::NoMaintenance => "none".into(),
        }
    }

    /// The two strategies the paper evaluates.
    pub fn paper_pair() -> [StrategyKind; 2] {
        [StrategyKind::Selfish, StrategyKind::Altruistic]
    }
}

/// Runs the reformulation protocol with the chosen strategy.
pub fn run_protocol(
    system: &mut System,
    kind: StrategyKind,
    config: ProtocolConfig,
    net: &mut SimNetwork,
) -> RunOutcome {
    match kind {
        StrategyKind::Selfish => ProtocolEngine::new(SelfishStrategy, config).run(system, net),
        StrategyKind::Altruistic => {
            ProtocolEngine::new(AltruisticStrategy::new(), config).run(system, net)
        }
        StrategyKind::Hybrid(lambda) => {
            ProtocolEngine::new(HybridStrategy::new(lambda), config).run(system, net)
        }
        StrategyKind::Random(p, seed) => {
            ProtocolEngine::new(RandomStrategy::new(p, seed), config).run(system, net)
        }
        StrategyKind::NoMaintenance => ProtocolEngine::new(NoMaintenance, config).run(system, net),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

    #[test]
    fn all_kinds_run_to_completion() {
        for kind in [
            StrategyKind::Selfish,
            StrategyKind::Altruistic,
            StrategyKind::Hybrid(0.5),
            StrategyKind::Random(0.2, 3),
            StrategyKind::NoMaintenance,
        ] {
            let mut tb = build_system(
                Scenario::SameCategory,
                InitialConfig::RandomM,
                &ExperimentConfig::small(13),
            );
            let mut net = SimNetwork::new();
            let cfg = ProtocolConfig {
                max_rounds: 30,
                ..Default::default()
            };
            let outcome = run_protocol(&mut tb.system, kind, cfg, &mut net);
            assert!(!outcome.rounds.is_empty() || outcome.converged);
            tb.system.overlay().check_invariants().unwrap();
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            StrategyKind::Selfish,
            StrategyKind::Altruistic,
            StrategyKind::Hybrid(0.5),
            StrategyKind::Random(0.2, 3),
            StrategyKind::NoMaintenance,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
