//! Ablations over the design choices DESIGN.md calls out:
//!
//! * `θ` shape — the paper motivates linear vs. logarithmic `θ`
//!   (fully-connected vs. structured intra-cluster topology, §2.1) but
//!   only evaluates the linear case; we sweep all four shapes.
//! * `ε` — the stop-condition threshold (§3.2): lower values chase
//!   smaller gains (more rounds, marginally better cost).
//! * hybrid `λ` — the §6 future-work strategy between altruistic (0)
//!   and selfish (1).
//! * lock rule on/off — the §3.2 anti-cycle rule; without it, requests
//!   can form move cycles and burn rounds.

use recluster_core::{EmptyTargetPolicy, ProtocolConfig};
use recluster_overlay::{SimNetwork, Theta};

use crate::runner::{run_protocol, StrategyKind};
use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

/// One ablation outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The varied setting, rendered.
    pub setting: String,
    /// Rounds to convergence (`None` = budget exhausted).
    pub rounds: Option<usize>,
    /// Final non-empty clusters.
    pub clusters: usize,
    /// Final normalized social cost.
    pub scost: f64,
    /// Total peers moved.
    pub moves: usize,
    /// Protocol messages.
    pub messages: u64,
}

fn run_one(
    cfg: &ExperimentConfig,
    kind: StrategyKind,
    protocol: ProtocolConfig,
    setting: String,
) -> AblationRow {
    let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
    let mut net = SimNetwork::new();
    let outcome = run_protocol(&mut tb.system, kind, protocol, &mut net);
    AblationRow {
        setting,
        rounds: outcome.converged.then(|| outcome.rounds_to_converge()),
        clusters: tb.system.overlay().non_empty_clusters(),
        scost: recluster_core::scost_normalized(&tb.system),
        moves: outcome.total_moves(),
        messages: net.total_messages(),
    }
}

/// Sweeps the `θ` cost model (selfish strategy, scenario 1, random-M
/// start).
pub fn run_theta_ablation(cfg: &ExperimentConfig, max_rounds: usize) -> Vec<AblationRow> {
    [
        Theta::Linear,
        Theta::Logarithmic,
        Theta::Sqrt,
        Theta::Constant(1.0),
    ]
    .into_iter()
    .map(|theta| {
        let mut cfg = cfg.clone();
        cfg.theta = theta;
        run_one(
            &cfg,
            StrategyKind::Selfish,
            ProtocolConfig::builder().max_rounds(max_rounds).build(),
            format!("theta={theta}"),
        )
    })
    .collect()
}

/// Sweeps the `ε` stop threshold.
pub fn run_epsilon_sweep(cfg: &ExperimentConfig, max_rounds: usize) -> Vec<AblationRow> {
    [0.0, 1e-4, 1e-3, 1e-2, 5e-2]
        .into_iter()
        .map(|epsilon| {
            run_one(
                cfg,
                StrategyKind::Selfish,
                ProtocolConfig::builder()
                    .epsilon(epsilon)
                    .max_rounds(max_rounds)
                    .build(),
                format!("epsilon={epsilon}"),
            )
        })
        .collect()
}

/// Sweeps the hybrid strategy's `λ`.
pub fn run_hybrid_sweep(cfg: &ExperimentConfig, max_rounds: usize) -> Vec<AblationRow> {
    [0.0, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|lambda| {
            run_one(
                cfg,
                StrategyKind::Hybrid(lambda),
                ProtocolConfig::builder().max_rounds(max_rounds).build(),
                format!("lambda={lambda}"),
            )
        })
        .collect()
}

/// Compares the protocol with and without the §3.2 anti-cycle lock rule.
pub fn run_lock_ablation(cfg: &ExperimentConfig, max_rounds: usize) -> Vec<AblationRow> {
    [true, false]
        .into_iter()
        .map(|use_locks| {
            run_one(
                cfg,
                StrategyKind::Selfish,
                ProtocolConfig::builder()
                    .max_rounds(max_rounds)
                    .use_locks(use_locks)
                    .empty_targets(EmptyTargetPolicy::Always)
                    .build(),
                format!("locks={use_locks}"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(71)
    }

    #[test]
    fn theta_ablation_covers_all_shapes() {
        let rows = run_theta_ablation(&cfg(), 40);
        assert_eq!(rows.len(), 4);
        // Cheaper membership (log/const) permits larger clusters, so the
        // final count can only go down relative to linear.
        let linear = rows.iter().find(|r| r.setting == "theta=linear").unwrap();
        let log = rows.iter().find(|r| r.setting == "theta=log").unwrap();
        assert!(log.clusters <= linear.clusters + 1);
    }

    #[test]
    fn epsilon_zero_is_most_thorough() {
        let rows = run_epsilon_sweep(&cfg(), 60);
        // Select by label, not position — reordering or extending the
        // sweep must not silently turn this into a different comparison.
        let tight = rows.iter().find(|r| r.setting == "epsilon=0").unwrap();
        let loose = rows.iter().find(|r| r.setting == "epsilon=0.05").unwrap();
        assert!(
            tight.scost <= loose.scost + 1e-9,
            "tighter ε must not end worse: {} vs {}",
            tight.scost,
            loose.scost
        );
        assert!(tight.moves >= loose.moves);
    }

    #[test]
    fn hybrid_sweep_spans_strategies() {
        let rows = run_hybrid_sweep(&cfg(), 40);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.scost > 0.0 && row.scost < 1.2);
        }
    }

    #[test]
    fn disabling_locks_does_not_change_request_admission_semantics() {
        let rows = run_lock_ablation(&cfg(), 60);
        assert_eq!(rows.len(), 2);
        // Without locks at least as many moves are granted per round.
        let with = &rows[0];
        let without = &rows[1];
        assert!(without.moves + 5 >= with.moves);
    }
}
