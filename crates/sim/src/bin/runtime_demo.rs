//! Demo binary: the typed-message protocol runtime under degraded
//! network schedules — the scenarios the sync engine cannot run.
//!
//! ```text
//! cargo run -p recluster-sim --bin runtime_demo
//! ```
//!
//! Prints the delay/reorder sweep (equilibrium scost vs stale grants),
//! the liar audit (fault attribution of inflated claims against
//! observed statistics), the partition/heal scenario (post-heal repair
//! against the ideal equilibrium), the mid-round churn scenario (the
//! voided-commit teardown ledger) and the observed-mode
//! commitment-reveal audit, all digest-pinned and byte-identical
//! across runs, seeds being equal. Honours:
//!
//! * `RECLUSTER_SEED` — experiment seed (default 2008).
//! * `RECLUSTER_SMALL=1` — 40-peer miniature instead of the paper's
//!   200-peer testbed.
//! * `RECLUSTER_THREADS` — sweep parallelism (results are invariant).
//! * `RECLUSTER_NET_DELAY` / `RECLUSTER_NET_DROP` /
//!   `RECLUSTER_NET_SEED` / `RECLUSTER_NET_LIARS` /
//!   `RECLUSTER_NET_PARTITION` / `RECLUSTER_NET_CRASH` — when any is
//!   set, a closing section runs one custom cell under exactly that
//!   schedule (see `docs/OPERATIONS.md` for recipes).

use recluster_core::{scost_normalized, ProtocolConfig, RuntimeEngine, SelfishStrategy};
use recluster_overlay::SimNetwork;
use recluster_sim::knobs::Knobs;
use recluster_sim::netsim::{
    render_liar_audit, render_midround_churn, render_net_sweep, render_observed_audit,
    render_partition_heal, run_liar_audit, run_midround_churn, run_net_sweep,
    run_observed_liar_audit, run_partition_heal,
};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn main() {
    let knobs = Knobs::from_env();
    let seed = knobs.seed.unwrap_or(2008);
    let (cfg, max_rounds) = if knobs.small {
        (ExperimentConfig::small(seed), 40)
    } else {
        (ExperimentConfig::paper(seed), 60)
    };
    let parallelism = knobs.parallelism();

    let rows = run_net_sweep(&cfg, max_rounds, seed, parallelism);
    print!("{}", render_net_sweep(&rows, seed));
    println!();
    let rows = run_liar_audit(&cfg, max_rounds, seed, parallelism);
    print!("{}", render_liar_audit(&rows, seed));
    println!();
    let rows = run_partition_heal(&cfg, max_rounds.max(40), seed, parallelism);
    print!("{}", render_partition_heal(&rows, seed));
    println!();
    let rows = run_midround_churn(&cfg, max_rounds.max(60), seed, parallelism);
    print!("{}", render_midround_churn(&rows, seed));
    println!();
    let rows = run_observed_liar_audit(&cfg, max_rounds, seed, parallelism);
    print!("{}", render_observed_audit(&rows, seed));

    // A custom cell under exactly the schedule the knobs describe.
    if knobs.net_delay.is_some()
        || knobs.net_drop.is_some()
        || knobs.net_liars.is_some()
        || knobs.net_partition.is_some()
        || !knobs.net_crash.is_empty()
    {
        let net = knobs.net_config();
        let faults = knobs.fault_schedule(cfg.n_peers);
        println!("\ncustom schedule: {net:?}");
        if !faults.is_empty() {
            println!("custom faults: {faults:?}");
        }
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
        let mut ledger = SimNetwork::new();
        let protocol = ProtocolConfig::builder()
            .max_rounds(max_rounds)
            .memoize(false)
            .build();
        let mut engine = RuntimeEngine::new(SelfishStrategy, protocol, net)
            .with_liars(knobs.liar_config())
            .with_faults(faults);
        let outcome = engine.run(&mut tb.system, &mut ledger);
        let stats = engine.net_stats();
        println!(
            "converged={} rounds={} scost={:.3} moves={} granted={} denied={} \
             sent={} delivered={} dropped={} cut={} crashed={} departed={} stale={} \
             commits_voided={} grants_voided={}",
            outcome.converged,
            outcome.rounds.len(),
            scost_normalized(&tb.system),
            engine.evidence().records().len(),
            engine.granted_total(),
            engine.denied_total(),
            stats.sent,
            stats.delivered,
            stats.dropped,
            stats.cut,
            stats.crashed,
            stats.departed,
            stats.stale,
            engine.commits_voided_total(),
            engine.grants_voided_total(),
        );
    }
}
