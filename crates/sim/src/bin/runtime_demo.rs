//! Demo binary: the typed-message protocol runtime under degraded
//! network schedules — the two scenarios the sync engine cannot run.
//!
//! ```text
//! cargo run -p recluster-sim --bin runtime_demo
//! ```
//!
//! Prints the delay/reorder sweep (equilibrium scost vs stale grants)
//! and the liar audit (fault attribution of inflated claims against
//! observed statistics), both digest-pinned and byte-identical across
//! runs, seeds being equal. Honours:
//!
//! * `RECLUSTER_SEED` — experiment seed (default 2008).
//! * `RECLUSTER_SMALL=1` — 40-peer miniature instead of the paper's
//!   200-peer testbed.
//! * `RECLUSTER_THREADS` — sweep parallelism (results are invariant).
//! * `RECLUSTER_NET_DELAY` / `RECLUSTER_NET_DROP` /
//!   `RECLUSTER_NET_SEED` / `RECLUSTER_NET_LIARS` — when any is set, a
//!   closing section runs one custom cell under exactly that schedule.

use recluster_core::{scost_normalized, ProtocolConfig, RuntimeEngine, SelfishStrategy};
use recluster_overlay::SimNetwork;
use recluster_sim::knobs::Knobs;
use recluster_sim::netsim::{render_liar_audit, render_net_sweep, run_liar_audit, run_net_sweep};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn main() {
    let knobs = Knobs::from_env();
    let seed = knobs.seed.unwrap_or(2008);
    let (cfg, max_rounds) = if knobs.small {
        (ExperimentConfig::small(seed), 40)
    } else {
        (ExperimentConfig::paper(seed), 60)
    };
    let parallelism = knobs.parallelism();

    let rows = run_net_sweep(&cfg, max_rounds, seed, parallelism);
    print!("{}", render_net_sweep(&rows, seed));
    println!();
    let rows = run_liar_audit(&cfg, max_rounds, seed, parallelism);
    print!("{}", render_liar_audit(&rows, seed));

    // A custom cell under exactly the schedule the knobs describe.
    if knobs.net_delay.is_some() || knobs.net_drop.is_some() || knobs.net_liars.is_some() {
        let net = knobs.net_config();
        println!("\ncustom schedule: {net:?}");
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
        let mut ledger = SimNetwork::new();
        let protocol = ProtocolConfig::builder()
            .max_rounds(max_rounds)
            .memoize(false)
            .build();
        let mut engine =
            RuntimeEngine::new(SelfishStrategy, protocol, net).with_liars(knobs.liar_config());
        let outcome = engine.run(&mut tb.system, &mut ledger);
        let stats = engine.net_stats();
        println!(
            "converged={} rounds={} scost={:.3} moves={} granted={} denied={} \
             sent={} delivered={} dropped={} stale={}",
            outcome.converged,
            outcome.rounds.len(),
            scost_normalized(&tb.system),
            engine.evidence().records().len(),
            engine.granted_total(),
            engine.denied_total(),
            stats.sent,
            stats.delivered,
            stats.dropped,
            stats.stale,
        );
    }
}
