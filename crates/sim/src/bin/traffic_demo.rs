//! Streams ≥1 M routed query occurrences through a 10 000-peer overlay
//! under live churn and periodic repair, then prints the deterministic
//! traffic report plus measured throughput.
//!
//! This is the operational face of [`recluster_sim::traffic`]: the same
//! engine the golden test pins (`traffic_1m.txt`) and the
//! `traffic_scale` bench gates, run interactively. Everything above the
//! `---` separator is byte-identical for a fixed seed and knob set —
//! the digest line matches the golden — and only the lines below it
//! (wall-clock seconds, queries/s) depend on the machine.
//!
//! Run it from the repo root (release strongly recommended; a debug
//! build walks the same ~1.3 M occurrences an order of magnitude
//! slower):
//!
//! ```text
//! cargo run --release -p recluster-sim --bin traffic_demo
//! ```
//!
//! Environment knobs (all optional):
//!
//! | Knob | Effect |
//! |---|---|
//! | `RECLUSTER_SEED` | Override the experiment seed (default 2008). |
//! | `RECLUSTER_SMALL` | `1`/`true`: run the 40-peer miniature config instead. |
//! | `RECLUSTER_ROUTING` | `flood`, `exact` or `lossy:<k>` — routing mode for the stream. |
//! | `RECLUSTER_DECISIONS` | `oracle` (default), `observed` or `observed:<decay>` — where repair decisions read their statistics; observed runs append fidelity rows to the report. |
//! | `RECLUSTER_TRAFFIC_QUERIES` | Override base query occurrences per slice. |
//! | `RECLUSTER_TRAFFIC_SLICES` | Override the number of slices simulated. |
//!
//! The defaults stream ≈1.29 M occurrences (250 slices × 4 500 base,
//! shaped by the ±40 % diurnal wave and five flash-crowd windows) with
//! churn every 10 slices and repair/publication every 25. Lowering
//! `RECLUSTER_TRAFFIC_SLICES` is the quickest way to a smoke run;
//! changing any knob changes the digest, so only the default
//! configuration is comparable against the golden.

use std::time::Instant;

use recluster_sim::knobs::Knobs;
use recluster_sim::traffic::{traffic_demo_config, traffic_small_config, TrafficEngine};

fn main() {
    let knobs = Knobs::from_env();
    let seed = knobs.seed.unwrap_or(2008);
    let (cfg, mut traffic) = if knobs.small {
        traffic_small_config(seed)
    } else {
        traffic_demo_config(seed)
    };
    if let Some(mode) = knobs.routing {
        traffic.mode = mode;
    }
    if let Some(decisions) = knobs.decisions {
        traffic.decisions = decisions;
    }
    if let Some(q) = knobs.traffic_queries {
        traffic.queries_per_slice = q;
    }
    if let Some(s) = knobs.traffic_slices {
        traffic.slices = s as usize;
    }

    let label = match (knobs.small, traffic.decisions.is_observed()) {
        (true, false) => "traffic_small",
        (true, true) => "traffic_small_observed",
        (false, false) => "traffic_1m",
        (false, true) => "traffic_1m_observed",
    };
    eprintln!(
        "building {} peers, streaming {} slices x {} base queries (mode {})...",
        cfg.n_peers, traffic.slices, traffic.queries_per_slice, traffic.mode
    );
    let engine = TrafficEngine::new(&cfg, traffic);
    let start = Instant::now();
    let report = engine.run();
    let elapsed = start.elapsed().as_secs_f64();

    print!("{}", report.render(label, seed));
    println!("---");
    println!(
        "wall: {elapsed:.2}s  queries/s: {:.0}  slices/s: {:.1}",
        report.queries_per_sec(elapsed),
        report.slices as f64 / elapsed.max(1e-9)
    );
}
