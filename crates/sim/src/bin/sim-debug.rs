//! Developer diagnostics: prints the dynamics of the miniature
//! 40-peer testbed — Table 1 cells across every initial configuration,
//! a fig-1 cost series, fig-2/3 update points and a full per-round
//! altruistic protocol trace.
//!
//! Not part of the reproduction surface — see `recluster-bench` for the
//! paper's tables and figures, and the `traffic_demo` bin for the
//! streamed query-serving scenario. Runs in well under a second even in
//! a debug build:
//!
//! ```text
//! cargo run -p recluster-sim --bin sim-debug
//! ```
//!
//! Output is deterministic (fixed seed 21, no wall-clock content), so
//! diffing two runs across branches is a quick sanity check when
//! touching the protocol or cost layers. The closing churn-fidelity
//! section honours `RECLUSTER_DECISIONS` (`oracle` | `observed` |
//! `observed:<decay>`, default `observed`; malformed values warn on
//! stderr and fall back).

use recluster_core::{DecisionSource, EmptyTargetPolicy, ProtocolConfig};
use recluster_overlay::SimNetwork;
use recluster_sim::churn::{run_churn_with_fidelity, ChurnConfig};
use recluster_sim::fig1::run_series;
use recluster_sim::fig23::{run_point, UpdateMode};
use recluster_sim::knobs::Knobs;
use recluster_sim::runner::{run_protocol, StrategyKind};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster_sim::table1::{run_cell, Table1Config};

fn main() {
    let cfg = ExperimentConfig::small(21);

    println!("== scenario 1, all inits, selfish ==");
    let t1 = Table1Config::small(21);
    for init in [
        InitialConfig::Singletons,
        InitialConfig::RandomM,
        InitialConfig::Fewer,
        InitialConfig::More,
    ] {
        for kind in [StrategyKind::Selfish, StrategyKind::Altruistic] {
            let row = run_cell(Scenario::SameCategory, init, kind, &t1);
            println!(
                "  {:?} {:12} rounds={:?} clusters={} scost={:.3} wcost={:.3} nash={}",
                init, row.strategy, row.rounds, row.clusters, row.scost, row.wcost, row.nash
            );
        }
    }

    println!("== fig1 series (selfish) ==");
    let s = run_series(&cfg, StrategyKind::Selfish, 60);
    println!(
        "  scost: {:?}",
        s.scost
            .iter()
            .map(|v| (v * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  wcost: {:?}",
        s.wcost
            .iter()
            .map(|v| (v * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    println!("== fig23 data-update points ==");
    for f in [0.2, 0.5, 0.8, 1.0] {
        let sp = run_point(&cfg, UpdateMode::DataPeers, StrategyKind::Selfish, f, 60);
        let ap = run_point(&cfg, UpdateMode::DataPeers, StrategyKind::Altruistic, f, 60);
        println!(
            "  f={f}: selfish before={:.3} after={:.3} moves={} | altruistic before={:.3} after={:.3} moves={}",
            sp.scost_before, sp.scost_after, sp.moves, ap.scost_before, ap.scost_after, ap.moves
        );
    }

    println!("== fig23 workload-update points ==");
    for f in [0.2, 0.5, 0.8, 1.0] {
        let sp = run_point(
            &cfg,
            UpdateMode::WorkloadPeers,
            StrategyKind::Selfish,
            f,
            60,
        );
        let ap = run_point(
            &cfg,
            UpdateMode::WorkloadPeers,
            StrategyKind::Altruistic,
            f,
            60,
        );
        println!(
            "  f={f}: selfish before={:.3} after={:.3} moves={} | altruistic before={:.3} after={:.3} moves={}",
            sp.scost_before, sp.scost_after, sp.moves, ap.scost_before, ap.scost_after, ap.moves
        );
    }

    println!("== scenario-2 cell (selfish) ==");
    let row = run_cell(
        Scenario::DifferentCategory,
        InitialConfig::RandomM,
        StrategyKind::Selfish,
        &t1,
    );
    println!(
        "  rounds={:?} clusters={} scost={:.3} wcost={:.3}",
        row.rounds, row.clusters, row.scost, row.wcost
    );

    println!("== altruistic random-M trace ==");
    let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let mut net = SimNetwork::new();
    let outcome = run_protocol(
        &mut tb.system,
        StrategyKind::Altruistic,
        ProtocolConfig::builder()
            .epsilon(1e-3)
            .max_rounds(30)
            .empty_targets(EmptyTargetPolicy::Always)
            .use_locks(true)
            .build(),
        &mut net,
    );
    for r in outcome.rounds.iter() {
        println!(
            "  round {}: requests={} granted={} scost={:.3} clusters={}",
            r.round,
            r.requests.len(),
            r.granted.len(),
            r.scost,
            r.non_empty_clusters
        );
    }

    let decisions = Knobs::from_env()
        .decisions
        .unwrap_or(DecisionSource::Observed { decay: 0.0 });
    println!("== churn fidelity ({decisions}) ==");
    let churn = ChurnConfig {
        periods: 4,
        leaves_per_period: 1,
        joins_per_period: 1,
        decisions,
        ..ChurnConfig::default()
    };
    let (rows, fidelity) = run_churn_with_fidelity(&cfg, &churn);
    match fidelity {
        Some(report) => {
            for f in &report.periods {
                println!(
                    "  period {}: agree={:.3} scost observed={:.3} oracle={:.3} gap={:+.4}",
                    f.period,
                    f.agreement_rate,
                    f.scost_observed_repair,
                    f.scost_oracle_repair,
                    f.scost_gap()
                );
            }
            println!(
                "  mean_agree={:.3} final_gap={:+.4}",
                report.mean_agreement(),
                report.final_scost_gap()
            );
        }
        None => {
            for r in &rows {
                println!(
                    "  period {}: scost after churn={:.3} after repair={:.3} moves={}",
                    r.period, r.scost_after_churn, r.scost_after_repair, r.moves
                );
            }
        }
    }
}
