//! Lookup-cost analysis — the paper's §6 open issue: "practical issues
//! such as the maximum number of clusters that a realistic p2p system
//! can support and the expected look-up cost with respect to the number
//! of clusters and their sizes, need to be addressed."
//!
//! For a given system state we compute, over the actual query workload:
//!
//! * **flood cost** — messages to reach *all* results: one forward per
//!   non-empty cluster plus one hop per member of each forwarded
//!   cluster (intra-cluster fan-out under the fully connected topology).
//! * **expected first-hit probes** — clusters contacted until the first
//!   result, probing clusters uniformly at random (a peer with no
//!   routing hints), in expectation over the workload.
//! * **in-cluster hit rate** — the fraction of query demand answerable
//!   without leaving the initiator's cluster (what clustering is *for*).
//!
//! Sweeping these against configurations with different cluster counts
//! exposes the trade-off the paper postulates: more clusters → cheaper
//! membership but more forwards per query; fewer → the reverse.

use recluster_core::System;
use recluster_overlay::{RoutePlan, SummaryMode};
use recluster_types::ClusterId;

/// Lookup-cost measures for one system state.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupCosts {
    /// Non-empty clusters.
    pub clusters: usize,
    /// Mean cluster size (over non-empty clusters).
    pub mean_cluster_size: f64,
    /// Messages per query to collect all results (flood).
    pub flood_messages: f64,
    /// Forwards per query under cluster-directed routing with exact
    /// summaries, in expectation over the query demand — what replaces
    /// the flood's one-forward-per-cluster term.
    pub routed_forwards: f64,
    /// Expected clusters probed until the first result (uniform probing
    /// without replacement), averaged over query demand; equals the
    /// cluster count plus one when a query has no results at all.
    pub expected_first_hit_probes: f64,
    /// Fraction of query demand fully answerable in the initiator's own
    /// cluster (recall mass ≥ 1 − 1e-9).
    pub in_cluster_hit_rate: f64,
}

/// Computes the lookup costs of the current configuration.
pub fn lookup_costs(system: &System) -> LookupCosts {
    let overlay = system.overlay();
    let index = system.index();
    let non_empty: Vec<ClusterId> = overlay
        .cluster_ids()
        .filter(|&c| !overlay.cluster(c).is_empty())
        .collect();
    let n_clusters = non_empty.len();
    let total_members: usize = non_empty.iter().map(|&c| overlay.size(c)).sum();
    // Flood: one forward per cluster + full intra-cluster fan-out.
    let flood = n_clusters as f64 + total_members as f64;

    // Expected forwards under cluster-directed routing with exact
    // summaries, over the same demand distribution.
    let plan = RoutePlan::build(system.summaries(), SummaryMode::Exact);
    let mut routed_acc = 0.0;
    let mut routed_demand = 0.0;
    for peer in overlay.peers() {
        let wl = &system.workloads()[peer.index()];
        for (query, count) in wl.iter() {
            routed_acc += plan.route(query).len() as f64 * count as f64;
            routed_demand += count as f64;
        }
    }

    let mut demand_total = 0.0;
    let mut probes_acc = 0.0;
    let mut hit_acc = 0.0;
    for peer in overlay.peers() {
        let cid = overlay.cluster_of(peer).expect("live peer");
        let wl = &system.workloads()[peer.index()];
        let peer_total = wl.total() as f64;
        if peer_total == 0.0 {
            continue;
        }
        for &(qid, rel_freq) in index.workload_of(peer) {
            let demand = rel_freq * peer_total;
            demand_total += demand;
            // Clusters holding at least one result for this query.
            let holders = non_empty
                .iter()
                .filter(|&&c| index.cluster_mass(qid, c) > 0.0)
                .count();
            // E[probes to first success] probing n clusters uniformly
            // without replacement with h "hit" clusters: (n+1)/(h+1).
            let expected = if holders == 0 {
                n_clusters as f64 + 1.0
            } else {
                (n_clusters as f64 + 1.0) / (holders as f64 + 1.0)
            };
            probes_acc += demand * expected;
            if index.total(qid) > 0 && index.cluster_mass(qid, cid) >= 1.0 - 1e-9 {
                hit_acc += demand;
            }
        }
    }

    LookupCosts {
        clusters: n_clusters,
        mean_cluster_size: if n_clusters == 0 {
            0.0
        } else {
            total_members as f64 / n_clusters as f64
        },
        flood_messages: flood,
        routed_forwards: if routed_demand == 0.0 {
            0.0
        } else {
            routed_acc / routed_demand
        },
        expected_first_hit_probes: if demand_total == 0.0 {
            0.0
        } else {
            probes_acc / demand_total
        },
        in_cluster_hit_rate: if demand_total == 0.0 {
            0.0
        } else {
            hit_acc / demand_total
        },
    }
}

/// Builds a family of configurations with different cluster counts by
/// re-partitioning the ideal scenario-1 system into `k` equal groups of
/// categories, and reports the lookup costs of each — the sweep behind
/// the §6 question.
pub fn sweep_cluster_counts(
    cfg: &crate::scenario::ExperimentConfig,
    counts: &[usize],
) -> Vec<LookupCosts> {
    counts
        .iter()
        .map(|&k| {
            let mut tb = crate::scenario::ideal_scenario1_system(cfg);
            let k = k.clamp(1, cfg.n_categories);
            // Merge categories round-robin into k clusters.
            let moves: Vec<_> = (0..cfg.n_peers)
                .map(|i| {
                    let peer = recluster_types::PeerId::from_index(i);
                    let cat = tb.peer_category[i];
                    (peer, ClusterId::from_index(cat % k))
                })
                .collect();
            tb.system.move_peers(&moves);
            lookup_costs(&tb.system)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ExperimentConfig;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(91)
    }

    #[test]
    fn ideal_configuration_answers_in_cluster() {
        let tb = crate::scenario::ideal_scenario1_system(&cfg());
        let costs = lookup_costs(&tb.system);
        assert_eq!(costs.clusters, 4);
        assert!(
            costs.in_cluster_hit_rate > 0.95,
            "ideal clustering must answer nearly everything locally: {}",
            costs.in_cluster_hit_rate
        );
    }

    #[test]
    fn flood_cost_counts_forwards_and_fanout() {
        let tb = crate::scenario::ideal_scenario1_system(&cfg());
        let costs = lookup_costs(&tb.system);
        // 4 clusters + 40 members.
        assert!((costs.flood_messages - 44.0).abs() < 1e-12);
    }

    #[test]
    fn routed_forwards_beat_flooding_every_cluster() {
        let tb = crate::scenario::ideal_scenario1_system(&cfg());
        let costs = lookup_costs(&tb.system);
        // Exact summaries never forward to more clusters than exist and,
        // with category-clustered content, target far fewer.
        assert!(costs.routed_forwards <= costs.clusters as f64);
        assert!(
            costs.routed_forwards < costs.clusters as f64,
            "routing should skip clusters without matching content"
        );
        assert!(costs.routed_forwards >= 1.0 - 1e-9);
    }

    #[test]
    fn sweep_shows_the_tradeoff() {
        let sweep = sweep_cluster_counts(&cfg(), &[1, 2, 4]);
        assert_eq!(sweep.len(), 3);
        // Fewer clusters → fewer forwards but bigger clusters.
        assert!(sweep[0].flood_messages < sweep[2].flood_messages);
        assert!(sweep[0].mean_cluster_size > sweep[2].mean_cluster_size);
        // First-hit probing gets harder with more clusters.
        assert!(sweep[0].expected_first_hit_probes <= sweep[2].expected_first_hit_probes + 1e-9);
        // One big cluster answers everything locally.
        assert!(sweep[0].in_cluster_hit_rate > 0.999);
    }

    #[test]
    fn empty_workload_system_reports_zeroes() {
        use recluster_core::{GameConfig, System};
        use recluster_overlay::{ContentStore, Overlay};
        use recluster_types::Workload;
        let sys = System::new(
            Overlay::singletons(3),
            ContentStore::new(3),
            vec![Workload::new(); 3],
            GameConfig::default(),
        );
        let costs = lookup_costs(&sys);
        assert_eq!(costs.in_cluster_hit_rate, 0.0);
        assert_eq!(costs.expected_first_hit_probes, 0.0);
        assert_eq!(costs.clusters, 3);
    }
}
