//! Update generators for the §4.2 experiments.
//!
//! "We consider updates affecting peers in a single cluster, say cluster
//! c_cur. These updates […] (a) affect a varying number of peers in
//! c_cur or (b) affect all the peers in c_cur with a varying degree."
//! Workload updates shift peers' interests to the data of another
//! cluster; data updates replace peers' documents with articles of a
//! different category.

use recluster_corpus::{Corpus, QueryBias, WorkloadBuilder};
use recluster_types::{derive_seed, seeded_rng, ClusterId, PeerId};

use crate::scenario::TestBed;

/// §4.2 workload scenario (a): "the workload of a varying number of peers
/// in c_cur changes completely" — the first `⌊fraction·|c_cur|⌋` peers of
/// `cluster` retarget their whole workload to `new_category`. Returns the
/// updated peers.
pub fn retarget_peers(
    testbed: &mut TestBed,
    cluster: ClusterId,
    new_category: usize,
    fraction: f64,
    bias: QueryBias,
    seed: u64,
) -> Vec<PeerId> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let members: Vec<PeerId> = testbed.system.overlay().cluster(cluster).members().to_vec();
    let n_updated = (fraction * members.len() as f64).floor() as usize;
    let builder = WorkloadBuilder::new(bias).with_doc_limit(testbed.distributable_per_category);
    let mut updates = Vec::new();
    for (k, &peer) in members.iter().take(n_updated).enumerate() {
        let total = testbed.system.workloads()[peer.index()].total();
        let mut rng = seeded_rng(derive_seed(seed, 0xF000 + k as u64));
        // "Now they become interested in data located at some other
        // cluster c_new": the new interest spans the new category's
        // texts, so demand spreads across all of c_new's providers (the
        // paper's altruistic tipping point depends on this spread).
        let new_workload = builder.build(&testbed.corpus, new_category, total, &mut rng);
        testbed.query_category[peer.index()] = Some(new_category);
        updates.push((peer, new_workload));
    }
    let updated: Vec<PeerId> = updates.iter().map(|&(p, _)| p).collect();
    testbed.system.set_workloads(updates);
    updated
}

/// §4.2 workload scenario (b): "the query workload of all peers in c_cur
/// changes by a varying percentage" — every member keeps `1 − fraction`
/// of its demand on its old queries and spends `fraction` of it on
/// `new_category`.
pub fn blend_workload(
    testbed: &mut TestBed,
    cluster: ClusterId,
    new_category: usize,
    fraction: f64,
    bias: QueryBias,
    seed: u64,
) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let members: Vec<PeerId> = testbed.system.overlay().cluster(cluster).members().to_vec();
    let builder = WorkloadBuilder::new(bias).with_doc_limit(testbed.distributable_per_category);
    let mut updates = Vec::new();
    for (k, &peer) in members.iter().enumerate() {
        let old = &testbed.system.workloads()[peer.index()];
        let total = old.total();
        let moved = (fraction * total as f64).round() as u64;
        // Keep exactly (total − moved) occurrences of the old mix…
        let mut blended = old.apportion(total - moved);
        // …and spend the moved demand on the new category, keeping
        // num(Q(p)) constant.
        let mut rng = seeded_rng(derive_seed(seed, 0xB000 + k as u64));
        let fresh = builder.build(&testbed.corpus, new_category, moved, &mut rng);
        blended.merge(&fresh);
        debug_assert_eq!(blended.total(), total);
        updates.push((peer, blended));
    }
    testbed.system.set_workloads(updates);
}

/// §4.2 data scenario (a): the documents of the first
/// `⌊fraction·|c_cur|⌋` peers of `cluster` are replaced wholesale by
/// holdout articles of `new_category`. Returns the updated peers.
pub fn replace_data_peers(
    testbed: &mut TestBed,
    cluster: ClusterId,
    new_category: usize,
    fraction: f64,
) -> Vec<PeerId> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let members: Vec<PeerId> = testbed.system.overlay().cluster(cluster).members().to_vec();
    let n_updated = (fraction * members.len() as f64).floor() as usize;
    let pool = &testbed.holdout[new_category];
    assert!(
        !pool.is_empty(),
        "holdout pool for category {new_category} is empty"
    );
    let mut updates = Vec::new();
    for (k, &peer) in members.iter().take(n_updated).enumerate() {
        let n_docs = testbed.system.store().docs(peer).len();
        // Disjoint slices of the holdout pool: replacement articles are
        // fresh data of the new category, not copies of data already in
        // the system (copies would inflate result totals).
        let docs: Vec<_> = (0..n_docs)
            .map(|d| pool[(k * n_docs + d) % pool.len()].clone())
            .collect();
        testbed.peer_category[peer.index()] = new_category;
        updates.push((peer, docs));
    }
    let updated: Vec<PeerId> = updates.iter().map(|&(p, _)| p).collect();
    testbed.system.set_contents(updates);
    updated
}

/// §4.2 data scenario (b): every peer of `cluster` replaces `fraction` of
/// its documents with holdout articles of `new_category`.
pub fn blend_data(testbed: &mut TestBed, cluster: ClusterId, new_category: usize, fraction: f64) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let members: Vec<PeerId> = testbed.system.overlay().cluster(cluster).members().to_vec();
    let pool = &testbed.holdout[new_category];
    assert!(
        !pool.is_empty(),
        "holdout pool for category {new_category} is empty"
    );
    let mut updates = Vec::new();
    for (k, &peer) in members.iter().enumerate() {
        let old_docs = testbed.system.store().docs(peer).to_vec();
        let n_replace = (fraction * old_docs.len() as f64).round() as usize;
        let mut docs: Vec<_> = (0..n_replace)
            .map(|d| pool[(k * n_replace + d) % pool.len()].clone())
            .collect();
        docs.extend_from_slice(&old_docs[n_replace..]);
        updates.push((peer, docs));
    }
    testbed.system.set_contents(updates);
}

/// Convenience: samples what fraction of a cluster's members currently
/// query `category` (sanity metric for the update generators).
pub fn fraction_querying(testbed: &TestBed, cluster: ClusterId, category: usize) -> f64 {
    let members = testbed.system.overlay().cluster(cluster).members();
    if members.is_empty() {
        return 0.0;
    }
    let corpus: &Corpus = &testbed.corpus;
    let hits = members
        .iter()
        .filter(|&&p| {
            let w = &testbed.system.workloads()[p.index()];
            let mut in_cat = 0u64;
            let mut total = 0u64;
            for (q, n) in w.iter() {
                total += n;
                if q.attrs().first().and_then(|&s| corpus.category_of(s)) == Some(category) {
                    in_cat += n;
                }
            }
            total > 0 && in_cat * 2 > total
        })
        .count();
    hits as f64 / members.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ideal_scenario1_system, ExperimentConfig};
    use recluster_corpus::QueryBias;

    fn testbed() -> TestBed {
        ideal_scenario1_system(&ExperimentConfig::small(42))
    }

    #[test]
    fn retarget_updates_exactly_the_fraction() {
        let mut tb = testbed();
        let updated = retarget_peers(&mut tb, ClusterId(0), 1, 0.5, QueryBias::Uniform, 1);
        assert_eq!(updated.len(), 5); // 10 members × 0.5
        for p in &updated {
            assert_eq!(tb.query_category[p.index()], Some(1));
            // Every query word now belongs to category 1.
            for (q, _) in tb.system.workloads()[p.index()].iter() {
                assert_eq!(tb.corpus.category_of(q.attrs()[0]), Some(1));
            }
        }
    }

    #[test]
    fn retarget_preserves_demand() {
        let mut tb = testbed();
        let before: u64 = tb.system.workloads().iter().map(|w| w.total()).sum();
        retarget_peers(&mut tb, ClusterId(0), 2, 1.0, QueryBias::Uniform, 2);
        let after: u64 = tb.system.workloads().iter().map(|w| w.total()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn retarget_zero_fraction_is_noop() {
        let mut tb = testbed();
        let before = tb.system.workloads().to_vec();
        let updated = retarget_peers(&mut tb, ClusterId(0), 1, 0.0, QueryBias::Uniform, 3);
        assert!(updated.is_empty());
        assert_eq!(tb.system.workloads(), &before[..]);
    }

    #[test]
    fn blend_workload_moves_requested_share() {
        let mut tb = testbed();
        blend_workload(&mut tb, ClusterId(0), 1, 0.4, QueryBias::Uniform, 4);
        let members: Vec<PeerId> = tb.system.overlay().cluster(ClusterId(0)).members().to_vec();
        for p in members {
            let w = &tb.system.workloads()[p.index()];
            let (mut cat1, mut total) = (0u64, 0u64);
            for (q, n) in w.iter() {
                total += n;
                if tb.corpus.category_of(q.attrs()[0]) == Some(1) {
                    cat1 += n;
                }
            }
            let share = cat1 as f64 / total as f64;
            assert!(
                (share - 0.4).abs() < 0.15,
                "peer {p}: blended share {share} far from 0.4"
            );
        }
    }

    #[test]
    fn blend_workload_keeps_totals() {
        let mut tb = testbed();
        let before: Vec<u64> = tb.system.workloads().iter().map(|w| w.total()).collect();
        blend_workload(&mut tb, ClusterId(0), 3, 0.7, QueryBias::Uniform, 5);
        let after: Vec<u64> = tb.system.workloads().iter().map(|w| w.total()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn replace_data_changes_content_category() {
        let mut tb = testbed();
        let updated = replace_data_peers(&mut tb, ClusterId(0), 2, 0.3);
        assert_eq!(updated.len(), 3);
        for p in &updated {
            assert_eq!(tb.peer_category[p.index()], 2);
            for doc in tb.system.store().docs(*p) {
                let cat = doc
                    .attrs()
                    .iter()
                    .filter_map(|&s| tb.corpus.category_of(s))
                    .next();
                assert_eq!(cat, Some(2));
            }
        }
    }

    #[test]
    fn blend_data_replaces_the_fraction() {
        let mut tb = testbed();
        let peer = tb.system.overlay().cluster(ClusterId(0)).members()[0];
        let n_docs = tb.system.store().docs(peer).len();
        blend_data(&mut tb, ClusterId(0), 3, 0.5);
        let docs = tb.system.store().docs(peer);
        assert_eq!(docs.len(), n_docs);
        let replaced = docs
            .iter()
            .filter(|d| {
                d.attrs()
                    .iter()
                    .filter_map(|&s| tb.corpus.category_of(s))
                    .next()
                    == Some(3)
            })
            .count();
        assert_eq!(replaced, n_docs / 2);
    }

    #[test]
    fn fraction_querying_tracks_retargeting() {
        let mut tb = testbed();
        assert_eq!(fraction_querying(&tb, ClusterId(0), 1), 0.0);
        retarget_peers(&mut tb, ClusterId(0), 1, 0.6, QueryBias::Uniform, 6);
        let f = fraction_querying(&tb, ClusterId(0), 1);
        assert!((f - 0.6).abs() < 1e-9, "got {f}");
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn bad_fraction_panics() {
        let mut tb = testbed();
        retarget_peers(&mut tb, ClusterId(0), 1, 1.5, QueryBias::Uniform, 7);
    }
}
