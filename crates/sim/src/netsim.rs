//! Network-degradation scenarios over the typed-message runtime — the
//! experiment family the paper never runs.
//!
//! Two questions, two sweeps:
//!
//! * [`run_net_sweep`] — does the equilibrium survive stale grants?
//!   The protocol's phase-2 correctness argument assumes every
//!   representative sorts the *same* request list; delay, reordering
//!   and loss break that assumption, so representatives grant against
//!   partial lists and the lock rule loses its global guarantee. The
//!   sweep measures the damage: final social cost, rounds, denies and
//!   stale frames as the schedule degrades.
//! * [`run_liar_audit`] — can misreported gains be attributed? A
//!   configured fraction of peers inflate their claimed gain
//!   ([`LiarConfig`]); after the run, the commit log is audited against
//!   *observed* statistics ([`ObservedStats`], PR 7's traffic-learned
//!   estimates) and the attribution is scored (precision/recall
//!   against the ground-truth liar set).
//!
//! Both sweeps are deterministic: the fabric RNG is seeded per cell
//! (`derive_seed(seed, cell-index)`), the runtime is sequential inside
//! a cell, and cells merge in index order under any [`Parallelism`].

use recluster_core::{
    scost_normalized, simulate_period, DelayDist, LiarConfig, NetConfig, ObservedStats,
    ProtocolConfig, RuntimeEngine, SelfishStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_types::derive_seed;

use crate::runner::{sweep_map, Parallelism};
use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

/// Extra-delay shapes the sweep crosses with drop rates.
const DELAYS: [(u64, u64); 3] = [(0, 0), (0, 2), (0, 6)];
/// Drop rates (percent) the sweep crosses with delays.
const DROP_PCTS: [u64; 3] = [0, 5, 15];

fn protocol(max_rounds: usize) -> ProtocolConfig {
    ProtocolConfig::builder()
        .max_rounds(max_rounds)
        .memoize(false)
        .build()
}

/// One cell of the delay/reorder sweep.
#[derive(Debug, Clone)]
pub struct NetSweepRow {
    /// The schedule, rendered (`delay=0..2 drop=5%`).
    pub setting: String,
    /// Rounds to convergence (`None` = budget exhausted).
    pub rounds: Option<usize>,
    /// Final normalized social cost.
    pub scost: f64,
    /// Relocations actually committed (a grant whose commit frames all
    /// dropped does not count).
    pub moves: usize,
    /// Grants issued by representatives.
    pub granted: u64,
    /// Denies issued by representatives.
    pub denied: u64,
    /// Frames lost to the drop draw.
    pub dropped: u64,
    /// Frames that arrived after their collector had fired.
    pub stale: u64,
}

/// Sweeps the runtime across delay distributions × drop rates
/// (selfish strategy, scenario 1, random-M start). Cell 0 is the ideal
/// schedule — bit-identical to the sync engine — so the row series
/// reads as "cost of degradation relative to the paper's assumption".
pub fn run_net_sweep(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<NetSweepRow> {
    let cells: Vec<(usize, (u64, u64), u64)> = DELAYS
        .iter()
        .flat_map(|&delay| DROP_PCTS.iter().map(move |&pct| (delay, pct)))
        .enumerate()
        .map(|(i, (delay, pct))| (i, delay, pct))
        .collect();
    sweep_map(parallelism, &cells, |&(i, (min, max), pct)| {
        let net_config = NetConfig {
            seed: derive_seed(seed, i as u64),
            delay: if min == max {
                DelayDist::Fixed(min)
            } else {
                DelayDist::Uniform { min, max }
            },
            drop_rate: pct as f64 / 100.0,
            phase_ticks: max + 2,
        };
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut ledger = SimNetwork::new();
        let mut engine = RuntimeEngine::new(SelfishStrategy, protocol(max_rounds), net_config);
        let outcome = engine.run(&mut tb.system, &mut ledger);
        let stats = engine.net_stats();
        NetSweepRow {
            setting: format!("delay={min}..{max} drop={pct}%"),
            rounds: outcome.converged.then(|| outcome.rounds_to_converge()),
            scost: scost_normalized(&tb.system),
            moves: engine.evidence().records().len(),
            granted: engine.granted_total(),
            denied: engine.denied_total(),
            dropped: stats.dropped,
            stale: stats.stale,
        }
    })
}

/// Liar fractions the audit sweeps.
const LIAR_FRACTIONS: [(u64, f64); 4] = [(0, 0.0), (1, 0.10), (2, 0.25), (3, 0.50)];
/// Claimed-gain multiplier for configured liars.
const LIAR_BOOST: f64 = 10.0;
/// Slack between a claimed gain and the observation-backed estimate
/// before the auditor flags the claimant.
const AUDIT_TOLERANCE: f64 = 0.05;

/// One cell of the liar audit.
#[derive(Debug, Clone)]
pub struct LiarAuditRow {
    /// Configured liar fraction.
    pub fraction: f64,
    /// Relocations committed (the audited population).
    pub moves: usize,
    /// Commits the audit skipped for lack of observation coverage.
    pub skipped: usize,
    /// Distinct peers that actually over-claimed.
    pub liars: usize,
    /// Distinct peers the audit flagged.
    pub flagged: usize,
    /// Fault-attribution precision (1.0 when nothing was flagged).
    pub precision: f64,
    /// Fault-attribution recall (1.0 when nobody lied).
    pub recall: f64,
    /// Final normalized social cost — what the lying *costs* the system
    /// (inflated claims win grants over genuinely better moves).
    pub scost: f64,
}

/// Sweeps the liar fraction under an ideal schedule. Each round
/// follows §3.1's rhythm: peers first observe a query period (flood
/// routing — PR 7's oracle-faithful path) on the *current*
/// configuration, then run one protocol round in which the configured
/// fraction inflate their claims, and the round's commits are audited
/// against the contemporaneous observations
/// ([`recluster_core::EvidenceLog::audit_round`]). Flagged/liar sets
/// accumulate across
/// rounds and the row scores the whole run.
pub fn run_liar_audit(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<LiarAuditRow> {
    sweep_map(parallelism, &LIAR_FRACTIONS, |&(i, fraction)| {
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut ledger = SimNetwork::new();
        let liars = LiarConfig {
            fraction,
            boost: LIAR_BOOST,
            seed: derive_seed(seed, 100 + i),
        };
        let mut engine =
            RuntimeEngine::new(SelfishStrategy, protocol(max_rounds), NetConfig::ideal())
                .with_liars(liars);
        let mut skipped = 0;
        let mut flagged = Vec::new();
        let mut liar_set = Vec::new();
        for round in 0..max_rounds {
            // Honest traffic observed on the pre-round configuration
            // judges the claims made during the round itself.
            let mut stats = ObservedStats::new(0.5);
            stats.absorb(&simulate_period(&tb.system, &mut ledger));
            let outcome = engine.run_round(&mut tb.system, &mut ledger, round);
            let report = engine
                .evidence()
                .audit_round(&tb.system, &stats, AUDIT_TOLERANCE, round);
            skipped += report.skipped;
            flagged.extend(report.flagged);
            liar_set.extend(report.liars);
            if outcome.requests.is_empty() {
                break;
            }
        }
        flagged.sort();
        flagged.dedup();
        liar_set.sort();
        liar_set.dedup();
        let hits = flagged
            .iter()
            .filter(|p| liar_set.binary_search(p).is_ok())
            .count();
        let ratio = |num: usize, den: usize| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        LiarAuditRow {
            fraction,
            moves: engine.evidence().records().len(),
            skipped,
            liars: liar_set.len(),
            flagged: flagged.len(),
            precision: ratio(hits, flagged.len()),
            recall: ratio(hits, liar_set.len()),
            scost: scost_normalized(&tb.system),
        }
    })
}

/// Tiny FNV-1a accumulator — same offset basis and prime as the golden
/// suite's `BitDigest`, fed every counter and every float's raw bits so
/// the trailing digest line pins sub-rounding drift.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Renders the delay/reorder sweep as digest-pinned text (scost vs
/// delay/drop, plus the grant/deny/drop/stale ledger per cell).
pub fn render_net_sweep(rows: &[NetSweepRow], seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("net-sweep scenario=same-category init=random-m seed={seed}\n");
    let mut h = Fnv::new();
    for r in rows {
        h.f64(r.scost);
        h.u64(r.rounds.map_or(u64::MAX, |n| n as u64));
        h.u64(r.moves as u64);
        h.u64(r.granted);
        h.u64(r.denied);
        h.u64(r.dropped);
        h.u64(r.stale);
        let _ = writeln!(
            out,
            "{:<20} rounds={:<4} scost={} moves={:<3} granted={:<3} denied={:<3} dropped={:<3} stale={}",
            r.setting,
            crate::report::rounds_cell(r.rounds),
            crate::report::f3(r.scost),
            r.moves,
            r.granted,
            r.denied,
            r.dropped,
            r.stale,
        );
    }
    let _ = writeln!(out, "netsim-digest: {:016x}", h.finish());
    out
}

/// Renders the liar audit as digest-pinned text (fault-attribution
/// precision/recall per liar fraction, plus what the lying costs).
pub fn render_liar_audit(rows: &[LiarAuditRow], seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("liar-audit scenario=same-category init=random-m seed={seed}\n");
    let mut h = Fnv::new();
    for r in rows {
        h.f64(r.fraction);
        h.u64(r.moves as u64);
        h.u64(r.skipped as u64);
        h.u64(r.liars as u64);
        h.u64(r.flagged as u64);
        h.f64(r.precision);
        h.f64(r.recall);
        h.f64(r.scost);
        let _ = writeln!(
            out,
            "fraction={:<5} moves={:<3} skipped={:<2} liars={:<2} flagged={:<2} precision={} recall={} scost={}",
            crate::report::f3(r.fraction),
            r.moves,
            r.skipped,
            r.liars,
            r.flagged,
            crate::report::f3(r.precision),
            crate::report::f3(r.recall),
            crate::report::f3(r.scost),
        );
    }
    let _ = writeln!(out, "netsim-digest: {:016x}", h.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(17)
    }

    #[test]
    fn ideal_cell_is_clean_and_degraded_cells_see_loss() {
        let rows = run_net_sweep(&cfg(), 12, 5, Parallelism::Sequential);
        assert_eq!(rows.len(), DELAYS.len() * DROP_PCTS.len());
        let ideal = &rows[0];
        assert_eq!(ideal.setting, "delay=0..0 drop=0%");
        assert_eq!(ideal.dropped, 0);
        assert_eq!(ideal.stale, 0);
        assert_eq!(
            ideal.moves as u64, ideal.granted,
            "ideal: every grant lands"
        );
        // The lossiest cell must actually lose frames.
        let lossy = rows.last().unwrap();
        assert!(lossy.dropped > 0);
    }

    #[test]
    fn sweep_is_parallelism_invariant_and_seeded() {
        let a = render_net_sweep(&run_net_sweep(&cfg(), 8, 5, Parallelism::Sequential), 5);
        let b = render_net_sweep(&run_net_sweep(&cfg(), 8, 5, Parallelism::Threads(4)), 5);
        assert_eq!(a, b, "thread pool must not change a byte");
        let c = render_net_sweep(&run_net_sweep(&cfg(), 8, 6, Parallelism::Sequential), 5);
        assert_ne!(a, c, "the fabric seed must matter in degraded cells");
    }

    #[test]
    fn liar_audit_scores_the_planted_liars() {
        let rows = run_liar_audit(&cfg(), 12, 5, Parallelism::Sequential);
        assert_eq!(rows.len(), LIAR_FRACTIONS.len());
        let honest = &rows[0];
        assert_eq!(honest.liars, 0);
        assert_eq!(
            honest.flagged, 0,
            "contemporaneous audit must not flag honest claims"
        );
        assert_eq!(honest.recall, 1.0);
        // At least one lying cell must plant and catch real liars.
        assert!(
            rows.iter().any(|r| r.liars > 0 && r.flagged > 0),
            "no cell planted a catchable liar: {rows:?}"
        );
    }
}
