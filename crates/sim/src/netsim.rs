//! Network-degradation scenarios over the typed-message runtime — the
//! experiment family the paper never runs.
//!
//! Five questions, five sweeps:
//!
//! * [`run_net_sweep`] — does the equilibrium survive stale grants?
//!   The protocol's phase-2 correctness argument assumes every
//!   representative sorts the *same* request list; delay, reordering
//!   and loss break that assumption, so representatives grant against
//!   partial lists and the lock rule loses its global guarantee. The
//!   sweep measures the damage: final social cost, rounds, denies and
//!   stale frames as the schedule degrades.
//! * [`run_liar_audit`] — can misreported gains be attributed? A
//!   configured fraction of peers inflate their claimed gain
//!   ([`LiarConfig`]); after the run, the commit log is audited against
//!   *observed* statistics ([`ObservedStats`], PR 7's traffic-learned
//!   estimates) and the attribution is scored (precision/recall
//!   against the ground-truth liar set).
//! * [`run_partition_heal`] — does the equilibrium survive a torn
//!   fabric? A timed [`FaultSchedule`] bisects the peer set, isolates a
//!   representative, or crashes it outright for the first few rounds,
//!   then heals; the row reports the post-heal social cost against the
//!   equilibrium an ideal schedule reaches on the same start.
//! * [`run_midround_churn`] — does mid-round churn tear cleanly? Peers
//!   depart (including a representative) and arrive *inside* rounds;
//!   the row reports the voided-commit/voided-grant ledger alongside
//!   the surviving population's cost.
//! * [`run_observed_liar_audit`] — can fraud be separated from honest
//!   staleness? Under [`ObservedStrategy`] every honest claim is the
//!   observation-backed estimate itself, so the commitment-reveal audit
//!   can prove the late-inflating liars from frames alone while
//!   charging honest-but-stale peers to `estimation_error`, not fraud.
//!
//! All sweeps are deterministic: the fabric RNG is seeded per cell
//! (`derive_seed(seed, cell-index)`), the runtime is sequential inside
//! a cell, and cells merge in index order under any [`Parallelism`].

use recluster_core::{
    scost_normalized, simulate_period, CrashWindow, DelayDist, FaultSchedule, LiarConfig, LiarMode,
    NetConfig, ObservedStats, ObservedStrategy, Partition, PartitionKind, ProtocolConfig,
    RuntimeChurn, RuntimeEngine, SelfishStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_types::{derive_seed, Document, PeerId, Query, Sym, Workload};

use crate::runner::{sweep_map, Parallelism};
use crate::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

/// Extra-delay shapes the sweep crosses with drop rates.
const DELAYS: [(u64, u64); 3] = [(0, 0), (0, 2), (0, 6)];
/// Drop rates (percent) the sweep crosses with delays.
const DROP_PCTS: [u64; 3] = [0, 5, 15];

fn protocol(max_rounds: usize) -> ProtocolConfig {
    ProtocolConfig::builder()
        .max_rounds(max_rounds)
        .memoize(false)
        .build()
}

/// One cell of the delay/reorder sweep.
#[derive(Debug, Clone)]
pub struct NetSweepRow {
    /// The schedule, rendered (`delay=0..2 drop=5%`).
    pub setting: String,
    /// Rounds to convergence (`None` = budget exhausted).
    pub rounds: Option<usize>,
    /// Final normalized social cost.
    pub scost: f64,
    /// Relocations actually committed (a grant whose commit frames all
    /// dropped does not count).
    pub moves: usize,
    /// Grants issued by representatives.
    pub granted: u64,
    /// Denies issued by representatives.
    pub denied: u64,
    /// Frames lost to the drop draw.
    pub dropped: u64,
    /// Frames that arrived after their collector had fired.
    pub stale: u64,
}

/// Sweeps the runtime across delay distributions × drop rates
/// (selfish strategy, scenario 1, random-M start). Cell 0 is the ideal
/// schedule — bit-identical to the sync engine — so the row series
/// reads as "cost of degradation relative to the paper's assumption".
pub fn run_net_sweep(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<NetSweepRow> {
    let cells: Vec<(usize, (u64, u64), u64)> = DELAYS
        .iter()
        .flat_map(|&delay| DROP_PCTS.iter().map(move |&pct| (delay, pct)))
        .enumerate()
        .map(|(i, (delay, pct))| (i, delay, pct))
        .collect();
    sweep_map(parallelism, &cells, |&(i, (min, max), pct)| {
        let net_config = NetConfig {
            seed: derive_seed(seed, i as u64),
            delay: if min == max {
                DelayDist::Fixed(min)
            } else {
                DelayDist::Uniform { min, max }
            },
            drop_rate: pct as f64 / 100.0,
            phase_ticks: max + 2,
        };
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut ledger = SimNetwork::new();
        let mut engine = RuntimeEngine::new(SelfishStrategy, protocol(max_rounds), net_config);
        let outcome = engine.run(&mut tb.system, &mut ledger);
        let stats = engine.net_stats();
        NetSweepRow {
            setting: format!("delay={min}..{max} drop={pct}%"),
            rounds: outcome.converged.then(|| outcome.rounds_to_converge()),
            scost: scost_normalized(&tb.system),
            moves: engine.evidence().records().len(),
            granted: engine.granted_total(),
            denied: engine.denied_total(),
            dropped: stats.dropped,
            stale: stats.stale,
        }
    })
}

/// Liar fractions the audit sweeps.
const LIAR_FRACTIONS: [(u64, f64); 4] = [(0, 0.0), (1, 0.10), (2, 0.25), (3, 0.50)];
/// Claimed-gain multiplier for configured liars.
const LIAR_BOOST: f64 = 10.0;
/// Slack between a claimed gain and the observation-backed estimate
/// before the auditor flags the claimant.
const AUDIT_TOLERANCE: f64 = 0.05;

/// One cell of the liar audit.
#[derive(Debug, Clone)]
pub struct LiarAuditRow {
    /// Configured liar fraction.
    pub fraction: f64,
    /// Relocations committed (the audited population).
    pub moves: usize,
    /// Commits the audit skipped for lack of observation coverage.
    pub skipped: usize,
    /// Distinct peers that actually over-claimed.
    pub liars: usize,
    /// Distinct peers the audit flagged.
    pub flagged: usize,
    /// Fault-attribution precision (1.0 when nothing was flagged).
    pub precision: f64,
    /// Fault-attribution recall (1.0 when nobody lied).
    pub recall: f64,
    /// Final normalized social cost — what the lying *costs* the system
    /// (inflated claims win grants over genuinely better moves).
    pub scost: f64,
}

/// Sweeps the liar fraction under an ideal schedule. Each round
/// follows §3.1's rhythm: peers first observe a query period (flood
/// routing — PR 7's oracle-faithful path) on the *current*
/// configuration, then run one protocol round in which the configured
/// fraction inflate their claims, and the round's commits are audited
/// against the contemporaneous observations
/// ([`recluster_core::EvidenceLog::audit_round`]). Flagged/liar sets
/// accumulate across
/// rounds and the row scores the whole run.
pub fn run_liar_audit(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<LiarAuditRow> {
    sweep_map(parallelism, &LIAR_FRACTIONS, |&(i, fraction)| {
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut ledger = SimNetwork::new();
        let liars = LiarConfig {
            fraction,
            boost: LIAR_BOOST,
            seed: derive_seed(seed, 100 + i),
            mode: LiarMode::Consistent,
        };
        let mut engine =
            RuntimeEngine::new(SelfishStrategy, protocol(max_rounds), NetConfig::ideal())
                .with_liars(liars);
        let mut skipped = 0;
        let mut flagged = Vec::new();
        let mut liar_set = Vec::new();
        for round in 0..max_rounds {
            // Honest traffic observed on the pre-round configuration
            // judges the claims made during the round itself.
            let mut stats = ObservedStats::new(0.5);
            stats.absorb(&simulate_period(&tb.system, &mut ledger));
            let outcome = engine.run_round(&mut tb.system, &mut ledger, round);
            let report = engine
                .evidence()
                .audit_round(&tb.system, &stats, AUDIT_TOLERANCE, round);
            skipped += report.skipped;
            flagged.extend(report.flagged);
            liar_set.extend(report.liars);
            if outcome.requests.is_empty() {
                break;
            }
        }
        flagged.sort();
        flagged.dedup();
        liar_set.sort();
        liar_set.dedup();
        let hits = flagged
            .iter()
            .filter(|p| liar_set.binary_search(p).is_ok())
            .count();
        let ratio = |num: usize, den: usize| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        LiarAuditRow {
            fraction,
            moves: engine.evidence().records().len(),
            skipped,
            liars: liar_set.len(),
            flagged: flagged.len(),
            precision: ratio(hits, flagged.len()),
            recall: ratio(hits, liar_set.len()),
            scost: scost_normalized(&tb.system),
        }
    })
}

/// Tick at which the partition/crash cells' fault window opens —
/// mid-collect of round 0, so phase state is torn, not just absent.
const FAULT_START: u64 = 4;
/// Tick at which the fault window heals (exclusive). With `delay=0..2`
/// and `phase_ticks=4` a round spans roughly twelve ticks, so the
/// window disrupts the first three-or-so rounds and leaves the rest of
/// the budget for repair.
const FAULT_HEAL: u64 = 40;

/// One cell of the partition/heal scenario.
#[derive(Debug, Clone)]
pub struct PartitionHealRow {
    /// The fault injected (`no-fault`, `bisect`, `isolate-rep`,
    /// `crash-rep`), window included.
    pub setting: String,
    /// Rounds to convergence (`None` = budget exhausted).
    pub rounds: Option<usize>,
    /// Final normalized social cost, *after* the heal.
    pub scost: f64,
    /// The equilibrium an ideal schedule reaches on the same start.
    pub ideal: f64,
    /// `(scost − ideal) / ideal` — the repair criterion is `|gap| < 5%`.
    pub gap: f64,
    /// Relocations committed across the run.
    pub moves: usize,
    /// Frames severed by an active partition.
    pub cut: u64,
    /// Frames eaten by a crashed endpoint.
    pub crashed: u64,
    /// Frames that arrived after their collector had fired.
    pub stale: u64,
}

/// Runs the same testbed under four fault schedules — none, a timed
/// bisection, a timed representative isolation, a representative
/// crash/restart window — and scores each cell's *post-heal* social
/// cost against the ideal-schedule equilibrium. The paper's protocol
/// has no partition story at all; this sweep shows the runtime's
/// deadline discipline turns a torn fabric into denied rounds that
/// repair once the fault heals.
pub fn run_partition_heal(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<PartitionHealRow> {
    // The reference every fault cell must repair back to, and the
    // representative the targeted cells tear out. Both come from the
    // deterministic initial build, so every cell agrees on them.
    let (ideal, rep) = {
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let rep = {
            let ov = tb.system.overlay();
            ov.cluster(ov.non_empty_ids()[0])
                .representative()
                .expect("non-empty cluster has a representative")
        };
        let mut ledger = SimNetwork::new();
        RuntimeEngine::new(SelfishStrategy, protocol(max_rounds), NetConfig::ideal())
            .run(&mut tb.system, &mut ledger);
        (scost_normalized(&tb.system), rep)
    };
    let pivot = (cfg.n_peers / 2) as u32;
    let window = |kind| Partition {
        kind,
        start: FAULT_START,
        heal: FAULT_HEAL,
    };
    let cells: Vec<(usize, &str, FaultSchedule)> = vec![
        (0, "no-fault", FaultSchedule::none()),
        (
            1,
            "bisect",
            FaultSchedule {
                partitions: vec![window(PartitionKind::Bisect { pivot })],
                crashes: vec![],
            },
        ),
        (
            2,
            "isolate-rep",
            FaultSchedule {
                partitions: vec![window(PartitionKind::Isolate { peer: rep })],
                crashes: vec![],
            },
        ),
        (
            3,
            "crash-rep",
            FaultSchedule {
                partitions: vec![],
                crashes: vec![CrashWindow {
                    peer: rep,
                    down: FAULT_START,
                    up: FAULT_HEAL,
                }],
            },
        ),
    ];
    sweep_map(parallelism, &cells, |(i, name, faults)| {
        let net_config = NetConfig {
            seed: derive_seed(seed, 300 + *i as u64),
            delay: DelayDist::Uniform { min: 0, max: 2 },
            drop_rate: 0.0,
            phase_ticks: 4,
        };
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut ledger = SimNetwork::new();
        let mut engine = RuntimeEngine::new(SelfishStrategy, protocol(max_rounds), net_config)
            .with_faults(faults.clone());
        let outcome = engine.run(&mut tb.system, &mut ledger);
        let stats = engine.net_stats();
        let scost = scost_normalized(&tb.system);
        PartitionHealRow {
            setting: if faults.is_empty() {
                (*name).to_string()
            } else {
                format!("{name}@t{FAULT_START}..t{FAULT_HEAL}")
            },
            rounds: outcome.converged.then(|| outcome.rounds_to_converge()),
            scost,
            ideal,
            gap: (scost - ideal) / ideal,
            moves: engine.evidence().records().len(),
            cut: stats.cut,
            crashed: stats.crashed,
            stale: stats.stale,
        }
    })
}

/// One cell of the mid-round churn scenario.
#[derive(Debug, Clone)]
pub struct MidroundChurnRow {
    /// The churn injected (`no-churn`, `departs`, `arrivals`, `mixed`).
    pub setting: String,
    /// Rounds to convergence (`None` = budget exhausted).
    pub rounds: Option<usize>,
    /// Final normalized social cost of the surviving population.
    pub scost: f64,
    /// Peers live at the end of the run.
    pub peers: usize,
    /// Relocations committed across the run.
    pub moves: usize,
    /// Frames addressed to peers that had already departed.
    pub departed: u64,
    /// Delivered `Commit` frames voided as no longer valid moves.
    pub commits_voided: u64,
    /// Grants converted to denies because the grantee departed first.
    pub grants_voided: u64,
    /// Frames that arrived after their collector had fired.
    pub stale: u64,
}

/// Runs the same testbed under four mid-round churn schedules: none,
/// departures (the first cluster's *representative* among them, ticks
/// chosen to land inside round 0's grant/commit window), arrivals, and
/// a mixed schedule. The rows read as the teardown ledger: frames to
/// the departed are attributed (not confused with drops), grants to
/// departed peers void at the deadline, commits from evicted state are
/// rejected — and the survivors still converge.
pub fn run_midround_churn(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<MidroundChurnRow> {
    // Churn targets from the deterministic initial build: the first
    // non-empty cluster's representative, a member beside it, and a
    // member of the next cluster.
    let (c0, c1, rep, member_a, member_b) = {
        let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let ov = tb.system.overlay();
        let ids = ov.non_empty_ids();
        let (c0, c1) = (ids[0], ids[1 % ids.len()]);
        let cl0 = ov.cluster(c0);
        let rep = cl0.representative().expect("non-empty cluster");
        let member_a = cl0
            .members()
            .iter()
            .copied()
            .find(|&p| p != rep)
            .unwrap_or(rep);
        let member_b = ov
            .cluster(c1)
            .members()
            .last()
            .copied()
            .expect("non-empty cluster");
        (c0, c1, rep, member_a, member_b)
    };
    let depart = |tick, peer| (tick, RuntimeChurn::Depart { peer });
    let arrive = |tick, cluster, sym: u32| {
        let mut workload = Workload::new();
        workload.add(Query::keyword(Sym(sym)), 2);
        (
            tick,
            RuntimeChurn::Arrive {
                cluster,
                docs: vec![Document::new(vec![Sym(sym)])],
                workload,
            },
        )
    };
    // Ticks 2..5 straddle the ideal schedule's forward → grant →
    // commit window for round 0, so the departures land mid-phase.
    type ChurnCell<'a> = (usize, &'a str, Vec<(u64, RuntimeChurn)>);
    let cells: Vec<ChurnCell<'_>> = vec![
        (0, "no-churn", vec![]),
        (
            1,
            "departs",
            vec![depart(2, rep), depart(3, member_a), depart(4, member_b)],
        ),
        (2, "arrivals", vec![arrive(2, c0, 0), arrive(10, c1, 1)]),
        (3, "mixed", vec![depart(3, member_a), arrive(4, c1, 2)]),
    ];
    sweep_map(parallelism, &cells, |(i, name, churn)| {
        // The schedule is ideal (no drop draws), but each cell still
        // gets its own fabric seed for uniformity with the other sweeps.
        let net_config = NetConfig {
            seed: derive_seed(seed, 400 + *i as u64),
            ..NetConfig::ideal()
        };
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut ledger = SimNetwork::new();
        let mut engine = RuntimeEngine::new(SelfishStrategy, protocol(max_rounds), net_config)
            .with_churn(churn.clone());
        let outcome = engine.run(&mut tb.system, &mut ledger);
        let stats = engine.net_stats();
        let ov = tb.system.overlay();
        let peers = (0..ov.n_slots())
            .filter(|&s| ov.cluster_of(PeerId(s as u32)).is_some())
            .count();
        MidroundChurnRow {
            setting: (*name).to_string(),
            rounds: outcome.converged.then(|| outcome.rounds_to_converge()),
            scost: scost_normalized(&tb.system),
            peers,
            moves: engine.evidence().records().len(),
            departed: stats.departed,
            commits_voided: engine.commits_voided_total(),
            grants_voided: engine.grants_voided_total(),
            stale: stats.stale,
        }
    })
}

/// One cell of the observed-mode commitment-reveal audit.
#[derive(Debug, Clone)]
pub struct ObservedAuditRow {
    /// Configured liar fraction.
    pub fraction: f64,
    /// Relocations committed (the audited population).
    pub moves: usize,
    /// Distinct peers that actually over-claimed.
    pub liars: usize,
    /// Fraud proven from frames alone (reveal ≠ commitment).
    pub reveal_mismatch: usize,
    /// Fraud by the estimate (claim above the observation-backed gain).
    pub inflated: usize,
    /// Honest drift: estimate-backed claims that sit off the oracle —
    /// stale statistics, charged as error, never as fraud.
    pub est_error: usize,
    /// Distinct peers accused of fraud.
    pub flagged: usize,
    /// Fault-attribution precision (1.0 when nothing was flagged).
    pub precision: f64,
    /// Fault-attribution recall (1.0 when nobody lied).
    pub recall: f64,
    /// Final normalized social cost.
    pub scost: f64,
}

/// Sweeps the liar fraction under [`ObservedStrategy`] with
/// *late-inflating* liars ([`LiarMode::LateInflate`]): every peer
/// proposes the gain its observed statistics support, but liars reveal
/// a boosted gain at `Commit`. One observation period is absorbed up
/// front (decay 0) and the **same** statistics drive both the strategy
/// and the audit, so an honest claim reproduces the auditor's estimate
/// bit-for-bit: fraud lands in `reveal_mismatch`/`inflated`, honest
/// staleness lands in `est_error`, and precision/recall are exact.
pub fn run_observed_liar_audit(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<ObservedAuditRow> {
    sweep_map(parallelism, &LIAR_FRACTIONS, |&(i, fraction)| {
        let mut tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, cfg);
        let mut ledger = SimNetwork::new();
        // One honest flood-routed period on the starting configuration;
        // decay 0 makes the fold a pure snapshot. Frozen statistics are
        // the worst case for staleness — exactly what the audit must
        // refuse to call fraud.
        let mut stats = ObservedStats::new(0.0);
        stats.absorb(&simulate_period(&tb.system, &mut ledger));
        let liars = LiarConfig {
            fraction,
            boost: LIAR_BOOST,
            seed: derive_seed(seed, 200 + i),
            mode: LiarMode::LateInflate,
        };
        let mut engine = RuntimeEngine::new(
            ObservedStrategy::selfish(&stats),
            protocol(max_rounds),
            NetConfig::ideal(),
        )
        .with_liars(liars);
        engine.run(&mut tb.system, &mut ledger);
        let report = engine.evidence().audit(&tb.system, &stats, AUDIT_TOLERANCE);
        ObservedAuditRow {
            fraction,
            moves: engine.evidence().records().len(),
            liars: report.liars.len(),
            reveal_mismatch: report.reveal_mismatch.len(),
            inflated: report.inflated.len(),
            est_error: report.estimation_error.len(),
            flagged: report.flagged.len(),
            precision: report.precision,
            recall: report.recall,
            scost: scost_normalized(&tb.system),
        }
    })
}

/// Tiny FNV-1a accumulator — same offset basis and prime as the golden
/// suite's `BitDigest`, fed every counter and every float's raw bits so
/// the trailing digest line pins sub-rounding drift.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Renders the delay/reorder sweep as digest-pinned text (scost vs
/// delay/drop, plus the grant/deny/drop/stale ledger per cell).
pub fn render_net_sweep(rows: &[NetSweepRow], seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("net-sweep scenario=same-category init=random-m seed={seed}\n");
    let mut h = Fnv::new();
    for r in rows {
        h.f64(r.scost);
        h.u64(r.rounds.map_or(u64::MAX, |n| n as u64));
        h.u64(r.moves as u64);
        h.u64(r.granted);
        h.u64(r.denied);
        h.u64(r.dropped);
        h.u64(r.stale);
        let _ = writeln!(
            out,
            "{:<20} rounds={:<4} scost={} moves={:<3} granted={:<3} denied={:<3} dropped={:<3} stale={}",
            r.setting,
            crate::report::rounds_cell(r.rounds),
            crate::report::f3(r.scost),
            r.moves,
            r.granted,
            r.denied,
            r.dropped,
            r.stale,
        );
    }
    let _ = writeln!(out, "netsim-digest: {:016x}", h.finish());
    out
}

/// Renders the liar audit as digest-pinned text (fault-attribution
/// precision/recall per liar fraction, plus what the lying costs).
pub fn render_liar_audit(rows: &[LiarAuditRow], seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("liar-audit scenario=same-category init=random-m seed={seed}\n");
    let mut h = Fnv::new();
    for r in rows {
        h.f64(r.fraction);
        h.u64(r.moves as u64);
        h.u64(r.skipped as u64);
        h.u64(r.liars as u64);
        h.u64(r.flagged as u64);
        h.f64(r.precision);
        h.f64(r.recall);
        h.f64(r.scost);
        let _ = writeln!(
            out,
            "fraction={:<5} moves={:<3} skipped={:<2} liars={:<2} flagged={:<2} precision={} recall={} scost={}",
            crate::report::f3(r.fraction),
            r.moves,
            r.skipped,
            r.liars,
            r.flagged,
            crate::report::f3(r.precision),
            crate::report::f3(r.recall),
            crate::report::f3(r.scost),
        );
    }
    let _ = writeln!(out, "netsim-digest: {:016x}", h.finish());
    out
}

/// Renders the partition/heal scenario as digest-pinned text (the
/// post-heal gap against the ideal equilibrium, plus the cut/crash
/// loss ledger per cell).
pub fn render_partition_heal(rows: &[PartitionHealRow], seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("partition-heal scenario=same-category init=random-m seed={seed}\n");
    let mut h = Fnv::new();
    for r in rows {
        h.f64(r.scost);
        h.f64(r.ideal);
        h.f64(r.gap);
        h.u64(r.rounds.map_or(u64::MAX, |n| n as u64));
        h.u64(r.moves as u64);
        h.u64(r.cut);
        h.u64(r.crashed);
        h.u64(r.stale);
        let _ = writeln!(
            out,
            "{:<22} rounds={:<4} scost={} ideal={} gap={} moves={:<3} cut={:<4} crashed={:<3} stale={}",
            r.setting,
            crate::report::rounds_cell(r.rounds),
            crate::report::f3(r.scost),
            crate::report::f3(r.ideal),
            crate::report::f3(r.gap),
            r.moves,
            r.cut,
            r.crashed,
            r.stale,
        );
    }
    let _ = writeln!(out, "netsim-digest: {:016x}", h.finish());
    out
}

/// Renders the mid-round churn scenario as digest-pinned text (the
/// voided-commit/voided-grant teardown ledger per cell).
pub fn render_midround_churn(rows: &[MidroundChurnRow], seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("midround-churn scenario=same-category init=random-m seed={seed}\n");
    let mut h = Fnv::new();
    for r in rows {
        h.f64(r.scost);
        h.u64(r.rounds.map_or(u64::MAX, |n| n as u64));
        h.u64(r.peers as u64);
        h.u64(r.moves as u64);
        h.u64(r.departed);
        h.u64(r.commits_voided);
        h.u64(r.grants_voided);
        h.u64(r.stale);
        let _ = writeln!(
            out,
            "{:<10} rounds={:<4} scost={} peers={:<3} moves={:<3} departed={:<3} commits_voided={} grants_voided={} stale={}",
            r.setting,
            crate::report::rounds_cell(r.rounds),
            crate::report::f3(r.scost),
            r.peers,
            r.moves,
            r.departed,
            r.commits_voided,
            r.grants_voided,
            r.stale,
        );
    }
    let _ = writeln!(out, "netsim-digest: {:016x}", h.finish());
    out
}

/// Renders the observed-mode audit as digest-pinned text (fraud
/// category counts and attribution scores per liar fraction).
pub fn render_observed_audit(rows: &[ObservedAuditRow], seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("observed-audit scenario=same-category init=random-m seed={seed}\n");
    let mut h = Fnv::new();
    for r in rows {
        h.f64(r.fraction);
        h.u64(r.moves as u64);
        h.u64(r.liars as u64);
        h.u64(r.reveal_mismatch as u64);
        h.u64(r.inflated as u64);
        h.u64(r.est_error as u64);
        h.u64(r.flagged as u64);
        h.f64(r.precision);
        h.f64(r.recall);
        h.f64(r.scost);
        let _ = writeln!(
            out,
            "fraction={:<5} moves={:<3} liars={:<2} reveal_mismatch={:<2} inflated={:<2} est_error={:<2} flagged={:<2} precision={} recall={} scost={}",
            crate::report::f3(r.fraction),
            r.moves,
            r.liars,
            r.reveal_mismatch,
            r.inflated,
            r.est_error,
            r.flagged,
            crate::report::f3(r.precision),
            crate::report::f3(r.recall),
            crate::report::f3(r.scost),
        );
    }
    let _ = writeln!(out, "netsim-digest: {:016x}", h.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(17)
    }

    #[test]
    fn ideal_cell_is_clean_and_degraded_cells_see_loss() {
        let rows = run_net_sweep(&cfg(), 12, 5, Parallelism::Sequential);
        assert_eq!(rows.len(), DELAYS.len() * DROP_PCTS.len());
        let ideal = &rows[0];
        assert_eq!(ideal.setting, "delay=0..0 drop=0%");
        assert_eq!(ideal.dropped, 0);
        assert_eq!(ideal.stale, 0);
        assert_eq!(
            ideal.moves as u64, ideal.granted,
            "ideal: every grant lands"
        );
        // The lossiest cell must actually lose frames.
        let lossy = rows.last().unwrap();
        assert!(lossy.dropped > 0);
    }

    #[test]
    fn sweep_is_parallelism_invariant_and_seeded() {
        let a = render_net_sweep(&run_net_sweep(&cfg(), 8, 5, Parallelism::Sequential), 5);
        let b = render_net_sweep(&run_net_sweep(&cfg(), 8, 5, Parallelism::Threads(4)), 5);
        assert_eq!(a, b, "thread pool must not change a byte");
        let c = render_net_sweep(&run_net_sweep(&cfg(), 8, 6, Parallelism::Sequential), 5);
        assert_ne!(a, c, "the fabric seed must matter in degraded cells");
    }

    #[test]
    fn liar_audit_scores_the_planted_liars() {
        let rows = run_liar_audit(&cfg(), 12, 5, Parallelism::Sequential);
        assert_eq!(rows.len(), LIAR_FRACTIONS.len());
        let honest = &rows[0];
        assert_eq!(honest.liars, 0);
        assert_eq!(
            honest.flagged, 0,
            "contemporaneous audit must not flag honest claims"
        );
        assert_eq!(honest.recall, 1.0);
        // At least one lying cell must plant and catch real liars.
        assert!(
            rows.iter().any(|r| r.liars > 0 && r.flagged > 0),
            "no cell planted a catchable liar: {rows:?}"
        );
    }

    #[test]
    fn partition_heal_repairs_to_the_ideal_equilibrium() {
        let rows = run_partition_heal(&cfg(), 40, 5, Parallelism::Sequential);
        assert_eq!(rows.len(), 4);
        let base = &rows[0];
        assert_eq!(base.cut, 0, "no-fault cell severed frames: {base:?}");
        assert_eq!(base.crashed, 0, "no-fault cell crashed frames: {base:?}");
        assert!(rows[1].cut > 0, "bisect cell must sever frames: {rows:?}");
        assert!(rows[2].cut > 0, "isolate cell must sever frames: {rows:?}");
        assert!(rows[3].crashed > 0, "crash cell must eat frames: {rows:?}");
        for r in &rows {
            assert!(
                r.gap.abs() < 0.05,
                "post-heal scost must sit within 5% of the ideal-schedule \
                 equilibrium: {r:?}"
            );
        }
    }

    #[test]
    fn midround_churn_tears_down_cleanly_and_admits_joiners() {
        let rows = run_midround_churn(&cfg(), 60, 5, Parallelism::Sequential);
        assert_eq!(rows.len(), 4);
        let base = &rows[0];
        assert_eq!(base.departed, 0);
        assert_eq!(base.commits_voided + base.grants_voided, 0);
        let departs = &rows[1];
        assert_eq!(departs.peers, base.peers - 3, "three peers departed");
        assert!(
            departs.departed > 0,
            "frames to the departed must be attributed: {departs:?}"
        );
        let arrivals = &rows[2];
        assert_eq!(arrivals.peers, base.peers + 2, "two peers arrived");
        let mixed = &rows[3];
        assert_eq!(mixed.peers, base.peers, "one out, one in");
        // Every cell's survivors still settle.
        for r in &rows {
            assert!(r.rounds.is_some(), "cell failed to converge: {r:?}");
        }
    }

    #[test]
    fn observed_audit_proves_liars_and_spares_stale_honesty() {
        let rows = run_observed_liar_audit(&cfg(), 12, 5, Parallelism::Sequential);
        assert_eq!(rows.len(), LIAR_FRACTIONS.len());
        let honest = &rows[0];
        assert_eq!(honest.liars, 0);
        assert_eq!(
            honest.flagged, 0,
            "the shared-statistics audit must never accuse an honest claim"
        );
        // Late inflation is fraud provable from the frames alone.
        assert!(
            rows.iter().any(|r| r.liars > 0 && r.reveal_mismatch > 0),
            "no cell caught a late-inflating liar by its reveal: {rows:?}"
        );
        for r in &rows {
            assert_eq!(r.precision, 1.0, "audit accused an honest peer: {r:?}");
            assert_eq!(r.recall, 1.0, "audit missed a liar: {r:?}");
        }
    }
}
