//! Queries posed by peers.
//!
//! "Queries are sets of attributes. We say that a query q matches a data
//! item d of peer p, if its attributes are a subset of the attributes
//! describing d." In the paper's evaluation queries are single words
//! chosen from the texts, but the model (and this type) supports arbitrary
//! attribute sets.

use crate::interner::Sym;
use crate::item::Document;

/// A query: a sorted, deduplicated set of attribute symbols.
///
/// # Examples
/// ```
/// use recluster_types::{Document, Query, Sym};
///
/// let q = Query::new(vec![Sym(2), Sym(5)]);
/// let hit = Document::new(vec![Sym(1), Sym(2), Sym(5)]);
/// let miss = Document::new(vec![Sym(2), Sym(3)]);
/// assert!(q.matches(&hit));
/// assert!(!q.matches(&miss));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Query {
    attrs: Box<[Sym]>,
}

impl Query {
    /// Builds a query from attributes in any order, deduplicating.
    pub fn new(mut attrs: Vec<Sym>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        Query {
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// The single-keyword query used throughout the paper's evaluation.
    pub fn keyword(sym: Sym) -> Self {
        Query {
            attrs: vec![sym].into_boxed_slice(),
        }
    }

    /// The sorted attribute set.
    #[inline]
    pub fn attrs(&self) -> &[Sym] {
        &self.attrs
    }

    /// Number of distinct attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the query has no attributes. An empty query matches every
    /// document (the subset relation holds vacuously).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The paper's match predicate: the query's attributes are a subset of
    /// the document's.
    #[inline]
    pub fn matches(&self, doc: &Document) -> bool {
        doc.contains_all_sorted(&self.attrs)
    }

    /// `result(q, p)` for a single peer: how many of `docs` this query
    /// matches.
    pub fn result_count(&self, docs: &[Document]) -> u64 {
        docs.iter().filter(|d| self.matches(d)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u32]) -> Query {
        Query::new(ids.iter().map(|&i| Sym(i)).collect())
    }

    fn d(ids: &[u32]) -> Document {
        Document::new(ids.iter().map(|&i| Sym(i)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let query = q(&[9, 1, 9, 4]);
        assert_eq!(query.attrs(), &[Sym(1), Sym(4), Sym(9)]);
    }

    #[test]
    fn keyword_builds_singleton() {
        let query = Query::keyword(Sym(7));
        assert_eq!(query.attrs(), &[Sym(7)]);
        assert_eq!(query.len(), 1);
    }

    #[test]
    fn matches_requires_subset() {
        let query = q(&[1, 3]);
        assert!(query.matches(&d(&[0, 1, 2, 3])));
        assert!(!query.matches(&d(&[1, 2])));
        assert!(!query.matches(&d(&[3])));
    }

    #[test]
    fn empty_query_matches_everything() {
        let query = q(&[]);
        assert!(query.is_empty());
        assert!(query.matches(&d(&[])));
        assert!(query.matches(&d(&[1, 2, 3])));
    }

    #[test]
    fn result_count_counts_matching_documents() {
        let query = q(&[2]);
        let docs = vec![d(&[1, 2]), d(&[2, 3]), d(&[3, 4]), d(&[2])];
        assert_eq!(query.result_count(&docs), 3);
    }

    #[test]
    fn result_count_on_empty_collection_is_zero() {
        assert_eq!(q(&[1]).result_count(&[]), 0);
    }

    #[test]
    fn queries_order_lexicographically() {
        assert!(q(&[1]) < q(&[2]));
        assert!(q(&[1]) < q(&[1, 2]));
    }
}
