//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (corpus generation, initial
//! cluster assignment, update injection) is seeded from a single `u64` so
//! experiments are exactly reproducible. Sub-seeds are derived with a
//! SplitMix64 finalizer so independent components draw from statistically
//! uncorrelated streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the workspace-standard RNG from a `u64` seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent sub-seed from a master seed and a stream label.
///
/// Uses the SplitMix64 finalizer, whose avalanche properties guarantee
/// that nearby `(seed, stream)` pairs produce unrelated outputs.
///
/// # Examples
/// ```
/// use recluster_types::derive_seed;
/// assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
/// assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
/// ```
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000 {
            assert!(seen.insert(derive_seed(123, stream)));
        }
    }

    #[test]
    fn derived_seeds_are_deterministic() {
        assert_eq!(derive_seed(5, 9), derive_seed(5, 9));
    }

    #[test]
    fn derive_differs_from_master() {
        assert_ne!(derive_seed(0, 0), 0);
    }
}
