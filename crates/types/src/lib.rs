//! Foundational types shared by every crate in the `recluster` workspace.
//!
//! This crate defines the vocabulary of the system reproduced from
//! *Recall-Based Cluster Reformulation by Selfish Peers* (Koloniari &
//! Pitoura, ICDE 2008):
//!
//! * [`PeerId`] / [`ClusterId`] — dense integer identities for the players
//!   of the reformulation game and the clusters they join.
//! * [`Sym`] and [`Interner`] — interned attribute symbols. The paper
//!   describes data items generically as *sets of attributes* (keywords for
//!   text documents); we intern attribute strings once and work with `u32`
//!   symbols everywhere else.
//! * [`Document`] — a data item: a sorted set of attribute symbols.
//! * [`Query`] — a sorted set of attributes; a query *matches* a document
//!   when its attributes are a subset of the document's.
//! * [`Workload`] — a multiset of queries (`num(q, Q(p))` in the paper's
//!   notation), i.e. the local query workload of a peer.
//! * [`seeded_rng`] — deterministic RNG construction used across the
//!   workspace so every experiment is reproducible from a single `u64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod interner;
pub mod item;
pub mod query;
pub mod rng;
pub mod workload;

pub use ids::{ClusterId, PeerId};
pub use interner::{Interner, Sym};
pub use item::Document;
pub use query::Query;
pub use rng::{derive_seed, seeded_rng};
pub use workload::Workload;
