//! Dense integer identities for peers and clusters.
//!
//! Both id spaces are allocated densely from zero by the overlay, which
//! lets the cost engine store per-peer and per-cluster state in flat
//! vectors instead of hash maps (see the Rust Performance Book's guidance
//! on hashing and allocation).

use std::fmt;

/// Identity of a peer (a *player* in the reformulation game).
///
/// Peers are numbered densely from zero within an overlay, so a `PeerId`
/// doubles as an index into per-peer state vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

/// Identity of a cluster (`cid` in the paper).
///
/// The paper fixes the number of available clusters to `Cmax = |P|` and
/// allows clusters to be empty, so cluster ids are also dense indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl PeerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PeerId` from a dense index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        PeerId(u32::try_from(idx).expect("peer index overflows u32"))
    }
}

impl ClusterId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ClusterId` from a dense index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        ClusterId(u32::try_from(idx).expect("cluster index overflows u32"))
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_roundtrips_through_index() {
        for idx in [0usize, 1, 7, 199, 65_535] {
            assert_eq!(PeerId::from_index(idx).index(), idx);
        }
    }

    #[test]
    fn cluster_id_roundtrips_through_index() {
        for idx in [0usize, 1, 7, 199, 65_535] {
            assert_eq!(ClusterId::from_index(idx).index(), idx);
        }
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(PeerId(1) < PeerId(2));
        assert!(ClusterId(0) < ClusterId(10));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(PeerId(3).to_string(), "p3");
        assert_eq!(ClusterId(12).to_string(), "c12");
        assert_eq!(format!("{:?}", PeerId(3)), "p3");
        assert_eq!(format!("{:?}", ClusterId(12)), "c12");
    }

    #[test]
    #[should_panic(expected = "peer index overflows u32")]
    fn peer_id_from_oversized_index_panics() {
        let _ = PeerId::from_index(u32::MAX as usize + 1);
    }
}
