//! Query workloads.
//!
//! `Q(p)` in the paper is the *list* of queries issued by peer `p`; a
//! query may appear multiple times, and the individual cost weighs each
//! distinct query by its relative frequency `num(q, Q(p)) / num(Q(p))`.
//! [`Workload`] stores that multiset in canonical sorted form so two
//! workloads with the same counts compare equal and iteration order is
//! deterministic.

use std::collections::BTreeMap;

use crate::query::Query;

/// A multiset of queries — the local query workload `Q(p)` of a peer (or
/// the global workload `Q` when aggregated).
///
/// # Examples
/// ```
/// use recluster_types::{Query, Sym, Workload};
///
/// let mut w = Workload::new();
/// w.add(Query::keyword(Sym(1)), 3);
/// w.add(Query::keyword(Sym(2)), 1);
/// assert_eq!(w.total(), 4);
/// assert_eq!(w.count(&Query::keyword(Sym(1))), 3);
/// assert!((w.frequency(&Query::keyword(Sym(1))) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Workload {
    counts: BTreeMap<Query, u64>,
    total: u64,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` occurrences of `query`. Adding zero occurrences is a no-op
    /// (and does not create an entry).
    pub fn add(&mut self, query: Query, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(query).or_insert(0) += n;
        self.total += n;
    }

    /// Removes up to `n` occurrences of `query`, returning how many were
    /// actually removed.
    pub fn remove(&mut self, query: &Query, n: u64) -> u64 {
        let Some(count) = self.counts.get_mut(query) else {
            return 0;
        };
        let removed = n.min(*count);
        *count -= removed;
        if *count == 0 {
            self.counts.remove(query);
        }
        self.total -= removed;
        removed
    }

    /// `num(q, Q)`: occurrences of `query`.
    pub fn count(&self, query: &Query) -> u64 {
        self.counts.get(query).copied().unwrap_or(0)
    }

    /// `num(Q)`: total number of query occurrences.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of *distinct* queries.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether the workload contains no queries.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Relative frequency `num(q, Q) / num(Q)`; zero for an empty workload.
    pub fn frequency(&self, query: &Query) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(query) as f64 / self.total as f64
        }
    }

    /// Iterates `(query, count)` in canonical (sorted-query) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Query, u64)> {
        self.counts.iter().map(|(q, &n)| (q, n))
    }

    /// Merges another workload into this one.
    pub fn merge(&mut self, other: &Workload) {
        for (q, n) in other.iter() {
            self.add(q.clone(), n);
        }
    }

    /// Removes all queries.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// Scales every count by `keep_num/keep_den` using floor division,
    /// dropping queries whose count reaches zero. Used by the update
    /// generators when "the query workload of all peers in c_cur changes
    /// by a varying percentage" (§4.2).
    pub fn scale_down(&mut self, keep_num: u64, keep_den: u64) {
        assert!(keep_den > 0, "scale_down denominator must be positive");
        let old = std::mem::take(&mut self.counts);
        self.total = 0;
        for (q, n) in old {
            let kept = n * keep_num / keep_den;
            if kept > 0 {
                self.total += kept;
                self.counts.insert(q, kept);
            }
        }
    }

    /// Returns a workload with the same query mix but exactly
    /// `target_total` occurrences, apportioned proportionally with the
    /// largest-remainder method (deterministic: remainder ties broken by
    /// query order). `target_total` may not exceed the current total.
    pub fn apportion(&self, target_total: u64) -> Workload {
        assert!(
            target_total <= self.total,
            "apportion can only scale down ({target_total} > {})",
            self.total
        );
        if self.total == 0 || target_total == 0 {
            return Workload::new();
        }
        let mut out = Workload::new();
        let mut floors: Vec<(&Query, u64, f64)> = Vec::with_capacity(self.counts.len());
        let mut assigned = 0u64;
        for (q, n) in self.iter() {
            let exact = n as f64 * target_total as f64 / self.total as f64;
            let floor = exact.floor() as u64;
            assigned += floor;
            floors.push((q, floor, exact - exact.floor()));
        }
        let mut order: Vec<usize> = (0..floors.len()).collect();
        order.sort_by(|&a, &b| {
            floors[b]
                .2
                .partial_cmp(&floors[a].2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut leftover = target_total - assigned;
        for &i in &order {
            if leftover == 0 {
                break;
            }
            floors[i].1 += 1;
            leftover -= 1;
        }
        for (q, n, _) in floors {
            out.add(q.clone(), n);
        }
        debug_assert_eq!(out.total(), target_total);
        out
    }
}

impl FromIterator<Query> for Workload {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        let mut w = Workload::new();
        for q in iter {
            w.add(q, 1);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Sym;

    fn kw(i: u32) -> Query {
        Query::keyword(Sym(i))
    }

    #[test]
    fn add_and_count() {
        let mut w = Workload::new();
        w.add(kw(1), 2);
        w.add(kw(1), 3);
        w.add(kw(2), 1);
        assert_eq!(w.count(&kw(1)), 5);
        assert_eq!(w.count(&kw(2)), 1);
        assert_eq!(w.count(&kw(3)), 0);
        assert_eq!(w.total(), 6);
        assert_eq!(w.distinct(), 2);
    }

    #[test]
    fn add_zero_is_noop() {
        let mut w = Workload::new();
        w.add(kw(1), 0);
        assert!(w.is_empty());
        assert_eq!(w.distinct(), 0);
    }

    #[test]
    fn remove_clamps_and_cleans_up() {
        let mut w = Workload::new();
        w.add(kw(1), 2);
        assert_eq!(w.remove(&kw(1), 5), 2);
        assert_eq!(w.total(), 0);
        assert_eq!(w.distinct(), 0);
        assert_eq!(w.remove(&kw(1), 1), 0);
    }

    #[test]
    fn frequency_normalizes_by_total() {
        let mut w = Workload::new();
        w.add(kw(1), 1);
        w.add(kw(2), 3);
        assert!((w.frequency(&kw(1)) - 0.25).abs() < 1e-12);
        assert!((w.frequency(&kw(2)) - 0.75).abs() < 1e-12);
        assert_eq!(Workload::new().frequency(&kw(1)), 0.0);
    }

    #[test]
    fn frequencies_sum_to_one_for_nonempty() {
        let mut w = Workload::new();
        w.add(kw(1), 7);
        w.add(kw(5), 2);
        w.add(kw(9), 11);
        let sum: f64 = w.iter().map(|(q, _)| w.frequency(q)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Workload::new();
        a.add(kw(1), 1);
        let mut b = Workload::new();
        b.add(kw(1), 2);
        b.add(kw(2), 2);
        a.merge(&b);
        assert_eq!(a.count(&kw(1)), 3);
        assert_eq!(a.count(&kw(2)), 2);
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn from_iterator_counts_duplicates() {
        let w: Workload = vec![kw(1), kw(2), kw(1)].into_iter().collect();
        assert_eq!(w.count(&kw(1)), 2);
        assert_eq!(w.count(&kw(2)), 1);
    }

    #[test]
    fn scale_down_floors_and_drops() {
        let mut w = Workload::new();
        w.add(kw(1), 10);
        w.add(kw(2), 1);
        w.scale_down(1, 2);
        assert_eq!(w.count(&kw(1)), 5);
        assert_eq!(w.count(&kw(2)), 0);
        assert_eq!(w.total(), 5);
    }

    #[test]
    fn apportion_hits_exact_target() {
        let mut w = Workload::new();
        w.add(kw(1), 3);
        w.add(kw(2), 3);
        w.add(kw(3), 3);
        for target in 0..=9 {
            let scaled = w.apportion(target);
            assert_eq!(scaled.total(), target, "target {target}");
        }
    }

    #[test]
    fn apportion_preserves_proportions_roughly() {
        let mut w = Workload::new();
        w.add(kw(1), 80);
        w.add(kw(2), 20);
        let scaled = w.apportion(10);
        assert_eq!(scaled.count(&kw(1)), 8);
        assert_eq!(scaled.count(&kw(2)), 2);
    }

    #[test]
    fn apportion_of_empty_or_zero_is_empty() {
        assert!(Workload::new().apportion(0).is_empty());
        let mut w = Workload::new();
        w.add(kw(1), 5);
        assert!(w.apportion(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "apportion can only scale down")]
    fn apportion_up_panics() {
        let mut w = Workload::new();
        w.add(kw(1), 2);
        let _ = w.apportion(3);
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let mut w = Workload::new();
        w.add(kw(9), 1);
        w.add(kw(1), 1);
        w.add(kw(5), 1);
        let order: Vec<_> = w.iter().map(|(q, _)| q.attrs()[0].0).collect();
        assert_eq!(order, vec![1, 5, 9]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut w = Workload::new();
        w.add(kw(1), 4);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.total(), 0);
    }
}
