//! Data items shared by peers.
//!
//! The paper adopts "a rather generic approach where each data item is
//! described by a set of attributes (e.g., keywords for text documents)".
//! A [`Document`] is exactly that: a deduplicated, sorted set of attribute
//! symbols, stored as a boxed slice to keep the per-item footprint at two
//! words.

use crate::interner::Sym;

/// A data item: a sorted, deduplicated set of attribute symbols.
///
/// # Examples
/// ```
/// use recluster_types::{Document, Sym};
///
/// let doc = Document::new(vec![Sym(3), Sym(1), Sym(3), Sym(2)]);
/// assert_eq!(doc.attrs(), &[Sym(1), Sym(2), Sym(3)]);
/// assert!(doc.contains(Sym(2)));
/// assert!(!doc.contains(Sym(9)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Document {
    attrs: Box<[Sym]>,
}

impl Document {
    /// Builds a document from attributes in any order, deduplicating.
    pub fn new(mut attrs: Vec<Sym>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        Document {
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// Builds a document from attributes already sorted and deduplicated.
    ///
    /// # Panics
    /// Panics in debug builds if the input is not strictly increasing.
    pub fn from_sorted(attrs: Vec<Sym>) -> Self {
        debug_assert!(
            attrs.windows(2).all(|w| w[0] < w[1]),
            "attributes must be strictly increasing"
        );
        Document {
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// The sorted attribute set.
    #[inline]
    pub fn attrs(&self) -> &[Sym] {
        &self.attrs
    }

    /// Number of distinct attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the document has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Whether the document carries attribute `sym`.
    #[inline]
    pub fn contains(&self, sym: Sym) -> bool {
        self.attrs.binary_search(&sym).is_ok()
    }

    /// Whether every symbol of the sorted slice `needles` appears in this
    /// document — the paper's match predicate ("its attributes are a subset
    /// of the attributes describing d").
    pub fn contains_all_sorted(&self, needles: &[Sym]) -> bool {
        debug_assert!(needles.windows(2).all(|w| w[0] < w[1]));
        // Linear merge: both sides are sorted, so one pass suffices.
        let mut hay = self.attrs.iter();
        'outer: for needle in needles {
            for candidate in hay.by_ref() {
                match candidate.cmp(needle) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ids: &[u32]) -> Document {
        Document::new(ids.iter().map(|&i| Sym(i)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let d = doc(&[5, 1, 5, 3, 1]);
        assert_eq!(d.attrs(), &[Sym(1), Sym(3), Sym(5)]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn contains_all_sorted_accepts_subsets() {
        let d = doc(&[1, 2, 3, 7, 9]);
        assert!(d.contains_all_sorted(&[Sym(2), Sym(7)]));
        assert!(d.contains_all_sorted(&[Sym(1), Sym(2), Sym(3), Sym(7), Sym(9)]));
        assert!(d.contains_all_sorted(&[]));
    }

    #[test]
    fn contains_all_sorted_rejects_non_subsets() {
        let d = doc(&[1, 2, 3]);
        assert!(!d.contains_all_sorted(&[Sym(0)]));
        assert!(!d.contains_all_sorted(&[Sym(2), Sym(4)]));
        assert!(!d.contains_all_sorted(&[Sym(4)]));
    }

    #[test]
    fn empty_document_matches_only_empty_query() {
        let d = doc(&[]);
        assert!(d.is_empty());
        assert!(d.contains_all_sorted(&[]));
        assert!(!d.contains_all_sorted(&[Sym(1)]));
    }

    #[test]
    fn contains_uses_binary_search_semantics() {
        let d = doc(&[10, 20, 30]);
        assert!(d.contains(Sym(20)));
        assert!(!d.contains(Sym(25)));
    }

    #[test]
    fn from_sorted_preserves_input() {
        let d = Document::from_sorted(vec![Sym(1), Sym(4), Sym(6)]);
        assert_eq!(d.attrs(), &[Sym(1), Sym(4), Sym(6)]);
    }
}
