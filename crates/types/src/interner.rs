//! String interning for attribute symbols.
//!
//! Documents and queries are *sets of attributes* (words, after the corpus
//! pipeline). Interning maps each distinct attribute string to a dense
//! `u32` symbol so set operations are integer comparisons and per-symbol
//! statistics live in flat vectors.

use std::collections::HashMap;
use std::fmt;

/// An interned attribute symbol.
///
/// Symbols are dense indices into the [`Interner`] that produced them and
/// are only meaningful relative to that interner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a dense index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        Sym(u32::try_from(idx).expect("symbol index overflows u32"))
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A bidirectional map between attribute strings and dense [`Sym`]s.
///
/// # Examples
/// ```
/// use recluster_types::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("database");
/// let b = interner.intern("overlay");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("database"), a);
/// assert_eq!(interner.resolve(a), "database");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: HashMap<String, Sym>,
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `n` distinct symbols.
    pub fn with_capacity(n: usize) -> Self {
        Interner {
            by_name: HashMap::with_capacity(n),
            names: Vec::with_capacity(n),
        }
    }

    /// Interns `name`, returning its symbol (existing or freshly allocated).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Sym::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, &str)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym::from_index(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let a2 = it.intern("alpha");
        assert_eq!(a, a2);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn symbols_are_dense_in_insertion_order() {
        let mut it = Interner::new();
        for (i, w) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(it.intern(w).index(), i);
        }
    }

    #[test]
    fn resolve_roundtrips() {
        let mut it = Interner::new();
        let words = ["peer", "cluster", "recall", "selfish", "altruistic"];
        let syms: Vec<_> = words.iter().map(|w| it.intern(w)).collect();
        for (sym, word) in syms.iter().zip(words.iter()) {
            assert_eq!(it.resolve(*sym), *word);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = Interner::new();
        assert!(it.get("missing").is_none());
        assert_eq!(it.len(), 0);
        let s = it.intern("present");
        assert_eq!(it.get("present"), Some(s));
    }

    #[test]
    fn iter_yields_in_symbol_order() {
        let mut it = Interner::new();
        it.intern("x");
        it.intern("y");
        let collected: Vec<_> = it.iter().map(|(s, w)| (s.index(), w.to_owned())).collect();
        assert_eq!(collected, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn empty_interner_reports_empty() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
