//! Reproduces **Table 1**: "Results for fixed query workload and
//! content" (§4.1) — rounds to convergence, cluster counts, and
//! normalized social/workload costs for 3 scenarios × 4 initial
//! configurations × 2 strategies.

use recluster_bench::{banner, parallelism_from_env, seed_from_env, small_from_env};
use recluster_sim::report::{f3, render_table, rounds_cell};
use recluster_sim::table1::{run_table1_with, Table1Config};

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner("Table 1", "Koloniari & Pitoura 2008, Table 1", seed, small);
    let cfg = if small {
        Table1Config::small(seed)
    } else {
        Table1Config::paper(seed)
    };

    let rows = run_table1_with(&cfg, parallelism_from_env());
    let headers = [
        "scenario",
        "init",
        "strategy",
        "rounds",
        "#clusters",
        "SCost",
        "WCost",
        "nash",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.label().into(),
                r.init.label().into(),
                r.strategy.clone(),
                rounds_cell(r.rounds),
                r.clusters.to_string(),
                f3(r.scost),
                f3(r.wcost),
                r.nash.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));

    println!("Paper reference (200 peers, 10 categories):");
    println!("  scenario 1: converges in 9–21 rounds to 10 clusters, SCost = WCost = 0.1");
    println!("  scenario 2: converges in 65–132 rounds to 90 clusters, costs ≈ 0.28–0.36");
    println!("  scenario 3: no convergence, 46–90 clusters, the highest costs");
}
