//! Reproduces **Figure 4**: "Influence of α" (§4.2) — the individual
//! cost of one selfish peer whose workload gradually shifts to another
//! cluster's data, for α ∈ {0, 1, 2}.

use recluster_bench::{banner, parallelism_from_env, seed_from_env, small_from_env};
use recluster_sim::fig4::run_fig4_with;
use recluster_sim::report::render_table;
use recluster_sim::scenario::ExperimentConfig;

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner("Figure 4", "Koloniari & Pitoura 2008, Fig. 4", seed, small);
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };

    let alphas = [0.0, 1.0, 2.0];
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let curves = run_fig4_with(&cfg, &alphas, &fractions, parallelism_from_env());

    let headers = ["fraction", "cost(α=0)", "cost(α=1)", "cost(α=2)"];
    let rows: Vec<Vec<String>> = fractions
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut row = vec![format!("{f:.1}")];
            for c in &curves {
                row.push(format!("{:.3}", c.points[i].1));
            }
            row
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    for c in &curves {
        match c.relocation_threshold {
            Some(t) => println!(
                "α = {}: peer relocates once ≥ {:.0}% of its workload changed",
                c.alpha,
                t * 100.0
            ),
            None => println!("α = {}: peer never relocates on this grid", c.alpha),
        }
    }
    println!();
    println!("Paper reference: the peer's cost rises with the changed fraction until");
    println!("relocation pays; larger α makes joining a bigger cluster more expensive, so");
    println!("the relocation threshold moves right as α grows (Fig. 4).");
}
