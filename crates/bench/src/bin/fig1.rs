//! Reproduces **Figure 1**: "(left) Social Cost and (right) Workload
//! Cost through progressing rounds" (§4.1) — scenario 1 from singleton
//! clusters, selfish vs. altruistic.

use recluster_bench::{banner, parallelism_from_env, seed_from_env, small_from_env};
use recluster_sim::fig1::run_fig1_with;
use recluster_sim::report::{render_series, render_table};
use recluster_sim::scenario::ExperimentConfig;

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner("Figure 1", "Koloniari & Pitoura 2008, Fig. 1", seed, small);
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };

    let series = run_fig1_with(&cfg, 300, parallelism_from_env());
    let max_len = series.iter().map(|s| s.scost.len()).max().unwrap_or(0);

    let headers = [
        "round",
        "scost(selfish)",
        "scost(altruistic)",
        "wcost(selfish)",
        "wcost(altruistic)",
    ];
    let rows: Vec<Vec<String>> = (0..max_len)
        .map(|r| {
            let cell = |v: &Vec<f64>| {
                v.get(r)
                    .or(v.last())
                    .map_or("-".into(), |x| format!("{x:.3}"))
            };
            vec![
                r.to_string(),
                cell(&series[0].scost),
                cell(&series[1].scost),
                cell(&series[0].wcost),
                cell(&series[1].wcost),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    for s in &series {
        println!(
            "{}",
            render_series(&format!("scost[{}]", s.strategy), &s.scost)
        );
        println!(
            "{}",
            render_series(&format!("wcost[{}]", s.strategy), &s.wcost)
        );
        println!("converged[{}] = {}", s.strategy, s.converged);
    }
    println!();
    println!("Paper reference: both costs fall from ≈0.9 toward ≈0.1 within ~10 rounds;");
    println!("the workload cost drops fastest in the early rounds (demanding peers are");
    println!("granted first) while the social cost decreases roughly linearly.");
}
