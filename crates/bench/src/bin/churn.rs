//! Churn experiment (our extension of the §1 motivation): peers join and
//! leave every period; the maintenance protocol repairs the overlay
//! incrementally. Compares maintained vs. unmaintained social cost, and
//! charges each period's query workload under the routing mode selected
//! by `RECLUSTER_ROUTING` (`flood` | `routed` | `lossy:<k>`).

use recluster_bench::{banner, routing_from_env, seed_from_env, small_from_env};
use recluster_sim::churn::{run_churn, ChurnConfig};
use recluster_sim::report::{f3, render_table};
use recluster_sim::runner::StrategyKind;
use recluster_sim::scenario::ExperimentConfig;

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    let routing = routing_from_env();
    banner(
        "Churn",
        "overlay maintenance under churn (our extension)",
        seed,
        small,
    );
    println!("routing={routing} (set RECLUSTER_ROUTING=flood|routed|lossy:<k> to vary)");
    println!();
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };

    let base = ChurnConfig {
        periods: 12,
        leaves_per_period: if small { 1 } else { 4 },
        joins_per_period: if small { 1 } else { 4 },
        maintenance: Some(StrategyKind::Selfish),
        max_rounds: 100,
        routing,
        ..ChurnConfig::default()
    };
    let maintained = run_churn(&cfg, &base);
    let unmaintained = run_churn(
        &cfg,
        &ChurnConfig {
            maintenance: None,
            ..base.clone()
        },
    );

    let headers = [
        "period",
        "peers",
        "scost(no maintenance)",
        "scost(after churn)",
        "scost(maintained)",
        "moves",
        "query msgs",
        "fwd/query",
        "FN rate",
    ];
    let rows: Vec<Vec<String>> = maintained
        .iter()
        .zip(unmaintained.iter())
        .map(|(m, u)| {
            vec![
                m.period.to_string(),
                m.peers.to_string(),
                f3(u.scost_after_repair),
                f3(m.scost_after_churn),
                f3(m.scost_after_repair),
                m.moves.to_string(),
                m.query_messages.to_string(),
                f3(m.forwards_per_query),
                f3(m.false_negative_rate),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    let total_msgs: u64 = maintained.iter().map(|r| r.query_messages).sum();
    println!(
        "Total query messages over {} periods: {total_msgs}",
        base.periods
    );
    println!("Expected shape: without maintenance the cost drifts upward as newcomers");
    println!("land in arbitrary clusters; with the selfish protocol each period's damage");
    println!("is repaired and the cost stays near the ideal. Under routed mode the");
    println!("query columns shrink by the forward-reduction factor at identical costs.");
}
