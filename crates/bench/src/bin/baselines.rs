//! Baseline comparison (our extension): the paper's local maintenance
//! protocol vs. global k-means re-clustering from scratch, random
//! relocation, and no maintenance — quality *and* communication cost,
//! quantifying the §1 motivation ("re-apply the clustering procedure …
//! from scratch … incurs large communication costs and requires global
//! knowledge").

use recluster_bench::{banner, seed_from_env, small_from_env};
use recluster_sim::baseline_cmp::run_baseline_comparison;
use recluster_sim::report::{f3, render_table};
use recluster_sim::scenario::ExperimentConfig;

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner(
        "Baselines",
        "the §1 motivation (our extension)",
        seed,
        small,
    );
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };

    let rows = run_baseline_comparison(&cfg, 300);
    let headers = ["scheme", "SCost", "WCost", "#clusters", "messages", "bytes"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f3(r.scost),
                f3(r.wcost),
                r.clusters.to_string(),
                r.messages.to_string(),
                r.bytes.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));
    println!("Expected shape: selfish approaches the k-means quality without its");
    println!("global profile collection; random relocation and no-maintenance trail far");
    println!("behind on quality.");
}
