//! The CI bench-trend gate.
//!
//! The in-tree criterion shim appends one JSON object per metric to the
//! file named by `RECLUSTER_BENCH_JSON` (`{"id":…,"unit":…,"value":…}`).
//! This binary turns those raw lines into the committed/uploaded
//! `BENCH_*.json` artifacts and compares two of them:
//!
//! * `bench-trend finalize <raw.jsonl> <out.json>` — fold the sink lines
//!   into a JSON array (last value wins per id, ids sorted).
//! * `bench-trend compare <baseline.json> <current.json> [--factor F]
//!   [--time-factor T]` — fail (exit 1) if any metric regressed by more
//!   than its factor: `F` (default 2.0) for deterministic metrics
//!   (message counts — any growth is a real routing regression), `T`
//!   (default `F`) for `seconds` and `mb` metrics: wall clock and peak
//!   RSS both vary with the runner (machine speed, allocator, libc), so
//!   CI widens them to 4× — wide enough to absorb runner-vs-baseline
//!   variance, tight enough that a leaked per-peer allocation at the
//!   million-peer scale still trips the one-sided gate. A metric
//!   tracked by the baseline but **absent** from the current run also
//!   fails: a bench that crashes or is renamed must not silently
//!   disable its own gate.
//!
//! Both file formats are emitted by this repo itself, so parsing is a
//! deliberately small line-based scan, not a general JSON parser.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One tracked metric.
#[derive(Debug, Clone, PartialEq)]
struct Metric {
    unit: String,
    value: f64,
}

/// Extracts the string after `key` up to the next unescaped quote. Our
/// ids/units never contain escapes, which `debug_assert` guards.
fn field_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    let s = &rest[..end];
    debug_assert!(!s.contains('\\'), "unexpected escape in {s:?}");
    Some(s.to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a sink file or a finalized array: any line containing an
/// `"id"` object contributes one metric; later lines win.
fn parse_metrics(text: &str) -> BTreeMap<String, Metric> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(id) = field_str(line, "\"id\":\"") else {
            continue;
        };
        let Some(unit) = field_str(line, "\"unit\":\"") else {
            continue;
        };
        let Some(value) = field_num(line, "\"value\":") else {
            continue;
        };
        out.insert(id, Metric { unit, value });
    }
    out
}

fn finalize(raw_path: &str, out_path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(raw_path).map_err(|e| format!("cannot read {raw_path}: {e}"))?;
    let metrics = parse_metrics(&text);
    if metrics.is_empty() {
        return Err(format!("{raw_path} contains no metrics"));
    }
    let mut out = String::from("[\n");
    for (i, (id, m)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"id\":{id:?},\"unit\":{:?},\"value\":{:e}}}{comma}\n",
            m.unit, m.value
        ));
    }
    out.push_str("]\n");
    std::fs::write(out_path, out).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {} metrics to {out_path}", metrics.len());
    Ok(())
}

fn compare(
    baseline_path: &str,
    current_path: &str,
    factor: f64,
    time_factor: f64,
) -> Result<bool, String> {
    let baseline = parse_metrics(
        &std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?,
    );
    let current = parse_metrics(
        &std::fs::read_to_string(current_path)
            .map_err(|e| format!("cannot read {current_path}: {e}"))?,
    );
    if baseline.is_empty() || current.is_empty() {
        return Err("empty metric set".into());
    }

    let mut ok = true;
    println!(
        "{:<55} {:>12} {:>12} {:>8}  verdict",
        "metric", "baseline", "current", "ratio"
    );
    for (id, base) in &baseline {
        let Some(cur) = current.get(id) else {
            // A tracked metric that stopped reporting is a failure: a
            // renamed or crashing bench must not ungate itself.
            ok = false;
            println!(
                "{id:<55} {:>12.4e} {:>12} {:>8}  MISSING",
                base.value, "-", "-"
            );
            continue;
        };
        let ratio = if base.value == 0.0 {
            if cur.value == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            cur.value / base.value
        };
        let limit = if cur.unit == "seconds" || cur.unit == "mb" {
            time_factor
        } else {
            factor
        };
        let regressed = ratio > limit;
        if regressed {
            ok = false;
        }
        println!(
            "{id:<55} {:>12.4e} {:>12.4e} {ratio:>8.2}  {}",
            base.value,
            cur.value,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    for id in current.keys() {
        if !baseline.contains_key(id) {
            println!(
                "{id:<55} {:>12} — new metric, add to the baseline on the next refresh",
                "-"
            );
        }
    }
    Ok(ok)
}

fn usage() -> String {
    "usage: bench-trend finalize <raw.jsonl> <out.json>\n       \
     bench-trend compare <baseline.json> <current.json> [--factor F] [--time-factor T]"
        .into()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("finalize") if args.len() == 3 => {
            finalize(&args[1], &args[2])?;
            Ok(true)
        }
        Some("compare") if args.len() >= 3 => {
            let mut factor = 2.0;
            let mut time_factor = None;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                let value = rest
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(usage)?;
                match flag.as_str() {
                    "--factor" => factor = value,
                    "--time-factor" => time_factor = Some(value),
                    _ => return Err(usage()),
                }
            }
            let time_factor = time_factor.unwrap_or(factor);
            let ok = compare(&args[1], &args[2], factor, time_factor)?;
            if ok {
                println!(
                    "bench-trend: no metric regressed beyond {factor}x ({time_factor}x for timings)"
                );
            } else {
                println!("bench-trend: REGRESSION — see rows above");
            }
            Ok(ok)
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
