//! Ablations over the design choices called out in DESIGN.md: the `θ`
//! cost-model shape, the `ε` stop threshold, the hybrid strategy's `λ`,
//! and the §3.2 anti-cycle lock rule.

use recluster_bench::{banner, seed_from_env, small_from_env};
use recluster_sim::ablation::{
    run_epsilon_sweep, run_hybrid_sweep, run_lock_ablation, run_theta_ablation, AblationRow,
};
use recluster_sim::report::{f3, render_table, rounds_cell};
use recluster_sim::scenario::ExperimentConfig;

fn print_rows(title: &str, rows: &[AblationRow]) {
    println!("--- {title} ---");
    let headers = [
        "setting",
        "rounds",
        "#clusters",
        "SCost",
        "moves",
        "messages",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                rounds_cell(r.rounds),
                r.clusters.to_string(),
                f3(r.scost),
                r.moves.to_string(),
                r.messages.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));
}

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner(
        "Ablations",
        "design-choice sensitivity (our extension)",
        seed,
        small,
    );
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };
    let rounds = 300;

    print_rows(
        "θ shape (intra-cluster topology)",
        &run_theta_ablation(&cfg, rounds),
    );
    print_rows("ε stop threshold", &run_epsilon_sweep(&cfg, rounds));
    print_rows(
        "hybrid λ (0 = altruistic-like, 1 = selfish)",
        &run_hybrid_sweep(&cfg, rounds),
    );
    print_rows("anti-cycle lock rule", &run_lock_ablation(&cfg, rounds));
}
