//! Reproduces **Figure 3**: "Social Cost for different percentages of
//! updated (left) peers and (right) data" (§4.2) — content updates
//! against the converged scenario-1 overlay.

use recluster_bench::{banner, seed_from_env, small_from_env};
use recluster_sim::fig23::{run_figure, standard_fractions, UpdateMode};
use recluster_sim::report::render_table;
use recluster_sim::scenario::ExperimentConfig;

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner("Figure 3", "Koloniari & Pitoura 2008, Fig. 3", seed, small);
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };
    let fractions = standard_fractions();

    for (mode, label) in [
        (UpdateMode::DataPeers, "left: % of updated peers"),
        (UpdateMode::DataBlend, "right: % of updated data"),
    ] {
        println!("--- Fig. 3 ({label}) ---");
        let series = run_figure(&cfg, mode, &fractions, 300);
        let headers = [
            "fraction",
            "scost-after-update",
            "selfish(after)",
            "selfish moves",
            "altruistic(after)",
            "altruistic moves",
        ];
        let rows: Vec<Vec<String>> = fractions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                vec![
                    format!("{f:.1}"),
                    format!("{:.3}", series[0].points[i].scost_before),
                    format!("{:.3}", series[0].points[i].scost_after),
                    series[0].points[i].moves.to_string(),
                    format!("{:.3}", series[1].points[i].scost_after),
                    series[1].points[i].moves.to_string(),
                ]
            })
            .collect();
        println!("{}", render_table(&headers, &rows));
    }

    println!("Paper reference: the roles swap relative to Fig. 2 — altruistic providers");
    println!("whose content changed no longer serve their own cluster and relocate to the");
    println!("cluster demanding the new category, while selfish peers have no motive to");
    println!("move (their own workload did not change).");
}
