//! Lookup-cost sweep (the paper's §6 open issue): expected query cost
//! as a function of the number of clusters and their sizes.

use recluster_bench::{banner, seed_from_env, small_from_env};
use recluster_sim::lookup::sweep_cluster_counts;
use recluster_sim::report::{f3, render_table};
use recluster_sim::scenario::ExperimentConfig;

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner(
        "Lookup cost",
        "the §6 open issue (our extension)",
        seed,
        small,
    );
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };

    let counts: Vec<usize> = (1..=cfg.n_categories).collect();
    let sweep = sweep_cluster_counts(&cfg, &counts);

    let headers = [
        "#clusters",
        "mean size",
        "flood msgs/query",
        "routed fwd/query",
        "E[probes to 1st hit]",
        "in-cluster hit rate",
    ];
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|c| {
            vec![
                c.clusters.to_string(),
                f3(c.mean_cluster_size),
                f3(c.flood_messages),
                f3(c.routed_forwards),
                f3(c.expected_first_hit_probes),
                f3(c.in_cluster_hit_rate),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("Trade-off: fewer clusters mean cheaper lookups (fewer forwards, local");
    println!("answers) but a larger membership cost per peer — the tension the game's");
    println!("α parameter arbitrates. The routed column shows what exact per-cluster");
    println!("summaries save: queries are forwarded only to clusters whose summary");
    println!("matches, not to every cluster in the system.");
}
