//! Reproduces **Figure 2**: "Social Cost for different percentages of
//! updated (left) peers and (right) query workload" (§4.2) — workload
//! updates against the converged scenario-1 overlay, cluster count held
//! fixed, ε = 0.001.

use recluster_bench::{banner, seed_from_env, small_from_env};
use recluster_sim::fig23::{run_figure, standard_fractions, UpdateMode};
use recluster_sim::report::render_table;
use recluster_sim::scenario::ExperimentConfig;

fn main() {
    let seed = seed_from_env();
    let small = small_from_env();
    banner("Figure 2", "Koloniari & Pitoura 2008, Fig. 2", seed, small);
    let cfg = if small {
        ExperimentConfig::small(seed)
    } else {
        ExperimentConfig::paper(seed)
    };
    let fractions = standard_fractions();

    for (mode, label) in [
        (UpdateMode::WorkloadPeers, "left: % of updated peers"),
        (UpdateMode::WorkloadBlend, "right: % of updated workload"),
    ] {
        println!("--- Fig. 2 ({label}) ---");
        let series = run_figure(&cfg, mode, &fractions, 300);
        let headers = [
            "fraction",
            "scost-after-update",
            "selfish(after)",
            "selfish moves",
            "altruistic(after)",
            "altruistic moves",
        ];
        let rows: Vec<Vec<String>> = fractions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                vec![
                    format!("{f:.1}"),
                    format!("{:.3}", series[0].points[i].scost_before),
                    format!("{:.3}", series[0].points[i].scost_after),
                    series[0].points[i].moves.to_string(),
                    format!("{:.3}", series[1].points[i].scost_after),
                    series[1].points[i].moves.to_string(),
                ]
            })
            .collect();
        println!("{}", render_table(&headers, &rows));
    }

    println!("Paper reference: selfish repairs the cost once more than ~50% of the");
    println!("workload has changed; altruistic providers move only when the demand from");
    println!("c_cur overtakes what they already serve at home (large fractions). Neither");
    println!("recovers the original cost exactly — joined clusters grew.");
}
