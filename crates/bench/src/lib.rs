//! Shared helpers for the experiment binaries and Criterion benches of
//! the `recluster` reproduction.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (§4):
//!
//! | binary      | artifact  | content |
//! |-------------|-----------|---------|
//! | `table1`    | Table 1   | rounds / #clusters / SCost / WCost per scenario × init × strategy |
//! | `fig1`      | Figure 1  | per-round social & workload cost, scenario 1 |
//! | `fig2`      | Figure 2  | social cost vs. fraction of updated peers / workload |
//! | `fig3`      | Figure 3  | social cost vs. fraction of updated peers / data |
//! | `fig4`      | Figure 4  | individual cost vs. workload change for α ∈ {0,1,2} |
//! | `baselines` | (ours)    | local protocol vs. k-means / random / none |
//!
//! The Criterion benches under `benches/` measure the protocol's compute
//! costs and ablate design choices (θ shape, ε, hybrid λ, lock rule).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;

use recluster_sim::{Parallelism, RoutingMode};

/// Seed used by all experiment binaries unless overridden by the
/// `RECLUSTER_SEED` environment variable.
pub const DEFAULT_SEED: u64 = 2008;

/// Reads the sweep parallelism (`RECLUSTER_THREADS`): `1` forces the
/// sequential runner, any larger value pins that worker count, unset
/// (or `0`) uses every available core. Parallel and sequential sweeps
/// produce byte-identical reports (asserted in
/// `recluster-sim/tests/determinism.rs`), so this only trades wall
/// clock, never results.
pub fn parallelism_from_env() -> Parallelism {
    match env::var("RECLUSTER_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(1) => Parallelism::Sequential,
        Some(0) | None => Parallelism::Auto,
        Some(n) => Parallelism::Threads(n),
    }
}

/// Reads the query-routing mode (`RECLUSTER_ROUTING`): `flood`
/// (default), `routed`/`exact` for cluster-directed routing with exact
/// summaries, or `lossy:<k>` for top-`k` lossy summaries. Exact routing
/// returns bit-identical results to flooding (property-tested in
/// `recluster-core/tests/prop_routing.rs`) with far fewer messages;
/// lossy routing additionally reports its false-negative rate.
pub fn routing_from_env() -> RoutingMode {
    match env::var("RECLUSTER_ROUTING") {
        Ok(s) => RoutingMode::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "RECLUSTER_ROUTING={s} not understood (flood | routed | lossy:<k>); flooding"
            );
            RoutingMode::Flood
        }),
        Err(_) => RoutingMode::Flood,
    }
}

/// Reads the experiment seed (`RECLUSTER_SEED`, default
/// [`DEFAULT_SEED`]).
pub fn seed_from_env() -> u64 {
    env::var("RECLUSTER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Whether to run the miniature testbed instead of the paper-scale one
/// (`RECLUSTER_SMALL=1`); keeps CI and demo runs fast.
pub fn small_from_env() -> bool {
    env::var("RECLUSTER_SMALL").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Prints the standard experiment banner.
pub fn banner(name: &str, paper_ref: &str, seed: u64, small: bool) {
    println!("=== {name} — reproduces {paper_ref} ===");
    println!(
        "seed={seed} scale={} workers={} (set RECLUSTER_SEED / RECLUSTER_SMALL=1 / \
         RECLUSTER_THREADS=n to vary)",
        if small {
            "small (40 peers, 4 categories)"
        } else {
            "paper (200 peers, 10 categories)"
        },
        parallelism_from_env().workers(),
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_is_stable() {
        assert_eq!(DEFAULT_SEED, 2008);
    }

    #[test]
    fn env_seed_parsing_has_a_fallback() {
        let seed = seed_from_env();
        assert!(seed > 0);
    }

    #[test]
    fn routing_defaults_to_flood() {
        // The suite never sets RECLUSTER_ROUTING; the default must keep
        // the paper's evaluation assumption.
        if env::var("RECLUSTER_ROUTING").is_err() {
            assert_eq!(routing_from_env(), RoutingMode::Flood);
        }
    }
}
