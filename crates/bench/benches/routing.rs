//! Cluster-directed routing vs. flooding: wall-clock cost of a full
//! observation period under each mode, plus the *deterministic*
//! message-volume metrics (messages and forwards per query) that the CI
//! bench-trend gate holds to exact levels — they depend only on the
//! seeded testbed, never on the machine.
//!
//! The testbeds start from the paper's initial configuration (i)
//! (singleton clusters): the state every protocol run begins from, and
//! the one where flooding hurts most — one forward per peer per query.

use criterion::{BenchmarkId, Criterion};
use recluster_core::simulate_period_routed;
use recluster_overlay::{RoutingMode, SimNetwork, SummaryMode};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

const MODES: [(&str, RoutingMode); 2] = [
    ("flood", RoutingMode::Flood),
    ("routed", RoutingMode::Routed(SummaryMode::Exact)),
];

fn testbeds() -> Vec<(&'static str, recluster_sim::TestBed)> {
    vec![
        (
            "small-40p",
            build_system(
                Scenario::SameCategory,
                InitialConfig::Singletons,
                &ExperimentConfig::small(3),
            ),
        ),
        (
            "paper-200p",
            build_system(
                Scenario::SameCategory,
                InitialConfig::Singletons,
                &ExperimentConfig::paper(3),
            ),
        ),
    ]
}

fn bench_simulate_period_modes(
    c: &mut Criterion,
    testbeds: &[(&'static str, recluster_sim::TestBed)],
) {
    let mut group = c.benchmark_group("routing/simulate_period");
    group.sample_size(10);
    for (label, tb) in testbeds {
        for (mode_label, mode) in MODES {
            group.bench_with_input(BenchmarkId::new(mode_label, label), tb, |b, tb| {
                b.iter(|| {
                    let mut net = SimNetwork::new();
                    simulate_period_routed(&tb.system, &mut net, mode)
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    let testbeds = testbeds();
    bench_simulate_period_modes(&mut criterion, &testbeds);
    // Message-volume metrics: seeded and machine-independent, so the
    // trend gate can treat any drift as a real regression.
    for (label, tb) in &testbeds {
        for (mode_label, mode) in MODES {
            let mut net = SimNetwork::new();
            let (_, report) = simulate_period_routed(&tb.system, &mut net, mode);
            let per_query = net.total_messages() as f64 / report.query_events.max(1) as f64;
            criterion::record_value(
                &format!("routing/messages_per_query/{mode_label}-{label}"),
                "msgs",
                per_query,
            );
            criterion::record_value(
                &format!("routing/forwards_per_query/{mode_label}-{label}"),
                "msgs",
                report.forwards_per_query(),
            );
        }
    }
}
