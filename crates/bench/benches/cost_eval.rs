//! Criterion: cost-function evaluation — a single `pcost`, a full
//! best-response sweep over all `Cmax` clusters (what one peer does per
//! period), the global `SCost` / `WCost` measures, and the headline
//! incremental-vs-naive comparison: repeated move-then-evaluate cycles
//! through the delta-maintained recall index against the old
//! full-refresh path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use recluster_core::{best_response, pcost, scost_normalized, wcost_normalized};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster_types::{ClusterId, PeerId};

fn testbeds() -> Vec<(&'static str, recluster_sim::TestBed)> {
    vec![
        (
            "small-40p",
            build_system(
                Scenario::SameCategory,
                InitialConfig::RandomM,
                &ExperimentConfig::small(3),
            ),
        ),
        (
            "paper-200p",
            build_system(
                Scenario::SameCategory,
                InitialConfig::RandomM,
                &ExperimentConfig::paper(3),
            ),
        ),
    ]
}

fn bench_pcost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/pcost_single");
    for (label, tb) in testbeds() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &tb, |b, tb| {
            b.iter(|| pcost(&tb.system, PeerId(0), ClusterId(0)))
        });
    }
    group.finish();
}

fn bench_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/best_response_sweep");
    for (label, tb) in testbeds() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &tb, |b, tb| {
            b.iter(|| best_response(&tb.system, PeerId(0), true))
        });
    }
    group.finish();
}

fn bench_global_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/global");
    for (label, tb) in testbeds() {
        group.bench_with_input(BenchmarkId::new("scost", label), &tb, |b, tb| {
            b.iter(|| scost_normalized(&tb.system))
        });
        group.bench_with_input(BenchmarkId::new("wcost", label), &tb, |b, tb| {
            b.iter(|| wcost_normalized(&tb.system))
        });
    }
    group.finish();
}

/// The protocol hot path in isolation: relocate a peer, then evaluate
/// its cost at the destination — 32 times per iteration. `incremental`
/// routes the move through `System::move_peer` (O(results-of-peer)
/// delta); `naive-rebuild` replays the pre-incremental behavior (full
/// `refresh_mass` after every move). The acceptance target is ≥5×
/// between the two at paper scale.
fn bench_move_then_eval(c: &mut Criterion) {
    const MOVES_PER_ITER: u32 = 32;
    let mut group = c.benchmark_group("cost/move_then_pcost");
    group.sample_size(12);
    for (label, tb) in testbeds() {
        let n = tb.system.n_peers() as u32;
        group.bench_with_input(BenchmarkId::new("incremental", label), &tb, |b, tb| {
            b.iter_batched(
                || tb.system.clone(),
                |mut sys| {
                    let mut acc = 0.0;
                    for i in 0..MOVES_PER_ITER {
                        let peer = PeerId(i % n);
                        let to = ClusterId(i % 4);
                        sys.move_peer(peer, to);
                        acc += pcost(&sys, peer, to);
                    }
                    acc
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("naive-rebuild", label), &tb, |b, tb| {
            b.iter_batched(
                || tb.system.clone(),
                |mut sys| {
                    let mut acc = 0.0;
                    for i in 0..MOVES_PER_ITER {
                        let peer = PeerId(i % n);
                        let to = ClusterId(i % 4);
                        // Faithful replay of the pre-incremental
                        // System::move_peer: refresh only on real moves.
                        let from = sys.overlay_mut().move_peer(peer, to);
                        if from != to {
                            sys.refresh_mass();
                        }
                        acc += pcost(&sys, peer, to);
                    }
                    acc
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pcost,
    bench_best_response,
    bench_global_costs,
    bench_move_then_eval
);
criterion_main!(benches);
