//! Criterion: cost-function evaluation — a single `pcost`, a full
//! best-response sweep over all `Cmax` clusters (what one peer does per
//! period), and the global `SCost` / `WCost` measures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recluster_core::{best_response, pcost, scost_normalized, wcost_normalized};
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster_types::{ClusterId, PeerId};

fn testbeds() -> Vec<(&'static str, recluster_sim::TestBed)> {
    vec![
        (
            "small-40p",
            build_system(
                Scenario::SameCategory,
                InitialConfig::RandomM,
                &ExperimentConfig::small(3),
            ),
        ),
        (
            "paper-200p",
            build_system(
                Scenario::SameCategory,
                InitialConfig::RandomM,
                &ExperimentConfig::paper(3),
            ),
        ),
    ]
}

fn bench_pcost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/pcost_single");
    for (label, tb) in testbeds() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &tb, |b, tb| {
            b.iter(|| pcost(&tb.system, PeerId(0), ClusterId(0)))
        });
    }
    group.finish();
}

fn bench_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/best_response_sweep");
    for (label, tb) in testbeds() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &tb, |b, tb| {
            b.iter(|| best_response(&tb.system, PeerId(0), true))
        });
    }
    group.finish();
}

fn bench_global_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/global");
    for (label, tb) in testbeds() {
        group.bench_with_input(BenchmarkId::new("scost", label), &tb, |b, tb| {
            b.iter(|| scost_normalized(&tb.system))
        });
        group.bench_with_input(BenchmarkId::new("wcost", label), &tb, |b, tb| {
            b.iter(|| wcost_normalized(&tb.system))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pcost,
    bench_best_response,
    bench_global_costs
);
criterion_main!(benches);
