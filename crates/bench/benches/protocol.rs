//! Criterion: the reformulation protocol — one two-phase round per
//! strategy, and a full convergence run on the scenario-1 testbed (the
//! headline experiment of Table 1).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use recluster_core::{AltruisticStrategy, SelfishStrategy};
use recluster_core::{ProtocolConfig, ProtocolEngine};
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn bench_single_round_paper_scale(c: &mut Criterion) {
    // The paper-scale round: before the delta-maintained index, every
    // granted relocation paid a full O(queries × peers) mass refresh;
    // now each is O(results of the moved peer).
    let mut group = c.benchmark_group("protocol/round-paper-200p");
    group.sample_size(10);
    let cfg = ExperimentConfig::paper(4);
    let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    group.bench_with_input(BenchmarkId::from_parameter("selfish"), &tb, |b, tb| {
        b.iter_batched(
            || tb.system.clone(),
            |mut sys| {
                let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
                let mut net = SimNetwork::new();
                engine.run_round(&mut sys, &mut net, 0)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_single_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/round");
    let cfg = ExperimentConfig::small(4);
    let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);

    group.bench_with_input(BenchmarkId::from_parameter("selfish"), &tb, |b, tb| {
        b.iter_batched(
            || tb.system.clone(),
            |mut sys| {
                let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
                let mut net = SimNetwork::new();
                engine.run_round(&mut sys, &mut net, 0)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_with_input(BenchmarkId::from_parameter("altruistic"), &tb, |b, tb| {
        b.iter_batched(
            || tb.system.clone(),
            |mut sys| {
                let mut engine =
                    ProtocolEngine::new(AltruisticStrategy::new(), ProtocolConfig::default());
                let mut net = SimNetwork::new();
                engine.run_round(&mut sys, &mut net, 0)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/converge_scenario1");
    group.sample_size(10);
    let cfg = ExperimentConfig::small(5);
    let tb = build_system(Scenario::SameCategory, InitialConfig::Singletons, &cfg);
    group.bench_with_input(BenchmarkId::from_parameter("selfish-40p"), &tb, |b, tb| {
        b.iter_batched(
            || tb.system.clone(),
            |mut sys| {
                let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
                let mut net = SimNetwork::new();
                engine.run(&mut sys, &mut net)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_round,
    bench_single_round_paper_scale,
    bench_convergence
);
criterion_main!(benches);
