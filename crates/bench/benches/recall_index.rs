//! Criterion: cost of building and refreshing the recall index — the
//! precomputation behind every `pcost` evaluation (§2's `r(q, p)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recluster_core::RecallIndex;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("recall_index/build");
    for (label, cfg) in [
        ("small-40p", ExperimentConfig::small(1)),
        ("paper-200p", ExperimentConfig::paper(1)),
    ] {
        let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(label), &tb, |b, tb| {
            b.iter(|| {
                RecallIndex::build(
                    tb.system.overlay(),
                    tb.system.store(),
                    tb.system.workloads(),
                )
            })
        });
    }
    group.finish();
}

fn bench_refresh_mass(c: &mut Criterion) {
    let mut group = c.benchmark_group("recall_index/refresh_mass");
    for (label, cfg) in [
        ("small-40p", ExperimentConfig::small(2)),
        ("paper-200p", ExperimentConfig::paper(2)),
    ] {
        let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
        let mut index = RecallIndex::build(
            tb.system.overlay(),
            tb.system.store(),
            tb.system.workloads(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &tb, |b, tb| {
            b.iter(|| index.refresh_mass(tb.system.overlay()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_refresh_mass);
criterion_main!(benches);
