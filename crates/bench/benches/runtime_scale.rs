//! Message-runtime scale bench: deterministic protocol-traffic metrics.
//!
//! Drives the typed-message runtime ([`RuntimeEngine`]) on the paper
//! testbed from singletons to equilibrium and records wall-clock-free
//! metrics into the bench-trend gate — fabric frames per round, the
//! representative deny rate, and rounds-to-converge — once under the
//! ideal schedule (bit-identical to the sync engine, so these numbers
//! double as a protocol-traffic baseline) and once under a delayed,
//! lossy schedule (delay 0..3 ticks, 5% loss). The counts are seeded
//! and machine-independent: any drift means the scheduler, the state
//! machines or the protocol itself changed behaviour, gated hard at 2×.
//! Wall-clock seconds are recorded for the artifact's timing history
//! only (never added to the committed baseline).

use recluster_core::{NetConfig, ProtocolConfig, RuntimeEngine, SelfishStrategy};
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn run_schedule(label: &str, net: NetConfig) {
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::Singletons,
        &ExperimentConfig::paper(77),
    );
    let mut ledger = SimNetwork::new();
    let cfg = ProtocolConfig::builder().memoize(false).build();
    let mut engine = RuntimeEngine::new(SelfishStrategy, cfg, net);
    let outcome = engine.run(&mut tb.system, &mut ledger);
    let stats = engine.net_stats();
    let rounds = outcome.rounds.len();
    let decisions = engine.granted_total() + engine.denied_total();
    let deny_rate = if decisions == 0 {
        0.0
    } else {
        engine.denied_total() as f64 / decisions as f64
    };
    println!(
        "{label}: {} rounds, {} frames ({} dropped, {} stale), {} granted / {} denied",
        rounds,
        stats.sent,
        stats.dropped,
        stats.stale,
        engine.granted_total(),
        engine.denied_total(),
    );
    criterion::record_value(&format!("runtime/{label}/rounds"), "rounds", rounds as f64);
    criterion::record_value(
        &format!("runtime/{label}/messages_per_round"),
        "msgs",
        stats.sent as f64 / rounds as f64,
    );
    criterion::record_value(&format!("runtime/{label}/deny_rate"), "rate", deny_rate);
    criterion::record_value(
        &format!("runtime/{label}/moves"),
        "moves",
        engine.evidence().records().len() as f64,
    );
}

fn main() {
    let start = std::time::Instant::now();
    run_schedule("ideal", NetConfig::ideal());
    run_schedule("delayed", NetConfig::degraded(77, 0, 3, 0.05));
    criterion::record_value(
        "runtime/run_seconds",
        "seconds",
        start.elapsed().as_secs_f64(),
    );
}
