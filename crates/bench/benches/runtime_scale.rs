//! Message-runtime scale bench: deterministic protocol-traffic metrics.
//!
//! Drives the typed-message runtime ([`RuntimeEngine`]) on the paper
//! testbed from singletons to equilibrium and records wall-clock-free
//! metrics into the bench-trend gate — fabric frames per round, the
//! representative deny rate, and rounds-to-converge — once under the
//! ideal schedule (bit-identical to the sync engine, so these numbers
//! double as a protocol-traffic baseline), once under a delayed, lossy
//! schedule (delay 0..3 ticks, 5% loss), and once under that same
//! schedule with a timed bisection plus a crash window layered on top
//! (the partition-tolerant paths: cut/crash attribution and post-heal
//! repair traffic). The counts are seeded and machine-independent: any
//! drift means the scheduler, the state machines or the protocol itself
//! changed behaviour, gated hard at 2×. Wall-clock seconds are recorded
//! for the artifact's timing history only (never added to the committed
//! baseline).

use recluster_core::{
    CrashWindow, FaultSchedule, NetConfig, Partition, PartitionKind, ProtocolConfig, RuntimeEngine,
    SelfishStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster_types::PeerId;

fn run_schedule(label: &str, net: NetConfig, faults: FaultSchedule) {
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::Singletons,
        &ExperimentConfig::paper(77),
    );
    let mut ledger = SimNetwork::new();
    let cfg = ProtocolConfig::builder().memoize(false).build();
    let mut engine = RuntimeEngine::new(SelfishStrategy, cfg, net).with_faults(faults);
    let outcome = engine.run(&mut tb.system, &mut ledger);
    let stats = engine.net_stats();
    let rounds = outcome.rounds.len();
    let decisions = engine.granted_total() + engine.denied_total();
    let deny_rate = if decisions == 0 {
        0.0
    } else {
        engine.denied_total() as f64 / decisions as f64
    };
    println!(
        "{label}: {} rounds, {} frames ({} dropped, {} cut, {} crashed, {} stale), \
         {} granted / {} denied",
        rounds,
        stats.sent,
        stats.dropped,
        stats.cut,
        stats.crashed,
        stats.stale,
        engine.granted_total(),
        engine.denied_total(),
    );
    criterion::record_value(&format!("runtime/{label}/rounds"), "rounds", rounds as f64);
    criterion::record_value(
        &format!("runtime/{label}/messages_per_round"),
        "msgs",
        stats.sent as f64 / rounds as f64,
    );
    criterion::record_value(&format!("runtime/{label}/deny_rate"), "rate", deny_rate);
    criterion::record_value(
        &format!("runtime/{label}/moves"),
        "moves",
        engine.evidence().records().len() as f64,
    );
}

fn main() {
    let start = std::time::Instant::now();
    run_schedule("ideal", NetConfig::ideal(), FaultSchedule::none());
    run_schedule(
        "delayed",
        NetConfig::degraded(77, 0, 3, 0.05),
        FaultSchedule::none(),
    );
    // The delayed schedule plus a mid-run bisection and a crash window:
    // the fault window forces repair traffic after the heal, so the
    // cut/crashed attribution and the post-heal rounds are both gated.
    run_schedule(
        "faulted",
        NetConfig::degraded(77, 0, 3, 0.05),
        FaultSchedule {
            partitions: vec![Partition {
                kind: PartitionKind::Bisect { pivot: 100 },
                start: 4,
                heal: 60,
            }],
            crashes: vec![CrashWindow {
                peer: PeerId(7),
                down: 10,
                up: 50,
            }],
        },
    );
    criterion::record_value(
        "runtime/run_seconds",
        "seconds",
        start.elapsed().as_secs_f64(),
    );
}
