//! Criterion: local maintenance vs. the global k-means strawman — the
//! compute side of the §1 motivation — plus the observed-statistics
//! period simulation (the distributed data-gathering path of §3.1).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use recluster_baselines::{recluster_kmeans, KMeansConfig};
use recluster_core::simulate_period;
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/kmeans_recluster");
    group.sample_size(10);
    let cfg = ExperimentConfig::small(6);
    let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    group.bench_with_input(BenchmarkId::from_parameter("small-40p"), &tb, |b, tb| {
        b.iter_batched(
            || tb.system.clone(),
            |mut sys| {
                let mut net = SimNetwork::new();
                recluster_kmeans(
                    &mut sys,
                    KMeansConfig {
                        k: 4,
                        max_iters: 50,
                        seed: 6,
                    },
                    &mut net,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_simulate_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker/simulate_period");
    group.sample_size(10);
    let cfg = ExperimentConfig::small(7);
    let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    group.bench_with_input(BenchmarkId::from_parameter("small-40p"), &tb, |b, tb| {
        b.iter(|| {
            let mut net = SimNetwork::new();
            simulate_period(&tb.system, &mut net)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_simulate_period);
criterion_main!(benches);
