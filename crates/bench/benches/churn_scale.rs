//! The churn scale scenarios: 10 000 and 100 000 peers churning under
//! exact cluster-directed routing with selfish maintenance, end to
//! end — the workloads the delta-maintained engine (incremental recall
//! index, content-update deltas, per-peer cost cache) and the
//! `SystemView` read/write split (sparse tracker walk, snapshot-backed
//! phase 1, proposal memoization) exist for. Each full deterministic
//! run feeds the bench-trend gate:
//!
//! * deterministic metrics (average per-period repaired cost, query
//!   messages per period, forwards per query, total relocations) are
//!   seeded and machine-independent — any drift is a real regression of
//!   routing precision or protocol quality, gated hard at 2×;
//! * the wall-clock seconds of the whole run are recorded into the
//!   `BENCH_pr.json` artifact for trend-watching but deliberately kept
//!   *out* of the committed baseline: a 15 s single-shot measured on
//!   one machine gated against heterogeneous shared runners would be
//!   pure flake, and an O(peers × queries) rebuild sneaking back is
//!   already caught structurally (it would also shift no deterministic
//!   metric yet be visible in the artifact's timing history).
//!
//! The run executes once (no `b.iter` loop): at this scale a single
//! pass is the measurement, and all count metrics are exact.

use recluster_sim::churn::{
    churn_100k_config, churn_10k_config, churn_10k_observed_config, churn_1m_config, run_churn,
    run_churn_with_fidelity, ChurnConfig,
};
use recluster_sim::scenario::ExperimentConfig;

/// One `/proc/self/status` memory field (`VmHWM:`, `VmRSS:`, …) in MiB.
fn proc_status_mb(field: &str) -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|line| {
        let rest = line.strip_prefix(field)?;
        let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
        Some(kb / 1024.0)
    })
}

/// Samples `VmRSS` on a background thread until dropped, tracking the
/// maximum — a high-water mark for kernels whose procfs omits `VmHWM`
/// (some container sandboxes). 25 ms between samples is far below how
/// long the million-peer working set stays resident, so the sampled
/// mark tracks the true one to well within the gate's 4× band.
struct RssWatermark {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    sampler: Option<std::thread::JoinHandle<f64>>,
}

impl RssWatermark {
    fn start() -> Self {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = stop.clone();
        let sampler = std::thread::spawn(move || {
            let mut max: f64 = 0.0;
            while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                max = max.max(proc_status_mb("VmRSS:").unwrap_or(0.0));
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            max.max(proc_status_mb("VmRSS:").unwrap_or(0.0))
        });
        RssWatermark {
            stop,
            sampler: Some(sampler),
        }
    }

    /// Peak resident set size in MiB: the kernel's exact `VmHWM` where
    /// available, else this watermark's sampled maximum. 0.0 only
    /// without procfs (non-Linux dev boxes), degrading the metric to
    /// an advisory instead of a crash.
    fn peak_mb(mut self) -> f64 {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let sampled = self
            .sampler
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or(0.0);
        proc_status_mb("VmHWM:").unwrap_or(sampled)
    }
}

fn run_scale(name: &str, cfg: &ExperimentConfig, churn: &ChurnConfig) {
    let start = std::time::Instant::now();
    let rows = run_churn(cfg, churn);
    let elapsed = start.elapsed().as_secs_f64();

    let n = rows.len() as f64;
    let avg_repair = rows.iter().map(|r| r.scost_after_repair).sum::<f64>() / n;
    let avg_msgs = rows.iter().map(|r| r.query_messages).sum::<u64>() as f64 / n;
    let avg_fwd = rows.iter().map(|r| r.forwards_per_query).sum::<f64>() / n;
    let moves: usize = rows.iter().map(|r| r.moves).sum();
    let peers = rows.last().map_or(0, |r| r.peers);

    println!(
        "{name}: {} peers, {} periods, avg repaired scost {avg_repair:.6}, \
         {avg_msgs:.0} query msgs/period, {avg_fwd:.3} fwd/query, {moves} moves, {elapsed:.2}s",
        peers,
        rows.len(),
    );

    criterion::record_value(
        &format!("churn/{name}/avg_scost_after_repair"),
        "cost",
        avg_repair,
    );
    criterion::record_value(
        &format!("churn/{name}/query_messages_per_period"),
        "msgs",
        avg_msgs,
    );
    criterion::record_value(&format!("churn/{name}/forwards_per_query"), "msgs", avg_fwd);
    criterion::record_value(&format!("churn/{name}/total_moves"), "moves", moves as f64);
    criterion::record_value(&format!("churn/{name}/run_seconds"), "seconds", elapsed);
}

/// The observed-decision pipeline at 10 000 peers: same churn schedule
/// as `churn_10k` but peers relocate on estimates folded from routed
/// traffic instead of the oracle cost model. The decision-fidelity
/// metrics are deterministic and gated so the observed path cannot
/// silently drift away from the oracle:
///
/// * `decision_disagreement` — `1 − mean agreement` between observed
///   and oracle proposals; `0.0` at the baseline, so *any* divergence
///   trips the gate (matching the pinned golden);
/// * `scost_vs_oracle` — mean ratio of the observed repair's social
///   cost to the reference oracle repair's from the same pre-repair
///   state (≈1.0; a rising ratio means observed repairs got worse).
fn run_observed_fidelity(name: &str, seed: u64) {
    let (cfg, churn) = churn_10k_observed_config(seed);
    let start = std::time::Instant::now();
    let (rows, fidelity) = run_churn_with_fidelity(&cfg, &churn);
    let elapsed = start.elapsed().as_secs_f64();
    let report = fidelity.expect("observed mode always reports fidelity");

    let n = rows.len() as f64;
    let avg_repair = rows.iter().map(|r| r.scost_after_repair).sum::<f64>() / n;
    let disagreement = 1.0 - report.mean_agreement();
    let scost_ratio = report
        .periods
        .iter()
        .map(|f| f.scost_observed_repair / f.scost_oracle_repair)
        .sum::<f64>()
        / report.periods.len() as f64;

    println!(
        "{name}: {} periods, avg repaired scost {avg_repair:.6}, \
         disagreement {disagreement:.6}, scost vs oracle {scost_ratio:.6}, {elapsed:.2}s",
        rows.len(),
    );

    criterion::record_value(
        &format!("churn/{name}/avg_scost_after_repair"),
        "cost",
        avg_repair,
    );
    criterion::record_value(
        &format!("churn/{name}/decision_disagreement"),
        "rate",
        disagreement,
    );
    criterion::record_value(
        &format!("churn/{name}/scost_vs_oracle"),
        "rate",
        scost_ratio,
    );
    criterion::record_value(&format!("churn/{name}/run_seconds"), "seconds", elapsed);
}

fn main() {
    let seed = 2008;
    let (cfg, churn) = churn_10k_config(seed);
    run_scale("churn_10k", &cfg, &churn);
    // Observed decisions ride the same 10k schedule; its fidelity
    // metrics feed the same trend gate.
    run_observed_fidelity("churn_10k_observed", seed);
    // 100 000 peers — affordable in-gate since the read/write split:
    // sparse tracker walk + snapshot phase 1 put a full period at
    // seconds, so the deterministic quality/traffic metrics are cheap
    // to pin at the scale the engine is built for.
    let (cfg, churn) = churn_100k_config(seed);
    run_scale("churn_100k", &cfg, &churn);
    // 1 000 000 peers — the scale the sharded flush/fan-out, the
    // per-(peer,cluster) recall memo and the u32/SoA memory diet were
    // built for. Quality/traffic metrics pin exactly as at 100k; the
    // process peak RSS (kernel VmHWM, so it covers the smaller runs
    // above too — this one dominates) is gated one-sided at the wide
    // time factor so a leaked per-peer allocation shows up as a 4×
    // trip, while runner-to-runner malloc noise cannot.
    let (cfg, churn) = churn_1m_config(seed);
    let watermark = RssWatermark::start();
    run_scale("churn_1M", &cfg, &churn);
    criterion::record_value("churn/churn_1M/peak_rss_mb", "mb", watermark.peak_mb());
}
