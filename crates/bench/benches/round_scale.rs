//! Phase-1 scale bench: deterministic proposal-memo metrics.
//!
//! Two seeded, RNG-free scenarios drive the protocol engine and record
//! *wall-clock-free* metrics into the bench-trend gate — proposals
//! recomputed (the per-round dirty-peer count) vs. proposals served
//! from the [`ProposalMemo`], plus rounds and moves. The counts are
//! machine-independent: any drift means the memo's validity gate or the
//! protocol itself changed behaviour, gated hard at 2×. Wall-clock
//! seconds are recorded for the artifact's timing history only (never
//! added to the committed baseline).
//!
//! * `converge_200p` — the paper testbed from singletons to
//!   equilibrium: the worst case for the memo (every round moves many
//!   peers), so its hit count doubles as a regression canary for
//!   over-eager caching.
//! * `repair_2k` — a 2 000-peer ideal clustering shocked by 20
//!   deterministic mis-placements, repaired by the *same* engine twice:
//!   the second, quiet run must be served almost entirely from the
//!   memo (cross-run memoization is what makes churn-period maintenance
//!   O(dirty peers)).

use recluster_core::{ProtocolConfig, ProtocolEngine, SelfishStrategy};
use recluster_overlay::SimNetwork;
use recluster_sim::scenario::{
    build_system, ideal_scenario1_system, ExperimentConfig, InitialConfig, Scenario,
};
use recluster_types::{ClusterId, PeerId};

fn record_run(label: &str, outcome: &recluster_core::RunOutcome) {
    criterion::record_value(
        &format!("round/{label}/proposals_recomputed"),
        "proposals",
        outcome.total_recomputed() as f64,
    );
    criterion::record_value(
        &format!("round/{label}/proposals_memoized"),
        "proposals",
        outcome.total_memoized() as f64,
    );
    criterion::record_value(
        &format!("round/{label}/rounds"),
        "rounds",
        outcome.rounds.len() as f64,
    );
    criterion::record_value(
        &format!("round/{label}/moves"),
        "moves",
        outcome.total_moves() as f64,
    );
}

fn main() {
    let start = std::time::Instant::now();

    // ---- converge_200p: paper scale, singletons → equilibrium. ------
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::Singletons,
        &ExperimentConfig::paper(77),
    );
    let mut net = SimNetwork::new();
    let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
    let outcome = engine.run(&mut tb.system, &mut net);
    println!(
        "converge_200p: {} rounds, {} moves, {} recomputed / {} memoized",
        outcome.rounds.len(),
        outcome.total_moves(),
        outcome.total_recomputed(),
        outcome.total_memoized(),
    );
    record_run("converge_200p", &outcome);

    // ---- repair_2k: ideal 2k-peer clustering, shock, repair, re-run. --
    let cfg = ExperimentConfig {
        n_peers: 2_000,
        total_queries: 4_000,
        ..ExperimentConfig::large(77)
    };
    let mut tb = ideal_scenario1_system(&cfg);
    let mut net = SimNetwork::new();
    let mut engine = ProtocolEngine::new(
        SelfishStrategy,
        ProtocolConfig::builder().max_rounds(8).build(),
    );
    // Deterministic shock: two peers of *every* category land one
    // category over (spread across source clusters so the lock rule can
    // grant several repairs per round instead of serializing them).
    let m = cfg.n_categories;
    let ppc = cfg.n_peers / m;
    for k in 0..m {
        for j in 0..2 {
            let peer = PeerId::from_index(k * ppc + j);
            tb.system
                .move_peer(peer, ClusterId::from_index((k + 1) % m));
        }
    }
    let repair = engine.run(&mut tb.system, &mut net);
    println!(
        "repair_2k: {} rounds, {} moves, {} recomputed / {} memoized",
        repair.rounds.len(),
        repair.total_moves(),
        repair.total_recomputed(),
        repair.total_memoized(),
    );
    record_run("repair_2k", &repair);

    // The quiet re-run: same engine, nothing changed since its last
    // round — the memo must carry virtually the whole phase 1.
    let quiet = engine.run(&mut tb.system, &mut net);
    println!(
        "repair_2k quiet re-run: {} recomputed / {} memoized",
        quiet.total_recomputed(),
        quiet.total_memoized(),
    );
    record_run("repair_2k_quiet", &quiet);

    // ---- repair_1M: the million-peer shock/repair/quiet cycle. -------
    // Same deterministic shock pattern at the tentpole scale: the
    // repair round is O(dirty peers) thanks to the proposal memo, and
    // the quiet re-run is the hard canary — at 1M peers *any*
    // recomputation would cost seconds, so the cycle asserts the round
    // is 100% memo-served before recording it.
    let cfg = ExperimentConfig::million(77);
    let mut tb = ideal_scenario1_system(&cfg);
    let mut net = SimNetwork::new();
    let mut engine = ProtocolEngine::new(
        SelfishStrategy,
        ProtocolConfig::builder().max_rounds(8).build(),
    );
    let m = cfg.n_categories;
    let ppc = cfg.n_peers / m;
    for k in 0..m {
        for j in 0..2 {
            let peer = PeerId::from_index(k * ppc + j);
            tb.system
                .move_peer(peer, ClusterId::from_index((k + 1) % m));
        }
    }
    let repair = engine.run(&mut tb.system, &mut net);
    println!(
        "repair_1M: {} rounds, {} moves, {} recomputed / {} memoized",
        repair.rounds.len(),
        repair.total_moves(),
        repair.total_recomputed(),
        repair.total_memoized(),
    );
    record_run("repair_1M", &repair);

    let quiet_start = std::time::Instant::now();
    let quiet = engine.run(&mut tb.system, &mut net);
    let quiet_elapsed = quiet_start.elapsed().as_secs_f64();
    assert_eq!(
        quiet.total_recomputed(),
        0,
        "quiet 1M round must be 100% memo-served"
    );
    assert!(
        quiet.total_memoized() > 0,
        "quiet 1M round must consult the memo"
    );
    println!(
        "repair_1M quiet re-run: {} recomputed / {} memoized, {quiet_elapsed:.3}s",
        quiet.total_recomputed(),
        quiet.total_memoized(),
    );
    record_run("repair_1M_quiet", &quiet);
    // The headline number of the tentpole: one maintenance round over a
    // quiet million-peer system. Artifact-only (like every wall-clock
    // cell), target < 1 s in release.
    criterion::record_value(
        "round/repair_1M_quiet/round_seconds",
        "seconds",
        quiet_elapsed,
    );

    criterion::record_value(
        "round/run_seconds",
        "seconds",
        start.elapsed().as_secs_f64(),
    );
}
