//! The query-serving traffic scenario at scale: ≈1.29 M routed query
//! occurrences streamed through 10 000 peers under live churn, batched
//! summary publication and periodic selfish repair — the `traffic_demo`
//! configuration, run once end to end for the bench-trend gate.
//!
//! Metric split, same policy as `churn_scale`:
//!
//! * deterministic metrics (fan-out tail p50/p99/max, forwards per
//!   query, false-negative rate, total queries/moves, batched summary
//!   messages) are seeded and machine-independent — drift is a real
//!   regression of routing precision, batching correctness or protocol
//!   quality, gated hard at 2×;
//! * `seconds_per_mquery` is the committed throughput gate: the
//!   wall-clock cost of serving one million occurrences, a *seconds*
//!   unit so `bench-trend compare` applies the lenient 4× time factor.
//!   It is the inverse of queries/s, committed instead of it because
//!   every gate direction is "bigger is worse" — a faster machine can
//!   only pass it;
//! * raw `run_seconds` and `queries_per_sec` land in the `BENCH_pr.json`
//!   artifact for trend-watching but stay out of the committed baseline
//!   (`queries_per_sec` is higher-is-better, so gating its growth would
//!   fail exactly the runs that got *faster*).
//!
//! The run executes once (no `b.iter` loop): at this scale a single
//! pass is the measurement, and all count metrics are exact.

use recluster_sim::traffic::{run_traffic, traffic_demo_config};

fn main() {
    let seed = 2008;
    let (cfg, traffic) = traffic_demo_config(seed);
    let start = std::time::Instant::now();
    let report = run_traffic(&cfg, &traffic);
    let elapsed = start.elapsed().as_secs_f64();

    let mqueries = report.queries as f64 / 1e6;
    let secs_per_mq = if mqueries > 0.0 {
        elapsed / mqueries
    } else {
        0.0
    };
    println!(
        "traffic_1m: {} peers, {} queries in {elapsed:.2}s ({:.0} q/s), \
         fanout p50={} p99={} max={}, fwd/q {:.3}, fn {:.6}, \
         {} moves, summary msgs batched {} vs per-event {}",
        report.peers,
        report.queries,
        report.queries_per_sec(elapsed),
        report.histogram.p50(),
        report.histogram.p99(),
        report.histogram.max(),
        report.forwards_per_query(),
        report.false_negative_rate(),
        report.moves,
        report.summary_updates_batched,
        report.summary_updates_per_event,
    );

    let rec = |metric: &str, unit: &str, value: f64| {
        criterion::record_value(&format!("traffic/traffic_1m/{metric}"), unit, value);
    };
    rec("total_queries", "queries", report.queries as f64);
    rec("p50_forwards", "msgs", report.histogram.p50() as f64);
    rec("p99_forwards", "msgs", report.histogram.p99() as f64);
    rec("max_forwards", "msgs", report.histogram.max() as f64);
    rec("forwards_per_query", "msgs", report.forwards_per_query());
    rec("false_negative_rate", "rate", report.false_negative_rate());
    rec("total_moves", "moves", report.moves as f64);
    rec(
        "summary_updates_batched",
        "msgs",
        report.summary_updates_batched as f64,
    );
    rec("seconds_per_mquery", "seconds", secs_per_mq);
    rec("queries_per_sec", "qps", report.queries_per_sec(elapsed));
    rec("run_seconds", "seconds", elapsed);
}
