//! Synthetic article generation.
//!
//! Articles are rendered as raw text — Zipf-sampled content words from the
//! category's vocabulary, a few shared background words, interleaved with
//! English stop-words — and then pushed through the real
//! `TextPipeline` — exactly as the paper
//! preprocesses its Newsgroup articles. The output is a set-of-attributes
//! [`Document`] per article, grouped by category, plus the occurrence and
//! document-frequency statistics the query samplers need.

use rand::Rng;
use recluster_types::{seeded_rng, Document, Interner, Sym};

use crate::pipeline::{TextPipeline, STOPWORDS};
use crate::vocabulary::VocabularyBuilder;
use crate::zipf::Zipf;

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of article categories (the paper uses 10).
    pub n_categories: usize,
    /// Distinct content words per category vocabulary.
    pub vocab_per_category: usize,
    /// Distinct background words shared by all categories.
    pub shared_vocab: usize,
    /// Articles generated per category.
    pub docs_per_category: usize,
    /// Content-word draws per article (with replacement; the article's
    /// attribute set is typically slightly smaller).
    pub content_words_per_doc: usize,
    /// Shared-background-word draws per article.
    pub shared_words_per_doc: usize,
    /// Zipf exponent for the rank-frequency law of content words.
    pub zipf_exponent: f64,
    /// Master seed; the whole corpus is a pure function of the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    /// Defaults sized like the paper's testbed: 10 categories, enough
    /// articles for 200 peers to hold a handful each.
    fn default() -> Self {
        CorpusConfig {
            n_categories: 10,
            vocab_per_category: 120,
            shared_vocab: 30,
            docs_per_category: 200,
            content_words_per_doc: 18,
            shared_words_per_doc: 2,
            zipf_exponent: 0.8,
            seed: 0xC0FFEE,
        }
    }
}

/// A generated corpus: documents grouped by category plus vocabulary
/// statistics.
#[derive(Debug, Clone)]
pub struct Corpus {
    config: CorpusConfig,
    interner: Interner,
    /// Rank-ordered stemmed symbols per category.
    category_syms: Vec<Vec<Sym>>,
    /// Stemmed symbols of the shared background vocabulary.
    shared_syms: Vec<Sym>,
    /// Documents per category.
    docs_by_category: Vec<Vec<Document>>,
    /// Occurrence counts aligned with `category_syms` (token occurrences
    /// in the rendered texts, post-pipeline).
    occurrences: Vec<Vec<u64>>,
    /// Document frequencies aligned with `category_syms`.
    doc_freq: Vec<Vec<u32>>,
    /// Reverse map: symbol index → owning category (`None` for shared).
    sym_category: Vec<Option<u32>>,
}

impl Corpus {
    /// Generates a corpus from `config`. Deterministic.
    pub fn generate(config: CorpusConfig) -> Self {
        assert!(config.n_categories > 0, "need at least one category");
        assert!(config.vocab_per_category > 0, "need a non-empty vocabulary");
        let vocab = VocabularyBuilder::new(
            config.n_categories,
            config.vocab_per_category,
            config.shared_vocab,
            config.seed,
        )
        .build();

        let mut interner = Interner::new();
        let mut pipeline = TextPipeline::new();
        let mut rng = seeded_rng(recluster_types::derive_seed(config.seed, 1));
        let zipf = Zipf::new(config.vocab_per_category, config.zipf_exponent);

        let mut docs_by_category = Vec::with_capacity(config.n_categories);
        for cat in 0..config.n_categories {
            let mut docs = Vec::with_capacity(config.docs_per_category);
            for _ in 0..config.docs_per_category {
                let text = render_article(
                    &vocab.categories[cat].words,
                    &vocab.shared,
                    &zipf,
                    config.content_words_per_doc,
                    config.shared_words_per_doc,
                    &mut rng,
                );
                docs.push(pipeline.process_article(&text, &mut interner));
            }
            docs_by_category.push(docs);
        }

        // Intern the stemmed vocabulary in rank order. Every vocabulary
        // word that appeared in at least one article is already interned;
        // words that never appeared are interned here with zero counts.
        let category_syms: Vec<Vec<Sym>> = vocab
            .categories
            .iter()
            .map(|c| {
                c.words
                    .iter()
                    .map(|w| interner.intern(&crate::pipeline::stem(w)))
                    .collect()
            })
            .collect();
        let shared_syms: Vec<Sym> = vocab
            .shared
            .iter()
            .map(|w| interner.intern(&crate::pipeline::stem(w)))
            .collect();

        let occurrences: Vec<Vec<u64>> = category_syms
            .iter()
            .map(|syms| {
                syms.iter()
                    .map(|&s| pipeline.frequencies().count(s))
                    .collect()
            })
            .collect();

        let mut sym_category = vec![None; interner.len()];
        for (cat, syms) in category_syms.iter().enumerate() {
            for &s in syms {
                sym_category[s.index()] = Some(cat as u32);
            }
        }

        let doc_freq = compute_doc_freq(&category_syms, &docs_by_category);

        Corpus {
            config,
            interner,
            category_syms,
            shared_syms,
            docs_by_category,
            occurrences,
            doc_freq,
            sym_category,
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.config.n_categories
    }

    /// The interner mapping stemmed words to symbols.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Documents of one category.
    pub fn docs(&self, category: usize) -> &[Document] {
        &self.docs_by_category[category]
    }

    /// Rank-ordered stemmed symbols of one category's vocabulary.
    pub fn category_syms(&self, category: usize) -> &[Sym] {
        &self.category_syms[category]
    }

    /// Stemmed symbols of the shared background vocabulary.
    pub fn shared_syms(&self) -> &[Sym] {
        &self.shared_syms
    }

    /// Token occurrences of each category word (aligned with
    /// [`Corpus::category_syms`]).
    pub fn occurrences(&self, category: usize) -> &[u64] {
        &self.occurrences[category]
    }

    /// Document frequency (how many of the category's articles contain
    /// the word) aligned with [`Corpus::category_syms`].
    pub fn doc_freq(&self, category: usize) -> &[u32] {
        &self.doc_freq[category]
    }

    /// The category owning `sym`, or `None` for shared/unknown symbols.
    pub fn category_of(&self, sym: Sym) -> Option<usize> {
        self.sym_category
            .get(sym.index())
            .copied()
            .flatten()
            .map(|c| c as usize)
    }

    /// Total number of documents across all categories.
    pub fn total_docs(&self) -> usize {
        self.docs_by_category.iter().map(Vec::len).sum()
    }
}

/// Renders one article as raw text: content words (Zipf-ranked) and a few
/// shared words, interleaved with stop-words roughly every third token —
/// giving the pipeline real filtering work to do.
fn render_article<R: Rng + ?Sized>(
    category_words: &[String],
    shared_words: &[String],
    zipf: &Zipf,
    content_draws: usize,
    shared_draws: usize,
    rng: &mut R,
) -> String {
    let mut text = String::with_capacity(16 * (content_draws + shared_draws));
    let emit = |text: &mut String, word: &str, rng: &mut R| {
        if !text.is_empty() {
            text.push(' ');
        }
        if rng.gen_ratio(1, 3) {
            text.push_str(STOPWORDS[rng.gen_range(0..STOPWORDS.len())]);
            text.push(' ');
        }
        text.push_str(word);
    };
    for _ in 0..content_draws {
        let rank = zipf.sample(rng);
        emit(&mut text, &category_words[rank], rng);
    }
    for _ in 0..shared_draws {
        if shared_words.is_empty() {
            break;
        }
        let i = rng.gen_range(0..shared_words.len());
        emit(&mut text, &shared_words[i], rng);
    }
    text.push('.');
    text
}

fn compute_doc_freq(
    category_syms: &[Vec<Sym>],
    docs_by_category: &[Vec<Document>],
) -> Vec<Vec<u32>> {
    category_syms
        .iter()
        .enumerate()
        .map(|(cat, syms)| {
            syms.iter()
                .map(|&s| {
                    docs_by_category[cat]
                        .iter()
                        .filter(|d| d.contains(s))
                        .count() as u32
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> CorpusConfig {
        CorpusConfig {
            n_categories: 3,
            vocab_per_category: 40,
            shared_vocab: 10,
            docs_per_category: 30,
            content_words_per_doc: 12,
            shared_words_per_doc: 2,
            zipf_exponent: 0.9,
            seed,
        }
    }

    #[test]
    fn generates_requested_document_counts() {
        let c = Corpus::generate(small_config(1));
        assert_eq!(c.n_categories(), 3);
        for cat in 0..3 {
            assert_eq!(c.docs(cat).len(), 30);
        }
        assert_eq!(c.total_docs(), 90);
    }

    #[test]
    fn documents_are_nonempty_and_use_category_vocabulary() {
        let c = Corpus::generate(small_config(2));
        for cat in 0..3 {
            for doc in c.docs(cat) {
                assert!(!doc.is_empty());
                let own = doc
                    .attrs()
                    .iter()
                    .filter(|&&s| c.category_of(s) == Some(cat))
                    .count();
                assert!(own > 0, "article must contain own-category words");
            }
        }
    }

    #[test]
    fn category_vocabularies_are_disjoint_across_categories() {
        let c = Corpus::generate(small_config(3));
        for cat in 0..3 {
            for &s in c.category_syms(cat) {
                assert_eq!(c.category_of(s), Some(cat));
            }
        }
        for &s in c.shared_syms() {
            assert_eq!(c.category_of(s), None);
        }
    }

    #[test]
    fn zipf_rank_ordering_shows_in_occurrences() {
        let c = Corpus::generate(small_config(4));
        for cat in 0..3 {
            let occ = c.occurrences(cat);
            let head: u64 = occ[..5].iter().sum();
            let tail: u64 = occ[occ.len() - 5..].iter().sum();
            assert!(head > tail, "rank-0 words must dominate the tail");
        }
    }

    #[test]
    fn doc_freq_is_consistent_with_documents() {
        let c = Corpus::generate(small_config(5));
        let cat = 1;
        let syms = c.category_syms(cat);
        let df = c.doc_freq(cat);
        for (i, &s) in syms.iter().enumerate().take(10) {
            let manual = c.docs(cat).iter().filter(|d| d.contains(s)).count() as u32;
            assert_eq!(df[i], manual);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(small_config(9));
        let b = Corpus::generate(small_config(9));
        assert_eq!(a.docs(0), b.docs(0));
        assert_eq!(a.occurrences(2), b.occurrences(2));
    }

    #[test]
    fn different_seeds_produce_different_corpora() {
        let a = Corpus::generate(small_config(10));
        let b = Corpus::generate(small_config(11));
        assert_ne!(a.docs(0), b.docs(0));
    }

    #[test]
    fn cross_category_words_only_from_shared_vocab() {
        let c = Corpus::generate(small_config(12));
        for cat in 0..3 {
            for doc in c.docs(cat) {
                for &s in doc.attrs() {
                    if let Some(owner) = c.category_of(s) {
                        assert_eq!(owner, cat); // else: shared background word
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_categories_panics() {
        let mut cfg = small_config(1);
        cfg.n_categories = 0;
        let _ = Corpus::generate(cfg);
    }
}
