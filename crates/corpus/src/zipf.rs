//! Zipf-distributed sampling.
//!
//! Word frequencies in natural-language text follow a Zipf law, and the
//! paper distributes query demand across peers "using a zipf
//! distribution, thus, some peers are more demanding than others". This
//! module implements inverse-CDF sampling over the finite Zipf
//! distribution `P(rank = k) ∝ k^(-s)`, `k = 1..=n`, without pulling an
//! extra dependency.

use rand::Rng;

/// A finite Zipf distribution over ranks `0..n` (rank 0 is the most
/// probable).
///
/// # Examples
/// ```
/// use recluster_corpus::Zipf;
/// use recluster_types::seeded_rng;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = seeded_rng(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; `cdf[k]` = Σ_{i<=k} (i+1)^-s.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s ≥ 0`.
    ///
    /// `s = 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of `rank` (0-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        let total = *self.cdf.last().expect("non-empty");
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        (self.cdf[rank] - lo) / total
    }

    /// Samples a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("non-empty");
        let u: f64 = rng.gen::<f64>() * total;
        // partition_point returns the first index whose cdf exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Splits an integer `total` into `self.len()` shares proportional to
    /// the Zipf weights, using largest-remainder rounding so the shares
    /// sum exactly to `total`. Used to hand out query demand to peers.
    pub fn integer_shares(&self, total: u64) -> Vec<u64> {
        let n = self.cdf.len();
        let grand = *self.cdf.last().expect("non-empty");
        let mut shares = Vec::with_capacity(n);
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
        let mut assigned = 0u64;
        let mut prev = 0.0;
        for (k, &c) in self.cdf.iter().enumerate() {
            let exact = total as f64 * (c - prev) / grand;
            let floor = exact.floor() as u64;
            assigned += floor;
            shares.push(floor);
            remainders.push((k, exact - exact.floor()));
            prev = c;
        }
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut leftover = total - assigned;
        for (k, _) in remainders {
            if leftover == 0 {
                break;
            }
            shares[k] += 1;
            leftover -= 1;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::seeded_rng;

    #[test]
    fn pmf_sums_to_one() {
        for &s in &[0.0, 0.5, 1.0, 2.0] {
            let z = Zipf::new(50, s);
            let sum: f64 = (0..50).map(|k| z.pmf(k)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "s={s}: sum={sum}");
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(20, 1.2);
        for k in 1..20 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn samples_stay_in_range_and_skew_low() {
        let z = Zipf::new(100, 1.0);
        let mut rng = seeded_rng(42);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 must dominate rank 50 decisively under s=1.
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn empirical_frequency_tracks_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = seeded_rng(7);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: emp={emp}, pmf={}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn integer_shares_sum_exactly() {
        let z = Zipf::new(7, 1.0);
        for &total in &[0u64, 1, 13, 200, 9999] {
            let shares = z.integer_shares(total);
            assert_eq!(shares.iter().sum::<u64>(), total);
            assert_eq!(shares.len(), 7);
        }
    }

    #[test]
    fn integer_shares_are_monotone_for_positive_exponent() {
        let z = Zipf::new(8, 1.0);
        let shares = z.integer_shares(1000);
        for w in shares.windows(2) {
            assert!(w[0] >= w[1], "shares must decrease with rank: {shares:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_exponent_panics() {
        let _ = Zipf::new(3, -1.0);
    }
}
