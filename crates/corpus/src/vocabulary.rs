//! Category vocabularies of pronounceable pseudo-words.
//!
//! Each of the paper's 10 Newsgroup categories has a characteristic
//! vocabulary; a query word drawn from a category's articles
//! predominantly matches documents of that category. We synthesize one
//! disjoint pseudo-word vocabulary per category plus a shared background
//! vocabulary (words common to all categories), and guarantee that the
//! pipeline's stemmer maps distinct vocabulary entries to distinct stems
//! (otherwise two "different" words would merge downstream).

use std::collections::HashSet;

use recluster_types::seeded_rng;

use crate::pipeline::{stem, TextPipeline};

const ONSETS: &[&str] = &[
    "b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p",
    "pr", "qu", "r", "st", "t", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ou"];
const CODAS: &[&str] = &[
    "b", "ck", "d", "f", "g", "k", "l", "m", "n", "p", "r", "t", "x", "z",
];

/// The vocabulary of one category: a list of pseudo-words, ordered so that
/// index 0 is the category's most characteristic (highest-frequency under
/// the generator's Zipf composition) word.
#[derive(Debug, Clone)]
pub struct CategoryVocabulary {
    /// Category index this vocabulary belongs to.
    pub category: usize,
    /// Pseudo-words, rank-ordered (rank 0 = most frequent in articles).
    pub words: Vec<String>,
}

impl CategoryVocabulary {
    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Builds stemming-stable, pairwise-disjoint vocabularies.
///
/// # Examples
/// ```
/// use recluster_corpus::VocabularyBuilder;
///
/// let built = VocabularyBuilder::new(3, 40, 10, 99).build();
/// assert_eq!(built.categories.len(), 3);
/// assert_eq!(built.categories[0].words.len(), 40);
/// assert_eq!(built.shared.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct VocabularyBuilder {
    n_categories: usize,
    words_per_category: usize,
    shared_words: usize,
    seed: u64,
}

/// Output of [`VocabularyBuilder::build`].
#[derive(Debug, Clone)]
pub struct BuiltVocabulary {
    /// One vocabulary per category, pairwise disjoint.
    pub categories: Vec<CategoryVocabulary>,
    /// Background words appearing in articles of every category.
    pub shared: Vec<String>,
}

impl VocabularyBuilder {
    /// Configures a builder.
    pub fn new(
        n_categories: usize,
        words_per_category: usize,
        shared_words: usize,
        seed: u64,
    ) -> Self {
        VocabularyBuilder {
            n_categories,
            words_per_category,
            shared_words,
            seed,
        }
    }

    /// Generates the vocabularies. Deterministic for a given seed.
    pub fn build(&self) -> BuiltVocabulary {
        let mut rng = seeded_rng(self.seed);
        let pipeline = TextPipeline::new();
        let mut used_stems: HashSet<String> = HashSet::new();
        let mut next_word = |rng: &mut rand::rngs::StdRng| -> String {
            loop {
                let word = pseudo_word(rng);
                // Reject stop-words and stem collisions so the pipeline is
                // a bijection on the vocabulary.
                if pipeline.is_stopword(&word) {
                    continue;
                }
                let stemmed = stem(&word);
                if stemmed.len() < 3 {
                    continue;
                }
                if used_stems.insert(stemmed) {
                    return word;
                }
            }
        };
        let categories = (0..self.n_categories)
            .map(|category| CategoryVocabulary {
                category,
                words: (0..self.words_per_category)
                    .map(|_| next_word(&mut rng))
                    .collect(),
            })
            .collect();
        let shared = (0..self.shared_words)
            .map(|_| next_word(&mut rng))
            .collect();
        BuiltVocabulary { categories, shared }
    }
}

/// Generates one pronounceable pseudo-word of 2–3 syllables.
fn pseudo_word<R: rand::Rng + ?Sized>(rng: &mut R) -> String {
    let syllables = 2 + (rng.gen::<u32>() % 2) as usize;
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_shapes() {
        let b = VocabularyBuilder::new(4, 25, 8, 1).build();
        assert_eq!(b.categories.len(), 4);
        for (i, cat) in b.categories.iter().enumerate() {
            assert_eq!(cat.category, i);
            assert_eq!(cat.words.len(), 25);
        }
        assert_eq!(b.shared.len(), 8);
    }

    #[test]
    fn all_words_are_globally_distinct() {
        let b = VocabularyBuilder::new(5, 60, 20, 2).build();
        let mut all: Vec<&String> = b.categories.iter().flat_map(|c| c.words.iter()).collect();
        all.extend(b.shared.iter());
        let set: HashSet<&String> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn stems_are_globally_distinct() {
        let b = VocabularyBuilder::new(5, 60, 20, 3).build();
        let mut stems = HashSet::new();
        for w in b
            .categories
            .iter()
            .flat_map(|c| c.words.iter())
            .chain(b.shared.iter())
        {
            assert!(stems.insert(stem(w)), "stem collision for {w}");
        }
    }

    #[test]
    fn no_word_is_a_stopword() {
        let p = TextPipeline::new();
        let b = VocabularyBuilder::new(3, 50, 10, 4).build();
        for w in b
            .categories
            .iter()
            .flat_map(|c| c.words.iter())
            .chain(b.shared.iter())
        {
            assert!(!p.is_stopword(w), "{w} is a stop-word");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = VocabularyBuilder::new(2, 10, 3, 7).build();
        let b = VocabularyBuilder::new(2, 10, 3, 7).build();
        assert_eq!(a.categories[0].words, b.categories[0].words);
        assert_eq!(a.shared, b.shared);
    }

    #[test]
    fn different_seeds_differ() {
        let a = VocabularyBuilder::new(2, 10, 3, 7).build();
        let b = VocabularyBuilder::new(2, 10, 3, 8).build();
        assert_ne!(a.categories[0].words, b.categories[0].words);
    }

    #[test]
    fn words_survive_the_pipeline_unsplit() {
        // Every pseudo-word must be a single alphabetic token.
        let b = VocabularyBuilder::new(2, 30, 5, 5).build();
        for w in b.categories.iter().flat_map(|c| c.words.iter()) {
            let toks: Vec<_> = TextPipeline::tokenize(w).collect();
            assert_eq!(toks, vec![w.clone()]);
        }
    }
}
