//! Text preprocessing pipeline.
//!
//! The paper preprocesses its Newsgroup articles: "stop words were removed
//! from the text, lemmatization was applied and the resulting words were
//! sorted by frequency of appearance". This module reproduces that
//! pipeline: a tokenizer, an English stop-word filter, a light
//! suffix-stripping stemmer standing in for the lemmatizer, and a
//! frequency table.

use std::collections::HashMap;

use recluster_types::{Document, Interner, Sym};

/// English stop-words filtered by the pipeline (a compact list; the
/// generator only ever emits stop-words from this set, so filtering is
/// exact for synthetic articles and a reasonable approximation for real
/// text).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "he", "her", "his", "i", "if", "in", "into", "is", "it", "its", "my", "no", "not", "of", "on",
    "or", "our", "she", "so", "that", "the", "their", "them", "then", "there", "these", "they",
    "this", "to", "was", "we", "were", "which", "will", "with", "you", "your",
];

/// Tokenizes, filters stop-words, stems, and interns words; accumulates
/// corpus-wide frequency statistics.
///
/// # Examples
/// ```
/// use recluster_corpus::TextPipeline;
/// use recluster_types::Interner;
///
/// let mut interner = Interner::new();
/// let mut pipeline = TextPipeline::new();
/// let doc = pipeline.process_article(
///     "The peers are clustering; the clusters improve recall!",
///     &mut interner,
/// );
/// // "the"/"are" removed, "clustering"/"clusters" stem together.
/// assert!(doc.len() >= 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TextPipeline {
    stopwords: std::collections::HashSet<&'static str>,
    frequencies: FrequencyTable,
}

impl TextPipeline {
    /// Creates a pipeline with the standard stop-word list.
    pub fn new() -> Self {
        TextPipeline {
            stopwords: STOPWORDS.iter().copied().collect(),
            frequencies: FrequencyTable::default(),
        }
    }

    /// Lowercases and splits raw text into alphabetic tokens.
    pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
        text.split(|c: char| !c.is_ascii_alphabetic())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_ascii_lowercase())
    }

    /// Whether `word` (already lowercased) is a stop-word.
    pub fn is_stopword(&self, word: &str) -> bool {
        self.stopwords.contains(word)
    }

    /// Processes one article into a [`Document`] (set of stemmed content
    /// words), updating the frequency table with every surviving token
    /// occurrence.
    pub fn process_article(&mut self, text: &str, interner: &mut Interner) -> Document {
        let mut attrs = Vec::new();
        for token in Self::tokenize(text) {
            if self.is_stopword(&token) {
                continue;
            }
            let stemmed = stem(&token);
            if stemmed.is_empty() {
                continue;
            }
            let sym = interner.intern(&stemmed);
            self.frequencies.record(sym, 1);
            attrs.push(sym);
        }
        Document::new(attrs)
    }

    /// The accumulated corpus-wide frequency table.
    pub fn frequencies(&self) -> &FrequencyTable {
        &self.frequencies
    }
}

/// Applies a small suffix-stripping stemmer (a Porter-step-1 style
/// lemmatizer substitute): `sses→ss`, `ies→i`, trailing `s` (but not
/// `ss`), and the inflectional suffixes `ing`/`ed`/`ly` when enough stem
/// remains.
pub fn stem(word: &str) -> String {
    let mut w = word.to_owned();
    if let Some(base) = w.strip_suffix("sses") {
        w = format!("{base}ss");
    } else if let Some(base) = w.strip_suffix("ies") {
        w = format!("{base}i");
    } else if w.ends_with('s') && !w.ends_with("ss") {
        w.truncate(w.len() - 1);
    }
    for suffix in ["ing", "ed", "ly"] {
        if w.len() > suffix.len() + 2 && w.ends_with(suffix) {
            w.truncate(w.len() - suffix.len());
            break;
        }
    }
    w
}

/// Counts word occurrences and reports them "sorted by frequency of
/// appearance", as the paper's preprocessing does.
#[derive(Debug, Default, Clone)]
pub struct FrequencyTable {
    counts: HashMap<Sym, u64>,
    total: u64,
}

impl FrequencyTable {
    /// Records `n` occurrences of `sym`.
    pub fn record(&mut self, sym: Sym, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(sym).or_insert(0) += n;
        self.total += n;
    }

    /// Occurrences of `sym`.
    pub fn count(&self, sym: Sym) -> u64 {
        self.counts.get(&sym).copied().unwrap_or(0)
    }

    /// Total occurrences recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct words.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Words sorted by descending frequency (ties broken by symbol id so
    /// the order is deterministic).
    pub fn sorted_by_frequency(&self) -> Vec<(Sym, u64)> {
        let mut v: Vec<(Sym, u64)> = self.counts.iter().map(|(&s, &n)| (s, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        let toks: Vec<_> = TextPipeline::tokenize("Hello, World! 123 foo-bar").collect();
        assert_eq!(toks, vec!["hello", "world", "foo", "bar"]);
    }

    #[test]
    fn stopwords_are_filtered() {
        let p = TextPipeline::new();
        assert!(p.is_stopword("the"));
        assert!(p.is_stopword("and"));
        assert!(!p.is_stopword("peer"));
    }

    #[test]
    fn stem_handles_plural_forms() {
        assert_eq!(stem("clusters"), "cluster");
        assert_eq!(stem("queries"), "queri");
        assert_eq!(stem("glasses"), "glass");
        assert_eq!(stem("recall"), "recall");
        assert_eq!(stem("class"), "class");
    }

    #[test]
    fn stem_strips_inflections_with_guard() {
        assert_eq!(stem("clustering"), "cluster");
        assert_eq!(stem("reformulated"), "reformulat");
        assert_eq!(stem("greatly"), "great");
        // Too short to strip: "ring" keeps its suffix.
        assert_eq!(stem("ring"), "ring");
        assert_eq!(stem("ed"), "ed");
    }

    #[test]
    fn process_article_builds_document_and_frequencies() {
        let mut interner = Interner::new();
        let mut p = TextPipeline::new();
        let doc = p.process_article("The cluster clusters the clustering peers.", &mut interner);
        // "the" removed twice; cluster/clusters/clustering all stem to "cluster".
        let cluster = interner.get("cluster").expect("stemmed word interned");
        let peer = interner.get("peer").expect("peer interned");
        assert!(doc.contains(cluster));
        assert!(doc.contains(peer));
        assert_eq!(doc.len(), 2);
        assert_eq!(p.frequencies().count(cluster), 3);
        assert_eq!(p.frequencies().count(peer), 1);
        assert_eq!(p.frequencies().total(), 4);
    }

    #[test]
    fn frequency_table_sorts_descending() {
        let mut t = FrequencyTable::default();
        t.record(Sym(1), 2);
        t.record(Sym(2), 5);
        t.record(Sym(3), 2);
        let sorted = t.sorted_by_frequency();
        assert_eq!(sorted[0], (Sym(2), 5));
        // Ties broken by symbol id.
        assert_eq!(sorted[1], (Sym(1), 2));
        assert_eq!(sorted[2], (Sym(3), 2));
    }

    #[test]
    fn frequency_record_zero_is_noop() {
        let mut t = FrequencyTable::default();
        t.record(Sym(1), 0);
        assert_eq!(t.distinct(), 0);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn empty_article_yields_empty_document() {
        let mut interner = Interner::new();
        let mut p = TextPipeline::new();
        let doc = p.process_article("the of and", &mut interner);
        assert!(doc.is_empty());
    }
}
