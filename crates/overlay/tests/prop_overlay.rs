//! Property-based tests of the overlay substrate: structural invariants
//! under arbitrary operation sequences, and routing/accounting
//! consistency.

use proptest::prelude::*;
use recluster_overlay::{flood_query, ContentStore, Overlay, SimNetwork};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym};

/// An operation on the overlay.
#[derive(Debug, Clone)]
enum Op {
    Move { peer: u32, to: u32 },
    Unassign { peer: u32 },
    Reassign { peer: u32, to: u32 },
    Grow,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..8, 0u32..8).prop_map(|(peer, to)| Op::Move { peer, to }),
            (0u32..8).prop_map(|peer| Op::Unassign { peer }),
            (0u32..8, 0u32..8).prop_map(|(peer, to)| Op::Reassign { peer, to }),
            Just(Op::Grow),
        ],
        0..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any sequence of valid membership operations preserves all
    /// structural invariants, and peer/cluster counts stay consistent.
    #[test]
    fn overlay_invariants_under_random_ops(ops in arb_ops()) {
        let mut ov = Overlay::singletons(8);
        for op in ops {
            match op {
                Op::Move { peer, to } => {
                    let peer = PeerId(peer);
                    let to = ClusterId(to % ov.cmax() as u32);
                    if ov.cluster_of(peer).is_some() {
                        ov.move_peer(peer, to);
                    }
                }
                Op::Unassign { peer } => {
                    let _ = ov.unassign(PeerId(peer));
                }
                Op::Reassign { peer, to } => {
                    let peer = PeerId(peer);
                    let to = ClusterId(to % ov.cmax() as u32);
                    if ov.cluster_of(peer).is_none() {
                        ov.assign(peer, to);
                    }
                }
                Op::Grow => {
                    let _ = ov.grow();
                }
            }
            ov.check_invariants().map_err(TestCaseError::fail)?;
            // Cmax = slots always.
            prop_assert_eq!(ov.cmax(), ov.n_slots());
            // Size bookkeeping is consistent.
            let total: usize = ov.sizes().iter().sum();
            prop_assert_eq!(total, ov.n_peers());
            // Every live peer is found in exactly the cluster it claims.
            for p in ov.peers() {
                let c = ov.cluster_of(p).unwrap();
                prop_assert!(ov.cluster(c).contains(p));
            }
        }
    }

    /// Representative selection: always the lowest member id; rotation
    /// covers exactly the members.
    #[test]
    fn representatives_are_members(ops in arb_ops()) {
        let mut ov = Overlay::singletons(8);
        for op in ops {
            if let Op::Move { peer, to } = op {
                let peer = PeerId(peer);
                let to = ClusterId(to % ov.cmax() as u32);
                if ov.cluster_of(peer).is_some() {
                    ov.move_peer(peer, to);
                }
            }
        }
        for c in ov.cluster_ids() {
            let members = ov.cluster(c).members();
            match ov.cluster(c).representative() {
                None => prop_assert!(members.is_empty()),
                Some(rep) => {
                    prop_assert_eq!(Some(&rep), members.first());
                    // Rotation stays within the membership.
                    for round in 0..members.len() * 2 {
                        let r = ov.representative_at(c, round).unwrap();
                        prop_assert!(members.contains(&r));
                    }
                }
            }
        }
    }

    /// Flood routing finds exactly the documents matching the query,
    /// no matter how peers are clustered.
    #[test]
    fn flood_results_equal_ground_truth(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 0..4),
            4,
        ),
        assignment in proptest::collection::vec(0u32..4, 4),
        query_sym in 0u32..8,
    ) {
        let mut ov = Overlay::unassigned(4);
        for (i, &c) in assignment.iter().enumerate() {
            ov.assign(PeerId::from_index(i), ClusterId(c));
        }
        let mut store = ContentStore::new(4);
        for (i, attrs) in docs.iter().enumerate() {
            store.add(
                PeerId::from_index(i),
                Document::new(attrs.iter().map(|&a| Sym(a)).collect()),
            );
        }
        let query = Query::keyword(Sym(query_sym));
        let mut net = SimNetwork::new();
        let results = flood_query(&ov, &store, &query, &mut net);
        let found: u64 = results.iter().map(|r| r.count).sum();
        let truth: u64 = (0..4)
            .map(|i| store.result_count(&query, PeerId::from_index(i)))
            .sum();
        prop_assert_eq!(found, truth);
        // Annotations are truthful: the answering peer is in the cluster
        // it reported.
        for r in &results {
            prop_assert_eq!(ov.cluster_of(r.peer), Some(r.cluster));
            prop_assert!(r.count > 0);
        }
    }
}
