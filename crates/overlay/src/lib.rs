//! Clustered peer-to-peer overlay substrate.
//!
//! The paper's system model: autonomous peers form *clusters* (sets of
//! peers); inside a cluster query evaluation is cost-efficient, and the
//! per-cluster maintenance cost is a monotone function `θ` of the cluster
//! size whose shape depends on the intra-cluster topology. This crate
//! provides that substrate:
//!
//! * [`theta`] — the `θ` cost models (linear for fully connected
//!   clusters — the paper's experimental choice — logarithmic for
//!   structured overlays, plus square-root and constant variants for
//!   ablations).
//! * [`overlay`] — the cluster registry: peer→cluster assignment with
//!   `Cmax = |P|` cluster slots (clusters may be empty), deterministic
//!   membership order, representatives, and structural invariants.
//! * [`content`] — per-peer document stores ("peers share content").
//! * [`network`] — a message-counting simulated network so protocols and
//!   baselines can be compared on communication cost.
//! * [`routing`] — query evaluation over the overlay with results
//!   annotated by the answering cluster's `cid` (§3.1: "the results of
//!   each query are annotated with the corresponding cids"), flooding
//!   and cluster-directed variants, the *cluster recall* measure, and
//!   the cluster-directed layer: delta-maintained per-cluster content
//!   summaries and the route plans built from them.
//! * [`churn`] — peer join/leave events that keep the `Cmax = |P|`
//!   invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod content;
pub mod network;
pub mod overlay;
pub mod routing;
pub mod theta;

pub use churn::{apply_event, ChurnDelta, ChurnEvent};
pub use content::ContentStore;
pub use network::{MsgKind, SimNetwork};
pub use overlay::{Cluster, Overlay};
pub use routing::{
    cluster_recall, flood_query, route_to_clusters, AnnotatedResult, ClusterSummaries, FlushStats,
    RoutePlan, RoutingMode, SummaryBatch, SummaryMode,
};
pub use theta::Theta;
