//! Query routing with cluster-annotated results.
//!
//! "We also assume that the results of each query are annotated with the
//! corresponding cids of the clusters that provided them" (§3.1). Peers
//! use those annotations to track per-cluster recall. The number of
//! results a peer sees "depends on the routing algorithm used, and if a
//! query is evaluated against all clusters in the system, it is equal to
//! the total number of results" — this module provides both the
//! all-clusters flood and a directed variant.

use recluster_types::{ClusterId, PeerId, Query};

use crate::content::ContentStore;
use crate::network::{MsgKind, SimNetwork};
use crate::overlay::Overlay;

/// One result record: `count` matching documents found at `peer`, which
/// answered from `cluster` (the cid annotation of §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotatedResult {
    /// The cluster that provided the results.
    pub cluster: ClusterId,
    /// The answering peer.
    pub peer: PeerId,
    /// Number of matching documents at that peer.
    pub count: u64,
}

/// Evaluates `query` against *all* clusters (flooding). Returns one
/// record per answering peer with a nonzero count; network traffic is
/// charged to `net` (one forward per non-empty cluster, one return per
/// answering peer).
pub fn flood_query(
    overlay: &Overlay,
    store: &ContentStore,
    query: &Query,
    net: &mut SimNetwork,
) -> Vec<AnnotatedResult> {
    let clusters: Vec<ClusterId> = overlay
        .cluster_ids()
        .filter(|&c| !overlay.cluster(c).is_empty())
        .collect();
    route_to_clusters(overlay, store, query, &clusters, net)
}

/// Evaluates `query` against the given clusters only.
pub fn route_to_clusters(
    overlay: &Overlay,
    store: &ContentStore,
    query: &Query,
    clusters: &[ClusterId],
    net: &mut SimNetwork,
) -> Vec<AnnotatedResult> {
    let mut results = Vec::new();
    for &cid in clusters {
        let cluster = overlay.cluster(cid);
        if cluster.is_empty() {
            continue;
        }
        net.send(MsgKind::QueryForward, 16 + 4 * query.len() as u64);
        for &peer in cluster.members() {
            let count = store.result_count(query, peer);
            if count > 0 {
                net.send(MsgKind::ResultReturn, 12);
                results.push(AnnotatedResult {
                    cluster: cid,
                    peer,
                    count,
                });
            }
        }
    }
    results
}

/// The *cluster recall* measure of §3.1: "the fraction of results
/// returned to peer p for query q by a cluster ci to the total number of
/// results returned for the query". Returns `(cluster, fraction)` pairs
/// for clusters with nonzero contribution; empty when the query had no
/// results at all.
pub fn cluster_recall(results: &[AnnotatedResult]) -> Vec<(ClusterId, f64)> {
    let total: u64 = results.iter().map(|r| r.count).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut by_cluster: std::collections::BTreeMap<ClusterId, u64> = Default::default();
    for r in results {
        *by_cluster.entry(r.cluster).or_insert(0) += r.count;
    }
    by_cluster
        .into_iter()
        .map(|(c, n)| (c, n as f64 / total as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::{Document, Sym};

    /// Three peers in two clusters; peer 0 and 1 hold matching docs.
    fn fixture() -> (Overlay, ContentStore) {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(1), ClusterId(0)); // c0 = {p0, p1}, c2 = {p2}
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(1), Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(3)]));
        store.add(PeerId(2), Document::new(vec![Sym(2)]));
        (ov, store)
    }

    #[test]
    fn flood_finds_all_results_with_cid_annotations() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = flood_query(&ov, &store, &Query::keyword(Sym(1)), &mut net);
        assert_eq!(
            results,
            vec![
                AnnotatedResult {
                    cluster: ClusterId(0),
                    peer: PeerId(0),
                    count: 1
                },
                AnnotatedResult {
                    cluster: ClusterId(0),
                    peer: PeerId(1),
                    count: 2
                },
            ]
        );
        // Two non-empty clusters → two forwards; two answering peers.
        assert_eq!(net.messages(MsgKind::QueryForward), 2);
        assert_eq!(net.messages(MsgKind::ResultReturn), 2);
    }

    #[test]
    fn directed_routing_restricts_scope() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = route_to_clusters(
            &ov,
            &store,
            &Query::keyword(Sym(2)),
            &[ClusterId(2)],
            &mut net,
        );
        assert_eq!(
            results,
            vec![AnnotatedResult {
                cluster: ClusterId(2),
                peer: PeerId(2),
                count: 1
            }]
        );
        assert_eq!(net.messages(MsgKind::QueryForward), 1);
    }

    #[test]
    fn empty_clusters_are_skipped_without_traffic() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = route_to_clusters(
            &ov,
            &store,
            &Query::keyword(Sym(1)),
            &[ClusterId(1)],
            &mut net,
        );
        assert!(results.is_empty());
        assert_eq!(net.total_messages(), 0);
    }

    #[test]
    fn cluster_recall_fractions_sum_to_one() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = flood_query(&ov, &store, &Query::keyword(Sym(2)), &mut net);
        let recall = cluster_recall(&results);
        let sum: f64 = recall.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Sym(2): one doc at p0 (c0), one at p2 (c2) → 0.5 each.
        assert_eq!(recall.len(), 2);
        assert!((recall[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_recall_of_unanswerable_query_is_empty() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = flood_query(&ov, &store, &Query::keyword(Sym(99)), &mut net);
        assert!(results.is_empty());
        assert!(cluster_recall(&results).is_empty());
    }

    #[test]
    fn flood_equals_union_of_directed_routes() {
        let (ov, store) = fixture();
        let q = Query::keyword(Sym(1));
        let mut net = SimNetwork::new();
        let flooded = flood_query(&ov, &store, &q, &mut net);
        let mut directed = Vec::new();
        for cid in ov.cluster_ids() {
            directed.extend(route_to_clusters(&ov, &store, &q, &[cid], &mut net));
        }
        assert_eq!(flooded, directed);
    }
}
