//! Query routing with cluster-annotated results.
//!
//! "We also assume that the results of each query are annotated with the
//! corresponding cids of the clusters that provided them" (§3.1). Peers
//! use those annotations to track per-cluster recall. The number of
//! results a peer sees "depends on the routing algorithm used, and if a
//! query is evaluated against all clusters in the system, it is equal to
//! the total number of results" — this module provides the all-clusters
//! flood, a directed variant, and the *cluster-directed* layer on top:
//! per-cluster content summaries ([`ClusterSummaries`]) maintained by
//! membership/content hooks, and the [`RoutePlan`] built from them that
//! forwards a query only to clusters whose summary matches.
//!
//! With **exact** summaries the match test has no false negatives (a
//! query matches a document only if every query attribute appears in it,
//! so a cluster holding any result carries every query attribute in its
//! summary); routed evaluation therefore returns exactly the flood
//! result set while forwarding to far fewer clusters. **Lossy**
//! summaries ([`SummaryMode::TopK`]) keep only each cluster's most
//! frequent attributes, trading false negatives (missed results) for
//! smaller summaries — the precision-vs-traffic axis.
//!
//! # Batched summary publication
//!
//! The per-event hooks keep a *local* [`ClusterSummaries`] exact, but a
//! live system does not re-broadcast its summaries after every single
//! membership event: deltas coalesce in a [`SummaryBatch`] and are
//! published in one [`SummaryBatch::flush_into`] per maintenance round.
//! Because every summarized quantity is an integer count, the net-delta
//! flush is **bitwise identical** to replaying the events one by one
//! (property-tested against the [`ClusterSummaries::build`] oracle in
//! `recluster-core`'s `prop_batch` suite), while opposing events — a
//! peer that joins and leaves between two flushes, a document that
//! moves out and back — cancel before any message is paid for.
//!
//! # Examples
//!
//! A route plan built from exact summaries forwards a query only to the
//! clusters that can answer it:
//!
//! ```
//! use recluster_overlay::{ClusterSummaries, ContentStore, Overlay, RoutePlan, SummaryMode};
//! use recluster_types::{ClusterId, Document, PeerId, Query, Sym};
//!
//! let ov = Overlay::singletons(3);
//! let mut store = ContentStore::new(3);
//! store.add(PeerId(0), Document::new(vec![Sym(1)]));
//! store.add(PeerId(2), Document::new(vec![Sym(1), Sym(2)]));
//! let summaries = ClusterSummaries::build(&ov, &store);
//! let plan = RoutePlan::build(&summaries, SummaryMode::Exact);
//!
//! // Sym(1) lives in clusters 0 and 2; the Sym(1)∧Sym(2) conjunction
//! // only in cluster 2. Flooding would visit both plus any other
//! // non-empty cluster.
//! assert_eq!(plan.route(&Query::keyword(Sym(1))), vec![ClusterId(0), ClusterId(2)]);
//! assert_eq!(plan.route(&Query::new(vec![Sym(1), Sym(2)])), vec![ClusterId(2)]);
//! assert!(plan.route(&Query::keyword(Sym(9))).is_empty());
//! ```

use std::collections::BTreeMap;

use recluster_types::{ClusterId, Document, PeerId, Query, Sym};

use crate::content::ContentStore;
use crate::network::{MsgKind, SimNetwork};
use crate::overlay::Overlay;

/// One result record: `count` matching documents found at `peer`, which
/// answered from `cluster` (the cid annotation of §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotatedResult {
    /// The cluster that provided the results.
    pub cluster: ClusterId,
    /// The answering peer.
    pub peer: PeerId,
    /// Number of matching documents at that peer.
    pub count: u64,
}

/// Evaluates `query` against *all* clusters (flooding). Returns one
/// record per answering peer with a nonzero count; network traffic is
/// charged to `net` (one forward per non-empty cluster, one return per
/// answering peer).
pub fn flood_query(
    overlay: &Overlay,
    store: &ContentStore,
    query: &Query,
    net: &mut SimNetwork,
) -> Vec<AnnotatedResult> {
    let clusters: Vec<ClusterId> = overlay
        .cluster_ids()
        .filter(|&c| !overlay.cluster(c).is_empty())
        .collect();
    route_to_clusters(overlay, store, query, &clusters, net)
}

/// Evaluates `query` against the given clusters only.
pub fn route_to_clusters(
    overlay: &Overlay,
    store: &ContentStore,
    query: &Query,
    clusters: &[ClusterId],
    net: &mut SimNetwork,
) -> Vec<AnnotatedResult> {
    let mut results = Vec::new();
    for &cid in clusters {
        let cluster = overlay.cluster(cid);
        if cluster.is_empty() {
            continue;
        }
        net.send(MsgKind::QueryForward, 16 + 4 * query.len() as u64);
        for &peer in cluster.members() {
            let count = store.result_count(query, peer);
            if count > 0 {
                net.send(MsgKind::ResultReturn, 12);
                results.push(AnnotatedResult {
                    cluster: cid,
                    peer,
                    count,
                });
            }
        }
    }
    results
}

/// How much of a cluster's content its summary retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryMode {
    /// Every attribute held by any member document is summarized; the
    /// routed result set equals flood's, bit for bit.
    Exact,
    /// Only each cluster's `k` most frequent attributes (ties broken by
    /// symbol order) are summarized. Queries on dropped attributes miss
    /// the cluster — false negatives, reported as a rate by the tracker.
    TopK(usize),
}

impl std::fmt::Display for SummaryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryMode::Exact => write!(f, "exact"),
            SummaryMode::TopK(k) => write!(f, "lossy:{k}"),
        }
    }
}

/// How `simulate_period` forwards queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Forward every query to every non-empty cluster (the paper's
    /// evaluation assumption) — the oracle the routed modes are checked
    /// against.
    #[default]
    Flood,
    /// Forward only to clusters whose summary matches the query.
    Routed(SummaryMode),
}

impl RoutingMode {
    /// Parses the `RECLUSTER_ROUTING` knob: `flood`, `routed` (or
    /// `exact`), or `lossy:<k>`.
    pub fn parse(s: &str) -> Option<RoutingMode> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "flood" => Some(RoutingMode::Flood),
            "routed" | "exact" => Some(RoutingMode::Routed(SummaryMode::Exact)),
            _ => {
                let k = s.strip_prefix("lossy:")?.parse().ok()?;
                Some(RoutingMode::Routed(SummaryMode::TopK(k)))
            }
        }
    }
}

impl std::fmt::Display for RoutingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingMode::Flood => write!(f, "flood"),
            RoutingMode::Routed(m) => write!(f, "routed({m})"),
        }
    }
}

/// Per-cluster content summaries: for every cluster, how many member
/// documents carry each attribute, plus the member-document total.
///
/// The summaries cover **assigned** peers only (a departed peer's
/// documents are unreachable by routing, exactly as they are by flood),
/// and are delta-maintained by the membership/content hooks
/// ([`ClusterSummaries::apply_move`] and friends); [`ClusterSummaries::build`]
/// is the from-scratch oracle the deltas are property-tested against.
///
/// # Examples
/// ```
/// use recluster_overlay::{ClusterSummaries, ContentStore, Overlay};
/// use recluster_types::{ClusterId, Document, PeerId, Query, Sym};
///
/// let ov = Overlay::singletons(2);
/// let mut store = ContentStore::new(2);
/// store.add(PeerId(0), Document::new(vec![Sym(1), Sym(2)]));
/// let summaries = ClusterSummaries::build(&ov, &store);
/// assert!(summaries.matches(ClusterId(0), &Query::keyword(Sym(1))));
/// assert!(!summaries.matches(ClusterId(1), &Query::keyword(Sym(1))));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSummaries {
    /// Per cluster: attribute → number of member documents carrying it.
    terms: Vec<BTreeMap<Sym, u64>>,
    /// Per cluster: total documents held by its members.
    docs: Vec<u64>,
}

impl ClusterSummaries {
    /// Empty summaries over `cmax` cluster slots.
    pub fn new(cmax: usize) -> Self {
        ClusterSummaries {
            terms: vec![BTreeMap::new(); cmax],
            docs: vec![0; cmax],
        }
    }

    /// Builds the summaries from scratch — the oracle for the delta
    /// hooks.
    pub fn build(overlay: &Overlay, store: &ContentStore) -> Self {
        let mut s = Self::new(overlay.cmax());
        for peer in overlay.peers() {
            let cid = overlay.cluster_of(peer).expect("live peer");
            s.add_docs(cid, store.docs(peer));
        }
        s
    }

    /// Grows the summary table to `cmax` cluster slots (churn joins grow
    /// the overlay).
    pub fn ensure_cmax(&mut self, cmax: usize) {
        if self.terms.len() < cmax {
            self.terms.resize(cmax, BTreeMap::new());
            self.docs.resize(cmax, 0);
        }
    }

    /// Number of cluster slots summarized.
    pub fn n_clusters(&self) -> usize {
        self.terms.len()
    }

    /// Member documents carrying `sym` in cluster `cid`.
    pub fn term_count(&self, cid: ClusterId, sym: Sym) -> u64 {
        self.terms[cid.index()].get(&sym).copied().unwrap_or(0)
    }

    /// Distinct attributes summarized for cluster `cid`.
    pub fn n_terms(&self, cid: ClusterId) -> usize {
        self.terms[cid.index()].len()
    }

    /// Total member documents of cluster `cid`.
    pub fn doc_count(&self, cid: ClusterId) -> u64 {
        self.docs[cid.index()]
    }

    fn add_docs(&mut self, cid: ClusterId, docs: &[Document]) {
        let slot = &mut self.terms[cid.index()];
        for doc in docs {
            for &a in doc.attrs() {
                *slot.entry(a).or_insert(0) += 1;
            }
        }
        self.docs[cid.index()] += docs.len() as u64;
    }

    fn remove_docs(&mut self, cid: ClusterId, docs: &[Document]) {
        let slot = &mut self.terms[cid.index()];
        for doc in docs {
            for &a in doc.attrs() {
                match slot.get_mut(&a) {
                    Some(n) if *n > 1 => *n -= 1,
                    Some(_) => {
                        slot.remove(&a);
                    }
                    None => debug_assert!(false, "summary underflow: {cid} lacks {a:?}"),
                }
            }
        }
        debug_assert!(self.docs[cid.index()] >= docs.len() as u64);
        self.docs[cid.index()] -= docs.len() as u64;
    }

    /// A peer carrying `docs` moved `from` → `to`.
    pub fn apply_move(&mut self, docs: &[Document], from: ClusterId, to: ClusterId) {
        if from == to {
            return;
        }
        self.remove_docs(from, docs);
        self.add_docs(to, docs);
    }

    /// A peer carrying `docs` joined cluster `to`.
    pub fn apply_join(&mut self, docs: &[Document], to: ClusterId) {
        self.add_docs(to, docs);
    }

    /// A peer carrying `docs` left cluster `from`.
    pub fn apply_leave(&mut self, docs: &[Document], from: ClusterId) {
        self.remove_docs(from, docs);
    }

    /// A member of cluster `cid` replaced `old` documents with `new`.
    pub fn apply_content_update(&mut self, cid: ClusterId, old: &[Document], new: &[Document]) {
        self.remove_docs(cid, old);
        self.add_docs(cid, new);
    }

    /// Exact membership test: could cluster `cid` hold results for
    /// `query`? `true` iff the cluster has documents and every query
    /// attribute appears in its summary. No false negatives; false
    /// positives only for multi-attribute queries whose attributes never
    /// co-occur in one document.
    pub fn matches(&self, cid: ClusterId, query: &Query) -> bool {
        self.docs[cid.index()] > 0
            && query
                .attrs()
                .iter()
                .all(|a| self.terms[cid.index()].contains_key(a))
    }

    /// The `k` most frequent attributes of cluster `cid` (ties broken by
    /// symbol order) — the lossy summary's retained set, sorted by
    /// symbol.
    pub fn top_k_terms(&self, cid: ClusterId, k: usize) -> Vec<Sym> {
        let mut ranked: Vec<(Sym, u64)> = self.terms[cid.index()]
            .iter()
            .map(|(&s, &n)| (s, n))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        let mut kept: Vec<Sym> = ranked.into_iter().map(|(s, _)| s).collect();
        kept.sort_unstable();
        kept
    }
}

/// What one [`SummaryBatch::flush_into`] did: how many recorded events
/// it coalesced and, per touched cluster, how many summary terms
/// actually changed — the payload a batched `SummaryUpdate` broadcast
/// would carry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Events recorded into the batch since the previous flush.
    pub events: u64,
    /// `(cluster, changed terms)` for every cluster with a net delta,
    /// ascending by cluster id. Clusters whose events cancelled out
    /// entirely are absent — batching made them free.
    pub clusters: Vec<(ClusterId, usize)>,
}

impl FlushStats {
    /// Clusters that needed a summary re-publication.
    pub fn clusters_touched(&self) -> usize {
        self.clusters.len()
    }

    /// Total summary terms re-published across all touched clusters.
    pub fn terms_changed(&self) -> usize {
        self.clusters.iter().map(|&(_, t)| t).sum()
    }
}

/// Pending summary deltas, coalesced between publications.
///
/// The eager hooks on [`ClusterSummaries`] keep a node's *local* view
/// exact after every event; a `SummaryBatch` is the outbox in front of
/// the network: each membership/content event is *recorded* as a signed
/// per-cluster delta, net-summed against everything already pending,
/// and [`SummaryBatch::flush_into`] applies the whole batch to the
/// published summaries at the maintenance cadence. All counts are
/// integers, so `flush_into` is bitwise identical to replaying the
/// events individually — the same delta-vs-oracle invariant the eager
/// hooks satisfy, one level up.
///
/// # Examples
///
/// Opposing events cancel: a peer that joins and leaves between two
/// flushes costs nothing to publish.
///
/// ```
/// use recluster_overlay::{ClusterSummaries, SummaryBatch};
/// use recluster_types::{ClusterId, Document, Sym};
///
/// let mut published = ClusterSummaries::new(2);
/// let mut batch = SummaryBatch::new();
/// let docs = vec![Document::new(vec![Sym(1), Sym(2)])];
///
/// batch.record_join(&docs, ClusterId(0));
/// batch.record_leave(&docs, ClusterId(0));
/// assert!(batch.is_empty(), "net delta cancelled out");
///
/// let stats = batch.flush_into(&mut published);
/// assert_eq!(stats.events, 2);
/// assert_eq!(stats.clusters_touched(), 0, "nothing to re-publish");
/// assert_eq!(published, ClusterSummaries::new(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SummaryBatch {
    /// Net signed term deltas per touched cluster slot (sparse — churn
    /// between two flushes touches few clusters).
    terms: BTreeMap<usize, BTreeMap<Sym, i64>>,
    /// Net signed member-document deltas per touched cluster slot.
    docs: BTreeMap<usize, i64>,
    /// Events recorded since the last flush.
    events: u64,
}

impl SummaryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether every recorded delta cancelled out (a flush now would
    /// change nothing). `true` for a freshly flushed batch.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty() && self.docs.is_empty()
    }

    /// Events recorded since the last flush.
    pub fn pending_events(&self) -> u64 {
        self.events
    }

    /// Clusters with a nonzero net delta, ascending.
    pub fn touched_clusters(&self) -> Vec<ClusterId> {
        let mut out: Vec<usize> = self.terms.keys().chain(self.docs.keys()).copied().collect();
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(ClusterId::from_index).collect()
    }

    fn add_docs(&mut self, cid: ClusterId, docs: &[Document], sign: i64) {
        let slot = self.terms.entry(cid.index()).or_default();
        for doc in docs {
            for &a in doc.attrs() {
                let e = slot.entry(a).or_insert(0);
                *e += sign;
                if *e == 0 {
                    slot.remove(&a);
                }
            }
        }
        if slot.is_empty() {
            self.terms.remove(&cid.index());
        }
        let d = self.docs.entry(cid.index()).or_insert(0);
        *d += sign * docs.len() as i64;
        if *d == 0 {
            self.docs.remove(&cid.index());
        }
    }

    /// Records: a peer carrying `docs` moved `from` → `to`.
    pub fn record_move(&mut self, docs: &[Document], from: ClusterId, to: ClusterId) {
        if from == to {
            return;
        }
        self.events += 1;
        self.add_docs(from, docs, -1);
        self.add_docs(to, docs, 1);
    }

    /// Records: a peer carrying `docs` joined cluster `to`.
    pub fn record_join(&mut self, docs: &[Document], to: ClusterId) {
        self.events += 1;
        self.add_docs(to, docs, 1);
    }

    /// Records: a peer carrying `docs` left cluster `from`.
    pub fn record_leave(&mut self, docs: &[Document], from: ClusterId) {
        self.events += 1;
        self.add_docs(from, docs, -1);
    }

    /// Records: a member of cluster `cid` replaced `old` documents with
    /// `new`.
    pub fn record_content_update(&mut self, cid: ClusterId, old: &[Document], new: &[Document]) {
        self.events += 1;
        self.add_docs(cid, old, -1);
        self.add_docs(cid, new, 1);
    }

    /// Applies every pending net delta to `target` and resets the batch.
    ///
    /// Bitwise identical to applying the recorded events one by one
    /// through the eager [`ClusterSummaries`] hooks: all counts are
    /// integers, so `old + Σdeltas` equals the replayed sequence
    /// exactly.
    ///
    /// # Panics
    /// Panics if a net delta would drive a count negative — the batch
    /// recorded events inconsistent with `target`'s state at the last
    /// flush.
    pub fn flush_into(&mut self, target: &mut ClusterSummaries) -> FlushStats {
        if let Some(&max_slot) = self.terms.keys().chain(self.docs.keys()).max() {
            target.ensure_cmax(max_slot + 1);
        }
        let mut clusters: BTreeMap<usize, usize> = BTreeMap::new();
        for (&slot, deltas) in &self.terms {
            let terms = &mut target.terms[slot];
            for (&sym, &d) in deltas {
                let old = terms.get(&sym).copied().unwrap_or(0) as i64;
                let new = old + d;
                assert!(new >= 0, "summary underflow: cluster {slot} term {sym:?}");
                if new == 0 {
                    terms.remove(&sym);
                } else {
                    terms.insert(sym, new as u64);
                }
            }
            *clusters.entry(slot).or_insert(0) += deltas.len();
        }
        for (&slot, &d) in &self.docs {
            let old = target.docs[slot] as i64;
            let new = old + d;
            assert!(new >= 0, "summary doc-count underflow: cluster {slot}");
            target.docs[slot] = new as u64;
            clusters.entry(slot).or_insert(0);
        }
        let stats = FlushStats {
            events: self.events,
            clusters: clusters
                .into_iter()
                .map(|(slot, terms)| (ClusterId::from_index(slot), terms))
                .collect(),
        };
        self.terms.clear();
        self.docs.clear();
        self.events = 0;
        stats
    }
}

/// A routing snapshot built from the summaries: an inverted
/// attribute → clusters index over the (possibly truncated) summary
/// terms, used to plan which clusters a query is forwarded to.
///
/// Build once per period (summaries change only between periods) and
/// call [`RoutePlan::route`] per query.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    mode: SummaryMode,
    /// attribute → clusters whose summary retains it (ascending ids).
    by_term: BTreeMap<Sym, Vec<ClusterId>>,
    /// Clusters with at least one summarized document (ascending ids).
    with_docs: Vec<ClusterId>,
}

impl RoutePlan {
    /// Builds the plan from the current summaries under `mode`.
    pub fn build(summaries: &ClusterSummaries, mode: SummaryMode) -> Self {
        let mut by_term: BTreeMap<Sym, Vec<ClusterId>> = BTreeMap::new();
        let mut with_docs = Vec::new();
        for c in 0..summaries.n_clusters() {
            let cid = ClusterId::from_index(c);
            if summaries.doc_count(cid) == 0 {
                continue;
            }
            with_docs.push(cid);
            match mode {
                SummaryMode::Exact => {
                    for &sym in summaries.terms[c].keys() {
                        by_term.entry(sym).or_default().push(cid);
                    }
                }
                SummaryMode::TopK(k) => {
                    for sym in summaries.top_k_terms(cid, k) {
                        by_term.entry(sym).or_default().push(cid);
                    }
                }
            }
        }
        RoutePlan {
            mode,
            by_term,
            with_docs,
        }
    }

    /// The summary precision this plan was built with.
    pub fn mode(&self) -> SummaryMode {
        self.mode
    }

    /// Clusters holding at least one summarized document.
    pub fn with_docs(&self) -> &[ClusterId] {
        &self.with_docs
    }

    /// The clusters `query` is forwarded to: those retaining every query
    /// attribute (an empty query matches every cluster with documents).
    /// Ascending cluster ids, so routed evaluation visits clusters in
    /// the same order flood does.
    pub fn route(&self, query: &Query) -> Vec<ClusterId> {
        let mut out = Vec::new();
        self.route_into(query, &mut out);
        out
    }

    /// [`RoutePlan::route`] into a reused buffer (cleared first) — the
    /// per-query hot path of the routed tracker.
    pub fn route_into(&self, query: &Query, out: &mut Vec<ClusterId>) {
        out.clear();
        let mut attrs = query.attrs().iter();
        let Some(first) = attrs.next() else {
            out.extend_from_slice(&self.with_docs);
            return;
        };
        let Some(base) = self.by_term.get(first) else {
            return;
        };
        out.extend_from_slice(base);
        for a in attrs {
            let Some(list) = self.by_term.get(a) else {
                out.clear();
                return;
            };
            out.retain(|c| list.binary_search(c).is_ok());
            if out.is_empty() {
                return;
            }
        }
    }
}

/// The *cluster recall* measure of §3.1: "the fraction of results
/// returned to peer p for query q by a cluster ci to the total number of
/// results returned for the query". Returns `(cluster, fraction)` pairs
/// for clusters with nonzero contribution; empty when the query had no
/// results at all.
pub fn cluster_recall(results: &[AnnotatedResult]) -> Vec<(ClusterId, f64)> {
    let total: u64 = results.iter().map(|r| r.count).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut by_cluster: std::collections::BTreeMap<ClusterId, u64> = Default::default();
    for r in results {
        *by_cluster.entry(r.cluster).or_insert(0) += r.count;
    }
    by_cluster
        .into_iter()
        .map(|(c, n)| (c, n as f64 / total as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::{Document, Sym};

    /// Three peers in two clusters; peer 0 and 1 hold matching docs.
    fn fixture() -> (Overlay, ContentStore) {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(1), ClusterId(0)); // c0 = {p0, p1}, c2 = {p2}
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(1), Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(3)]));
        store.add(PeerId(2), Document::new(vec![Sym(2)]));
        (ov, store)
    }

    #[test]
    fn flood_finds_all_results_with_cid_annotations() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = flood_query(&ov, &store, &Query::keyword(Sym(1)), &mut net);
        assert_eq!(
            results,
            vec![
                AnnotatedResult {
                    cluster: ClusterId(0),
                    peer: PeerId(0),
                    count: 1
                },
                AnnotatedResult {
                    cluster: ClusterId(0),
                    peer: PeerId(1),
                    count: 2
                },
            ]
        );
        // Two non-empty clusters → two forwards; two answering peers.
        assert_eq!(net.messages(MsgKind::QueryForward), 2);
        assert_eq!(net.messages(MsgKind::ResultReturn), 2);
    }

    #[test]
    fn directed_routing_restricts_scope() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = route_to_clusters(
            &ov,
            &store,
            &Query::keyword(Sym(2)),
            &[ClusterId(2)],
            &mut net,
        );
        assert_eq!(
            results,
            vec![AnnotatedResult {
                cluster: ClusterId(2),
                peer: PeerId(2),
                count: 1
            }]
        );
        assert_eq!(net.messages(MsgKind::QueryForward), 1);
    }

    #[test]
    fn empty_clusters_are_skipped_without_traffic() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = route_to_clusters(
            &ov,
            &store,
            &Query::keyword(Sym(1)),
            &[ClusterId(1)],
            &mut net,
        );
        assert!(results.is_empty());
        assert_eq!(net.total_messages(), 0);
    }

    #[test]
    fn cluster_recall_fractions_sum_to_one() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = flood_query(&ov, &store, &Query::keyword(Sym(2)), &mut net);
        let recall = cluster_recall(&results);
        let sum: f64 = recall.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Sym(2): one doc at p0 (c0), one at p2 (c2) → 0.5 each.
        assert_eq!(recall.len(), 2);
        assert!((recall[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_recall_of_unanswerable_query_is_empty() {
        let (ov, store) = fixture();
        let mut net = SimNetwork::new();
        let results = flood_query(&ov, &store, &Query::keyword(Sym(99)), &mut net);
        assert!(results.is_empty());
        assert!(cluster_recall(&results).is_empty());
    }

    #[test]
    fn flood_equals_union_of_directed_routes() {
        let (ov, store) = fixture();
        let q = Query::keyword(Sym(1));
        let mut net = SimNetwork::new();
        let flooded = flood_query(&ov, &store, &q, &mut net);
        let mut directed = Vec::new();
        for cid in ov.cluster_ids() {
            directed.extend(route_to_clusters(&ov, &store, &q, &[cid], &mut net));
        }
        assert_eq!(flooded, directed);
    }

    #[test]
    fn summaries_build_counts_member_documents() {
        let (ov, store) = fixture();
        let s = ClusterSummaries::build(&ov, &store);
        // c0 = {p0, p1}: Sym(1) in 3 docs, Sym(2) in 1, Sym(3) in 1.
        assert_eq!(s.term_count(ClusterId(0), Sym(1)), 3);
        assert_eq!(s.term_count(ClusterId(0), Sym(2)), 1);
        assert_eq!(s.term_count(ClusterId(0), Sym(3)), 1);
        assert_eq!(s.doc_count(ClusterId(0)), 3);
        // c1 is empty, c2 = {p2} with one Sym(2) doc.
        assert_eq!(s.doc_count(ClusterId(1)), 0);
        assert_eq!(s.term_count(ClusterId(2), Sym(2)), 1);
        assert_eq!(s.n_terms(ClusterId(2)), 1);
    }

    #[test]
    fn summary_hooks_match_rebuild() {
        let (mut ov, mut store) = fixture();
        let mut s = ClusterSummaries::build(&ov, &store);

        // Move p1 to c2.
        let docs: Vec<Document> = store.docs(PeerId(1)).to_vec();
        let from = ov.move_peer(PeerId(1), ClusterId(2));
        s.apply_move(&docs, from, ClusterId(2));
        assert_eq!(s, ClusterSummaries::build(&ov, &store));

        // p0 leaves.
        let docs: Vec<Document> = store.docs(PeerId(0)).to_vec();
        let from = ov.unassign(PeerId(0)).unwrap();
        s.apply_leave(&docs, from);
        assert_eq!(s, ClusterSummaries::build(&ov, &store));

        // p0 rejoins c1 with its old content.
        ov.assign(PeerId(0), ClusterId(1));
        s.apply_join(&docs, ClusterId(1));
        assert_eq!(s, ClusterSummaries::build(&ov, &store));

        // p2 replaces its content.
        let old: Vec<Document> = store.docs(PeerId(2)).to_vec();
        let new = vec![Document::new(vec![Sym(7)])];
        store.replace(PeerId(2), new.clone());
        s.apply_content_update(ClusterId(2), &old, &new);
        assert_eq!(s, ClusterSummaries::build(&ov, &store));
    }

    #[test]
    fn exact_match_has_no_false_negatives() {
        let (ov, store) = fixture();
        let s = ClusterSummaries::build(&ov, &store);
        for sym in 1..4 {
            let q = Query::keyword(Sym(sym));
            for cid in ov.cluster_ids() {
                let mut net = SimNetwork::new();
                let results = route_to_clusters(&ov, &store, &q, &[cid], &mut net);
                if !results.is_empty() {
                    assert!(s.matches(cid, &q), "summary missed {cid} for Sym({sym})");
                }
            }
        }
    }

    #[test]
    fn route_plan_targets_only_summarized_clusters() {
        let (ov, store) = fixture();
        let s = ClusterSummaries::build(&ov, &store);
        let plan = RoutePlan::build(&s, SummaryMode::Exact);
        assert_eq!(plan.with_docs(), &[ClusterId(0), ClusterId(2)]);
        // Sym(2) lives in c0 (p0) and c2 (p2); Sym(1) only in c0.
        assert_eq!(
            plan.route(&Query::keyword(Sym(2))),
            vec![ClusterId(0), ClusterId(2)]
        );
        assert_eq!(plan.route(&Query::keyword(Sym(1))), vec![ClusterId(0)]);
        assert!(plan.route(&Query::keyword(Sym(99))).is_empty());
        // Conjunction: both attrs must be retained by the cluster.
        assert_eq!(
            plan.route(&Query::new(vec![Sym(1), Sym(2)])),
            vec![ClusterId(0)]
        );
        // The empty query goes everywhere documents are.
        assert_eq!(
            plan.route(&Query::new(Vec::new())),
            vec![ClusterId(0), ClusterId(2)]
        );
    }

    #[test]
    fn top_k_summaries_drop_rare_terms() {
        let (ov, store) = fixture();
        let s = ClusterSummaries::build(&ov, &store);
        // c0 terms by frequency: Sym(1)×3, Sym(2)×1, Sym(3)×1.
        assert_eq!(s.top_k_terms(ClusterId(0), 1), vec![Sym(1)]);
        // Tie between Sym(2) and Sym(3) broken by symbol order.
        assert_eq!(s.top_k_terms(ClusterId(0), 2), vec![Sym(1), Sym(2)]);
        let plan = RoutePlan::build(&s, SummaryMode::TopK(1));
        // Sym(2) was dropped from c0's summary but kept in c2's.
        assert_eq!(plan.route(&Query::keyword(Sym(2))), vec![ClusterId(2)]);
    }

    #[test]
    fn routing_mode_parses_and_displays() {
        assert_eq!(RoutingMode::parse("flood"), Some(RoutingMode::Flood));
        assert_eq!(
            RoutingMode::parse("routed"),
            Some(RoutingMode::Routed(SummaryMode::Exact))
        );
        assert_eq!(
            RoutingMode::parse("EXACT"),
            Some(RoutingMode::Routed(SummaryMode::Exact))
        );
        assert_eq!(
            RoutingMode::parse("lossy:16"),
            Some(RoutingMode::Routed(SummaryMode::TopK(16)))
        );
        assert_eq!(RoutingMode::parse("nonsense"), None);
        assert_eq!(RoutingMode::parse("lossy:x"), None);
        assert_eq!(RoutingMode::Flood.to_string(), "flood");
        assert_eq!(
            RoutingMode::Routed(SummaryMode::TopK(8)).to_string(),
            "routed(lossy:8)"
        );
    }

    #[test]
    fn batched_flush_equals_per_event_replay() {
        let (mut ov, mut store) = fixture();
        let mut eager = ClusterSummaries::build(&ov, &store);
        let mut published = eager.clone();
        let mut batch = SummaryBatch::new();

        // Move p1 to c2, replace p2's content, then p0 leaves.
        let docs: Vec<Document> = store.docs(PeerId(1)).to_vec();
        let from = ov.move_peer(PeerId(1), ClusterId(2));
        eager.apply_move(&docs, from, ClusterId(2));
        batch.record_move(&docs, from, ClusterId(2));

        let old: Vec<Document> = store.docs(PeerId(2)).to_vec();
        let new = vec![Document::new(vec![Sym(9)])];
        store.replace(PeerId(2), new.clone());
        eager.apply_content_update(ClusterId(2), &old, &new);
        batch.record_content_update(ClusterId(2), &old, &new);

        let docs: Vec<Document> = store.docs(PeerId(0)).to_vec();
        let from = ov.unassign(PeerId(0)).unwrap();
        eager.apply_leave(&docs, from);
        batch.record_leave(&docs, from);

        assert_eq!(batch.pending_events(), 3);
        assert_eq!(
            batch.touched_clusters(),
            vec![ClusterId(0), ClusterId(2)],
            "all three events touched only c0 and c2"
        );
        let stats = batch.flush_into(&mut published);
        assert_eq!(published, eager, "batched flush == per-event replay");
        assert_eq!(published, ClusterSummaries::build(&ov, &store));
        assert_eq!(stats.events, 3);
        assert!(batch.is_empty());
        assert_eq!(batch.pending_events(), 0);

        // A second flush with nothing recorded is a no-op.
        let stats = batch.flush_into(&mut published);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.clusters_touched(), 0);
        assert_eq!(published, eager);
    }

    #[test]
    fn batch_coalesces_opposing_moves_to_nothing() {
        let (ov, store) = fixture();
        let mut published = ClusterSummaries::build(&ov, &store);
        let before = published.clone();
        let mut batch = SummaryBatch::new();
        let docs: Vec<Document> = store.docs(PeerId(0)).to_vec();

        batch.record_move(&docs, ClusterId(0), ClusterId(2));
        batch.record_move(&docs, ClusterId(2), ClusterId(0));
        assert!(batch.is_empty(), "out and back nets to zero");
        assert!(batch.touched_clusters().is_empty());

        let stats = batch.flush_into(&mut published);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.terms_changed(), 0);
        assert_eq!(published, before);
    }

    #[test]
    fn batch_flush_grows_target_for_new_clusters() {
        let mut published = ClusterSummaries::new(1);
        let mut batch = SummaryBatch::new();
        batch.record_join(&[Document::new(vec![Sym(4)])], ClusterId(3));
        let stats = batch.flush_into(&mut published);
        assert_eq!(published.n_clusters(), 4);
        assert_eq!(published.doc_count(ClusterId(3)), 1);
        assert_eq!(published.term_count(ClusterId(3), Sym(4)), 1);
        assert_eq!(stats.clusters, vec![(ClusterId(3), 1)]);
    }

    #[test]
    fn batch_ignores_self_moves() {
        let mut batch = SummaryBatch::new();
        batch.record_move(&[Document::new(vec![Sym(1)])], ClusterId(1), ClusterId(1));
        assert!(batch.is_empty());
        assert_eq!(batch.pending_events(), 0);
    }

    #[test]
    #[should_panic(expected = "summary underflow")]
    fn batch_flush_panics_on_inconsistent_history() {
        let mut published = ClusterSummaries::new(1);
        let mut batch = SummaryBatch::new();
        batch.record_leave(&[Document::new(vec![Sym(1)])], ClusterId(0));
        let _ = batch.flush_into(&mut published);
    }

    #[test]
    fn ensure_cmax_grows_empty_slots() {
        let mut s = ClusterSummaries::new(2);
        s.ensure_cmax(4);
        assert_eq!(s.n_clusters(), 4);
        assert_eq!(s.doc_count(ClusterId(3)), 0);
        s.ensure_cmax(1); // never shrinks
        assert_eq!(s.n_clusters(), 4);
    }
}
