//! Message-accounting simulated network.
//!
//! The paper motivates local maintenance by communication cost ("each
//! round imposes considerable overheads"; re-clustering from scratch
//! "incurs large communication costs"). This module gives every protocol
//! a common ledger so those claims can be measured: each logical message
//! is recorded with a kind and a payload size.

/// Kinds of messages exchanged in the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Peer → representative: gain value (protocol phase 1).
    GainReport,
    /// Representative → all representatives: relocation request
    /// `(cid_src, cid_dst, gain)`.
    RelocationRequest,
    /// Representative → all representatives: "no peer needs to relocate".
    Heartbeat,
    /// Representative ↔ representative: coordinate one granted move.
    GrantCoordination,
    /// A query forwarded to a cluster.
    QueryForward,
    /// Results (annotated with the answering cluster's cid) returned to
    /// the query initiator.
    ResultReturn,
    /// A peer joining a cluster (topology maintenance traffic).
    ClusterJoin,
    /// A peer leaving a cluster.
    ClusterLeave,
    /// A cluster propagating a content-summary refresh to its members
    /// (cluster-directed routing upkeep).
    SummaryUpdate,
    /// Global state collection / broadcast used by centralized baselines.
    GlobalBroadcast,
}

/// All message kinds, for iteration in reports.
pub const ALL_KINDS: &[MsgKind] = &[
    MsgKind::GainReport,
    MsgKind::RelocationRequest,
    MsgKind::Heartbeat,
    MsgKind::GrantCoordination,
    MsgKind::QueryForward,
    MsgKind::ResultReturn,
    MsgKind::ClusterJoin,
    MsgKind::ClusterLeave,
    MsgKind::SummaryUpdate,
    MsgKind::GlobalBroadcast,
];

fn kind_index(kind: MsgKind) -> usize {
    ALL_KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("kind listed in ALL_KINDS")
}

/// A message/byte ledger.
///
/// # Examples
/// ```
/// use recluster_overlay::{MsgKind, SimNetwork};
///
/// let mut net = SimNetwork::new();
/// net.send(MsgKind::GainReport, 16);
/// net.send(MsgKind::GainReport, 16);
/// assert_eq!(net.messages(MsgKind::GainReport), 2);
/// assert_eq!(net.total_messages(), 2);
/// assert_eq!(net.total_bytes(), 32);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimNetwork {
    counts: [u64; 10],
    bytes: [u64; 10],
}

impl SimNetwork {
    /// A fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `kind` carrying `bytes` payload bytes.
    pub fn send(&mut self, kind: MsgKind, bytes: u64) {
        let i = kind_index(kind);
        self.counts[i] += 1;
        self.bytes[i] += bytes;
    }

    /// Records `n` identical messages.
    pub fn send_many(&mut self, kind: MsgKind, bytes_each: u64, n: u64) {
        let i = kind_index(kind);
        self.counts[i] += n;
        self.bytes[i] += bytes_each * n;
    }

    /// Messages of one kind.
    pub fn messages(&self, kind: MsgKind) -> u64 {
        self.counts[kind_index(kind)]
    }

    /// Bytes of one kind.
    pub fn bytes(&self, kind: MsgKind) -> u64 {
        self.bytes[kind_index(kind)]
    }

    /// All messages.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// All bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Resets the ledger.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &SimNetwork) {
        self.merge_scaled(other, 1);
    }

    /// Merges `other` as if it had been merged `n` times — one multiply
    /// instead of `n` passes (used when identical traffic repeats, e.g.
    /// every occurrence of a query within a period).
    pub fn merge_scaled(&mut self, other: &SimNetwork, n: u64) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i] * n;
            self.bytes[i] += other.bytes[i] * n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accumulates_per_kind() {
        let mut net = SimNetwork::new();
        net.send(MsgKind::QueryForward, 100);
        net.send(MsgKind::QueryForward, 50);
        net.send(MsgKind::ResultReturn, 10);
        assert_eq!(net.messages(MsgKind::QueryForward), 2);
        assert_eq!(net.bytes(MsgKind::QueryForward), 150);
        assert_eq!(net.messages(MsgKind::ResultReturn), 1);
        assert_eq!(net.total_messages(), 3);
        assert_eq!(net.total_bytes(), 160);
    }

    #[test]
    fn send_many_is_equivalent_to_loop() {
        let mut a = SimNetwork::new();
        a.send_many(MsgKind::Heartbeat, 8, 5);
        let mut b = SimNetwork::new();
        for _ in 0..5 {
            b.send(MsgKind::Heartbeat, 8);
        }
        assert_eq!(
            a.messages(MsgKind::Heartbeat),
            b.messages(MsgKind::Heartbeat)
        );
        assert_eq!(a.bytes(MsgKind::Heartbeat), b.bytes(MsgKind::Heartbeat));
    }

    #[test]
    fn reset_clears_everything() {
        let mut net = SimNetwork::new();
        net.send(MsgKind::GlobalBroadcast, 1000);
        net.reset();
        assert_eq!(net.total_messages(), 0);
        assert_eq!(net.total_bytes(), 0);
    }

    #[test]
    fn merge_scaled_equals_repeated_merge() {
        let mut unit = SimNetwork::new();
        unit.send(MsgKind::QueryForward, 12);
        unit.send(MsgKind::ResultReturn, 7);
        let mut looped = SimNetwork::new();
        for _ in 0..5 {
            looped.merge(&unit);
        }
        let mut scaled = SimNetwork::new();
        scaled.merge_scaled(&unit, 5);
        assert_eq!(looped.total_messages(), scaled.total_messages());
        assert_eq!(looped.total_bytes(), scaled.total_bytes());
    }

    #[test]
    fn merge_adds_ledgers() {
        let mut a = SimNetwork::new();
        a.send(MsgKind::ClusterJoin, 4);
        let mut b = SimNetwork::new();
        b.send(MsgKind::ClusterJoin, 6);
        b.send(MsgKind::ClusterLeave, 1);
        a.merge(&b);
        assert_eq!(a.messages(MsgKind::ClusterJoin), 2);
        assert_eq!(a.bytes(MsgKind::ClusterJoin), 10);
        assert_eq!(a.messages(MsgKind::ClusterLeave), 1);
    }

    #[test]
    fn all_kinds_have_distinct_slots() {
        let mut net = SimNetwork::new();
        for (i, &k) in ALL_KINDS.iter().enumerate() {
            net.send(k, i as u64);
        }
        for &k in ALL_KINDS {
            assert_eq!(net.messages(k), 1);
        }
        assert_eq!(net.total_messages(), ALL_KINDS.len() as u64);
    }
}
