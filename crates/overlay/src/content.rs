//! Per-peer content stores.
//!
//! "Nodes (peers) […] have equal roles acting as both data providers and
//! data consumers." Each peer holds a bag of documents; `result(q, p)` is
//! the number of the peer's documents matched by `q`.

use recluster_types::{Document, PeerId, Query};

/// The documents held by every peer, indexed by peer id.
#[derive(Debug, Clone, Default)]
pub struct ContentStore {
    docs: Vec<Vec<Document>>,
}

impl ContentStore {
    /// An empty store with `n_peers` slots.
    pub fn new(n_peers: usize) -> Self {
        ContentStore {
            docs: vec![Vec::new(); n_peers],
        }
    }

    /// Number of peer slots.
    pub fn n_peers(&self) -> usize {
        self.docs.len()
    }

    /// The documents of `peer`.
    pub fn docs(&self, peer: PeerId) -> &[Document] {
        &self.docs[peer.index()]
    }

    /// Adds a document to `peer`'s store.
    pub fn add(&mut self, peer: PeerId, doc: Document) {
        self.docs[peer.index()].push(doc);
    }

    /// Replaces `peer`'s documents wholesale (content-update experiments,
    /// §4.2: "the data in the cluster are replaced by data belonging to a
    /// different category").
    pub fn replace(&mut self, peer: PeerId, docs: Vec<Document>) -> Vec<Document> {
        std::mem::replace(&mut self.docs[peer.index()], docs)
    }

    /// Replaces a fraction of `peer`'s documents: the first
    /// `replace_count` documents are swapped for `new_docs` (callers
    /// control which documents count as "first" by construction order).
    pub fn replace_prefix(&mut self, peer: PeerId, replace_count: usize, new_docs: Vec<Document>) {
        let slot = &mut self.docs[peer.index()];
        let keep = slot.split_off(replace_count.min(slot.len()));
        *slot = new_docs;
        slot.extend(keep);
    }

    /// Grows the store by one (empty) peer slot.
    pub fn grow(&mut self) -> PeerId {
        self.docs.push(Vec::new());
        PeerId::from_index(self.docs.len() - 1)
    }

    /// `result(q, p)`: matching documents of `peer`.
    pub fn result_count(&self, query: &Query, peer: PeerId) -> u64 {
        query.result_count(&self.docs[peer.index()])
    }

    /// Total documents across all peers.
    pub fn total_docs(&self) -> usize {
        self.docs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::Sym;

    fn doc(ids: &[u32]) -> Document {
        Document::new(ids.iter().map(|&i| Sym(i)).collect())
    }

    #[test]
    fn add_and_count() {
        let mut store = ContentStore::new(2);
        store.add(PeerId(0), doc(&[1, 2]));
        store.add(PeerId(0), doc(&[2, 3]));
        store.add(PeerId(1), doc(&[9]));
        assert_eq!(store.docs(PeerId(0)).len(), 2);
        assert_eq!(store.result_count(&Query::keyword(Sym(2)), PeerId(0)), 2);
        assert_eq!(store.result_count(&Query::keyword(Sym(2)), PeerId(1)), 0);
        assert_eq!(store.total_docs(), 3);
    }

    #[test]
    fn replace_returns_old_content() {
        let mut store = ContentStore::new(1);
        store.add(PeerId(0), doc(&[1]));
        let old = store.replace(PeerId(0), vec![doc(&[5]), doc(&[6])]);
        assert_eq!(old, vec![doc(&[1])]);
        assert_eq!(store.docs(PeerId(0)).len(), 2);
    }

    #[test]
    fn replace_prefix_keeps_tail() {
        let mut store = ContentStore::new(1);
        store.add(PeerId(0), doc(&[1]));
        store.add(PeerId(0), doc(&[2]));
        store.add(PeerId(0), doc(&[3]));
        store.replace_prefix(PeerId(0), 2, vec![doc(&[8])]);
        assert_eq!(store.docs(PeerId(0)), &[doc(&[8]), doc(&[3])]);
    }

    #[test]
    fn replace_prefix_clamps_to_length() {
        let mut store = ContentStore::new(1);
        store.add(PeerId(0), doc(&[1]));
        store.replace_prefix(PeerId(0), 10, vec![doc(&[7])]);
        assert_eq!(store.docs(PeerId(0)), &[doc(&[7])]);
    }

    #[test]
    fn grow_appends_empty_slot() {
        let mut store = ContentStore::new(1);
        let p = store.grow();
        assert_eq!(p, PeerId(1));
        assert!(store.docs(p).is_empty());
        assert_eq!(store.n_peers(), 2);
    }
}
