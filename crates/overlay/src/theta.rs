//! The cluster-maintenance cost function `θ`.
//!
//! "We define a monotonically increasing function θ of the number of
//! peers belonging to a cluster […] to capture this cost. This function
//! depends on the cluster topology, for instance, when all peers are
//! connected to each other, θ is linear, whereas in the case of
//! structured overlays, θ may be logarithmic." (§2.1)

/// A monotone cluster-maintenance cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Theta {
    /// `θ(n) = n` — fully connected intra-cluster topology (the paper's
    /// experimental setting).
    #[default]
    Linear,
    /// `θ(n) = log2(n + 1)` — structured (DHT-like) intra-cluster
    /// topology.
    Logarithmic,
    /// `θ(n) = √n` — super-peer style hierarchies (ablation).
    Sqrt,
    /// `θ(n) = c` for n > 0, 0 for n = 0 — membership cost independent of
    /// cluster size (ablation; degenerate but useful to isolate the
    /// recall term).
    Constant(f64),
}

impl Theta {
    /// Evaluates `θ(size)`. `θ(0) = 0` for every model: an empty cluster
    /// costs nothing to maintain.
    pub fn cost(&self, size: usize) -> f64 {
        if size == 0 {
            return 0.0;
        }
        match *self {
            Theta::Linear => size as f64,
            Theta::Logarithmic => ((size + 1) as f64).log2(),
            Theta::Sqrt => (size as f64).sqrt(),
            Theta::Constant(c) => c,
        }
    }

    /// The membership-cost term of Eq. 1 for one cluster:
    /// `θ(|c|) / |P|`.
    pub fn membership(&self, cluster_size: usize, n_peers: usize) -> f64 {
        assert!(n_peers > 0, "membership cost needs a non-empty system");
        self.cost(cluster_size) / n_peers as f64
    }

    /// Messages needed to propagate one intra-cluster update (e.g. a
    /// content-summary refresh) to all `size` members, following the
    /// topology this `θ` model encodes: fully connected clusters notify
    /// every member directly, structured overlays pay a logarithmic
    /// multicast, super-peer hierarchies a square-root one, and the
    /// constant model a single hop. Zero for an empty cluster.
    pub fn broadcast_messages(&self, size: usize) -> u64 {
        if size == 0 {
            return 0;
        }
        match *self {
            Theta::Linear => size as u64,
            Theta::Logarithmic => ((size + 1) as f64).log2().ceil() as u64,
            Theta::Sqrt => (size as f64).sqrt().ceil() as u64,
            Theta::Constant(_) => 1,
        }
    }
}

impl std::fmt::Display for Theta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Theta::Linear => write!(f, "linear"),
            Theta::Logarithmic => write!(f, "log"),
            Theta::Sqrt => write!(f, "sqrt"),
            Theta::Constant(c) => write!(f, "const({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_example() {
        // §2.3 two-peer example: θ linear, |P| = 2, singleton cluster
        // membership cost = 1/2.
        assert_eq!(Theta::Linear.membership(1, 2), 0.5);
        assert_eq!(Theta::Linear.membership(2, 2), 1.0);
    }

    #[test]
    fn all_models_are_monotone() {
        for theta in [
            Theta::Linear,
            Theta::Logarithmic,
            Theta::Sqrt,
            Theta::Constant(2.0),
        ] {
            for n in 0..100 {
                assert!(
                    theta.cost(n + 1) >= theta.cost(n),
                    "{theta} not monotone at {n}"
                );
            }
        }
    }

    #[test]
    fn empty_cluster_costs_nothing() {
        for theta in [
            Theta::Linear,
            Theta::Logarithmic,
            Theta::Sqrt,
            Theta::Constant(5.0),
        ] {
            assert_eq!(theta.cost(0), 0.0);
        }
    }

    #[test]
    fn log_grows_slower_than_linear() {
        for n in 4..200 {
            assert!(Theta::Logarithmic.cost(n) < Theta::Linear.cost(n));
        }
    }

    #[test]
    fn sqrt_between_log_and_linear_for_large_n() {
        for n in 20..200 {
            let s = Theta::Sqrt.cost(n);
            assert!(s < Theta::Linear.cost(n));
            assert!(s > Theta::Logarithmic.cost(n));
        }
    }

    #[test]
    fn constant_is_flat_for_nonempty() {
        let t = Theta::Constant(3.5);
        assert_eq!(t.cost(1), 3.5);
        assert_eq!(t.cost(50), 3.5);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Theta::Linear.to_string(), "linear");
        assert_eq!(Theta::Logarithmic.to_string(), "log");
        assert_eq!(Theta::Sqrt.to_string(), "sqrt");
        assert_eq!(Theta::Constant(1.0).to_string(), "const(1)");
    }

    #[test]
    #[should_panic(expected = "non-empty system")]
    fn membership_in_empty_system_panics() {
        let _ = Theta::Linear.membership(1, 0);
    }

    #[test]
    fn broadcast_fanout_follows_topology() {
        assert_eq!(Theta::Linear.broadcast_messages(8), 8);
        assert_eq!(Theta::Logarithmic.broadcast_messages(8), 4); // ⌈log2(9)⌉
        assert_eq!(Theta::Sqrt.broadcast_messages(9), 3);
        assert_eq!(Theta::Constant(5.0).broadcast_messages(8), 1);
        for theta in [
            Theta::Linear,
            Theta::Logarithmic,
            Theta::Sqrt,
            Theta::Constant(2.0),
        ] {
            assert_eq!(theta.broadcast_messages(0), 0);
            assert!(theta.broadcast_messages(1) >= 1);
        }
    }
}
