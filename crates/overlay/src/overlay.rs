//! The cluster registry.
//!
//! "Each peer p chooses which clusters to join from the set of Cmax
//! clusters in the system […] we let Cmax be equal to |P| […] and assume
//! that some clusters may be empty if needed." (§2.1). The experiments
//! (and the rest of the paper from §2.3 on) restrict each peer to exactly
//! one cluster, which is what [`Overlay`] models.

use recluster_types::{ClusterId, PeerId};

/// One cluster: a sorted set of member peers.
///
/// Members are kept sorted by peer id so every node of the (simulated)
/// distributed system observes the same deterministic order — in
/// particular the cluster *representative* is well defined without extra
/// coordination.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cluster {
    members: Vec<PeerId>,
}

impl Cluster {
    /// The members in ascending peer-id order.
    pub fn members(&self) -> &[PeerId] {
        &self.members
    }

    /// Number of members (`|c|` in the paper).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `peer` belongs to this cluster.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.members.binary_search(&peer).is_ok()
    }

    /// The cluster representative (§3.2): deterministically the
    /// lowest-id member. "The representatives of each cluster do not need
    /// to be the same in all rounds" — see [`Overlay::representative_at`]
    /// for the rotating variant.
    pub fn representative(&self) -> Option<PeerId> {
        self.members.first().copied()
    }

    fn insert(&mut self, peer: PeerId) {
        if let Err(pos) = self.members.binary_search(&peer) {
            self.members.insert(pos, peer);
        }
    }

    fn remove(&mut self, peer: PeerId) -> bool {
        match self.members.binary_search(&peer) {
            Ok(pos) => {
                self.members.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

/// The clustered overlay: `|P|` peers, `Cmax = |P|` cluster slots, each
/// live peer in exactly one cluster.
///
/// # Examples
/// ```
/// use recluster_overlay::Overlay;
/// use recluster_types::{ClusterId, PeerId};
///
/// let mut ov = Overlay::singletons(3);
/// assert_eq!(ov.cluster_of(PeerId(0)), Some(ClusterId(0)));
/// ov.move_peer(PeerId(1), ClusterId(0));
/// assert_eq!(ov.cluster(ClusterId(0)).len(), 2);
/// assert_eq!(ov.non_empty_clusters(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overlay {
    /// `assignment[p]` = the cluster of peer `p`; `None` for departed
    /// peers (churn).
    assignment: Vec<Option<ClusterId>>,
    clusters: Vec<Cluster>,
    /// Count of assigned peers, maintained incrementally so the cost
    /// hot path reads `|P|` in O(1) instead of scanning `assignment`.
    live: usize,
    /// Ids of non-empty clusters, ascending — maintained across
    /// assign/unassign/move so best-response scans and per-round
    /// representative gathering are O(non-empty), not O(Cmax).
    non_empty: Vec<ClusterId>,
}

impl Overlay {
    /// Creates an overlay of `n_peers` peers, all unassigned, with
    /// `Cmax = n_peers` empty clusters.
    pub fn unassigned(n_peers: usize) -> Self {
        Overlay {
            assignment: vec![None; n_peers],
            clusters: vec![Cluster::default(); n_peers],
            live: 0,
            non_empty: Vec::new(),
        }
    }

    /// Creates the paper's initial configuration (i): "each peer forms
    /// its own cluster" — peer `i` in cluster `i`.
    pub fn singletons(n_peers: usize) -> Self {
        let mut ov = Self::unassigned(n_peers);
        for i in 0..n_peers {
            ov.assign(PeerId::from_index(i), ClusterId::from_index(i));
        }
        ov
    }

    /// Number of peer slots (`|P|`, counting departed peers' slots).
    pub fn n_slots(&self) -> usize {
        self.assignment.len()
    }

    /// Number of live (assigned) peers — `|P|` in the paper's cost
    /// formulas. O(1): maintained across assign/unassign.
    pub fn n_peers(&self) -> usize {
        self.live
    }

    /// `Cmax`: total cluster slots (including empty clusters).
    pub fn cmax(&self) -> usize {
        self.clusters.len()
    }

    /// Iterator over live peers.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|_| PeerId::from_index(i)))
    }

    /// Iterator over all cluster ids (empty ones included).
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters.len()).map(ClusterId::from_index)
    }

    /// The cluster a peer belongs to (`None` if departed/unassigned).
    pub fn cluster_of(&self, peer: PeerId) -> Option<ClusterId> {
        self.assignment.get(peer.index()).copied().flatten()
    }

    /// A cluster by id.
    pub fn cluster(&self, cid: ClusterId) -> &Cluster {
        &self.clusters[cid.index()]
    }

    /// Size of a cluster.
    pub fn size(&self, cid: ClusterId) -> usize {
        self.clusters[cid.index()].len()
    }

    /// Number of non-empty clusters (what Table 1's "#Clusters" reports).
    /// O(1): read off the maintained non-empty list.
    pub fn non_empty_clusters(&self) -> usize {
        self.non_empty.len()
    }

    /// Ids of all non-empty clusters in ascending order, maintained
    /// incrementally — the O(non-empty) alternative to filtering
    /// [`Overlay::cluster_ids`] by size.
    pub fn non_empty_ids(&self) -> &[ClusterId] {
        &self.non_empty
    }

    /// The first empty cluster slot, if any (used when a peer seeds a new
    /// cluster, §3.2). O(non-empty): the answer is the smallest id absent
    /// from the sorted non-empty list.
    pub fn first_empty_cluster(&self) -> Option<ClusterId> {
        for (i, &cid) in self.non_empty.iter().enumerate() {
            if cid.index() != i {
                return Some(ClusterId::from_index(i));
            }
        }
        (self.non_empty.len() < self.clusters.len())
            .then(|| ClusterId::from_index(self.non_empty.len()))
    }

    /// Records that `cid` went from empty to non-empty.
    fn note_filled(&mut self, cid: ClusterId) {
        if let Err(pos) = self.non_empty.binary_search(&cid) {
            self.non_empty.insert(pos, cid);
        }
    }

    /// Records that `cid` became empty.
    fn note_emptied(&mut self, cid: ClusterId) {
        if let Ok(pos) = self.non_empty.binary_search(&cid) {
            self.non_empty.remove(pos);
        }
    }

    /// Assigns an unassigned peer to a cluster.
    ///
    /// # Panics
    /// Panics if the peer is already assigned.
    pub fn assign(&mut self, peer: PeerId, cid: ClusterId) {
        assert!(
            self.assignment[peer.index()].is_none(),
            "{peer} is already assigned; use move_peer"
        );
        if self.clusters[cid.index()].is_empty() {
            self.note_filled(cid);
        }
        self.clusters[cid.index()].insert(peer);
        self.assignment[peer.index()] = Some(cid);
        self.live += 1;
    }

    /// Moves a peer to another cluster; returns its previous cluster.
    ///
    /// # Panics
    /// Panics if the peer is unassigned.
    pub fn move_peer(&mut self, peer: PeerId, to: ClusterId) -> ClusterId {
        let from = self.assignment[peer.index()]
            .unwrap_or_else(|| panic!("{peer} is not assigned to any cluster"));
        if from == to {
            return from;
        }
        let removed = self.clusters[from.index()].remove(peer);
        debug_assert!(removed, "assignment and membership diverged");
        if self.clusters[from.index()].is_empty() {
            self.note_emptied(from);
        }
        if self.clusters[to.index()].is_empty() {
            self.note_filled(to);
        }
        self.clusters[to.index()].insert(peer);
        self.assignment[peer.index()] = Some(to);
        from
    }

    /// Removes a peer from the overlay (churn leave); returns its former
    /// cluster if it was assigned.
    pub fn unassign(&mut self, peer: PeerId) -> Option<ClusterId> {
        let cid = self.assignment[peer.index()].take()?;
        let removed = self.clusters[cid.index()].remove(peer);
        debug_assert!(removed, "assignment and membership diverged");
        if self.clusters[cid.index()].is_empty() {
            self.note_emptied(cid);
        }
        self.live -= 1;
        Some(cid)
    }

    /// Grows the overlay by one peer slot *and* one cluster slot
    /// (preserving `Cmax = |P|`), returning the new peer's id. The peer
    /// starts unassigned.
    pub fn grow(&mut self) -> PeerId {
        let peer = PeerId::from_index(self.assignment.len());
        self.assignment.push(None);
        self.clusters.push(Cluster::default());
        peer
    }

    /// The representative of cluster `cid` for protocol round `round`.
    /// Rotates over the members so the role is shared (§3.2 allows the
    /// representative to differ between rounds).
    pub fn representative_at(&self, cid: ClusterId, round: usize) -> Option<PeerId> {
        let members = self.clusters[cid.index()].members();
        if members.is_empty() {
            None
        } else {
            Some(members[round % members.len()])
        }
    }

    /// Cluster sizes indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(Cluster::len).collect()
    }

    /// Checks structural invariants; returns a description of the first
    /// violation. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.clusters.len() < self.n_peers() {
            return Err(format!(
                "Cmax {} < live peers {}",
                self.clusters.len(),
                self.n_peers()
            ));
        }
        let mut seen = vec![false; self.assignment.len()];
        for (ci, cluster) in self.clusters.iter().enumerate() {
            let mut prev: Option<PeerId> = None;
            for &m in cluster.members() {
                if let Some(p) = prev {
                    if p >= m {
                        return Err(format!("cluster c{ci} members not strictly sorted"));
                    }
                }
                prev = Some(m);
                if self.assignment.get(m.index()).copied().flatten()
                    != Some(ClusterId::from_index(ci))
                {
                    return Err(format!("{m} in c{ci} but assignment disagrees"));
                }
                if seen[m.index()] {
                    return Err(format!("{m} appears in two clusters"));
                }
                seen[m.index()] = true;
            }
        }
        for (pi, a) in self.assignment.iter().enumerate() {
            if a.is_some() && !seen[pi] {
                return Err(format!("p{pi} assigned but missing from its cluster"));
            }
        }
        let scanned = self.assignment.iter().filter(|a| a.is_some()).count();
        if scanned != self.live {
            return Err(format!(
                "live-count cache {} != scanned {}",
                self.live, scanned
            ));
        }
        let scanned_non_empty: Vec<ClusterId> = (0..self.clusters.len())
            .filter(|&c| !self.clusters[c].is_empty())
            .map(ClusterId::from_index)
            .collect();
        if scanned_non_empty != self.non_empty {
            return Err(format!(
                "non-empty cache {:?} != scanned {:?}",
                self.non_empty, scanned_non_empty
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_assign_peer_i_to_cluster_i() {
        let ov = Overlay::singletons(5);
        for i in 0..5 {
            assert_eq!(
                ov.cluster_of(PeerId::from_index(i)),
                Some(ClusterId::from_index(i))
            );
            assert_eq!(ov.size(ClusterId::from_index(i)), 1);
        }
        assert_eq!(ov.non_empty_clusters(), 5);
        ov.check_invariants().unwrap();
    }

    #[test]
    fn move_peer_updates_both_sides() {
        let mut ov = Overlay::singletons(4);
        let from = ov.move_peer(PeerId(3), ClusterId(0));
        assert_eq!(from, ClusterId(3));
        assert_eq!(ov.cluster(ClusterId(0)).members(), &[PeerId(0), PeerId(3)]);
        assert!(ov.cluster(ClusterId(3)).is_empty());
        assert_eq!(ov.cluster_of(PeerId(3)), Some(ClusterId(0)));
        ov.check_invariants().unwrap();
    }

    #[test]
    fn move_to_same_cluster_is_noop() {
        let mut ov = Overlay::singletons(2);
        let before = ov.clone();
        ov.move_peer(PeerId(0), ClusterId(0));
        assert_eq!(ov, before);
    }

    #[test]
    fn representative_is_lowest_id() {
        let mut ov = Overlay::singletons(4);
        ov.move_peer(PeerId(2), ClusterId(1));
        ov.move_peer(PeerId(0), ClusterId(1));
        assert_eq!(ov.cluster(ClusterId(1)).representative(), Some(PeerId(0)));
    }

    #[test]
    fn representative_rotates_by_round() {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(1), ClusterId(0));
        ov.move_peer(PeerId(2), ClusterId(0));
        let c = ClusterId(0);
        assert_eq!(ov.representative_at(c, 0), Some(PeerId(0)));
        assert_eq!(ov.representative_at(c, 1), Some(PeerId(1)));
        assert_eq!(ov.representative_at(c, 2), Some(PeerId(2)));
        assert_eq!(ov.representative_at(c, 3), Some(PeerId(0)));
        assert_eq!(ov.representative_at(ClusterId(1), 5), None);
    }

    #[test]
    fn unassign_empties_and_first_empty_finds_it() {
        let mut ov = Overlay::singletons(3);
        assert_eq!(ov.first_empty_cluster(), None);
        assert_eq!(ov.unassign(PeerId(1)), Some(ClusterId(1)));
        assert_eq!(ov.n_peers(), 2);
        assert_eq!(ov.first_empty_cluster(), Some(ClusterId(1)));
        assert_eq!(ov.unassign(PeerId(1)), None, "double unassign is None");
        ov.check_invariants().unwrap();
    }

    #[test]
    fn grow_preserves_cmax_equals_slots() {
        let mut ov = Overlay::singletons(2);
        let p = ov.grow();
        assert_eq!(p, PeerId(2));
        assert_eq!(ov.n_slots(), 3);
        assert_eq!(ov.cmax(), 3);
        assert_eq!(ov.n_peers(), 2);
        ov.assign(p, ClusterId(2));
        assert_eq!(ov.n_peers(), 3);
        ov.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assign_panics() {
        let mut ov = Overlay::singletons(2);
        ov.assign(PeerId(0), ClusterId(1));
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn move_unassigned_panics() {
        let mut ov = Overlay::unassigned(2);
        ov.move_peer(PeerId(0), ClusterId(1));
    }

    #[test]
    fn sizes_reports_all_slots() {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(2), ClusterId(0));
        assert_eq!(ov.sizes(), vec![2, 1, 0]);
    }

    #[test]
    fn peers_iterates_live_peers_only() {
        let mut ov = Overlay::singletons(4);
        ov.unassign(PeerId(2));
        let live: Vec<_> = ov.peers().collect();
        assert_eq!(live, vec![PeerId(0), PeerId(1), PeerId(3)]);
    }
}
