//! Peer churn: joins and leaves.
//!
//! "Peers that join or leave the system constantly and change their
//! content and query workload frequently may render the original
//! clustered overlay inappropriate" (§1). This module applies join/leave
//! events to an overlay + content store pair while preserving the
//! `Cmax = |P|` invariant, charging topology-maintenance traffic to the
//! network ledger.

use rand::Rng;
use recluster_types::{ClusterId, Document, PeerId};

use crate::content::ContentStore;
use crate::network::{MsgKind, SimNetwork};
use crate::overlay::Overlay;

/// A churn event.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new peer joins cluster `cluster` carrying `docs`.
    Join {
        /// Cluster joined.
        cluster: ClusterId,
        /// Documents the newcomer shares.
        docs: Vec<Document>,
    },
    /// Peer `peer` leaves the system.
    Leave {
        /// Departing peer.
        peer: PeerId,
    },
}

/// The membership delta an applied churn event produced, emitted so
/// callers can delta-update derived aggregates (cluster masses, size
/// caches) instead of rebuilding them from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnDelta {
    /// `peer` joined `cluster` carrying fresh documents. The *content*
    /// changed too, so recall totals need a rebuild; membership-only
    /// aggregates can apply the delta directly.
    Joined {
        /// The new peer.
        peer: PeerId,
        /// Cluster joined.
        cluster: ClusterId,
    },
    /// `peer` left `cluster` and its documents were dropped from the
    /// store.
    Left {
        /// The departed peer.
        peer: PeerId,
        /// Its former cluster.
        cluster: ClusterId,
    },
}

impl ChurnDelta {
    /// The peer the event concerned.
    pub fn peer(&self) -> PeerId {
        match *self {
            ChurnDelta::Joined { peer, .. } | ChurnDelta::Left { peer, .. } => peer,
        }
    }

    /// The cluster whose membership changed.
    pub fn cluster(&self) -> ClusterId {
        match *self {
            ChurnDelta::Joined { cluster, .. } | ChurnDelta::Left { cluster, .. } => cluster,
        }
    }
}

/// Applies one churn event and emits the membership delta it produced
/// (`None` for a no-op leave of an already-departed peer).
pub fn apply_event(
    overlay: &mut Overlay,
    store: &mut ContentStore,
    net: &mut SimNetwork,
    event: ChurnEvent,
) -> Option<ChurnDelta> {
    match event {
        ChurnEvent::Join { cluster, docs } => {
            let peer = overlay.grow();
            let slot = store.grow();
            debug_assert_eq!(peer, slot, "overlay and store must grow in lockstep");
            for d in docs {
                store.add(peer, d);
            }
            // Join cost: one message per existing member for a fully
            // connected cluster.
            let size = overlay.cluster(cluster).len() as u64;
            net.send_many(MsgKind::ClusterJoin, 24, size.max(1));
            overlay.assign(peer, cluster);
            Some(ChurnDelta::Joined { peer, cluster })
        }
        ChurnEvent::Leave { peer } => {
            let former = overlay.unassign(peer)?;
            let size = overlay.cluster(former).len() as u64;
            net.send_many(MsgKind::ClusterLeave, 24, size.max(1));
            store.replace(peer, Vec::new());
            Some(ChurnDelta::Left {
                peer,
                cluster: former,
            })
        }
    }
}

/// Samples a random live peer to leave, or `None` if the overlay is
/// empty. Deterministic given the RNG state.
pub fn random_leave<R: Rng + ?Sized>(overlay: &Overlay, rng: &mut R) -> Option<ChurnEvent> {
    let live: Vec<PeerId> = overlay.peers().collect();
    if live.is_empty() {
        return None;
    }
    Some(ChurnEvent::Leave {
        peer: live[rng.gen_range(0..live.len())],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::{seeded_rng, Sym};

    #[test]
    fn join_grows_everything_in_lockstep() {
        let mut ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        let mut net = SimNetwork::new();
        let delta = apply_event(
            &mut ov,
            &mut store,
            &mut net,
            ChurnEvent::Join {
                cluster: ClusterId(0),
                docs: vec![Document::new(vec![Sym(1)])],
            },
        )
        .unwrap();
        let p = delta.peer();
        assert_eq!(
            delta,
            ChurnDelta::Joined {
                peer: PeerId(2),
                cluster: ClusterId(0)
            }
        );
        assert_eq!(ov.n_peers(), 3);
        assert_eq!(ov.cmax(), 3);
        assert_eq!(store.n_peers(), 3);
        assert_eq!(ov.cluster_of(p), Some(ClusterId(0)));
        assert_eq!(store.docs(p).len(), 1);
        assert!(net.messages(MsgKind::ClusterJoin) >= 1);
        ov.check_invariants().unwrap();
    }

    #[test]
    fn leave_unassigns_and_clears_content() {
        let mut ov = Overlay::singletons(3);
        let mut store = ContentStore::new(3);
        store.add(PeerId(1), Document::new(vec![Sym(5)]));
        let mut net = SimNetwork::new();
        let delta = apply_event(
            &mut ov,
            &mut store,
            &mut net,
            ChurnEvent::Leave { peer: PeerId(1) },
        );
        assert_eq!(
            delta,
            Some(ChurnDelta::Left {
                peer: PeerId(1),
                cluster: ClusterId(1)
            })
        );
        assert_eq!(ov.n_peers(), 2);
        assert!(store.docs(PeerId(1)).is_empty());
        assert_eq!(ov.cluster_of(PeerId(1)), None);
        ov.check_invariants().unwrap();
    }

    #[test]
    fn leave_of_departed_peer_is_noop() {
        let mut ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        let mut net = SimNetwork::new();
        apply_event(
            &mut ov,
            &mut store,
            &mut net,
            ChurnEvent::Leave { peer: PeerId(0) },
        );
        let msgs = net.total_messages();
        let res = apply_event(
            &mut ov,
            &mut store,
            &mut net,
            ChurnEvent::Leave { peer: PeerId(0) },
        );
        assert_eq!(res, None);
        assert_eq!(net.total_messages(), msgs, "no-op leave sends nothing");
    }

    #[test]
    fn random_leave_picks_live_peers() {
        let mut ov = Overlay::singletons(5);
        ov.unassign(PeerId(0));
        let mut rng = seeded_rng(3);
        for _ in 0..20 {
            match random_leave(&ov, &mut rng) {
                Some(ChurnEvent::Leave { peer }) => assert_ne!(peer, PeerId(0)),
                other => panic!("expected leave event, got {other:?}"),
            }
        }
    }

    #[test]
    fn random_leave_on_empty_overlay_is_none() {
        let ov = Overlay::unassigned(3);
        let mut rng = seeded_rng(4);
        assert!(random_leave(&ov, &mut rng).is_none());
    }
}
