//! Recall-based cluster reformulation by selfish peers — the paper's
//! primary contribution (Koloniari & Pitoura, ICDE 2008).
//!
//! Peers in a clustered overlay are modeled as players of a game: each
//! peer chooses the cluster whose membership minimizes its individual
//! cost, a combination of a cluster-membership cost and the recall its
//! local query workload *loses* by not being co-clustered with the peers
//! holding its results. This crate implements:
//!
//! * [`system`] — the game state: overlay + content + per-peer workloads
//!   + game parameters (`α`, `θ`).
//! * [`recall`] — the recall model `r(q, p)` (§2) as a precomputed
//!   index with per-cluster recall mass.
//! * [`cost`] — the individual cost `pcost` (Eq. 1), with the
//!   join-inclusive membership semantics of §2.3.
//! * [`global`] — the global quality criteria `SCost` (Eq. 2) and
//!   `WCost` (Eq. 3) plus their normalized forms, and Property 1.
//! * [`costcache`] — per-peer cached cost terms, delta-maintained by the
//!   same mutator hooks as the index, so the global criteria and the
//!   per-round cost reports are O(changed peers) between reads.
//! * [`view`] — the read/write split: [`SystemView`], the `Sync`
//!   snapshot parallel phase-1 rounds evaluate against, the
//!   [`SystemRead`] trait the cost functions are generic over, and the
//!   [`Epochs`] change journal behind cross-round proposal memoization.
//! * [`equilibrium`] — best responses and exact Nash-equilibrium
//!   checking (§2.3), including the two-peer no-equilibrium example.
//! * [`strategy`] — the relocation strategies of §3.1: selfish
//!   (`pgain`), altruistic (`contribution` / `clgain`), the hybrid
//!   variant sketched as future work in §6, and the observed-statistics
//!   adapter that re-evaluates all three over tracker estimates.
//! * [`tracker`] — the *observed* statistics path: peers learn
//!   per-cluster recall and contribution from cid-annotated query
//!   results over a period `T`, exactly as §3.1 prescribes (equals the
//!   oracle under flood routing), with a cluster-directed mode that
//!   forwards each query only to summary-matching clusters.
//! * [`protocol`] — the two-phase, representative-coordinated
//!   reformulation protocol of §3.2 with its anti-cycle lock rule,
//!   `ε`-threshold stop condition, and empty/new-cluster handling.
//! * [`shard`] — contiguous-range fan-out of bulk per-slot walks over
//!   the rayon shim with index-order merge, byte-identical to the
//!   sequential walk (the flush/tracker sharding of the million-peer
//!   churn path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod costcache;
pub mod equilibrium;
pub mod global;
pub mod protocol;
pub mod recall;
pub mod shard;
pub mod strategy;
pub mod system;
pub mod tracker;
pub mod view;

pub use cost::{pcost, pcost_current, pcost_set};
pub use costcache::CostCache;
pub use equilibrium::{
    best_response, best_response_set, best_response_set_over, best_response_with_chain,
    is_nash_equilibrium, BestResponse,
};
pub use global::{scost, scost_normalized, wcost, wcost_normalized};
pub use protocol::runtime::{
    gain_commitment, CommitRecord, CrashWindow, DecodeError, DelayDist, DenyReason, EvidenceLog,
    FaultReport, FaultSchedule, LiarConfig, LiarMode, Message, NetConfig, NetStats, Partition,
    PartitionKind, PeerStateMachine, ReportPlan, RuntimeChurn, RuntimeEngine, SimNet,
};
pub use protocol::{
    EmptyTargetPolicy, ProposalMemo, ProtocolConfig, ProtocolConfigBuilder, ProtocolEngine,
    RelocationRequest, RoundOutcome, RunOutcome,
};
pub use recall::RecallIndex;
pub use strategy::{
    AltruisticStrategy, ChainInfo, DecisionSource, HybridStrategy, ObservedObjective,
    ObservedStrategy, Proposal, RelocationStrategy, SelfishStrategy,
};
pub use system::{GameConfig, System};
pub use tracker::{
    simulate_period, simulate_period_routed, simulate_period_routed_full, simulate_period_traffic,
    ForwardHistogram, ObservedStats, PeriodObservations, RoutingReport,
};
pub use view::{Epochs, SystemRead, SystemView};
