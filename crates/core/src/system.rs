//! The game state.
//!
//! [`System`] bundles everything the cost functions and strategies need:
//! the clustered overlay, the per-peer content, the per-peer workloads,
//! the game parameters (`α`, `θ`) and the precomputed [`RecallIndex`].
//! It is the single mutation point for membership changes so the index
//! masses never go stale.

use recluster_overlay::{
    ChurnDelta, ChurnEvent, ClusterSummaries, ContentStore, MsgKind, Overlay, SimNetwork, Theta,
};
use recluster_types::{ClusterId, Document, PeerId, Workload};

use crate::recall::RecallIndex;

/// Game parameters of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameConfig {
    /// `α ≥ 0`: weight of the cluster-membership cost ("determines the
    /// extent of influence of the cluster participation cost"). The
    /// paper's experiments use `α = 1`.
    pub alpha: f64,
    /// The cluster-maintenance cost model `θ` (linear in the paper's
    /// experiments).
    pub theta: Theta,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            alpha: 1.0,
            theta: Theta::Linear,
        }
    }
}

/// The complete state of the reformulation game.
#[derive(Debug, Clone)]
pub struct System {
    overlay: Overlay,
    store: ContentStore,
    workloads: Vec<Workload>,
    config: GameConfig,
    index: RecallIndex,
    /// Per-cluster content summaries for cluster-directed routing,
    /// delta-maintained by the same membership/content hooks as the
    /// recall index.
    summaries: ClusterSummaries,
}

impl System {
    /// Builds a system and its recall index.
    ///
    /// # Panics
    /// Panics if the store or workload count disagrees with the overlay's
    /// peer-slot count, or if `alpha` is negative.
    pub fn new(
        overlay: Overlay,
        store: ContentStore,
        workloads: Vec<Workload>,
        config: GameConfig,
    ) -> Self {
        assert!(
            config.alpha >= 0.0 && config.alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let index = RecallIndex::build(&overlay, &store, &workloads);
        let summaries = ClusterSummaries::build(&overlay, &store);
        System {
            overlay,
            store,
            workloads,
            config,
            index,
            summaries,
        }
    }

    /// The overlay (read-only; mutate through [`System::move_peer`] and
    /// friends so the index stays fresh).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The content store.
    pub fn store(&self) -> &ContentStore {
        &self.store
    }

    /// Per-peer workloads, indexed by peer id.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The game parameters.
    pub fn config(&self) -> GameConfig {
        self.config
    }

    /// Overrides the game parameters (used by the `α`-sweep experiment).
    /// Costs change but the recall index is unaffected.
    pub fn set_config(&mut self, config: GameConfig) {
        assert!(config.alpha >= 0.0 && config.alpha.is_finite());
        self.config = config;
    }

    /// The recall index.
    pub fn index(&self) -> &RecallIndex {
        &self.index
    }

    /// The per-cluster content summaries (cluster-directed routing).
    pub fn summaries(&self) -> &ClusterSummaries {
        &self.summaries
    }

    /// Live peer count `|P|`.
    pub fn n_peers(&self) -> usize {
        self.overlay.n_peers()
    }

    /// Moves a peer to another cluster, delta-updating the cluster
    /// masses (O(results of peer), not O(workload × peers)). Returns the
    /// previous cluster.
    pub fn move_peer(&mut self, peer: PeerId, to: ClusterId) -> ClusterId {
        let from = self.overlay.move_peer(peer, to);
        self.index.apply_move(peer, from, to);
        self.summaries.apply_move(self.store.docs(peer), from, to);
        from
    }

    /// Applies a batch of moves, delta-updating masses per move — the
    /// protocol's phase 2 applies all granted relocations together.
    pub fn move_peers(&mut self, moves: &[(PeerId, ClusterId)]) {
        for &(peer, to) in moves {
            let from = self.overlay.move_peer(peer, to);
            self.index.apply_move(peer, from, to);
            self.summaries.apply_move(self.store.docs(peer), from, to);
        }
    }

    /// Assigns an unassigned (departed or freshly grown but
    /// already-indexed) peer to a cluster, delta-updating the masses.
    ///
    /// # Panics
    /// Panics if the peer is already assigned.
    pub fn join_peer(&mut self, peer: PeerId, to: ClusterId) {
        self.overlay.assign(peer, to);
        self.workloads
            .resize(self.overlay.n_slots(), Workload::new());
        self.index.ensure_cmax(self.overlay.cmax());
        self.index.ensure_peer_slots(self.overlay.n_slots());
        self.index.apply_join(peer, to);
        self.summaries.ensure_cmax(self.overlay.cmax());
        self.summaries.apply_join(self.store.docs(peer), to);
    }

    /// Removes a peer from its cluster (churn leave), delta-updating the
    /// masses. The peer's content stays in the index's totals — call
    /// [`System::rebuild_index`] when its documents are actually dropped
    /// from the store. Returns the former cluster, `None` if already
    /// departed.
    pub fn leave_peer(&mut self, peer: PeerId) -> Option<ClusterId> {
        let from = self.overlay.unassign(peer)?;
        self.index.apply_leave(peer, from);
        // The departed peer's documents become unreachable by routing
        // even though they stay in the index totals until a rebuild.
        self.summaries.apply_leave(self.store.docs(peer), from);
        Some(from)
    }

    /// Applies a churn event through the overlay hook and folds the
    /// emitted [`ChurnDelta`] into the recall index, so mid-batch
    /// membership state stays coherent. A `Join` grows the workload
    /// table in lockstep (empty workload; set the real one via
    /// [`System::workloads_mut`]). Content changes — the leaver's
    /// dropped documents, the joiner's fresh ones — enter the index
    /// totals only on the next [`System::rebuild_index`], which churn
    /// drivers call once per batch. Returns the delta (`None` for a
    /// no-op leave).
    pub fn apply_churn_event(
        &mut self,
        net: &mut SimNetwork,
        event: ChurnEvent,
    ) -> Option<ChurnDelta> {
        // The leave hook drops the departing peer's documents from the
        // store, so snapshot them first: the summary delta needs to know
        // what to un-count.
        let leaver_docs = match &event {
            ChurnEvent::Leave { peer } if self.overlay.cluster_of(*peer).is_some() => {
                self.store.docs(*peer).to_vec()
            }
            _ => Vec::new(),
        };
        let delta =
            recluster_overlay::churn::apply_event(&mut self.overlay, &mut self.store, net, event)?;
        match delta {
            ChurnDelta::Left { peer, cluster } => {
                self.index.apply_leave(peer, cluster);
                self.summaries.apply_leave(&leaver_docs, cluster);
                self.charge_summary_update(net, cluster, &leaver_docs);
            }
            ChurnDelta::Joined { peer, cluster } => {
                self.workloads
                    .resize(self.overlay.n_slots(), Workload::new());
                self.index.ensure_cmax(self.overlay.cmax());
                self.index.ensure_peer_slots(self.overlay.n_slots());
                self.index.apply_join(peer, cluster);
                self.summaries.ensure_cmax(self.overlay.cmax());
                self.summaries.apply_join(self.store.docs(peer), cluster);
                self.charge_summary_update(net, cluster, self.store.docs(peer));
            }
        }
        Some(delta)
    }

    /// Charges the traffic of propagating one cluster's summary delta to
    /// its members: the fan-out follows the intra-cluster topology the
    /// `θ` model encodes, the payload the size of the changed term set.
    ///
    /// Accounting convention: only *churn* events pay explicit
    /// `SummaryUpdate` messages. Protocol relocations piggyback their
    /// summary delta on the `GrantCoordination` message the move already
    /// charges, and the upkeep is charged identically whatever the
    /// routing mode — summaries are standing overlay infrastructure
    /// (the lookup analysis reads them too), so flood-vs-routed ledgers
    /// stay directly comparable.
    fn charge_summary_update(&self, net: &mut SimNetwork, cluster: ClusterId, docs: &[Document]) {
        let fanout = self
            .config
            .theta
            .broadcast_messages(self.overlay.size(cluster));
        if fanout > 0 {
            let terms: usize = docs.iter().map(Document::len).sum();
            net.send_many(MsgKind::SummaryUpdate, 16 + 4 * terms as u64, fanout);
        }
    }

    /// Replaces a peer's workload and rebuilds the index (workload-update
    /// experiments, §4.2).
    pub fn set_workload(&mut self, peer: PeerId, workload: Workload) {
        self.workloads[peer.index()] = workload;
        self.rebuild_index();
    }

    /// Replaces the workloads of many peers, rebuilding the index once.
    pub fn set_workloads(&mut self, updates: Vec<(PeerId, Workload)>) {
        for (peer, w) in updates {
            self.workloads[peer.index()] = w;
        }
        self.rebuild_index();
    }

    /// Replaces a peer's documents and rebuilds the index (content-update
    /// experiments, §4.2). The cluster summaries absorb the change as a
    /// delta.
    pub fn set_content(&mut self, peer: PeerId, docs: Vec<Document>) {
        self.apply_content_delta(peer, docs);
        self.rebuild_index();
    }

    /// Replaces the content of many peers, rebuilding the index once.
    pub fn set_contents(&mut self, updates: Vec<(PeerId, Vec<Document>)>) {
        for (peer, docs) in updates {
            self.apply_content_delta(peer, docs);
        }
        self.rebuild_index();
    }

    fn apply_content_delta(&mut self, peer: PeerId, docs: Vec<Document>) {
        let cid = self.overlay.cluster_of(peer);
        let old = self.store.replace(peer, docs);
        if let Some(cid) = cid {
            self.summaries
                .apply_content_update(cid, &old, self.store.docs(peer));
        }
    }

    /// Rebuilds the recall index from scratch (after content or workload
    /// changes).
    pub fn rebuild_index(&mut self) {
        self.index = RecallIndex::build(&self.overlay, &self.store, &self.workloads);
    }

    /// Rebuilds the cluster summaries from scratch — the oracle for the
    /// delta hooks, and the repair step after mutating membership or
    /// content through [`System::overlay_mut`] / [`System::store_mut`]
    /// directly.
    pub fn rebuild_summaries(&mut self) {
        self.summaries = ClusterSummaries::build(&self.overlay, &self.store);
    }

    /// Mutable access to the overlay for substrate-level operations
    /// (churn); the caller must call [`System::rebuild_index`] or
    /// [`System::refresh_mass`] afterwards as appropriate.
    pub fn overlay_mut(&mut self) -> &mut Overlay {
        &mut self.overlay
    }

    /// Mutable access to the content store; pair with
    /// [`System::rebuild_index`].
    pub fn store_mut(&mut self) -> &mut ContentStore {
        &mut self.store
    }

    /// Mutable access to the workloads; pair with
    /// [`System::rebuild_index`].
    pub fn workloads_mut(&mut self) -> &mut Vec<Workload> {
        &mut self.workloads
    }

    /// Refreshes cluster masses after external membership changes. Recall
    /// masses only — pair with [`System::rebuild_summaries`] when
    /// cluster-directed routing is used afterwards.
    pub fn refresh_mass(&mut self) {
        self.index.refresh_mass(&self.overlay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::{Query, Sym};

    fn tiny() -> System {
        let mut ov = Overlay::singletons(2);
        ov.move_peer(PeerId(1), ClusterId(0));
        let mut store = ContentStore::new(2);
        store.add(PeerId(0), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(2)), 1);
        System::new(ov, store, vec![w0, Workload::new()], GameConfig::default())
    }

    #[test]
    fn new_builds_consistent_index() {
        let sys = tiny();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().total(q), 1);
        assert!((sys.index().cluster_mass(q, ClusterId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn move_peer_refreshes_mass() {
        let mut sys = tiny();
        sys.move_peer(PeerId(1), ClusterId(1));
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().cluster_mass(q, ClusterId(0)), 0.0);
        assert!((sys.index().cluster_mass(q, ClusterId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_workload_rebuilds_index() {
        let mut sys = tiny();
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 3);
        sys.set_workload(PeerId(1), w);
        let q = sys.index().qid(&Query::keyword(Sym(1))).unwrap();
        assert_eq!(sys.index().total(q), 1);
        let wl = sys.index().workload_of(PeerId(1));
        assert_eq!(wl.len(), 1);
        assert!((wl[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_content_rebuilds_index() {
        let mut sys = tiny();
        sys.set_content(PeerId(0), vec![Document::new(vec![Sym(2)])]);
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().total(q), 2);
    }

    #[test]
    fn batch_moves_refresh_once_and_apply_all() {
        let mut sys = tiny();
        sys.move_peers(&[(PeerId(0), ClusterId(1)), (PeerId(1), ClusterId(1))]);
        assert_eq!(sys.overlay().size(ClusterId(1)), 2);
        assert_eq!(sys.overlay().size(ClusterId(0)), 0);
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert!((sys.index().cluster_mass(q, ClusterId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leave_and_join_keep_masses_consistent() {
        let mut sys = tiny();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.leave_peer(PeerId(1)), Some(ClusterId(0)));
        assert_eq!(sys.index().cluster_mass(q, ClusterId(0)), 0.0);
        assert_eq!(sys.n_peers(), 1);
        sys.join_peer(PeerId(1), ClusterId(1));
        assert!((sys.index().cluster_mass(q, ClusterId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(sys.leave_peer(PeerId(1)), Some(ClusterId(1)));
        assert_eq!(sys.leave_peer(PeerId(1)), None, "double leave is a no-op");
    }

    #[test]
    fn join_of_grown_peer_keeps_tables_in_lockstep() {
        let mut sys = tiny();
        let p = sys.overlay_mut().grow();
        let slot = sys.store_mut().grow();
        assert_eq!(p, slot);
        sys.join_peer(p, ClusterId(0));
        assert_eq!(sys.workloads().len(), sys.overlay().n_slots());
        // The observed-statistics path walks every live peer's workload
        // slot: a fresh joiner must not leave the table short.
        let mut net = recluster_overlay::SimNetwork::new();
        let obs = crate::tracker::simulate_period(&sys, &mut net);
        assert!(obs.of(p).is_empty());
    }

    #[test]
    fn move_peer_matches_rebuild_exactly() {
        let mut sys = tiny();
        sys.move_peer(PeerId(1), ClusterId(1));
        sys.move_peer(PeerId(0), ClusterId(1));
        let delta_index = sys.index().clone();
        sys.rebuild_index();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        for c in [ClusterId(0), ClusterId(1)] {
            assert_eq!(
                delta_index.cluster_mass_num(q, c),
                sys.index().cluster_mass_num(q, c)
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be finite and non-negative")]
    fn negative_alpha_panics() {
        let ov = Overlay::singletons(1);
        let store = ContentStore::new(1);
        let _ = System::new(
            ov,
            store,
            vec![Workload::new()],
            GameConfig {
                alpha: -1.0,
                theta: Theta::Linear,
            },
        );
    }
}
