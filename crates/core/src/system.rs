//! The game state.
//!
//! [`System`] bundles everything the cost functions and strategies need:
//! the clustered overlay, the per-peer content, the per-peer workloads,
//! the game parameters (`α`, `θ`) and the precomputed [`RecallIndex`].
//! It is the single mutation point for membership, content *and*
//! workload changes, so the index, the routing summaries and the
//! [`CostCache`] never go stale: every mutator applies a symmetric
//! delta to all three, and the from-scratch rebuilds are kept only as
//! oracles (and as repair steps after the `*_mut` escape hatches).

use std::cell::{Ref, RefCell};

use recluster_overlay::{
    ChurnDelta, ChurnEvent, ClusterSummaries, ContentStore, MsgKind, Overlay, SimNetwork, Theta,
};
use recluster_types::{ClusterId, Document, PeerId, Workload};

use crate::costcache::CostCache;
use crate::recall::RecallIndex;
use crate::view::{Epochs, SystemRead, SystemView};

/// Game parameters of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameConfig {
    /// `α ≥ 0`: weight of the cluster-membership cost ("determines the
    /// extent of influence of the cluster participation cost"). The
    /// paper's experiments use `α = 1`.
    pub alpha: f64,
    /// The cluster-maintenance cost model `θ` (linear in the paper's
    /// experiments).
    pub theta: Theta,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            alpha: 1.0,
            theta: Theta::Linear,
        }
    }
}

/// The complete state of the reformulation game.
#[derive(Debug, Clone)]
pub struct System {
    overlay: Overlay,
    store: ContentStore,
    workloads: Vec<Workload>,
    config: GameConfig,
    index: RecallIndex,
    /// Per-cluster content summaries for cluster-directed routing,
    /// delta-maintained by the same membership/content hooks as the
    /// recall index.
    summaries: ClusterSummaries,
    /// Per-peer cached cost terms (recall loss + `WCost` contribution),
    /// dirty-tracked by every mutator and flushed lazily on read.
    cache: RefCell<CostCache>,
    /// Change journal for proposal memoization: per-cluster stamps for
    /// size/mass changes, a global stamp for system-wide shifts.
    epochs: Epochs,
}

impl System {
    /// Builds a system and its recall index.
    ///
    /// # Panics
    /// Panics if the store or workload count disagrees with the overlay's
    /// peer-slot count, or if `alpha` is negative.
    pub fn new(
        overlay: Overlay,
        store: ContentStore,
        workloads: Vec<Workload>,
        config: GameConfig,
    ) -> Self {
        assert!(
            config.alpha >= 0.0 && config.alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let index = RecallIndex::build(&overlay, &store, &workloads);
        let summaries = ClusterSummaries::build(&overlay, &store);
        let cache = RefCell::new(CostCache::new_all_dirty(overlay.n_slots()));
        let epochs = Epochs::new(overlay.cmax());
        System {
            overlay,
            store,
            workloads,
            config,
            index,
            summaries,
            cache,
            epochs,
        }
    }

    /// The overlay (read-only; mutate through [`System::move_peer`] and
    /// friends so the index stays fresh).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The content store.
    pub fn store(&self) -> &ContentStore {
        &self.store
    }

    /// Per-peer workloads, indexed by peer id.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The game parameters.
    pub fn config(&self) -> GameConfig {
        self.config
    }

    /// Overrides the game parameters (used by the `α`-sweep experiment).
    /// Costs change but the recall index and the cached recall terms are
    /// unaffected (`α`/`θ` only enter the membership terms, which are
    /// computed on the fly).
    pub fn set_config(&mut self, config: GameConfig) {
        assert!(config.alpha >= 0.0 && config.alpha.is_finite());
        self.config = config;
        // α/θ enter every pcost: all memoized proposals are stale.
        self.epochs.bump_global();
    }

    /// The recall index.
    pub fn index(&self) -> &RecallIndex {
        &self.index
    }

    /// The per-cluster content summaries (cluster-directed routing).
    pub fn summaries(&self) -> &ClusterSummaries {
        &self.summaries
    }

    /// The per-peer cost cache, flushed: any peers dirtied by earlier
    /// mutations are recomputed before the reference is handed out.
    /// Don't hold the returned [`Ref`] across calls that mutate the
    /// system or re-enter the cache (e.g.
    /// [`pcost_current`](crate::cost::pcost_current)).
    pub fn cost_cache(&self) -> Ref<'_, CostCache> {
        {
            let mut cache = self.cache.borrow_mut();
            cache.flush(&self.index, &self.overlay, &self.workloads);
        }
        self.cache.borrow()
    }

    /// Builds a [`SystemView`]: flushes the cost cache once, then hands
    /// out a `Sync` snapshot of shared borrows — overlay, store,
    /// workloads, index, summaries, the flushed cache and the change
    /// journal. Phase 1 of a protocol round (and any other parallel
    /// read) evaluates costs against the view with `&self` and no
    /// interior mutability; results are bit-identical to reading the
    /// `System` directly. Requires `&mut self` only to flush without a
    /// `RefCell` guard — nothing observable is modified.
    pub fn view(&mut self) -> SystemView<'_> {
        let cache = self.cache.get_mut();
        cache.flush(&self.index, &self.overlay, &self.workloads);
        SystemView {
            overlay: &self.overlay,
            store: &self.store,
            workloads: &self.workloads,
            config: self.config,
            index: &self.index,
            summaries: &self.summaries,
            cache,
            epochs: &self.epochs,
        }
    }

    /// The change journal (per-cluster and global stamps) — the inputs
    /// of the proposal-memo validity gate.
    pub fn epochs(&self) -> &Epochs {
        &self.epochs
    }

    /// Marks the whole cost cache stale; the next read recomputes every
    /// peer's terms, the holder lists and the live demand from scratch —
    /// the oracle the delta-maintained path is property-tested against.
    pub fn rebuild_cost_cache(&mut self) {
        self.cache.get_mut().mark_all();
    }

    /// Live peer count `|P|`.
    pub fn n_peers(&self) -> usize {
        self.overlay.n_peers()
    }

    /// Marks the cache entries whose terms depend on the mass of `a` (or
    /// `b`) for any query `peer` currently holds results for — the exact
    /// dependency set of a membership change.
    fn mark_mass_dependents(&mut self, peer: PeerId, a: ClusterId, b: Option<ClusterId>) {
        let index = &self.index;
        let overlay = &self.overlay;
        let cache = self.cache.get_mut();
        for &(qid, _) in index.results_of(peer) {
            cache.mark_holders(qid as usize, |slot| {
                let c = overlay.cluster_of(PeerId::from_index(slot as usize));
                c == Some(a) || (b.is_some() && c == b)
            });
        }
    }

    /// Marks every holder of every query in `peer`'s current result row —
    /// the dependency set of a *totals* change (content updates), which
    /// moves the mass ratio of those queries in every cluster.
    fn mark_total_dependents(&mut self, peer: PeerId) {
        let index = &self.index;
        let cache = self.cache.get_mut();
        for &(qid, _) in index.results_of(peer) {
            cache.mark_holders(qid as usize, |_| true);
        }
    }

    /// Moves a peer to another cluster, delta-updating the cluster
    /// masses (O(results of peer), not O(workload × peers)). Returns the
    /// previous cluster.
    pub fn move_peer(&mut self, peer: PeerId, to: ClusterId) -> ClusterId {
        let from = self.overlay.move_peer(peer, to);
        if from != to {
            self.index.apply_move(peer, from, to);
            self.summaries.apply_move(self.store.docs(peer), from, to);
            self.mark_mass_dependents(peer, from, Some(to));
            self.cache.get_mut().mark(peer.index());
            // Sizes and recall masses changed in exactly these two
            // clusters; every other cluster's pcost column is untouched.
            self.epochs.bump_cluster(from);
            self.epochs.bump_cluster(to);
        }
        from
    }

    /// Applies a batch of moves, delta-updating masses per move — the
    /// protocol's phase 2 applies all granted relocations together.
    pub fn move_peers(&mut self, moves: &[(PeerId, ClusterId)]) {
        for &(peer, to) in moves {
            self.move_peer(peer, to);
        }
    }

    /// Assigns an unassigned (departed or freshly grown but
    /// already-indexed) peer to a cluster, delta-updating the masses.
    ///
    /// # Panics
    /// Panics if the peer is already assigned.
    pub fn join_peer(&mut self, peer: PeerId, to: ClusterId) {
        self.overlay.assign(peer, to);
        self.workloads
            .resize(self.overlay.n_slots(), Workload::new());
        self.index.ensure_cmax(self.overlay.cmax());
        self.index.ensure_peer_slots(self.overlay.n_slots());
        self.index.apply_join(peer, to);
        self.summaries.ensure_cmax(self.overlay.cmax());
        self.summaries.apply_join(self.store.docs(peer), to);
        self.cache.get_mut().ensure_slots(self.overlay.n_slots());
        self.mark_mass_dependents(peer, to, None);
        let demand = self.workloads[peer.index()].total();
        let cache = self.cache.get_mut();
        cache.mark(peer.index());
        cache.add_live_demand(demand);
        // |P| changed: every membership term (and so every memoized
        // proposal) is stale.
        self.epochs.ensure_cmax(self.overlay.cmax());
        self.epochs.bump_global();
    }

    /// Removes a peer from its cluster (churn leave), delta-updating the
    /// masses. The peer's content stays in the store — and therefore in
    /// the index's totals — exactly as a rebuild would see it; when the
    /// documents are actually dropped, route the change through
    /// [`System::set_content`] or [`System::apply_churn_event`] instead.
    /// Returns the former cluster, `None` if already departed.
    pub fn leave_peer(&mut self, peer: PeerId) -> Option<ClusterId> {
        let from = self.overlay.unassign(peer)?;
        self.index.apply_leave(peer, from);
        // The departed peer's documents become unreachable by routing
        // even though they stay in the store (and the index totals).
        self.summaries.apply_leave(self.store.docs(peer), from);
        self.mark_mass_dependents(peer, from, None);
        let demand = self.workloads[peer.index()].total();
        let cache = self.cache.get_mut();
        cache.mark(peer.index());
        cache.sub_live_demand(demand);
        // |P| changed: global invalidation.
        self.epochs.bump_global();
        Some(from)
    }

    /// Applies a churn event through the overlay hook and folds the
    /// emitted [`ChurnDelta`] into every derived structure — recall
    /// index (masses *and* content totals), routing summaries and cost
    /// cache — so the system stays exactly consistent event by event; no
    /// follow-up rebuild is needed. A `Join` grows the workload table in
    /// lockstep (empty workload; set the real one via
    /// [`System::set_workload`]). Returns the delta (`None` for a no-op
    /// leave).
    pub fn apply_churn_event(
        &mut self,
        net: &mut SimNetwork,
        event: ChurnEvent,
    ) -> Option<ChurnDelta> {
        // The leave hook drops the departing peer's documents from the
        // store, so snapshot them first: the summary delta needs to know
        // what to un-count.
        let leaver_docs = match &event {
            ChurnEvent::Leave { peer } if self.overlay.cluster_of(*peer).is_some() => {
                self.store.docs(*peer).to_vec()
            }
            _ => Vec::new(),
        };
        let delta =
            recluster_overlay::churn::apply_event(&mut self.overlay, &mut self.store, net, event)?;
        match delta {
            ChurnDelta::Left { peer, cluster } => {
                // Totals for the leaver's result queries are about to
                // shrink: every holder's ratios move, whatever its
                // cluster — mark them while the old row is still stored.
                self.mark_total_dependents(peer);
                self.index.apply_leave(peer, cluster);
                self.index.apply_content_update(peer, None, &[]);
                self.summaries.apply_leave(&leaver_docs, cluster);
                self.charge_summary_update(net, cluster, &leaver_docs);
                let demand = self.workloads[peer.index()].total();
                let cache = self.cache.get_mut();
                cache.mark(peer.index());
                cache.sub_live_demand(demand);
            }
            ChurnDelta::Joined { peer, cluster } => {
                self.workloads
                    .resize(self.overlay.n_slots(), Workload::new());
                self.index.ensure_cmax(self.overlay.cmax());
                self.index.ensure_peer_slots(self.overlay.n_slots());
                self.index.apply_join(peer, cluster);
                self.index
                    .apply_content_update(peer, Some(cluster), self.store.docs(peer));
                self.summaries.ensure_cmax(self.overlay.cmax());
                self.summaries.apply_join(self.store.docs(peer), cluster);
                self.charge_summary_update(net, cluster, self.store.docs(peer));
                self.cache.get_mut().ensure_slots(self.overlay.n_slots());
                // The fresh row is stored now: its holders see new totals.
                self.mark_total_dependents(peer);
                let demand = self.workloads[peer.index()].total();
                let cache = self.cache.get_mut();
                cache.mark(peer.index());
                cache.add_live_demand(demand);
            }
        }
        // Churn changes |P| *and* result totals (the leaver's/joiner's
        // documents leave/enter every `r(q, p)` denominator): global
        // invalidation either way.
        self.epochs.ensure_cmax(self.overlay.cmax());
        self.epochs.bump_global();
        Some(delta)
    }

    /// Charges the traffic of propagating one cluster's summary delta to
    /// its members: the fan-out follows the intra-cluster topology the
    /// `θ` model encodes, the payload the size of the changed term set.
    ///
    /// Accounting convention: only *churn* events pay explicit
    /// `SummaryUpdate` messages. Protocol relocations piggyback their
    /// summary delta on the `GrantCoordination` message the move already
    /// charges, and the upkeep is charged identically whatever the
    /// routing mode — summaries are standing overlay infrastructure
    /// (the lookup analysis reads them too), so flood-vs-routed ledgers
    /// stay directly comparable.
    fn charge_summary_update(&self, net: &mut SimNetwork, cluster: ClusterId, docs: &[Document]) {
        let fanout = self
            .config
            .theta
            .broadcast_messages(self.overlay.size(cluster));
        if fanout > 0 {
            let terms: usize = docs.iter().map(Document::len).sum();
            net.send_many(MsgKind::SummaryUpdate, 16 + 4 * terms as u64, fanout);
        }
    }

    /// Replaces a peer's workload (workload-update experiments, §4.2),
    /// delta-maintaining the index: genuinely new queries get fresh
    /// result columns (O(peers) each), known ones just a new weight —
    /// no rebuild. Only this peer's cached terms are invalidated.
    pub fn set_workload(&mut self, peer: PeerId, workload: Workload) {
        {
            let index = &self.index;
            let cache = self.cache.get_mut();
            for &(qid, _) in index.workload_of(peer) {
                cache.remove_holder(qid as usize, peer.index());
            }
        }
        let assigned = self.overlay.cluster_of(peer).is_some();
        let old_demand = self.workloads[peer.index()].total();
        self.index
            .set_workload(peer, &workload, &self.overlay, &self.store);
        self.workloads[peer.index()] = workload;
        let new_demand = self.workloads[peer.index()].total();
        let index = &self.index;
        let cache = self.cache.get_mut();
        for &(qid, _) in index.workload_of(peer) {
            cache.add_holder(qid as usize, peer.index());
        }
        if assigned {
            cache.sub_live_demand(old_demand);
            cache.add_live_demand(new_demand);
        }
        cache.mark(peer.index());
    }

    /// Replaces the workloads of many peers, one delta each.
    pub fn set_workloads(&mut self, updates: Vec<(PeerId, Workload)>) {
        for (peer, w) in updates {
            self.set_workload(peer, w);
        }
    }

    /// Replaces a peer's documents (content-update experiments, §4.2),
    /// delta-maintaining the recall index and the cluster summaries —
    /// no rebuild. Peers holding the affected queries in their workloads
    /// are re-cached lazily.
    pub fn set_content(&mut self, peer: PeerId, docs: Vec<Document>) {
        self.apply_content_delta(peer, docs);
    }

    /// Replaces the content of many peers, one delta each.
    pub fn set_contents(&mut self, updates: Vec<(PeerId, Vec<Document>)>) {
        for (peer, docs) in updates {
            self.apply_content_delta(peer, docs);
        }
    }

    fn apply_content_delta(&mut self, peer: PeerId, docs: Vec<Document>) {
        // Result totals shift: masses move in every cluster holding the
        // affected queries' results — global invalidation.
        self.epochs.bump_global();
        let cid = self.overlay.cluster_of(peer);
        // Holders of the *old* result row see their totals change…
        self.mark_total_dependents(peer);
        let old = self.store.replace(peer, docs);
        if let Some(cid) = cid {
            self.summaries
                .apply_content_update(cid, &old, self.store.docs(peer));
        }
        self.index
            .apply_content_update(peer, cid, self.store.docs(peer));
        // …and so do holders of the *new* row.
        self.mark_total_dependents(peer);
    }

    /// Rebuilds the recall index from scratch. With every mutator
    /// delta-maintaining the index this is no longer needed on any hot
    /// path; it remains the repair step after mutating state through
    /// [`System::overlay_mut`] / [`System::store_mut`] /
    /// [`System::workloads_mut`], and the from-scratch reference the
    /// equivalence suites compare the deltas against.
    pub fn rebuild_index(&mut self) {
        self.index = RecallIndex::build(&self.overlay, &self.store, &self.workloads);
        // A fresh build renumbers query ids: the cache's holder lists
        // are keyed by qid, so everything must be re-derived.
        self.cache.get_mut().mark_all();
    }

    /// Rebuilds the cluster summaries from scratch — the oracle for the
    /// delta hooks, and the repair step after mutating membership or
    /// content through [`System::overlay_mut`] / [`System::store_mut`]
    /// directly.
    pub fn rebuild_summaries(&mut self) {
        self.summaries = ClusterSummaries::build(&self.overlay, &self.store);
    }

    /// Mutable access to the overlay for substrate-level operations;
    /// the caller must call [`System::rebuild_index`] or
    /// [`System::refresh_mass`] afterwards as appropriate. The cost
    /// cache is conservatively invalidated wholesale.
    pub fn overlay_mut(&mut self) -> &mut Overlay {
        self.cache.get_mut().mark_all();
        &mut self.overlay
    }

    /// Mutable access to the content store; pair with
    /// [`System::rebuild_index`] (and [`System::rebuild_summaries`] when
    /// routing is used afterwards). Prefer [`System::set_content`],
    /// which applies the change as a delta instead.
    pub fn store_mut(&mut self) -> &mut ContentStore {
        self.cache.get_mut().mark_all();
        &mut self.store
    }

    /// Mutable access to the workloads; pair with
    /// [`System::rebuild_index`]. Prefer [`System::set_workload`], which
    /// applies the change as a delta instead.
    pub fn workloads_mut(&mut self) -> &mut Vec<Workload> {
        self.cache.get_mut().mark_all();
        &mut self.workloads
    }

    /// Refreshes cluster masses after external membership changes. Recall
    /// masses only — pair with [`System::rebuild_summaries`] when
    /// cluster-directed routing is used afterwards.
    pub fn refresh_mass(&mut self) {
        self.index.refresh_mass(&self.overlay);
        self.cache.get_mut().mark_all();
    }
}

impl SystemRead for System {
    fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    fn index(&self) -> &RecallIndex {
        &self.index
    }

    fn config(&self) -> GameConfig {
        self.config
    }

    fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    // The cached reads go through `cost_cache()`, which flushes pending
    // recomputations behind the `RefCell` — the lazy single-threaded
    // route. `SystemView` serves the same values as plain loads.
    fn cached_recall_loss(&self, peer: PeerId) -> f64 {
        self.cost_cache().recall_loss_of(peer)
    }

    fn cached_wrecall(&self, peer: PeerId) -> f64 {
        self.cost_cache().wrecall_of(peer)
    }

    fn cached_away(&self, peer: PeerId) -> f64 {
        self.cost_cache().away_of(peer)
    }

    fn cached_live_demand(&self) -> u64 {
        self.cost_cache().live_demand()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::{Query, Sym};

    fn tiny() -> System {
        let mut ov = Overlay::singletons(2);
        ov.move_peer(PeerId(1), ClusterId(0));
        let mut store = ContentStore::new(2);
        store.add(PeerId(0), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(2)), 1);
        System::new(ov, store, vec![w0, Workload::new()], GameConfig::default())
    }

    #[test]
    fn new_builds_consistent_index() {
        let sys = tiny();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().total(q), 1);
        assert!((sys.index().cluster_mass(q, ClusterId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn move_peer_refreshes_mass() {
        let mut sys = tiny();
        sys.move_peer(PeerId(1), ClusterId(1));
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().cluster_mass(q, ClusterId(0)), 0.0);
        assert!((sys.index().cluster_mass(q, ClusterId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_workload_delta_maintains_index() {
        let mut sys = tiny();
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 3);
        sys.set_workload(PeerId(1), w);
        let q = sys.index().qid(&Query::keyword(Sym(1))).unwrap();
        assert_eq!(sys.index().total(q), 1);
        let wl = sys.index().workload_of(PeerId(1));
        assert_eq!(wl.len(), 1);
        assert!((wl[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_content_delta_maintains_index() {
        let mut sys = tiny();
        sys.set_content(PeerId(0), vec![Document::new(vec![Sym(2)])]);
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().total(q), 2);
    }

    #[test]
    fn batch_moves_refresh_once_and_apply_all() {
        let mut sys = tiny();
        sys.move_peers(&[(PeerId(0), ClusterId(1)), (PeerId(1), ClusterId(1))]);
        assert_eq!(sys.overlay().size(ClusterId(1)), 2);
        assert_eq!(sys.overlay().size(ClusterId(0)), 0);
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert!((sys.index().cluster_mass(q, ClusterId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leave_and_join_keep_masses_consistent() {
        let mut sys = tiny();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.leave_peer(PeerId(1)), Some(ClusterId(0)));
        assert_eq!(sys.index().cluster_mass(q, ClusterId(0)), 0.0);
        assert_eq!(sys.n_peers(), 1);
        sys.join_peer(PeerId(1), ClusterId(1));
        assert!((sys.index().cluster_mass(q, ClusterId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(sys.leave_peer(PeerId(1)), Some(ClusterId(1)));
        assert_eq!(sys.leave_peer(PeerId(1)), None, "double leave is a no-op");
    }

    #[test]
    fn join_of_grown_peer_keeps_tables_in_lockstep() {
        let mut sys = tiny();
        let p = sys.overlay_mut().grow();
        let slot = sys.store_mut().grow();
        assert_eq!(p, slot);
        sys.join_peer(p, ClusterId(0));
        assert_eq!(sys.workloads().len(), sys.overlay().n_slots());
        // The observed-statistics path walks every live peer's workload
        // slot: a fresh joiner must not leave the table short.
        let mut net = recluster_overlay::SimNetwork::new();
        let obs = crate::tracker::simulate_period(&sys, &mut net);
        assert!(obs.of(p).is_empty());
    }

    #[test]
    fn move_peer_matches_rebuild_exactly() {
        let mut sys = tiny();
        sys.move_peer(PeerId(1), ClusterId(1));
        sys.move_peer(PeerId(0), ClusterId(1));
        let delta_index = sys.index().clone();
        sys.rebuild_index();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        for c in [ClusterId(0), ClusterId(1)] {
            assert_eq!(
                delta_index.cluster_mass_num(q, c),
                sys.index().cluster_mass_num(q, c)
            );
        }
    }

    #[test]
    fn churn_leave_retires_content_from_totals() {
        let mut sys = tiny();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().total(q), 1);
        let mut net = SimNetwork::new();
        let delta = sys.apply_churn_event(&mut net, ChurnEvent::Leave { peer: PeerId(1) });
        assert_eq!(
            delta,
            Some(ChurnDelta::Left {
                peer: PeerId(1),
                cluster: ClusterId(0)
            })
        );
        // The leaver's document left the store *and* the totals — no
        // rebuild required.
        assert_eq!(sys.index().total(q), 0);
        assert_eq!(sys.index().cluster_mass(q, ClusterId(0)), 0.0);
    }

    #[test]
    fn churn_join_indexes_fresh_content_immediately() {
        let mut sys = tiny();
        let mut net = SimNetwork::new();
        let delta = sys
            .apply_churn_event(
                &mut net,
                ChurnEvent::Join {
                    cluster: ClusterId(0),
                    docs: vec![Document::new(vec![Sym(2)])],
                },
            )
            .unwrap();
        let q = sys.index().qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(sys.index().total(q), 2, "newcomer's doc counted");
        assert_eq!(sys.index().cluster_mass_num(q, ClusterId(0)), 2);
        assert_eq!(sys.index().result(q, delta.peer()), 1);
    }

    #[test]
    fn cost_cache_flushes_after_moves() {
        let mut sys = tiny();
        let (_, recall_before) = crate::global::scost_terms(&sys);
        assert_eq!(recall_before, 0.0, "co-clustered pair loses nothing");
        // p1 takes its Sym(2) doc to another cluster: p0 now loses its
        // whole workload's recall, and the cache must notice.
        sys.move_peer(PeerId(1), ClusterId(1));
        let (_, recall_after) = crate::global::scost_terms(&sys);
        assert!((recall_after - 1.0).abs() < 1e-12);
        assert!(sys.cost_cache().is_fresh());
    }

    #[test]
    #[should_panic(expected = "alpha must be finite and non-negative")]
    fn negative_alpha_panics() {
        let ov = Overlay::singletons(1);
        let store = ContentStore::new(1);
        let _ = System::new(
            ov,
            store,
            vec![Workload::new()],
            GameConfig {
                alpha: -1.0,
                theta: Theta::Linear,
            },
        );
    }
}
