//! The read/write split of [`System`](crate::system::System): a
//! `Sync` snapshot for parallel
//! phase-1 rounds.
//!
//! [`System`](crate::system::System) hides a `RefCell<CostCache>` so
//! cost reads can lazily
//! recompute dirty entries — convenient, but interior mutability makes
//! `&System` useless across threads, which forced the protocol's
//! phase 1 (per-peer proposal computation, an embarrassingly parallel
//! pure read of global state) to run sequentially. [`SystemView`] is the
//! fix: an immutable borrow of every read-side component — overlay,
//! content store, workloads, recall index, routing summaries and a
//! **pre-flushed** [`CostCache`] — with no cells, no locks and no
//! mutation. It is `Sync` by construction (asserted in this module's
//! tests), so the `crates/compat/rayon` shim can shard peers across
//! worker threads while every shard reads the same state.
//!
//! [`SystemRead`] is the trait the cost functions are generic over:
//! [`pcost`](crate::cost::pcost), [`scost`](crate::global::scost),
//! [`best_response`](crate::equilibrium::best_response) and friends
//! accept either a `&System` (lazy flush through the `RefCell`, exactly
//! as before) or a `&SystemView` (plain loads). Both routes execute the
//! same arithmetic over the same values, so their results are
//! **bit-identical** — property-tested in
//! `crates/core/tests/prop_view_memo.rs`.
//!
//! [`Epochs`] is the change journal that makes cross-round proposal
//! memoization sound: a monotone logical clock stamps every cluster
//! whose size or recall mass changed and a global stamp covers
//! system-wide shifts (`|P|` changes, content/total updates, parameter
//! changes, escape-hatch mutations). A memoized proposal is re-emitted
//! only when no stamp it depends on moved — see
//! [`ProposalMemo`](crate::protocol::ProposalMemo).

use recluster_overlay::{ClusterSummaries, ContentStore, Overlay};
use recluster_types::{ClusterId, PeerId, Workload};

use crate::costcache::CostCache;
use crate::recall::RecallIndex;
use crate::system::GameConfig;

/// Monotone change stamps for the quantities a peer's best response
/// depends on. Owned by [`System`](crate::system::System); every mutator
/// advances the clock and stamps exactly the clusters its change
/// touched (or the global stamp when the change is system-wide).
#[derive(Debug)]
pub struct Epochs {
    /// Process-unique id of the owning `System` lineage, assigned at
    /// construction **and on every clone**. Stamps of different
    /// lineages are not comparable — two fresh systems both start at
    /// clock 0, and a forked clone's clock advances independently of
    /// its origin's — so consumers like the proposal memo key their
    /// state on this id and treat any id change as a full miss.
    system_id: u64,
    /// The logical clock: strictly increases with every stamped change.
    now: u64,
    /// Per cluster slot: clock value of the last size or mass change.
    cluster: Vec<u64>,
    /// Clock value of the last system-wide change: `|P|` (membership
    /// term denominators), result totals (every `r(q, p)` and mass
    /// denominator), game parameters, or an escape-hatch mutation.
    global: u64,
}

fn next_system_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_SYSTEM_ID: AtomicU64 = AtomicU64::new(1);
    NEXT_SYSTEM_ID.fetch_add(1, Ordering::Relaxed)
}

impl Clone for Epochs {
    /// A clone starts a **fresh lineage**: after the fork, origin and
    /// clone mutate independently, so stamps taken on one say nothing
    /// about the other even though both clocks keep increasing (e.g.
    /// the origin could reach clock 15 while the mutated clone sits at
    /// 13 — an entry stamped 15 on the origin would wrongly dominate
    /// the clone's gate). A new id makes every cross-fork memo lookup
    /// a miss instead.
    fn clone(&self) -> Self {
        Epochs {
            system_id: next_system_id(),
            now: self.now,
            cluster: self.cluster.clone(),
            global: self.global,
        }
    }
}

impl Epochs {
    /// An all-zero journal covering `cmax` cluster slots, under a fresh
    /// lineage id.
    pub(crate) fn new(cmax: usize) -> Self {
        Epochs {
            system_id: next_system_id(),
            now: 0,
            cluster: vec![0; cmax],
            global: 0,
        }
    }

    /// The owning system lineage's process-unique id.
    pub fn system_id(&self) -> u64 {
        self.system_id
    }

    /// The current clock value.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Clock value of the last change to cluster `cid`'s size or masses
    /// (zero if it never changed; clusters beyond the journal's width
    /// report zero too, which is exact — they were empty and untouched).
    pub fn cluster(&self, cid: ClusterId) -> u64 {
        self.cluster.get(cid.index()).copied().unwrap_or(0)
    }

    /// Clock value of the last system-wide change.
    pub fn global(&self) -> u64 {
        self.global
    }

    pub(crate) fn bump_cluster(&mut self, cid: ClusterId) {
        self.now += 1;
        if self.cluster.len() <= cid.index() {
            self.cluster.resize(cid.index() + 1, 0);
        }
        self.cluster[cid.index()] = self.now;
    }

    pub(crate) fn bump_global(&mut self) {
        self.now += 1;
        self.global = self.now;
    }

    pub(crate) fn ensure_cmax(&mut self, cmax: usize) {
        if self.cluster.len() < cmax {
            self.cluster.resize(cmax, 0);
        }
    }
}

/// Read access to the game state, satisfied by both
/// [`System`](crate::system::System) (lazy cache flush behind a
/// `RefCell`) and [`SystemView`] (plain pre-flushed borrows). The cost
/// functions are generic over this trait, so one implementation serves
/// the sequential mutation path and the parallel read path with
/// bit-identical results.
pub trait SystemRead {
    /// The clustered overlay.
    fn overlay(&self) -> &Overlay;

    /// The recall index.
    fn index(&self) -> &RecallIndex;

    /// The game parameters.
    fn config(&self) -> GameConfig;

    /// Per-peer workloads, indexed by peer slot.
    fn workloads(&self) -> &[Workload];

    /// Live peer count `|P|`.
    fn n_peers(&self) -> usize {
        self.overlay().n_peers()
    }

    /// The cached recall-loss term of `pcost(peer, current cluster)`.
    fn cached_recall_loss(&self, peer: PeerId) -> f64;

    /// The cached unnormalized `WCost` recall contribution of `peer`.
    fn cached_wrecall(&self, peer: PeerId) -> f64;

    /// The cached recall loss of `peer` against any cluster sharing no
    /// result mass with its workload (the memo gate's fast path — see
    /// [`CostCache::away_of`]).
    fn cached_away(&self, peer: PeerId) -> f64;

    /// `num(Q)`: total query demand of the assigned peers.
    fn cached_live_demand(&self) -> u64;
}

/// A `Sync`, immutable snapshot of a [`System`](crate::system::System):
/// shared borrows of every read-side structure plus a pre-flushed
/// [`CostCache`]. Build one with
/// [`System::view`](crate::system::System::view) (which flushes the
/// cache first); evaluate [`pcost`](crate::cost::pcost) /
/// [`best_response`](crate::equilibrium::best_response) /
/// [`scost`](crate::global::scost) against it with `&self` and no
/// interior mutability — from as many threads as you like.
#[derive(Debug, Clone, Copy)]
pub struct SystemView<'a> {
    pub(crate) overlay: &'a Overlay,
    pub(crate) store: &'a ContentStore,
    pub(crate) workloads: &'a [Workload],
    pub(crate) config: GameConfig,
    pub(crate) index: &'a RecallIndex,
    pub(crate) summaries: &'a ClusterSummaries,
    pub(crate) cache: &'a CostCache,
    pub(crate) epochs: &'a Epochs,
}

impl<'a> SystemView<'a> {
    /// The clustered overlay.
    pub fn overlay(&self) -> &'a Overlay {
        self.overlay
    }

    /// The content store.
    pub fn store(&self) -> &'a ContentStore {
        self.store
    }

    /// Per-peer workloads, indexed by peer slot.
    pub fn workloads(&self) -> &'a [Workload] {
        self.workloads
    }

    /// The game parameters.
    pub fn config(&self) -> GameConfig {
        self.config
    }

    /// The recall index.
    pub fn index(&self) -> &'a RecallIndex {
        self.index
    }

    /// The per-cluster content summaries.
    pub fn summaries(&self) -> &'a ClusterSummaries {
        self.summaries
    }

    /// The pre-flushed cost cache (plain borrow — no `RefCell` guard).
    pub fn cost_cache(&self) -> &'a CostCache {
        self.cache
    }

    /// The change journal (cluster / global stamps).
    pub fn epochs(&self) -> &'a Epochs {
        self.epochs
    }

    /// Live peer count `|P|`.
    pub fn n_peers(&self) -> usize {
        self.overlay.n_peers()
    }
}

impl SystemRead for SystemView<'_> {
    fn overlay(&self) -> &Overlay {
        self.overlay
    }

    fn index(&self) -> &RecallIndex {
        self.index
    }

    fn config(&self) -> GameConfig {
        self.config
    }

    fn workloads(&self) -> &[Workload] {
        self.workloads
    }

    fn cached_recall_loss(&self, peer: PeerId) -> f64 {
        debug_assert!(self.cache.is_fresh(), "SystemView cache must be flushed");
        self.cache.recall_loss_of(peer)
    }

    fn cached_wrecall(&self, peer: PeerId) -> f64 {
        self.cache.wrecall_of(peer)
    }

    fn cached_away(&self, peer: PeerId) -> f64 {
        self.cache.away_of(peer)
    }

    fn cached_live_demand(&self) -> u64 {
        self.cache.live_demand()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use recluster_types::{Document, Query, Sym};

    fn assert_sync<T: Sync>() {}
    fn assert_send<T: Send>() {}

    #[test]
    fn view_is_sync_and_send() {
        // The whole point of the layer: a view can be shared across the
        // rayon shim's scoped workers.
        assert_sync::<SystemView<'_>>();
        assert_send::<SystemView<'_>>();
    }

    fn tiny() -> System {
        let mut ov = Overlay::singletons(2);
        ov.move_peer(PeerId(1), ClusterId(0));
        let mut store = ContentStore::new(2);
        store.add(PeerId(0), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(2)), 1);
        System::new(ov, store, vec![w0, Workload::new()], GameConfig::default())
    }

    #[test]
    fn view_cost_reads_match_system() {
        let mut sys = tiny();
        sys.move_peer(PeerId(1), ClusterId(1)); // dirty the cache
        let direct = crate::cost::pcost_current(&sys, PeerId(0));
        let view = sys.view();
        assert!(view.cost_cache().is_fresh(), "view() must flush");
        let viewed = crate::cost::pcost_current(&view, PeerId(0));
        assert_eq!(direct.to_bits(), viewed.to_bits());
        assert_eq!(
            crate::global::scost(&sys).to_bits(),
            crate::global::scost(&sys.view()).to_bits()
        );
    }

    #[test]
    fn epochs_track_moves_and_global_shifts() {
        let mut sys = tiny();
        let before = sys.view().epochs().cluster(ClusterId(1));
        sys.move_peer(PeerId(1), ClusterId(1));
        let view = sys.view();
        assert!(view.epochs().cluster(ClusterId(1)) > before, "dst stamped");
        assert!(
            view.epochs().cluster(ClusterId(0)) > before,
            "src stamped too"
        );
        let g = view.epochs().global();
        sys.set_content(PeerId(0), vec![Document::new(vec![Sym(2)])]);
        assert!(
            sys.view().epochs().global() > g,
            "totals changes stamp the global epoch"
        );
    }

    #[test]
    fn epochs_report_zero_for_unjournaled_clusters() {
        let mut sys = tiny();
        let view = sys.view();
        assert_eq!(view.epochs().cluster(ClusterId(999)), 0);
    }
}
