//! The recall model `r(q, p)` as a precomputed index.
//!
//! §2 defines the importance of a peer for a query as
//! `r(q,p) = result(q,p) / Σ_{pk∈P} result(q,pk)` — the recall achieved
//! when `q` is evaluated solely on `p`. Cost evaluation needs `r(q, p)`
//! for every (distinct query, peer) pair and, per candidate cluster, the
//! *recall mass* `Σ_{pj∈c} r(q, pj)`. [`RecallIndex`] precomputes all of
//! it from the content store and the union of workloads, and refreshes
//! the cluster masses after membership changes.

use std::collections::HashMap;

use recluster_overlay::{ContentStore, Overlay};
use recluster_types::{PeerId, Query, Workload};

/// Identifier of a distinct query inside a [`RecallIndex`].
pub type QueryId = u32;

/// Precomputed `result(q, p)` counts, totals, per-peer workload weights,
/// and per-cluster recall masses.
#[derive(Debug, Clone)]
pub struct RecallIndex {
    /// All distinct queries appearing in any workload.
    queries: Vec<Query>,
    qid_of: HashMap<Query, QueryId>,
    /// Per peer: sorted `(qid, result count)` for queries the peer can
    /// answer (nonzero results only).
    peer_results: Vec<Vec<(QueryId, u64)>>,
    /// Per query: `Σ_p result(q, p)`.
    totals: Vec<u64>,
    /// Per peer: `(qid, relative frequency in the peer's workload)`.
    peer_workload: Vec<Vec<(QueryId, f64)>>,
    /// Per query × cluster: `Σ_{pj ∈ c} r(q, pj)`. Refreshed by
    /// [`RecallIndex::refresh_mass`].
    mass: Vec<Vec<f64>>,
}

impl RecallIndex {
    /// Builds the index for the given content and workloads and computes
    /// cluster masses for the overlay's current assignment.
    ///
    /// # Panics
    /// Panics if `workloads.len()` differs from the overlay's peer-slot
    /// count or the store's.
    pub fn build(overlay: &Overlay, store: &ContentStore, workloads: &[Workload]) -> Self {
        assert_eq!(
            workloads.len(),
            overlay.n_slots(),
            "one workload per peer slot"
        );
        assert_eq!(store.n_peers(), overlay.n_slots(), "store/overlay mismatch");

        // Collect distinct queries across all workloads.
        let mut queries: Vec<Query> = Vec::new();
        let mut qid_of: HashMap<Query, QueryId> = HashMap::new();
        for w in workloads {
            for (q, _) in w.iter() {
                if !qid_of.contains_key(q) {
                    qid_of.insert(q.clone(), queries.len() as QueryId);
                    queries.push(q.clone());
                }
            }
        }

        // result(q, p) for every distinct query and peer.
        let n_slots = overlay.n_slots();
        let mut peer_results: Vec<Vec<(QueryId, u64)>> = vec![Vec::new(); n_slots];
        let mut totals = vec![0u64; queries.len()];
        for (slot, results) in peer_results.iter_mut().enumerate() {
            let peer = PeerId::from_index(slot);
            let docs = store.docs(peer);
            if docs.is_empty() {
                continue;
            }
            for (qid, q) in queries.iter().enumerate() {
                let count = q.result_count(docs);
                if count > 0 {
                    results.push((qid as QueryId, count));
                    totals[qid] += count;
                }
            }
        }

        // Per-peer workload weights.
        let peer_workload = workloads
            .iter()
            .map(|w| {
                w.iter()
                    .map(|(q, n)| (qid_of[q], n as f64 / w.total() as f64))
                    .collect()
            })
            .collect();

        let mut index = RecallIndex {
            queries,
            qid_of,
            peer_results,
            totals,
            peer_workload,
            mass: Vec::new(),
        };
        index.refresh_mass(overlay);
        index
    }

    /// Recomputes the per-cluster recall masses from the overlay's
    /// current assignment. Call after any membership change.
    pub fn refresh_mass(&mut self, overlay: &Overlay) {
        let cmax = overlay.cmax();
        self.mass = vec![vec![0.0; cmax]; self.queries.len()];
        for slot in 0..overlay.n_slots() {
            let peer = PeerId::from_index(slot);
            let Some(cid) = overlay.cluster_of(peer) else {
                continue;
            };
            for &(qid, count) in &self.peer_results[slot] {
                let total = self.totals[qid as usize];
                if total > 0 {
                    self.mass[qid as usize][cid.index()] += count as f64 / total as f64;
                }
            }
        }
    }

    /// Number of distinct queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// The distinct queries, in id order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The id of a query, if it appears in some workload.
    pub fn qid(&self, q: &Query) -> Option<QueryId> {
        self.qid_of.get(q).copied()
    }

    /// `result(q, p)`.
    pub fn result(&self, qid: QueryId, peer: PeerId) -> u64 {
        self.peer_results[peer.index()]
            .binary_search_by_key(&qid, |&(q, _)| q)
            .map(|i| self.peer_results[peer.index()][i].1)
            .unwrap_or(0)
    }

    /// `Σ_p result(q, p)`.
    pub fn total(&self, qid: QueryId) -> u64 {
        self.totals[qid as usize]
    }

    /// `r(q, p)`; zero when the query has no results anywhere (the 0/0
    /// case is defined as 0 — an unanswerable query costs nothing).
    pub fn r(&self, qid: QueryId, peer: PeerId) -> f64 {
        let total = self.totals[qid as usize];
        if total == 0 {
            0.0
        } else {
            self.result(qid, peer) as f64 / total as f64
        }
    }

    /// Recall mass of cluster `cid` for query `qid`:
    /// `Σ_{pj ∈ c} r(q, pj)` under the assignment last passed to
    /// [`RecallIndex::refresh_mass`].
    pub fn cluster_mass(&self, qid: QueryId, cid: recluster_types::ClusterId) -> f64 {
        self.mass[qid as usize][cid.index()]
    }

    /// The `(qid, relative frequency)` pairs of a peer's workload.
    pub fn workload_of(&self, peer: PeerId) -> &[(QueryId, f64)] {
        &self.peer_workload[peer.index()]
    }

    /// The `(qid, result count)` pairs a peer can answer.
    pub fn results_of(&self, peer: PeerId) -> &[(QueryId, u64)] {
        &self.peer_results[peer.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::{ClusterId, Document, Sym};

    /// 3 peers: p0 holds {1,2}, p1 holds {1},{1,3}, p2 holds {2}.
    /// p0 queries kw(1) twice and kw(2) once; p1 queries kw(2); p2 none.
    fn fixture() -> (Overlay, ContentStore, Vec<Workload>) {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(1), ClusterId(0));
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(1), Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(3)]));
        store.add(PeerId(2), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 2);
        w0.add(Query::keyword(Sym(2)), 1);
        let mut w1 = Workload::new();
        w1.add(Query::keyword(Sym(2)), 1);
        let workloads = vec![w0, w1, Workload::new()];
        (ov, store, workloads)
    }

    #[test]
    fn result_counts_match_manual_evaluation() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        let q2 = idx.qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(idx.result(q1, PeerId(0)), 1);
        assert_eq!(idx.result(q1, PeerId(1)), 2);
        assert_eq!(idx.result(q1, PeerId(2)), 0);
        assert_eq!(idx.total(q1), 3);
        assert_eq!(idx.result(q2, PeerId(0)), 1);
        assert_eq!(idx.result(q2, PeerId(2)), 1);
        assert_eq!(idx.total(q2), 2);
    }

    #[test]
    fn r_fractions_sum_to_one_over_peers() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        for qid in 0..idx.n_queries() as QueryId {
            let sum: f64 = (0..3).map(|p| idx.r(qid, PeerId(p))).sum();
            assert!((sum - 1.0).abs() < 1e-12, "qid {qid}: {sum}");
        }
    }

    #[test]
    fn cluster_mass_reflects_assignment() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        // c0 = {p0, p1}: mass = 1/3 + 2/3 = 1.
        assert!((idx.cluster_mass(q1, ClusterId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(idx.cluster_mass(q1, ClusterId(2)), 0.0);
        let q2 = idx.qid(&Query::keyword(Sym(2))).unwrap();
        assert!((idx.cluster_mass(q2, ClusterId(0)) - 0.5).abs() < 1e-12);
        assert!((idx.cluster_mass(q2, ClusterId(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn refresh_mass_tracks_moves() {
        let (mut ov, store, w) = fixture();
        let mut idx = RecallIndex::build(&ov, &store, &w);
        ov.move_peer(PeerId(2), ClusterId(0));
        idx.refresh_mass(&ov);
        let q2 = idx.qid(&Query::keyword(Sym(2))).unwrap();
        assert!((idx.cluster_mass(q2, ClusterId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(idx.cluster_mass(q2, ClusterId(2)), 0.0);
    }

    #[test]
    fn workload_weights_are_relative_frequencies() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        let wl = idx.workload_of(PeerId(0));
        assert_eq!(wl.len(), 2);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        let freq1 = wl.iter().find(|&&(q, _)| q == q1).unwrap().1;
        assert!((freq1 - 2.0 / 3.0).abs() < 1e-12);
        assert!(idx.workload_of(PeerId(2)).is_empty());
    }

    #[test]
    fn unanswerable_query_has_zero_r() {
        let mut ov = Overlay::singletons(2);
        ov.move_peer(PeerId(1), ClusterId(0));
        let store = ContentStore::new(2);
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(9)), 1);
        let idx = RecallIndex::build(&ov, &store, &[w0, Workload::new()]);
        let q = idx.qid(&Query::keyword(Sym(9))).unwrap();
        assert_eq!(idx.total(q), 0);
        assert_eq!(idx.r(q, PeerId(0)), 0.0);
        assert_eq!(idx.cluster_mass(q, ClusterId(0)), 0.0);
    }

    #[test]
    fn departed_peers_do_not_contribute_mass() {
        let (mut ov, store, w) = fixture();
        let mut idx = RecallIndex::build(&ov, &store, &w);
        ov.unassign(PeerId(1));
        idx.refresh_mass(&ov);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        // Only p0's share remains in c0. (Totals still count p1's data —
        // callers rebuild the index when content actually changes.)
        assert!((idx.cluster_mass(q1, ClusterId(0)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one workload per peer slot")]
    fn mismatched_workloads_panic() {
        let (ov, store, _) = fixture();
        let _ = RecallIndex::build(&ov, &store, &[]);
    }
}
