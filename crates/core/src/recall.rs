//! The recall model `r(q, p)` as a precomputed index.
//!
//! §2 defines the importance of a peer for a query as
//! `r(q,p) = result(q,p) / Σ_{pk∈P} result(q,pk)` — the recall achieved
//! when `q` is evaluated solely on `p`. Cost evaluation needs `r(q, p)`
//! for every (distinct query, peer) pair and, per candidate cluster, the
//! *recall mass* `Σ_{pj∈c} r(q, pj)`. [`RecallIndex`] precomputes all of
//! it from the content store and the union of workloads, and maintains
//! **all** of its state incrementally:
//!
//! * membership changes via [`RecallIndex::apply_move`] /
//!   [`RecallIndex::apply_join`] / [`RecallIndex::apply_leave`]
//!   (O(results-of-peer) each), with [`RecallIndex::rebuild`] as the
//!   mass oracle;
//! * content changes via [`RecallIndex::apply_content_update`]
//!   (O(candidate queries × docs-of-peer) — candidates come from an
//!   attribute → query inverted index, so only queries that could match
//!   the changed documents are re-evaluated);
//! * workload changes via [`RecallIndex::set_workload`], which registers
//!   genuinely new queries with [`RecallIndex::ensure_query`]
//!   (O(peers) per *new* distinct query — the unavoidable cost of a
//!   fresh result column) and rewrites one peer's weight row.
//!
//! [`RecallIndex::rebuild_from`] is the full content-aware oracle: it
//! recomputes every result count, total, weight row and mass numerator
//! for the **current query universe** from the store and workloads.
//!
//! # Incremental-index invariants
//!
//! The per-cluster mass is stored as an **integer numerator**
//! `Σ_{pj ∈ c} result(q, pj)`; the float mass is derived on lookup as
//! `numerator / total(q)`. Result counts and totals are integers too, so
//! every delta is exact and order-independent, and a delta-maintained
//! index is bit-for-bit equal to [`RecallIndex::rebuild_from`] after
//! *any* interleaving of membership, content, and workload changes —
//! property-tested in `tests/prop_incremental.rs`. (A from-scratch
//! [`RecallIndex::build`] may number queries differently and drop
//! stale ones, but derived quantities — `r`, masses, `pcost` — are
//! bit-identical under either numbering.)

use std::collections::HashMap;

use recluster_overlay::{ContentStore, Overlay};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

/// Identifier of a distinct query inside a [`RecallIndex`].
pub type QueryId = u32;

/// Precomputed `result(q, p)` counts, totals, per-peer workload weights,
/// and per-cluster recall masses.
#[derive(Debug, Clone)]
pub struct RecallIndex {
    /// All distinct queries appearing in any workload.
    queries: Vec<Query>,
    qid_of: HashMap<Query, QueryId>,
    /// Per peer: sorted `(qid, result count)` for queries the peer can
    /// answer (nonzero results only).
    peer_results: Vec<Vec<(QueryId, u64)>>,
    /// Per query: `Σ_p result(q, p)`.
    totals: Vec<u64>,
    /// Per peer: `(qid, relative frequency in the peer's workload)`.
    peer_workload: Vec<Vec<(QueryId, f64)>>,
    /// Per query: numerator of the cluster recall mass as a **sparse**
    /// row of `(cluster, Σ_{pj ∈ c} result(q, pj))` pairs, ascending by
    /// cluster id, with the invariant *present ⟺ nonzero*. A query's
    /// results concentrate in a handful of clusters while `Cmax` can
    /// equal the peer count, so dense rows are O(queries × Cmax) memory
    /// (≈ 4.8 GB at a million peers) against O(Σ non-zero cells) here.
    /// Maintained by the `apply_*` deltas; [`RecallIndex::rebuild`]
    /// recomputes it.
    mass_num: Vec<Vec<(ClusterId, u64)>>,
    /// Cluster slots each `mass_num` row covers (the overlay's `Cmax` at
    /// the last rebuild/growth).
    cmax: usize,
    /// Attribute → ids of queries containing it (ascending). A non-empty
    /// query can only match a document that carries *all* its attributes,
    /// so the union of these buckets over a document set covers every
    /// query with a nonzero result there — the candidate set content
    /// deltas re-evaluate.
    by_attr: HashMap<Sym, Vec<QueryId>>,
    /// Ids of attribute-less queries, which match every document and so
    /// are always candidates.
    universal: Vec<QueryId>,
}

impl RecallIndex {
    /// Builds the index for the given content and workloads and computes
    /// cluster masses for the overlay's current assignment.
    ///
    /// # Panics
    /// Panics if `workloads.len()` differs from the overlay's peer-slot
    /// count or the store's.
    pub fn build(overlay: &Overlay, store: &ContentStore, workloads: &[Workload]) -> Self {
        assert_eq!(
            workloads.len(),
            overlay.n_slots(),
            "one workload per peer slot"
        );
        assert_eq!(store.n_peers(), overlay.n_slots(), "store/overlay mismatch");

        let n_slots = overlay.n_slots();
        let mut index = RecallIndex {
            queries: Vec::new(),
            qid_of: HashMap::new(),
            peer_results: vec![Vec::new(); n_slots],
            totals: Vec::new(),
            peer_workload: Vec::new(),
            mass_num: Vec::new(),
            cmax: 0,
            by_attr: HashMap::new(),
            universal: Vec::new(),
        };

        // Collect distinct queries across all workloads (ids in first-seen
        // order), populating the attribute → query inverted index.
        for w in workloads {
            for (q, _) in w.iter() {
                index.register_query(q);
            }
        }

        // result(q, p) for every distinct query and peer, restricted to
        // the candidate queries sharing an attribute with the peer's
        // documents (exact: any other query has zero results there).
        for slot in 0..n_slots {
            let row = index.row_for(store.docs(PeerId::from_index(slot)));
            for &(qid, count) in &row {
                index.totals[qid as usize] += count;
            }
            index.peer_results[slot] = row;
        }

        // Per-peer workload weights.
        index.peer_workload = workloads
            .iter()
            .map(|w| {
                w.iter()
                    .map(|(q, n)| (index.qid_of[q], n as f64 / w.total() as f64))
                    .collect()
            })
            .collect();

        index.rebuild(overlay);
        index
    }

    /// Registers `query` in the universe (no result column yet): id maps,
    /// a zeroed total, a zeroed mass row, and the inverted-index buckets.
    /// Returns the id (existing or fresh).
    fn register_query(&mut self, query: &Query) -> QueryId {
        if let Some(&id) = self.qid_of.get(query) {
            return id;
        }
        let qid = self.queries.len() as QueryId;
        self.qid_of.insert(query.clone(), qid);
        if query.is_empty() {
            self.universal.push(qid);
        } else {
            for &a in query.attrs() {
                self.by_attr.entry(a).or_default().push(qid);
            }
        }
        self.queries.push(query.clone());
        self.totals.push(0);
        self.mass_num.push(Vec::new());
        qid
    }

    /// The `(qid, result count)` row of a document set: candidate queries
    /// come from the inverted index (plus the attribute-less ones), so
    /// only queries that can possibly match are evaluated. Ascending qids,
    /// nonzero counts only — exactly what a full scan would produce.
    fn row_for(&self, docs: &[Document]) -> Vec<(QueryId, u64)> {
        if docs.is_empty() {
            return Vec::new();
        }
        let mut candidates: Vec<QueryId> = self.universal.clone();
        for doc in docs {
            for a in doc.attrs() {
                if let Some(bucket) = self.by_attr.get(a) {
                    candidates.extend_from_slice(bucket);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut row = Vec::with_capacity(candidates.len());
        for qid in candidates {
            let count = self.queries[qid as usize].result_count(docs);
            if count > 0 {
                row.push((qid, count));
            }
        }
        row
    }

    /// Registers `query` and, when it is genuinely new, computes its full
    /// result column (counts, total, mass contributions of assigned
    /// holders) — O(peers × docs-of-peer) for a new query, O(1) for a
    /// known one. New ids are appended, so existing rows stay sorted.
    pub fn ensure_query(
        &mut self,
        query: &Query,
        overlay: &Overlay,
        store: &ContentStore,
    ) -> QueryId {
        if let Some(&id) = self.qid_of.get(query) {
            return id;
        }
        let qid = self.register_query(query);
        debug_assert_eq!(store.n_peers(), self.peer_results.len());
        for slot in 0..self.peer_results.len() {
            let peer = PeerId::from_index(slot);
            let count = query.result_count(store.docs(peer));
            if count > 0 {
                self.peer_results[slot].push((qid, count));
                self.totals[qid as usize] += count;
                if let Some(cid) = overlay.cluster_of(peer) {
                    mass_add(&mut self.mass_num[qid as usize], cid, count);
                }
            }
        }
        qid
    }

    /// Delta-update for a peer's content being replaced by `new_docs`:
    /// the old result row (still stored here) leaves the totals — and the
    /// mass of `cid` when the peer is assigned — and a freshly evaluated
    /// row enters both. O(candidate queries × docs); bit-identical to
    /// [`RecallIndex::rebuild_from`] because every quantity is an
    /// integer. Pass `cid = None` for an unassigned peer (e.g. retiring a
    /// churn leaver's documents after [`RecallIndex::apply_leave`]).
    pub fn apply_content_update(
        &mut self,
        peer: PeerId,
        cid: Option<ClusterId>,
        new_docs: &[Document],
    ) {
        let old = std::mem::take(&mut self.peer_results[peer.index()]);
        for &(qid, count) in &old {
            self.totals[qid as usize] -= count;
            if let Some(c) = cid {
                mass_sub(&mut self.mass_num[qid as usize], c, count);
            }
        }
        let row = self.row_for(new_docs);
        for &(qid, count) in &row {
            self.totals[qid as usize] += count;
            if let Some(c) = cid {
                mass_add(&mut self.mass_num[qid as usize], c, count);
            }
        }
        self.peer_results[peer.index()] = row;
    }

    /// Delta-update for a peer's workload being replaced: registers any
    /// genuinely new queries (via [`RecallIndex::ensure_query`]) and
    /// rewrites the peer's weight row. Totals and masses of existing
    /// queries are untouched — workload changes never alter
    /// `result(q, p)`.
    pub fn set_workload(
        &mut self,
        peer: PeerId,
        workload: &Workload,
        overlay: &Overlay,
        store: &ContentStore,
    ) {
        let total = workload.total();
        let mut row = Vec::with_capacity(workload.distinct());
        for (q, n) in workload.iter() {
            let qid = self.ensure_query(q, overlay, store);
            row.push((qid, n as f64 / total as f64));
        }
        self.peer_workload[peer.index()] = row;
    }

    /// Recomputes every result count, total, workload weight and mass
    /// numerator from the store, workloads and assignment, for the
    /// **current query universe** (ids preserved, stale queries kept) —
    /// the content-aware oracle the `apply_content_update` /
    /// `set_workload` deltas are property-tested against. Deliberately
    /// brute-force: every query is evaluated against every peer.
    ///
    /// # Panics
    /// Panics if the slot counts disagree, or if a workload contains a
    /// query that was never registered.
    pub fn rebuild_from(
        &mut self,
        overlay: &Overlay,
        store: &ContentStore,
        workloads: &[Workload],
    ) {
        assert_eq!(
            workloads.len(),
            overlay.n_slots(),
            "one workload per peer slot"
        );
        assert_eq!(store.n_peers(), overlay.n_slots(), "store/overlay mismatch");
        let n_slots = overlay.n_slots();
        self.totals = vec![0; self.queries.len()];
        self.peer_results = vec![Vec::new(); n_slots];
        for slot in 0..n_slots {
            let docs = store.docs(PeerId::from_index(slot));
            if docs.is_empty() {
                continue;
            }
            let mut row = Vec::new();
            for (qid, q) in self.queries.iter().enumerate() {
                let count = q.result_count(docs);
                if count > 0 {
                    row.push((qid as QueryId, count));
                    self.totals[qid] += count;
                }
            }
            self.peer_results[slot] = row;
        }
        let qid_of = &self.qid_of;
        self.peer_workload = workloads
            .iter()
            .map(|w| {
                w.iter()
                    .map(|(q, n)| (qid_of[q], n as f64 / w.total() as f64))
                    .collect()
            })
            .collect();
        self.rebuild(overlay);
    }

    /// Recomputes the per-cluster recall masses from scratch for the
    /// overlay's current assignment — the oracle the incremental
    /// `apply_*` path is checked against, and the escape hatch when the
    /// caller has lost track of individual membership changes.
    pub fn rebuild(&mut self, overlay: &Overlay) {
        self.cmax = overlay.cmax();
        self.mass_num = vec![Vec::new(); self.queries.len()];
        for slot in 0..overlay.n_slots() {
            let peer = PeerId::from_index(slot);
            let Some(cid) = overlay.cluster_of(peer) else {
                continue;
            };
            for &(qid, count) in &self.peer_results[slot] {
                mass_add(&mut self.mass_num[qid as usize], cid, count);
            }
        }
    }

    /// Recomputes the per-cluster recall masses from the overlay's
    /// current assignment (alias of [`RecallIndex::rebuild`], kept for
    /// callers that predate the incremental API).
    pub fn refresh_mass(&mut self, overlay: &Overlay) {
        self.rebuild(overlay);
    }

    /// Notes that the overlay now has `cmax` cluster slots (after
    /// [`Overlay::grow`]); existing masses are untouched. The sparse
    /// rows need no resizing — a cluster with no mass simply has no
    /// entry — so this only tracks the width for [`RecallIndex::mass_cmax`].
    pub fn ensure_cmax(&mut self, cmax: usize) {
        if cmax > self.cmax {
            self.cmax = cmax;
        }
    }

    /// Grows the per-peer tables to cover `n_slots` peer slots (after
    /// [`Overlay::grow`]). New slots start with no indexed results or
    /// workload — a newcomer's *content* enters the index through
    /// [`RecallIndex::apply_content_update`], its workload through
    /// [`RecallIndex::set_workload`]; until then its membership deltas
    /// are exact no-ops.
    pub fn ensure_peer_slots(&mut self, n_slots: usize) {
        if n_slots > self.peer_results.len() {
            self.peer_results.resize(n_slots, Vec::new());
            self.peer_workload.resize(n_slots, Vec::new());
        }
    }

    /// Delta-update for a peer moving `from → to`: its result counts
    /// leave one cluster's mass numerator and enter the other's.
    /// O(|results of peer|), and bit-identical to a full
    /// [`RecallIndex::rebuild`] because the numerators are integers.
    pub fn apply_move(&mut self, peer: PeerId, from: ClusterId, to: ClusterId) {
        if from == to {
            return;
        }
        for &(qid, count) in &self.peer_results[peer.index()] {
            let row = &mut self.mass_num[qid as usize];
            mass_sub(row, from, count);
            mass_add(row, to, count);
        }
    }

    /// Delta-update for an already-indexed peer joining cluster `to`
    /// (assignment of an unassigned peer slot). The peer's content must
    /// already be part of the index's totals — churn joins that *add*
    /// content follow up with [`RecallIndex::apply_content_update`].
    pub fn apply_join(&mut self, peer: PeerId, to: ClusterId) {
        for &(qid, count) in &self.peer_results[peer.index()] {
            mass_add(&mut self.mass_num[qid as usize], to, count);
        }
    }

    /// Delta-update for a peer leaving cluster `from` (churn departure).
    /// Totals still count the departed peer's data, matching
    /// [`RecallIndex::rebuild`] semantics — when its documents are
    /// actually dropped from the store, follow up with
    /// [`RecallIndex::apply_content_update`]`(peer, None, &[])`.
    pub fn apply_leave(&mut self, peer: PeerId, from: ClusterId) {
        for &(qid, count) in &self.peer_results[peer.index()] {
            mass_sub(&mut self.mass_num[qid as usize], from, count);
        }
    }

    /// Number of distinct queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// The distinct queries, in id order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The id of a query, if it appears in some workload.
    pub fn qid(&self, q: &Query) -> Option<QueryId> {
        self.qid_of.get(q).copied()
    }

    /// `result(q, p)`.
    pub fn result(&self, qid: QueryId, peer: PeerId) -> u64 {
        self.peer_results[peer.index()]
            .binary_search_by_key(&qid, |&(q, _)| q)
            .map(|i| self.peer_results[peer.index()][i].1)
            .unwrap_or(0)
    }

    /// `Σ_p result(q, p)`.
    pub fn total(&self, qid: QueryId) -> u64 {
        self.totals[qid as usize]
    }

    /// `r(q, p)`; zero when the query has no results anywhere (the 0/0
    /// case is defined as 0 — an unanswerable query costs nothing).
    pub fn r(&self, qid: QueryId, peer: PeerId) -> f64 {
        let total = self.totals[qid as usize];
        if total == 0 {
            0.0
        } else {
            self.result(qid, peer) as f64 / total as f64
        }
    }

    /// Recall mass of cluster `cid` for query `qid`:
    /// `Σ_{pj ∈ c} r(q, pj)` under the maintained assignment, derived as
    /// `cluster_mass_num / total` (zero for unanswerable queries).
    pub fn cluster_mass(&self, qid: QueryId, cid: ClusterId) -> f64 {
        let total = self.totals[qid as usize];
        if total == 0 {
            0.0
        } else {
            self.cluster_mass_num(qid, cid) as f64 / total as f64
        }
    }

    /// The integer numerator behind [`RecallIndex::cluster_mass`]:
    /// `Σ_{pj ∈ c} result(q, pj)`. Exposed so equivalence tests can
    /// assert delta-maintained state equals a rebuild *exactly*.
    pub fn cluster_mass_num(&self, qid: QueryId, cid: ClusterId) -> u64 {
        let row = &self.mass_num[qid as usize];
        row.binary_search_by_key(&cid, |&(c, _)| c)
            .map(|i| row[i].1)
            .unwrap_or(0)
    }

    /// The nonzero mass cells of a query: ascending `(cluster,
    /// numerator)` pairs, entries present **iff** nonzero. The memo
    /// gate's O(log) "does this peer's workload overlap cluster `c` at
    /// all" probe, and the place a sweep over a query's populated
    /// clusters avoids touching `Cmax` slots.
    pub fn mass_row(&self, qid: QueryId) -> &[(ClusterId, u64)] {
        &self.mass_num[qid as usize]
    }

    /// Cluster slots the mass rows cover.
    pub fn mass_cmax(&self) -> usize {
        self.cmax
    }

    /// The `(qid, relative frequency)` pairs of a peer's workload.
    pub fn workload_of(&self, peer: PeerId) -> &[(QueryId, f64)] {
        &self.peer_workload[peer.index()]
    }

    /// The `(qid, result count)` pairs a peer can answer.
    pub fn results_of(&self, peer: PeerId) -> &[(QueryId, u64)] {
        &self.peer_results[peer.index()]
    }
}

/// Adds `count` to a sparse mass row, inserting the cluster's cell at
/// its sorted position if absent. `count` must be nonzero (callers only
/// pass stored result counts, which are nonzero by construction).
fn mass_add(row: &mut Vec<(ClusterId, u64)>, cid: ClusterId, count: u64) {
    match row.binary_search_by_key(&cid, |&(c, _)| c) {
        Ok(i) => row[i].1 += count,
        Err(i) => row.insert(i, (cid, count)),
    }
}

/// Subtracts `count` from a sparse mass row, removing the cell when it
/// reaches zero (the *present ⟺ nonzero* invariant).
///
/// # Panics
/// Panics if the cluster has no cell or less mass than `count` — the
/// same accounting bug a dense row would surface as integer underflow.
fn mass_sub(row: &mut Vec<(ClusterId, u64)>, cid: ClusterId, count: u64) {
    let i = row
        .binary_search_by_key(&cid, |&(c, _)| c)
        .unwrap_or_else(|_| panic!("mass underflow: no cell for {cid}"));
    row[i].1 = row[i].1.checked_sub(count).expect("mass underflow");
    if row[i].1 == 0 {
        row.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::{ClusterId, Document, Sym};

    /// 3 peers: p0 holds {1,2}, p1 holds {1},{1,3}, p2 holds {2}.
    /// p0 queries kw(1) twice and kw(2) once; p1 queries kw(2); p2 none.
    fn fixture() -> (Overlay, ContentStore, Vec<Workload>) {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(1), ClusterId(0));
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(1), Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(3)]));
        store.add(PeerId(2), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 2);
        w0.add(Query::keyword(Sym(2)), 1);
        let mut w1 = Workload::new();
        w1.add(Query::keyword(Sym(2)), 1);
        let workloads = vec![w0, w1, Workload::new()];
        (ov, store, workloads)
    }

    #[test]
    fn result_counts_match_manual_evaluation() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        let q2 = idx.qid(&Query::keyword(Sym(2))).unwrap();
        assert_eq!(idx.result(q1, PeerId(0)), 1);
        assert_eq!(idx.result(q1, PeerId(1)), 2);
        assert_eq!(idx.result(q1, PeerId(2)), 0);
        assert_eq!(idx.total(q1), 3);
        assert_eq!(idx.result(q2, PeerId(0)), 1);
        assert_eq!(idx.result(q2, PeerId(2)), 1);
        assert_eq!(idx.total(q2), 2);
    }

    #[test]
    fn r_fractions_sum_to_one_over_peers() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        for qid in 0..idx.n_queries() as QueryId {
            let sum: f64 = (0..3).map(|p| idx.r(qid, PeerId(p))).sum();
            assert!((sum - 1.0).abs() < 1e-12, "qid {qid}: {sum}");
        }
    }

    #[test]
    fn cluster_mass_reflects_assignment() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        // c0 = {p0, p1}: mass = 1/3 + 2/3 = 1.
        assert!((idx.cluster_mass(q1, ClusterId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(idx.cluster_mass(q1, ClusterId(2)), 0.0);
        let q2 = idx.qid(&Query::keyword(Sym(2))).unwrap();
        assert!((idx.cluster_mass(q2, ClusterId(0)) - 0.5).abs() < 1e-12);
        assert!((idx.cluster_mass(q2, ClusterId(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn refresh_mass_tracks_moves() {
        let (mut ov, store, w) = fixture();
        let mut idx = RecallIndex::build(&ov, &store, &w);
        ov.move_peer(PeerId(2), ClusterId(0));
        idx.refresh_mass(&ov);
        let q2 = idx.qid(&Query::keyword(Sym(2))).unwrap();
        assert!((idx.cluster_mass(q2, ClusterId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(idx.cluster_mass(q2, ClusterId(2)), 0.0);
    }

    #[test]
    fn workload_weights_are_relative_frequencies() {
        let (ov, store, w) = fixture();
        let idx = RecallIndex::build(&ov, &store, &w);
        let wl = idx.workload_of(PeerId(0));
        assert_eq!(wl.len(), 2);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        let freq1 = wl.iter().find(|&&(q, _)| q == q1).unwrap().1;
        assert!((freq1 - 2.0 / 3.0).abs() < 1e-12);
        assert!(idx.workload_of(PeerId(2)).is_empty());
    }

    #[test]
    fn unanswerable_query_has_zero_r() {
        let mut ov = Overlay::singletons(2);
        ov.move_peer(PeerId(1), ClusterId(0));
        let store = ContentStore::new(2);
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(9)), 1);
        let idx = RecallIndex::build(&ov, &store, &[w0, Workload::new()]);
        let q = idx.qid(&Query::keyword(Sym(9))).unwrap();
        assert_eq!(idx.total(q), 0);
        assert_eq!(idx.r(q, PeerId(0)), 0.0);
        assert_eq!(idx.cluster_mass(q, ClusterId(0)), 0.0);
    }

    #[test]
    fn departed_peers_do_not_contribute_mass() {
        let (mut ov, store, w) = fixture();
        let mut idx = RecallIndex::build(&ov, &store, &w);
        ov.unassign(PeerId(1));
        idx.refresh_mass(&ov);
        let q1 = idx.qid(&Query::keyword(Sym(1))).unwrap();
        // Only p0's share remains in c0. (Totals still count p1's data —
        // callers rebuild the index when content actually changes.)
        assert!((idx.cluster_mass(q1, ClusterId(0)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one workload per peer slot")]
    fn mismatched_workloads_panic() {
        let (ov, store, _) = fixture();
        let _ = RecallIndex::build(&ov, &store, &[]);
    }

    /// Exact (bit-level) equality of all mass numerators between a
    /// delta-maintained index and a rebuilt one.
    fn assert_masses_identical(delta: &RecallIndex, oracle: &RecallIndex, cmax: usize) {
        for qid in 0..delta.n_queries() as QueryId {
            for c in 0..cmax {
                let cid = ClusterId::from_index(c);
                assert_eq!(
                    delta.cluster_mass_num(qid, cid),
                    oracle.cluster_mass_num(qid, cid),
                    "qid {qid} cluster {c}"
                );
                assert!(
                    delta.cluster_mass(qid, cid).to_bits()
                        == oracle.cluster_mass(qid, cid).to_bits(),
                    "float mass differs at qid {qid} cluster {c}"
                );
            }
        }
    }

    #[test]
    fn apply_move_is_bit_identical_to_rebuild() {
        let (mut ov, store, w) = fixture();
        let mut idx = RecallIndex::build(&ov, &store, &w);
        for (peer, to) in [(1u32, 2u32), (2, 0), (0, 2), (1, 1), (2, 1)] {
            let from = ov.move_peer(PeerId(peer), ClusterId(to));
            idx.apply_move(PeerId(peer), from, ClusterId(to));
            let mut oracle = idx.clone();
            oracle.rebuild(&ov);
            assert_masses_identical(&idx, &oracle, ov.cmax());
        }
    }

    #[test]
    fn apply_leave_and_join_match_rebuild() {
        let (mut ov, store, w) = fixture();
        let mut idx = RecallIndex::build(&ov, &store, &w);
        let from = ov.unassign(PeerId(1)).unwrap();
        idx.apply_leave(PeerId(1), from);
        let mut oracle = idx.clone();
        oracle.rebuild(&ov);
        assert_masses_identical(&idx, &oracle, ov.cmax());

        ov.assign(PeerId(1), ClusterId(2));
        idx.apply_join(PeerId(1), ClusterId(2));
        oracle.rebuild(&ov);
        assert_masses_identical(&idx, &oracle, ov.cmax());
    }

    #[test]
    fn grown_slots_are_inert_until_rebuild() {
        let (mut ov, store, w) = fixture();
        let mut idx = RecallIndex::build(&ov, &store, &w);
        let newcomer = ov.grow();
        idx.ensure_cmax(ov.cmax());
        idx.ensure_peer_slots(ov.n_slots());
        ov.assign(newcomer, ClusterId(0));
        idx.apply_join(newcomer, ClusterId(0));
        // No content indexed for the newcomer: masses unchanged, and the
        // new cluster slot reads zero.
        let mut oracle = idx.clone();
        oracle.rebuild(&ov);
        assert_masses_identical(&idx, &oracle, ov.cmax());
        assert_eq!(idx.mass_cmax(), 4);
        assert!(idx.results_of(newcomer).is_empty());
    }
}
