//! Global quality criteria: social cost and workload cost (§2.2).
//!
//! `SCost(S) = Σ_p pcost(p, s_p)` (Eq. 2) weighs every peer equally;
//! `WCost(S)` (Eq. 3) re-weights each query by its frequency in the
//! *global* workload, so "more demanding peers […] are more important
//! than low demanding ones". The experiments report both, normalized —
//! we divide by `|P|` (the mean individual cost), which reproduces the
//! paper's value of `0.1` for the ideal 10-cluster configuration of 200
//! peers at `α = 1` with linear `θ` (`20/200 = 0.1`).
//!
//! Both criteria read the per-peer recall terms from the
//! [`CostCache`](crate::costcache::CostCache): a call after `k` peers
//! changed recomputes only those `k` entries (plus the O(peers) final
//! sum), instead of re-deriving every peer's workload-weighted loss.
//!
//! # Examples
//!
//! Two peers holding each other's interests pay only the membership
//! term once co-clustered:
//!
//! ```
//! use recluster_core::{scost_normalized, wcost_normalized, GameConfig, System};
//! use recluster_overlay::{ContentStore, Overlay};
//! use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};
//!
//! let mut ov = Overlay::singletons(2);
//! ov.move_peer(PeerId(1), ClusterId(0));
//! let mut store = ContentStore::new(2);
//! store.add(PeerId(0), Document::new(vec![Sym(2)]));
//! store.add(PeerId(1), Document::new(vec![Sym(1)]));
//! let mut w0 = Workload::new();
//! w0.add(Query::keyword(Sym(1)), 1);
//! let mut w1 = Workload::new();
//! w1.add(Query::keyword(Sym(2)), 1);
//! let sys = System::new(ov, store, vec![w0, w1], GameConfig::default());
//!
//! // One cluster of 2 among 2 peers, α = 1, linear θ: θ(2)/2 = 1 each;
//! // no recall is lost, so both normalized criteria equal 1.0.
//! assert!((scost_normalized(&sys) - 1.0).abs() < 1e-12);
//! assert!((wcost_normalized(&sys) - 1.0).abs() < 1e-12);
//! ```

use crate::cost::membership_cost;
use crate::view::SystemRead;

/// `SCost(S)` (Eq. 2): the sum of all individual costs — the O(1)
/// membership terms computed on the fly plus the cached recall terms,
/// summed in peer order (bit-identical to summing
/// [`pcost_current`](crate::cost::pcost_current) directly).
pub fn scost<S: SystemRead + ?Sized>(system: &S) -> f64 {
    system
        .overlay()
        .peers()
        .map(|p| {
            let cid = system.overlay().cluster_of(p).expect("live peer");
            membership_cost(system, p, cid) + system.cached_recall_loss(p)
        })
        .sum()
}

/// Normalized social cost: `SCost / |P|` (the mean individual cost).
pub fn scost_normalized<S: SystemRead + ?Sized>(system: &S) -> f64 {
    let n = system.n_peers();
    if n == 0 {
        0.0
    } else {
        scost(system) / n as f64
    }
}

/// The two terms of `SCost` separately: `(membership, recall)`. Useful
/// for Property-1 checks and for the `α`-ablation benches.
pub fn scost_terms<S: SystemRead + ?Sized>(system: &S) -> (f64, f64) {
    let recall: f64 = system
        .overlay()
        .peers()
        .map(|p| system.cached_recall_loss(p))
        .sum();
    (scost(system) - recall, recall)
}

/// The membership term of `WCost` (Eq. 3, first term):
/// `α · Σ_c |c|·θ(|c|) / |P|` — each cluster's maintenance cost counted
/// once per member (equal to the membership term of `SCost`, §2.2).
pub fn wcost_membership_term<S: SystemRead + ?Sized>(system: &S) -> f64 {
    let cfg = system.config();
    let n_peers = system.n_peers();
    if n_peers == 0 {
        return 0.0;
    }
    system
        .overlay()
        .cluster_ids()
        .map(|c| {
            let size = system.overlay().size(c);
            size as f64 * cfg.theta.cost(size) / n_peers as f64
        })
        .sum::<f64>()
        * cfg.alpha
}

/// `WCost(S)` (Eq. 3).
///
/// First term: `α · Σ_c |c|·θ(|c|) / |P|` — each cluster's maintenance
/// cost counted once per member. Second term: every query occurrence in
/// the global workload `Q` weighted equally,
/// `(1/num(Q)) Σ_pi Σ_q num(q, Q(pi)) · Σ_{pj ∉ P(s_i)} r(q, pj)`
/// (the simplification derived in §2.2).
pub fn wcost<S: SystemRead + ?Sized>(system: &S) -> f64 {
    wcost_membership_term(system) + wcost_recall_term(system)
}

/// The recall term of `WCost` alone: the cached per-peer contributions
/// `Σ_q num(q, Q(pi)) · (1 − mass)` summed in peer order over the
/// cached live demand `num(Q)`. O(changed peers) to refresh the cache
/// plus O(peers) to sum.
pub fn wcost_recall_term<S: SystemRead + ?Sized>(system: &S) -> f64 {
    let global_total = system.cached_live_demand();
    if global_total == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for peer in system.overlay().peers() {
        acc += system.cached_wrecall(peer);
    }
    acc / global_total as f64
}

/// Normalized workload cost.
///
/// The two terms of Eq. 3 live on different scales: the membership term
/// sums over peers (O(|P|)) while the recall term is already an average
/// over query occurrences (O(1)). We therefore normalize the membership
/// term by `|P|` and leave the recall term as is, which makes the
/// normalized `WCost` directly comparable to the normalized `SCost`
/// (they coincide exactly on both terms under Property 1's equal-demand
/// premise, and both equal `0.1` on the paper's ideal 10×20 clustering).
pub fn wcost_normalized<S: SystemRead + ?Sized>(system: &S) -> f64 {
    let n = system.n_peers();
    if n == 0 {
        0.0
    } else {
        wcost_membership_term(system) / n as f64 + wcost_recall_term(system)
    }
}

/// Property 1 (§2.2): when every peer issues the same number of queries
/// (`num(Q(pi)) = num(Q)/|P|`), the recall parts of `SCost` and `WCost`
/// are proportional — specifically `social_recall = |P| · workload_recall`.
/// Returns `(social_recall, workload_recall)` so callers can assert the
/// relation.
pub fn property1_recall_terms<S: SystemRead + ?Sized>(system: &S) -> (f64, f64) {
    let (_, social_recall) = scost_terms(system);
    (social_recall, wcost_recall_term(system))
}

/// Whether all live peers issue the same number of queries (the premise
/// of Property 1).
pub fn equal_demand<S: SystemRead + ?Sized>(system: &S) -> bool {
    let mut totals = system
        .overlay()
        .peers()
        .map(|p| system.workloads()[p.index()].total());
    match totals.next() {
        None => true,
        Some(first) => totals.all(|t| t == first),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

    use crate::cost::pcost;
    use crate::system::{GameConfig, System};

    /// 4 peers, 2 categories; peers 0,1 hold+query Sym(1); peers 2,3 hold
    /// and query Sym(2). `demand[i]` sets per-peer query counts.
    fn sys_with_demand(demand: [u64; 4]) -> System {
        let mut ov = Overlay::singletons(4);
        ov.move_peer(PeerId(1), ClusterId(0));
        ov.move_peer(PeerId(3), ClusterId(2));
        let mut store = ContentStore::new(4);
        store.add(PeerId(0), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(2), Document::new(vec![Sym(2)]));
        store.add(PeerId(3), Document::new(vec![Sym(2)]));
        let mut workloads = Vec::new();
        for (i, &n) in demand.iter().enumerate() {
            let mut w = Workload::new();
            let sym = if i < 2 { Sym(1) } else { Sym(2) };
            w.add(Query::keyword(sym), n);
            workloads.push(w);
        }
        System::new(ov, store, workloads, GameConfig::default())
    }

    #[test]
    fn scost_is_sum_of_individual_costs() {
        let sys = sys_with_demand([1, 1, 1, 1]);
        let manual: f64 = (0..4)
            .map(|i| {
                let p = PeerId(i);
                pcost(&sys, p, sys.overlay().cluster_of(p).unwrap())
            })
            .sum();
        assert!((scost(&sys) - manual).abs() < 1e-12);
    }

    #[test]
    fn perfect_clustering_has_membership_only_cost() {
        let sys = sys_with_demand([1, 1, 1, 1]);
        // Two clusters of 2 among 4 peers, α=1, linear θ:
        // each peer pays 2/4 = 0.5, zero recall loss.
        assert!((scost_normalized(&sys) - 0.5).abs() < 1e-12);
        assert!((wcost_normalized(&sys) - 0.5).abs() < 1e-12);
        let (_, recall) = scost_terms(&sys);
        assert_eq!(recall, 0.0);
    }

    #[test]
    fn membership_terms_of_scost_and_wcost_agree() {
        // First terms are equal by the §2.2 derivation: each cluster
        // appears in SCost once per member.
        for demand in [[1, 1, 1, 1], [4, 1, 2, 1]] {
            let sys = sys_with_demand(demand);
            let (s_mem, _) = scost_terms(&sys);
            let w_mem = wcost(&sys) - wcost_recall_term(&sys);
            assert!((s_mem - w_mem).abs() < 1e-12, "demand {demand:?}");
        }
    }

    #[test]
    fn property1_proportionality_under_equal_demand() {
        // Break the clustering so recall terms are nonzero.
        let mut sys = sys_with_demand([2, 2, 2, 2]);
        sys.move_peer(PeerId(1), ClusterId(2));
        assert!(equal_demand(&sys));
        let (social, workload) = property1_recall_terms(&sys);
        assert!(social > 0.0);
        assert!(
            (social - 4.0 * workload).abs() < 1e-9,
            "social={social} workload={workload}"
        );
    }

    #[test]
    fn unequal_demand_breaks_proportionality() {
        let mut sys = sys_with_demand([8, 1, 1, 1]);
        sys.move_peer(PeerId(1), ClusterId(2));
        assert!(!equal_demand(&sys));
        let (social, workload) = property1_recall_terms(&sys);
        assert!((social - 4.0 * workload).abs() > 1e-6);
    }

    #[test]
    fn wcost_weighs_demanding_peers_more() {
        // p0 demanding and mis-clustered vs p0 demanding, well-clustered.
        let mut bad = sys_with_demand([8, 1, 1, 1]);
        bad.move_peer(PeerId(0), ClusterId(2)); // p0 leaves its data
        let w_bad = wcost_recall_term(&bad);
        let mut mild = sys_with_demand([1, 1, 1, 8]);
        mild.move_peer(PeerId(0), ClusterId(2));
        let w_mild = wcost_recall_term(&mild);
        assert!(
            w_bad > w_mild,
            "mis-clustering the demanding peer must cost more: {w_bad} vs {w_mild}"
        );
    }

    #[test]
    fn empty_system_costs_are_zero() {
        let ov = Overlay::unassigned(2);
        let store = ContentStore::new(2);
        let sys = System::new(
            ov,
            store,
            vec![Workload::new(), Workload::new()],
            GameConfig::default(),
        );
        assert_eq!(scost(&sys), 0.0);
        assert_eq!(scost_normalized(&sys), 0.0);
        assert_eq!(wcost(&sys), 0.0);
        assert_eq!(wcost_normalized(&sys), 0.0);
    }

    #[test]
    fn log_theta_lowers_membership_costs() {
        let mut sys = sys_with_demand([1, 1, 1, 1]);
        let linear = scost(&sys);
        sys.set_config(GameConfig {
            alpha: 1.0,
            theta: Theta::Logarithmic,
        });
        assert!(scost(&sys) < linear);
    }
}
