//! The individual peer cost `pcost` (Eq. 1).
//!
//! ```text
//! pcost(p, c) = α · θ(|c|) / |P|
//!             + Σ_{q ∈ Q(p)} num(q,Q(p))/num(Q(p)) · Σ_{pj ∉ c} r(q, pj)
//! ```
//!
//! restricted, as in the paper from §2.3 onwards, to single-cluster
//! strategies. When evaluating a cluster the peer does *not* currently
//! belong to, the membership term uses the size **after** joining
//! (`|c| + 1`) and the peer's own results count toward the in-cluster
//! recall — this is the arithmetic of the §2.3 two-peer example
//! (`pcost(p1, c2) = α·θ(2)/2 + 0 = α`).

use recluster_types::{ClusterId, PeerId};

use crate::view::SystemRead;

/// Membership term of Eq. 1 for `peer` evaluated at cluster `cid`:
/// `α · θ(size') / |P|` with the join-inclusive size.
pub fn membership_cost<S: SystemRead + ?Sized>(system: &S, peer: PeerId, cid: ClusterId) -> f64 {
    let in_cluster = system.overlay().cluster_of(peer) == Some(cid);
    let size = system.overlay().size(cid) + usize::from(!in_cluster);
    let cfg = system.config();
    cfg.alpha * cfg.theta.membership(size, system.n_peers())
}

/// Recall-loss term of Eq. 1 for `peer` evaluated at cluster `cid`: the
/// workload-weighted recall obtainable only from peers *outside* the
/// cluster (with the peer itself counted inside).
pub fn recall_loss<S: SystemRead + ?Sized>(system: &S, peer: PeerId, cid: ClusterId) -> f64 {
    let index = system.index();
    if system.overlay().cluster_of(peer) == Some(cid) {
        // The in-cluster arithmetic is shared with the cost cache so the
        // cached value is bit-identical to this direct computation.
        return crate::costcache::recall_loss_in(index, peer, cid);
    }
    let mut loss = 0.0;
    for &(qid, weight) in index.workload_of(peer) {
        if index.total(qid) == 0 {
            continue; // unanswerable query: no recall to lose
        }
        let inside = index.cluster_mass(qid, cid) + index.r(qid, peer);
        // Clamp for float safety: mass + own share can exceed 1 by ulps.
        loss += weight * (1.0 - inside.min(1.0));
    }
    loss
}

/// The individual cost `pcost(p, c)` of Eq. 1 (single-cluster strategy).
///
/// # Examples
/// The §2.3 two-peer example: `Q(p1) = {q1}` answered by `p2`,
/// `Q(p2) = {q2}` answered by `p2`, linear `θ`, both peers in singleton
/// clusters.
/// ```
/// use recluster_core::{pcost, GameConfig, System};
/// use recluster_overlay::{ContentStore, Overlay, Theta};
/// use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};
///
/// let ov = Overlay::singletons(2);
/// let mut store = ContentStore::new(2);
/// store.add(PeerId(1), Document::new(vec![Sym(1), Sym(2)]));
/// let mut w1 = Workload::new();
/// w1.add(Query::keyword(Sym(1)), 1);
/// let mut w2 = Workload::new();
/// w2.add(Query::keyword(Sym(2)), 1);
/// let sys = System::new(ov, store, vec![w1, w2], GameConfig { alpha: 1.0, theta: Theta::Linear });
///
/// // pcost(p1, c1) = α/2 + 1; moving to c2 gives pcost(p1, c2) = α.
/// assert!((pcost(&sys, PeerId(0), ClusterId(0)) - 1.5).abs() < 1e-12);
/// assert!((pcost(&sys, PeerId(0), ClusterId(1)) - 1.0).abs() < 1e-12);
/// ```
pub fn pcost<S: SystemRead + ?Sized>(system: &S, peer: PeerId, cid: ClusterId) -> f64 {
    membership_cost(system, peer, cid) + recall_loss(system, peer, cid)
}

/// The general multi-cluster individual cost of §2.1: `pcost(p, s)` for
/// a strategy *set* `s ⊆ C`. The membership term sums `θ` over every
/// selected cluster (join-inclusive for clusters `p` is not currently
/// in); the recall term counts only results outside the union `P(s)`.
///
/// With a single-cluster set this equals [`pcost`]; joining every
/// cluster drives the recall loss to zero at maximal membership cost —
/// the trade-off the paper's game is about.
///
/// # Panics
/// Panics in debug builds if `clusters` contains duplicates.
pub fn pcost_set<S: SystemRead + ?Sized>(system: &S, peer: PeerId, clusters: &[ClusterId]) -> f64 {
    debug_assert!(
        {
            let mut seen = clusters.to_vec();
            seen.sort();
            seen.windows(2).all(|w| w[0] != w[1])
        },
        "strategy sets must not repeat clusters"
    );
    let cfg = system.config();
    let index = system.index();
    let current = system.overlay().cluster_of(peer);

    let mut membership = 0.0;
    let mut member_somewhere = false;
    for &cid in clusters {
        let in_cluster = current == Some(cid);
        member_somewhere |= in_cluster;
        let size = system.overlay().size(cid) + usize::from(!in_cluster);
        membership += cfg.alpha * cfg.theta.membership(size, system.n_peers());
    }

    // Single-membership overlays make distinct clusters' recall masses
    // disjoint, so the union mass is the sum of per-cluster masses; the
    // peer's own results count once wherever it goes.
    let mut loss = 0.0;
    for &(qid, weight) in index.workload_of(peer) {
        if index.total(qid) == 0 {
            continue;
        }
        let mut inside: f64 = clusters
            .iter()
            .map(|&cid| index.cluster_mass(qid, cid))
            .sum();
        if !member_somewhere {
            inside += index.r(qid, peer);
        }
        loss += weight * (1.0 - inside.min(1.0));
    }
    membership + loss
}

/// `pcost` of the peer's current cluster. Reads the recall term from
/// the [`CostCache`](crate::costcache::CostCache) — O(1) per call after
/// the flush, instead of O(|Q(p)|) — and is bit-identical to
/// [`pcost`]`(system, peer, current)` because the cache recomputes dirty
/// entries with the same arithmetic.
///
/// # Panics
/// Panics if the peer is unassigned.
pub fn pcost_current<S: SystemRead + ?Sized>(system: &S, peer: PeerId) -> f64 {
    let cid = system
        .overlay()
        .cluster_of(peer)
        .unwrap_or_else(|| panic!("{peer} is unassigned"));
    membership_cost(system, peer, cid) + system.cached_recall_loss(peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Query, Sym, Workload};

    use crate::system::{GameConfig, System};

    /// The §2.3 example system: two peers in singleton clusters, all
    /// results held by p2 (our PeerId(1)).
    fn paper_example(alpha: f64) -> System {
        let ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(2)]));
        let mut w1 = Workload::new();
        w1.add(Query::keyword(Sym(1)), 1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w1, w2],
            GameConfig {
                alpha,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn paper_example_costs_match_section_2_3() {
        let sys = paper_example(1.0);
        // pcost(p1,c1) = α·1/2 + 1
        assert!((pcost(&sys, PeerId(0), ClusterId(0)) - 1.5).abs() < 1e-12);
        // pcost(p2,c2) = α·1/2 + 0
        assert!((pcost(&sys, PeerId(1), ClusterId(1)) - 0.5).abs() < 1e-12);
        // pcost(p1,c2) = α·θ(2)/2 = α (p1 joins p2's cluster)
        assert!((pcost(&sys, PeerId(0), ClusterId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_shared_cluster_costs() {
        let mut sys = paper_example(1.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        // Both in c2: pcost = α·θ(2)/2 = α for each.
        assert!((pcost_current(&sys, PeerId(0)) - 1.0).abs() < 1e-12);
        assert!((pcost_current(&sys, PeerId(1)) - 1.0).abs() < 1e-12);
        // p2 evaluated at the empty cluster c1: membership α·1/2, loss 0
        // (p2 holds all its own results).
        assert!((pcost(&sys, PeerId(1), ClusterId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alpha_scales_membership_only() {
        for &alpha in &[0.0, 1.0, 2.0] {
            let sys = paper_example(alpha);
            let expected = alpha * 0.5 + 1.0;
            assert!((pcost(&sys, PeerId(0), ClusterId(0)) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn membership_uses_join_inclusive_size() {
        let sys = paper_example(1.0);
        // c2 currently has 1 member; p1 evaluating it sees θ(2)/2 = 1.
        assert!((membership_cost(&sys, PeerId(0), ClusterId(1)) - 1.0).abs() < 1e-12);
        // p2 evaluating its own cluster sees θ(1)/2 = 0.5.
        assert!((membership_cost(&sys, PeerId(1), ClusterId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_loss_counts_own_results_on_join() {
        let sys = paper_example(1.0);
        // p2 owns all results of its query: loss is zero anywhere.
        assert_eq!(recall_loss(&sys, PeerId(1), ClusterId(0)), 0.0);
        assert_eq!(recall_loss(&sys, PeerId(1), ClusterId(1)), 0.0);
        // p1 loses everything staying alone, nothing joining p2.
        assert!((recall_loss(&sys, PeerId(0), ClusterId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(recall_loss(&sys, PeerId(0), ClusterId(1)), 0.0);
    }

    #[test]
    fn empty_workload_peer_pays_membership_only() {
        let ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        store.add(PeerId(0), Document::new(vec![Sym(1)]));
        let sys = System::new(
            ov,
            store,
            vec![Workload::new(), Workload::new()],
            GameConfig::default(),
        );
        assert!((pcost_current(&sys, PeerId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unanswerable_queries_cost_nothing() {
        let ov = Overlay::singletons(2);
        let store = ContentStore::new(2);
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(42)), 5);
        let sys = System::new(ov, store, vec![w, Workload::new()], GameConfig::default());
        assert!((pcost_current(&sys, PeerId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_loss_uses_workload_frequencies() {
        // p0 queries kw(1) ×3 (all results at p1) and kw(2) ×1 (all at p0).
        let ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        store.add(PeerId(0), Document::new(vec![Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 3);
        w.add(Query::keyword(Sym(2)), 1);
        let sys = System::new(
            ov,
            store,
            vec![w, Workload::new()],
            GameConfig {
                alpha: 0.0,
                theta: Theta::Linear,
            },
        );
        // Staying alone: loses kw(1) entirely (weight 3/4).
        assert!((pcost_current(&sys, PeerId(0)) - 0.75).abs() < 1e-12);
        // Joining p1: loses kw(2)? No — own results travel with the peer.
        assert!((pcost(&sys, PeerId(0), ClusterId(1)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn pcost_set_singleton_matches_pcost() {
        let sys = paper_example(1.0);
        for p in [PeerId(0), PeerId(1)] {
            for c in [ClusterId(0), ClusterId(1)] {
                assert!(
                    (pcost_set(&sys, p, &[c]) - pcost(&sys, p, c)).abs() < 1e-12,
                    "{p} at {c}"
                );
            }
        }
    }

    #[test]
    fn joining_every_cluster_eliminates_recall_loss() {
        let sys = paper_example(1.0);
        let all = [ClusterId(0), ClusterId(1)];
        // p1 in both clusters: loses nothing, pays for both memberships:
        // α·θ(1)/2 (its own c1) + α·θ(2)/2 (joining c2) = 0.5 + 1.0.
        let c = pcost_set(&sys, PeerId(0), &all);
        assert!((c - 1.5).abs() < 1e-12);
        // The recall part is zero: compare against membership alone.
        let membership = 0.5 + 1.0;
        assert!((c - membership).abs() < 1e-12);
    }

    #[test]
    fn adding_clusters_never_increases_recall_loss() {
        // Larger sets lose less recall (membership aside): verify via
        // α = 0 so only the recall term remains.
        let sys = paper_example(0.0);
        let single = pcost_set(&sys, PeerId(0), &[ClusterId(0)]);
        let both = pcost_set(&sys, PeerId(0), &[ClusterId(0), ClusterId(1)]);
        assert!(both <= single + 1e-12);
        assert_eq!(both, 0.0);
    }

    #[test]
    fn empty_strategy_set_loses_everything() {
        let sys = paper_example(1.0);
        // No clusters at all: the peer keeps only its own results.
        let c = pcost_set(&sys, PeerId(0), &[]);
        assert!((c - 1.0).abs() < 1e-12, "p1 owns nothing: full loss");
        let c2 = pcost_set(&sys, PeerId(1), &[]);
        assert_eq!(c2, 0.0, "p2 owns all its results");
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn pcost_current_of_unassigned_panics() {
        let ov = Overlay::unassigned(1);
        let store = ContentStore::new(1);
        let sys = System::new(ov, store, vec![Workload::new()], GameConfig::default());
        let _ = pcost_current(&sys, PeerId(0));
    }
}
