//! Peer-range sharding of bulk walks.
//!
//! The 100k profile shows two single-threaded hot paths once phase 1 is
//! parallel: large `CostCache` dirty-set flushes after a churn batch,
//! and the tracker's per-period walk. Both are *pure per-index maps* —
//! every output depends only on its own slot/query plus shared
//! read-only state — so they can be fanned over contiguous index ranges
//! and merged back **in index order**, making the parallel result
//! byte-identical to the sequential walk no matter how the OS schedules
//! the workers (the same contract the phase-1 fan-out already keeps;
//! `prop_sharded_flush` and the CI 1/2/8-thread determinism matrix hold
//! it).
//!
//! [`map_ranges`] is the one primitive: split `0..len` into contiguous
//! ranges (a few per worker), run the range closure on the rayon shim's
//! pool, concatenate range results in range order. Because ranges are
//! contiguous and ascending, concatenation *is* index order — the chunk
//! count (which varies with the worker count) can never reach the
//! output bytes.
//!
//! Sharding engages only when the walk is at least
//! [`shard_min`] items long (`RECLUSTER_SHARD_MIN`, default 4096):
//! below that the scoped-thread setup costs more than the walk.

use std::ops::Range;
use std::sync::OnceLock;

use rayon::prelude::*;

/// Default minimum walk length before a bulk walk shards.
const DEFAULT_SHARD_MIN: usize = 4096;

/// The `RECLUSTER_SHARD_MIN` environment knob, read once.
fn env_shard_min() -> usize {
    static MIN: OnceLock<usize> = OnceLock::new();
    *MIN.get_or_init(|| {
        match std::env::var("RECLUSTER_SHARD_MIN") {
            Ok(raw) => match raw.parse::<usize>() {
                // 0 would shard empty walks and divide by zero nowhere,
                // but "never shard" is spelled usize::MAX, not 0 — treat
                // 0 as "shard everything" (threshold 1).
                Ok(v) => v.max(1),
                Err(_) => {
                    eprintln!("unknown RECLUSTER_SHARD_MIN={raw:?}, ignoring");
                    DEFAULT_SHARD_MIN
                }
            },
            Err(_) => DEFAULT_SHARD_MIN,
        }
    })
}

thread_local! {
    /// Per-thread test override of the shard threshold; `None` defers
    /// to the environment knob. Thread-local (like the rayon shim's
    /// `ThreadPool::install` override) so a test forcing the sharded
    /// path can never race another test thread.
    static SHARD_MIN_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Overrides the shard threshold on **this thread** (tests and benches:
/// force the sharded path with `Some(1)`, force sequential with
/// `Some(usize::MAX)`); `None` restores the `RECLUSTER_SHARD_MIN`
/// environment knob. The sharding decision is taken on the calling
/// thread, so this composes with `ThreadPool::install`.
pub fn set_shard_min_override(min: Option<usize>) {
    SHARD_MIN_OVERRIDE.with(|c| c.set(min));
}

/// The minimum walk length at which bulk walks shard across the rayon
/// shim's pool: the thread-local override if one is installed, else
/// `RECLUSTER_SHARD_MIN`, else 4096.
pub fn shard_min() -> usize {
    SHARD_MIN_OVERRIDE
        .with(std::cell::Cell::get)
        .unwrap_or_else(env_shard_min)
}

/// Whether a walk of `len` pure per-index computations should shard.
pub fn should_shard(len: usize) -> bool {
    len >= shard_min() && rayon::current_num_threads() > 1
}

/// Splits `0..len` into at most `chunks` contiguous ascending ranges of
/// near-equal size (the first `len % chunks` ranges are one longer).
/// Empty for `len == 0`.
fn split_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Fans `f` over contiguous ranges covering `0..len` and returns the
/// per-range results **in range order**. `f` must be a pure function of
/// its range (plus shared `Sync` state): under that contract,
/// concatenating the results reproduces the sequential walk bytewise,
/// whatever the worker count.
///
/// A few ranges per worker (not one) keep the tail balanced when ranges
/// carry uneven work, while staying coarse enough that the shim's
/// shared work queue is amortized away.
pub fn map_ranges<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunks = rayon::current_num_threads().saturating_mul(4).max(1);
    split_ranges(len, chunks).into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_exactly_once_in_order() {
        for len in [0usize, 1, 2, 7, 16, 1000] {
            for chunks in [1usize, 2, 3, 8, 64] {
                let ranges = split_ranges(len, chunks);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len {len} chunks {chunks}");
                    assert!(r.end > r.start, "no empty ranges");
                    next = r.end;
                }
                assert_eq!(next, len);
                if len > 0 {
                    assert!(ranges.len() <= chunks.max(1));
                }
            }
        }
    }

    #[test]
    fn map_ranges_concatenates_to_sequential_order() {
        let out: Vec<usize> = map_ranges(1000, |r| r.map(|i| i * 3).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect();
        let expected: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn override_is_thread_local_and_restores() {
        set_shard_min_override(Some(1));
        assert_eq!(shard_min(), 1);
        let other = std::thread::spawn(shard_min).join().unwrap();
        assert_eq!(other, env_shard_min(), "override leaked across threads");
        set_shard_min_override(None);
        assert_eq!(shard_min(), env_shard_min());
    }
}
