//! The cluster reformulation protocol (§3.2).
//!
//! The protocol runs in rounds of two phases. Phase 1: every peer
//! evaluates its gain (per its relocation strategy) and reports it to its
//! cluster representative; each representative forwards the single
//! highest-gain request — `(cid_src, cid_dst, gain)` — to all other
//! representatives, or a bare heartbeat when nobody in the cluster wants
//! to move. Phase 2: every representative sorts all requests by
//! descending gain and serves them under the anti-cycle **lock rule**:
//! granting `ci → cj` locks `ci` against joins and `cj` against leaves
//! for the rest of the round. Because every representative processes the
//! identical, deterministically ordered list, they reach the same grant
//! decisions without extra coordination. The protocol stops when no
//! relocation request clears the gain threshold `ε`.

mod async_engine;
mod engine;
mod locks;
mod memo;

pub use async_engine::{run_async, AsyncOutcome};
pub use engine::{ProtocolEngine, RoundOutcome, RunOutcome};
pub use locks::LockSet;
pub use memo::{ProposalMemo, RoundGate};

use recluster_types::{ClusterId, PeerId};

/// One relocation request as exchanged between representatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocationRequest {
    /// The cluster the peer wants to leave.
    pub src: ClusterId,
    /// The cluster the peer wants to join.
    pub dst: ClusterId,
    /// The relocating peer.
    pub peer: PeerId,
    /// The strategy's gain value.
    pub gain: f64,
}

impl RelocationRequest {
    /// Deterministic phase-2 ordering: gain descending, ties broken by
    /// `(src, dst, peer)` so all representatives sort identically.
    pub fn sort_requests(requests: &mut [RelocationRequest]) {
        requests.sort_by(|a, b| {
            b.gain
                .partial_cmp(&a.gain)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
                .then(a.peer.cmp(&b.peer))
        });
    }
}

/// Whether (and when) empty clusters are admissible relocation targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmptyTargetPolicy {
    /// Never — §4.2: "We maintain the number of clusters fixed and the
    /// only change we allow is the relocation of peers to different
    /// non-empty clusters."
    Never,
    /// Always — the cost-minimizing view of §2.1 where all `Cmax`
    /// clusters are candidate strategies.
    Always,
    /// §3.2's new-cluster rule: a peer that (a) has no improving move to
    /// any existing non-empty cluster and (b) has seen its cost rise by
    /// at least the given amount above the best cost it ever held during
    /// this protocol run "decides to leave its cluster and move to one of
    /// the empty clusters in the system, automatically becoming the
    /// representative of this cluster" — note the move is *not* required
    /// to be cost-improving: it is a pioneering escape whose payoff comes
    /// from like-minded peers joining in later rounds. The reported gain
    /// is the frustration magnitude (current − best-seen cost).
    OnCostIncrease(f64),
}

/// Protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Gain threshold `ε`: a peer issues a request only if its gain
    /// exceeds this (the paper's §4.2 uses `ε = 0.001`).
    pub epsilon: f64,
    /// Round budget; a run that exhausts it without a request-free round
    /// is reported as non-converged (the paper's third scenario).
    pub max_rounds: usize,
    /// Empty-cluster target policy.
    pub empty_targets: EmptyTargetPolicy,
    /// Whether phase 2 enforces the anti-cycle lock rule. Disabling it
    /// (ablation) grants every request, which admits the move cycles the
    /// rule exists to prevent.
    pub use_locks: bool,
    /// Minimum live-peer count at which phase 1 shards proposal
    /// computation across the rayon shim's workers (peers split by
    /// index range, results merged in peer order — byte-identical to
    /// sequential). Below the threshold the spawn overhead outweighs the
    /// work; `usize::MAX` forces sequential, `1` forces sharding.
    /// Strategies with stateful `propose` implementations
    /// ([`sharded_phase1`](crate::strategy::RelocationStrategy::sharded_phase1)
    /// = false) always run sequentially.
    pub min_parallel_peers: usize,
    /// Whether to memoize proposals across rounds for strategies that
    /// declare [`memoizable`](crate::strategy::RelocationStrategy::memoizable).
    /// Bit-identical either way; the `RECLUSTER_MEMO=0` environment
    /// knob force-disables it for A/B runs without touching configs.
    pub memoize_proposals: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            epsilon: 1e-3,
            max_rounds: 300,
            empty_targets: EmptyTargetPolicy::Always,
            use_locks: true,
            min_parallel_peers: 4096,
            memoize_proposals: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_orders_by_gain_then_ids() {
        let mut reqs = vec![
            RelocationRequest {
                src: ClusterId(2),
                dst: ClusterId(0),
                peer: PeerId(5),
                gain: 0.5,
            },
            RelocationRequest {
                src: ClusterId(1),
                dst: ClusterId(0),
                peer: PeerId(4),
                gain: 0.9,
            },
            RelocationRequest {
                src: ClusterId(0),
                dst: ClusterId(2),
                peer: PeerId(1),
                gain: 0.5,
            },
        ];
        RelocationRequest::sort_requests(&mut reqs);
        assert_eq!(reqs[0].gain, 0.9);
        assert_eq!(reqs[1].src, ClusterId(0), "ties broken by src ascending");
        assert_eq!(reqs[2].src, ClusterId(2));
    }

    #[test]
    fn sort_is_deterministic_under_permutation() {
        let base = vec![
            RelocationRequest {
                src: ClusterId(0),
                dst: ClusterId(1),
                peer: PeerId(0),
                gain: 0.3,
            },
            RelocationRequest {
                src: ClusterId(1),
                dst: ClusterId(2),
                peer: PeerId(1),
                gain: 0.3,
            },
            RelocationRequest {
                src: ClusterId(2),
                dst: ClusterId(0),
                peer: PeerId(2),
                gain: 0.7,
            },
        ];
        let mut a = base.clone();
        let mut b = vec![base[2], base[0], base[1]];
        RelocationRequest::sort_requests(&mut a);
        RelocationRequest::sort_requests(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = ProtocolConfig::default();
        assert_eq!(cfg.epsilon, 1e-3);
        assert_eq!(cfg.empty_targets, EmptyTargetPolicy::Always);
    }
}
