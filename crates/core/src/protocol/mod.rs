//! The cluster reformulation protocol (§3.2).
//!
//! The protocol runs in rounds of two phases. Phase 1: every peer
//! evaluates its gain (per its relocation strategy) and reports it to its
//! cluster representative; each representative forwards the single
//! highest-gain request — `(cid_src, cid_dst, gain)` — to all other
//! representatives, or a bare heartbeat when nobody in the cluster wants
//! to move. Phase 2: every representative sorts all requests by
//! descending gain and serves them under the anti-cycle **lock rule**:
//! granting `ci → cj` locks `ci` against joins and `cj` against leaves
//! for the rest of the round. Because every representative processes the
//! identical, deterministically ordered list, they reach the same grant
//! decisions without extra coordination. The protocol stops when no
//! relocation request clears the gain threshold `ε`.
//!
//! Two drivers execute this protocol:
//!
//! * [`ProtocolEngine`] — the optimized shared-state driver: one
//!   [`crate::view::SystemView`] snapshot per round, sharded
//!   phase 1, cross-round proposal memoization. Exactly equivalent to
//!   running the message runtime below over a zero-delay, zero-loss
//!   schedule (the `prop_runtime` suite holds that bit for bit), which
//!   is why every large-scale experiment uses it.
//! * [`runtime`] — the typed-message runtime: per-peer
//!   [`PeerStateMachine`]s exchanging serialized [`Message`]s through a
//!   deterministic simulated network ([`SimNet`]), the API that admits
//!   delayed, reordered, dropped and dishonest messages.

mod engine;
mod locks;
mod memo;
pub mod runtime;

pub use engine::{ProtocolEngine, RoundOutcome, RunOutcome};
pub use locks::LockSet;
pub use memo::ProposalMemo;
pub use runtime::{
    DelayDist, DenyReason, EvidenceLog, FaultReport, LiarConfig, Message, NetConfig, NetStats,
    PeerStateMachine, RuntimeEngine, SimNet,
};

use recluster_types::{ClusterId, PeerId};

use crate::cost::pcost_current;
use crate::strategy::Proposal;
use crate::view::SystemView;

/// One relocation request as exchanged between representatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocationRequest {
    /// The cluster the peer wants to leave.
    pub src: ClusterId,
    /// The cluster the peer wants to join.
    pub dst: ClusterId,
    /// The relocating peer.
    pub peer: PeerId,
    /// The strategy's gain value.
    pub gain: f64,
}

impl RelocationRequest {
    /// Deterministic phase-2 ordering: gain descending, ties broken by
    /// `(src, dst, peer)` so all representatives sort identically.
    pub fn sort_requests(requests: &mut [RelocationRequest]) {
        requests.sort_by(|a, b| {
            b.gain
                .partial_cmp(&a.gain)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
                .then(a.peer.cmp(&b.peer))
        });
    }
}

/// Whether (and when) empty clusters are admissible relocation targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmptyTargetPolicy {
    /// Never — §4.2: "We maintain the number of clusters fixed and the
    /// only change we allow is the relocation of peers to different
    /// non-empty clusters."
    Never,
    /// Always — the cost-minimizing view of §2.1 where all `Cmax`
    /// clusters are candidate strategies.
    Always,
    /// §3.2's new-cluster rule: a peer that (a) has no improving move to
    /// any existing non-empty cluster and (b) has seen its cost rise by
    /// at least the given amount above the best cost it ever held during
    /// this protocol run "decides to leave its cluster and move to one of
    /// the empty clusters in the system, automatically becoming the
    /// representative of this cluster" — note the move is *not* required
    /// to be cost-improving: it is a pioneering escape whose payoff comes
    /// from like-minded peers joining in later rounds. The reported gain
    /// is the frustration magnitude (current − best-seen cost).
    OnCostIncrease(f64),
}

/// Protocol parameters. Construct via [`ProtocolConfig::builder`] (or
/// start from [`Default`] and assign fields); the struct is
/// `#[non_exhaustive]` so future knobs extend it without breaking
/// callers.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Gain threshold `ε`: a peer issues a request only if its gain
    /// exceeds this (the paper's §4.2 uses `ε = 0.001`).
    pub epsilon: f64,
    /// Round budget; a run that exhausts it without a request-free round
    /// is reported as non-converged (the paper's third scenario).
    pub max_rounds: usize,
    /// Empty-cluster target policy.
    pub empty_targets: EmptyTargetPolicy,
    /// Whether phase 2 enforces the anti-cycle lock rule. Disabling it
    /// (ablation) grants every request, which admits the move cycles the
    /// rule exists to prevent.
    pub use_locks: bool,
    /// Minimum live-peer count at which phase 1 shards proposal
    /// computation across the rayon shim's workers (peers split by
    /// index range, results merged in peer order — byte-identical to
    /// sequential). Below the threshold the spawn overhead outweighs the
    /// work; `usize::MAX` forces sequential, `1` forces sharding.
    /// Strategies with stateful `propose` implementations
    /// ([`sharded_phase1`](crate::strategy::RelocationStrategy::sharded_phase1)
    /// = false) always run sequentially.
    pub min_parallel_peers: usize,
    /// Whether to memoize proposals across rounds for strategies that
    /// declare [`memoizable`](crate::strategy::RelocationStrategy::memoizable).
    /// Bit-identical either way; the `RECLUSTER_MEMO=0` environment
    /// knob force-disables it for A/B runs without touching configs.
    pub memoize_proposals: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            epsilon: 1e-3,
            max_rounds: 300,
            empty_targets: EmptyTargetPolicy::Always,
            use_locks: true,
            min_parallel_peers: 4096,
            memoize_proposals: true,
        }
    }
}

impl ProtocolConfig {
    /// Starts a builder over the paper defaults.
    pub fn builder() -> ProtocolConfigBuilder {
        ProtocolConfigBuilder {
            config: ProtocolConfig::default(),
        }
    }
}

/// Fluent constructor for [`ProtocolConfig`] — the supported way to
/// customize the `#[non_exhaustive]` config outside this crate:
///
/// ```
/// use recluster_core::ProtocolConfig;
/// let cfg = ProtocolConfig::builder()
///     .max_rounds(60)
///     .min_parallel_peers(1)
///     .memoize(false)
///     .build();
/// assert_eq!(cfg.max_rounds, 60);
/// assert!(!cfg.memoize_proposals);
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolConfigBuilder {
    config: ProtocolConfig,
}

impl ProtocolConfigBuilder {
    /// Sets the gain threshold `ε` (default `1e-3`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets the round budget (default 300).
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.config.max_rounds = max_rounds;
        self
    }

    /// Sets the empty-cluster target policy (default
    /// [`EmptyTargetPolicy::Always`]).
    pub fn empty_targets(mut self, policy: EmptyTargetPolicy) -> Self {
        self.config.empty_targets = policy;
        self
    }

    /// Enables or disables the phase-2 anti-cycle lock rule (default on).
    pub fn use_locks(mut self, on: bool) -> Self {
        self.config.use_locks = on;
        self
    }

    /// Sets the phase-1 sharding threshold (default 4096).
    pub fn min_parallel_peers(mut self, threshold: usize) -> Self {
        self.config.min_parallel_peers = threshold;
        self
    }

    /// Enables or disables cross-round proposal memoization (default on).
    pub fn memoize(mut self, on: bool) -> Self {
        self.config.memoize_proposals = on;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ProtocolConfig {
        self.config
    }
}

/// The `allow_empty` flag the configured policy hands to the strategy's
/// `propose` (the `OnCostIncrease` escape reaches empty clusters through
/// its own rule, not through the strategy).
pub(crate) fn base_allow_empty(config: &ProtocolConfig) -> bool {
    matches!(config.empty_targets, EmptyTargetPolicy::Always)
}

/// Applies the empty-target policy and the `ε` threshold to a raw
/// strategy proposal — the cheap, per-round part of a peer's phase-1
/// request, deliberately *outside* the proposal memo (the §3.2 escape
/// depends on `min_costs`, which moves every round). Shared verbatim by
/// [`ProtocolEngine`] and the message [`runtime`], so the two drivers
/// cannot drift on policy arithmetic.
pub(crate) fn apply_policy(
    config: &ProtocolConfig,
    min_costs: &[f64],
    view: &SystemView<'_>,
    peer: PeerId,
    raw: Option<Proposal>,
) -> Option<Proposal> {
    let proposal = match config.empty_targets {
        EmptyTargetPolicy::Never | EmptyTargetPolicy::Always => raw,
        EmptyTargetPolicy::OnCostIncrease(threshold) => match raw {
            Some(p) => Some(p),
            None => {
                // §3.2's pioneering escape: no existing cluster helps,
                // and the peer's cost has risen significantly above the
                // best it held this run. The escape need not improve
                // its cost — the payoff comes from like-minded peers
                // following.
                let best = min_costs
                    .get(peer.index())
                    .copied()
                    .unwrap_or(f64::INFINITY);
                let now = pcost_current(view, peer);
                if now - best >= threshold {
                    view.overlay().first_empty_cluster().map(|to| Proposal {
                        to,
                        gain: now - best,
                    })
                } else {
                    None
                }
            }
        },
    }?;
    (proposal.gain > config.epsilon).then_some(proposal)
}

/// Folds the current individual costs into `min_costs`; peers listed in
/// `reset` take the current cost outright (fresh start after a move).
/// Departed peers get `INFINITY`. Shared by both protocol drivers.
pub(crate) fn fold_min_costs(view: &SystemView<'_>, min_costs: &mut Vec<f64>, reset: &[PeerId]) {
    let n = view.overlay().n_slots();
    min_costs.resize(n, f64::INFINITY);
    for (i, slot) in min_costs.iter_mut().enumerate() {
        let p = PeerId::from_index(i);
        let now = if view.overlay().cluster_of(p).is_some() {
            pcost_current(view, p)
        } else {
            f64::INFINITY
        };
        if reset.contains(&p) {
            *slot = now;
        } else {
            *slot = slot.min(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_orders_by_gain_then_ids() {
        let mut reqs = vec![
            RelocationRequest {
                src: ClusterId(2),
                dst: ClusterId(0),
                peer: PeerId(5),
                gain: 0.5,
            },
            RelocationRequest {
                src: ClusterId(1),
                dst: ClusterId(0),
                peer: PeerId(4),
                gain: 0.9,
            },
            RelocationRequest {
                src: ClusterId(0),
                dst: ClusterId(2),
                peer: PeerId(1),
                gain: 0.5,
            },
        ];
        RelocationRequest::sort_requests(&mut reqs);
        assert_eq!(reqs[0].gain, 0.9);
        assert_eq!(reqs[1].src, ClusterId(0), "ties broken by src ascending");
        assert_eq!(reqs[2].src, ClusterId(2));
    }

    #[test]
    fn sort_is_deterministic_under_permutation() {
        let base = vec![
            RelocationRequest {
                src: ClusterId(0),
                dst: ClusterId(1),
                peer: PeerId(0),
                gain: 0.3,
            },
            RelocationRequest {
                src: ClusterId(1),
                dst: ClusterId(2),
                peer: PeerId(1),
                gain: 0.3,
            },
            RelocationRequest {
                src: ClusterId(2),
                dst: ClusterId(0),
                peer: PeerId(2),
                gain: 0.7,
            },
        ];
        let mut a = base.clone();
        let mut b = vec![base[2], base[0], base[1]];
        RelocationRequest::sort_requests(&mut a);
        RelocationRequest::sort_requests(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = ProtocolConfig::default();
        assert_eq!(cfg.epsilon, 1e-3);
        assert_eq!(cfg.empty_targets, EmptyTargetPolicy::Always);
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let cfg = ProtocolConfig::builder()
            .epsilon(0.05)
            .max_rounds(17)
            .empty_targets(EmptyTargetPolicy::Never)
            .use_locks(false)
            .min_parallel_peers(1)
            .memoize(false)
            .build();
        assert_eq!(cfg.epsilon, 0.05);
        assert_eq!(cfg.max_rounds, 17);
        assert_eq!(cfg.empty_targets, EmptyTargetPolicy::Never);
        assert!(!cfg.use_locks);
        assert_eq!(cfg.min_parallel_peers, 1);
        assert!(!cfg.memoize_proposals);
    }

    #[test]
    fn builder_defaults_equal_default() {
        assert_eq!(ProtocolConfig::builder().build(), ProtocolConfig::default());
    }
}
