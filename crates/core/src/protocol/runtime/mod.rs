//! The typed-message protocol runtime.
//!
//! Where [`ProtocolEngine`](crate::protocol::ProtocolEngine) runs §3.2
//! as direct method calls on shared state, this module runs it the way
//! the paper describes it: peers exchanging serialized
//! Propose/Grant/Commit frames over a network. Three layers:
//!
//! - [`message`] — the wire grammar: six frame types with a
//!   fixed-width little-endian codec that round-trips bit-for-bit.
//! - [`machine`] — per-peer automata: members report and commit,
//!   representatives run the two collect-then-fire phases with the sync
//!   engine's exact selection and lock arithmetic.
//! - [`simnet`] — the deterministic fabric: seeded per-link delay and
//!   drop draws, deliveries totally ordered on `(deliver_tick,
//!   msg_seq)` so every run replays byte-identically.
//!
//! [`RuntimeEngine`] composes the three against a live
//! [`System`](crate::system::System). Under [`NetConfig::ideal`] (zero
//! extra delay, zero loss) it is **bit-identical** to the sync engine —
//! `crates/core/tests/prop_runtime.rs` proves it over the shared
//! mutation-script universe — which makes the sync engine one driver of
//! this API and the runtime the reference semantics. Under delay, loss
//! or lying peers it answers the questions the paper never could:
//! representatives decide on partial request lists (stale grants), and
//! an [`EvidenceLog`] audits committed claims against
//! [`ObservedStats`](crate::tracker::ObservedStats).

pub mod machine;
pub mod message;
pub mod simnet;

mod engine;

pub use engine::{
    CommitRecord, EvidenceLog, FaultReport, LiarConfig, LiarMode, RuntimeChurn, RuntimeEngine,
};
pub use machine::{MachineEvent, Outbox, PeerStateMachine, ReportPlan};
pub use message::{gain_commitment, DecodeError, DenyReason, Message};
pub use simnet::{
    CrashWindow, DelayDist, FaultSchedule, NetConfig, NetStats, Partition, PartitionKind, SimNet,
};
