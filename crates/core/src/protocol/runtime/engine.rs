//! The runtime driver: machines + fabric + the host system.
//!
//! [`RuntimeEngine`] is the message-passing counterpart of
//! [`ProtocolEngine`](crate::protocol::ProtocolEngine). Each round it
//! snapshots the system once, hands every live peer a
//! [`PeerStateMachine`] seeded with that peer's local knowledge, and
//! then advances a discrete clock: deliver due frames, poll machines in
//! peer order, push their outboxes onto the [`SimNet`] fabric, repeat
//! until the fabric drains and every representative has fired both
//! phases. Relocations happen when `Commit` frames *arrive* — a commit
//! lost to the network is a relocation that never happened.
//!
//! Every commit is recorded in an [`EvidenceLog`] together with the
//! gain the mover claimed on the wire, the gain its strategy actually
//! computed, the oracle value of the move at snapshot time, and the
//! commitment/reveal pair from its frames. [`EvidenceLog::audit`]
//! replays the log against [`ObservedStats`] — the recall statistics
//! peers actually measured — to attribute faults in distinct
//! categories: a *reveal mismatch* (the `Commit` gain bits do not
//! reproduce the `Propose` commitment) is fraud provable from frames
//! alone; an *inflated* claim exceeds the observation-backed estimate;
//! an honest claim that merely drifted from the oracle (stale observed
//! statistics) is *estimation error* and is never flagged as fraud.
//!
//! The engine also drives **mid-round churn** from a tick-stamped
//! schedule ([`RuntimeChurn`]): a departing peer's machine is abandoned
//! where it stands (its pending grant becomes a deny at round end, its
//! in-flight frames count as `departed` losses), while a joiner enters
//! the system immediately, announces itself with a heartbeat, and is
//! admitted at the next round's collect phase. A commit is applied only
//! if it is still a *valid move* — the peer has not departed and still
//! sits in the cluster the commit claims to leave — so no degraded
//! execution can double-apply a relocation or move a ghost.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use recluster_overlay::{ChurnEvent, MsgKind, SimNetwork};
use recluster_types::{derive_seed, ClusterId, Document, PeerId, Workload};

use super::machine::{MachineEvent, Outbox, PeerStateMachine, ReportPlan};
use super::message::{gain_commitment, Message};
use super::simnet::{NetConfig, NetStats, SimNet};
use crate::global::{scost_normalized, wcost_normalized};
use crate::protocol::{ProtocolConfig, RelocationRequest, RoundOutcome, RunOutcome};
use crate::strategy::RelocationStrategy;
use crate::system::System;
use crate::tracker::ObservedStats;

/// How a configured liar lies — which frames carry the inflation
/// decides which audit category catches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiarMode {
    /// The liar inflates consistently: `Propose`, commitment and
    /// `Commit` all carry the boosted gain. The reveal checks out, so
    /// only the observation-backed estimate can catch it (`inflated`).
    Consistent,
    /// The liar proposes (and commits to) its honest gain but reveals a
    /// boosted one at `Commit`: the reveal no longer reproduces the
    /// commitment, which is fraud provable from the frames alone
    /// (`reveal_mismatch`).
    LateInflate,
}

/// Ground truth for the liar scenario: which peers inflate the gain
/// they claim on the wire, and by how much. Liar selection is a pure
/// hash of `(seed, peer)` — stable across rounds and independent of
/// iteration order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiarConfig {
    /// Fraction of peers that lie, in `[0, 1]`.
    pub fraction: f64,
    /// Multiplier a liar applies to its true gain (`> 1` inflates).
    pub boost: f64,
    /// Seed of the liar-selection hash.
    pub seed: u64,
    /// Which frames carry the lie.
    pub mode: LiarMode,
}

impl LiarConfig {
    /// Nobody lies.
    pub fn none() -> Self {
        LiarConfig {
            fraction: 0.0,
            boost: 1.0,
            seed: 0,
            mode: LiarMode::Consistent,
        }
    }

    /// Whether `peer` is a configured liar.
    pub fn is_liar(&self, peer: PeerId) -> bool {
        if self.fraction <= 0.0 {
            return false;
        }
        // Top 53 bits of the derived hash as a uniform draw in [0, 1).
        let draw = (derive_seed(self.seed, u64::from(peer.0)) >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.fraction
    }
}

impl Default for LiarConfig {
    fn default() -> Self {
        LiarConfig::none()
    }
}

/// One committed relocation, as witnessed on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitRecord {
    /// Round the commit landed in.
    pub round: usize,
    /// The relocating peer.
    pub peer: PeerId,
    /// The cluster it left.
    pub from: ClusterId,
    /// The cluster it joined.
    pub to: ClusterId,
    /// The gain it claimed in its `Commit` frame (the reveal).
    pub claimed_gain: f64,
    /// The gain its strategy actually computed that round.
    pub true_gain: f64,
    /// The commitment its `Propose` carried, as harvested from the
    /// delivered frames — `None` if no `Propose` for this peer was ever
    /// delivered (the commit then cannot be reveal-checked).
    pub commitment: Option<u64>,
    /// The nonce its `Commit` revealed.
    pub reveal_nonce: u64,
    /// What the move was actually worth at snapshot time
    /// (`pcost_current − pcost(to)` over the round's view) — the
    /// yardstick that tells estimation error from fraud.
    pub oracle_gain: f64,
}

/// Outcome of auditing an [`EvidenceLog`] against observed statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Commits checked against an observation-backed estimate.
    pub audited: usize,
    /// Commits skipped for lack of observation coverage (the frame-only
    /// reveal check still ran on them).
    pub skipped: usize,
    /// Fraud, provable from frames alone: the `Commit` reveal does not
    /// reproduce the `Propose` commitment (ascending, deduplicated).
    pub reveal_mismatch: Vec<PeerId>,
    /// Fraud by the estimate: the claim exceeded the observation-backed
    /// estimate by more than the tolerance (ascending, deduplicated).
    pub inflated: Vec<PeerId>,
    /// Honest drift, *not* fraud: the reveal checks out and the claim
    /// matches the peer's estimate, but it sits more than the tolerance
    /// from the oracle gain — stale observed statistics (ascending,
    /// deduplicated, disjoint from `flagged`).
    pub estimation_error: Vec<PeerId>,
    /// All peers accused of fraud: `reveal_mismatch ∪ inflated`
    /// (ascending, deduplicated).
    pub flagged: Vec<PeerId>,
    /// Ground truth: peers that actually over-claimed (ascending,
    /// deduplicated).
    pub liars: Vec<PeerId>,
    /// `|flagged ∩ liars| / |flagged|`; `1.0` when nothing was flagged.
    pub precision: f64,
    /// `|flagged ∩ liars| / |liars|`; `1.0` when nobody lied.
    pub recall: f64,
}

/// The runtime's commit audit trail.
#[derive(Debug, Clone, Default)]
pub struct EvidenceLog {
    records: Vec<CommitRecord>,
}

impl EvidenceLog {
    /// All committed relocations, in commit order.
    pub fn records(&self) -> &[CommitRecord] {
        &self.records
    }

    pub(crate) fn push(&mut self, record: CommitRecord) {
        self.records.push(record);
    }

    /// Checks every commit's claimed gain against the gain the
    /// *observed* statistics support: the estimated individual cost of
    /// staying minus that of the committed destination. A claim more
    /// than `tolerance` above the estimate flags the peer. Commits by
    /// peers the statistics don't cover are skipped, not guessed at.
    pub fn audit(&self, system: &System, stats: &ObservedStats, tolerance: f64) -> FaultReport {
        self.audit_records(&self.records, system, stats, tolerance)
    }

    /// [`audit`](Self::audit) restricted to the commits of one round.
    /// This is the contemporaneous form: statistics observed just
    /// before round `round` judge exactly the claims made during it,
    /// so estimate-vs-truth drift from *later* membership changes
    /// cannot flag an honest peer.
    pub fn audit_round(
        &self,
        system: &System,
        stats: &ObservedStats,
        tolerance: f64,
        round: usize,
    ) -> FaultReport {
        let records: Vec<CommitRecord> = self
            .records
            .iter()
            .filter(|r| r.round == round)
            .cloned()
            .collect();
        self.audit_records(&records, system, stats, tolerance)
    }

    fn audit_records(
        &self,
        records: &[CommitRecord],
        system: &System,
        stats: &ObservedStats,
        tolerance: f64,
    ) -> FaultReport {
        let mut audited = 0;
        let mut skipped = 0;
        let mut reveal_mismatch = Vec::new();
        let mut inflated = Vec::new();
        let mut estimation_error = Vec::new();
        let mut liars = Vec::new();
        for rec in records {
            if rec.claimed_gain > rec.true_gain + 1e-12 {
                liars.push(rec.peer);
            }
            // The frame-only check needs no observations: the reveal
            // must reproduce the commitment the Propose carried.
            let fraud_reveal = match rec.commitment {
                Some(c) => {
                    gain_commitment(
                        rec.peer,
                        rec.from,
                        rec.to,
                        rec.claimed_gain.to_bits(),
                        rec.reveal_nonce,
                    ) != c
                }
                None => false,
            };
            if fraud_reveal {
                reveal_mismatch.push(rec.peer);
            }
            if !stats.has_observations() || !stats.covers(rec.peer) {
                skipped += 1;
                continue;
            }
            audited += 1;
            // Evaluate in the claim's own frame of reference — the
            // peer claimed `gain` for leaving `from` — so statistics
            // observed before the move reproduce the decision-time
            // arithmetic (stay-cost minus join-cost) exactly.
            let est_gain = stats.estimated_pcost(system, rec.peer, rec.from, Some(rec.from))
                - stats.estimated_pcost(system, rec.peer, rec.to, Some(rec.from));
            if rec.claimed_gain > est_gain + tolerance {
                inflated.push(rec.peer);
            } else if !fraud_reveal && (rec.claimed_gain - rec.oracle_gain).abs() > tolerance {
                // Commitment and estimate both check out, yet the claim
                // is off the oracle: the peer believed stale statistics.
                estimation_error.push(rec.peer);
            }
        }
        let dedup = |mut v: Vec<PeerId>| {
            v.sort();
            v.dedup();
            v
        };
        let reveal_mismatch = dedup(reveal_mismatch);
        let inflated = dedup(inflated);
        let flagged = dedup(
            reveal_mismatch
                .iter()
                .chain(inflated.iter())
                .copied()
                .collect(),
        );
        let mut estimation_error = dedup(estimation_error);
        estimation_error.retain(|p| flagged.binary_search(p).is_err());
        let liars = dedup(liars);
        let hits = flagged
            .iter()
            .filter(|&&p| liars.binary_search(&p).is_ok())
            .count();
        let ratio = |num: usize, den: usize| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        FaultReport {
            audited,
            skipped,
            precision: ratio(hits, flagged.len()),
            recall: ratio(hits, liars.len()),
            reveal_mismatch,
            inflated,
            estimation_error,
            flagged,
            liars,
        }
    }
}

/// One scheduled mid-round membership change, applied when the fabric
/// clock reaches its tick — possibly in the middle of a phase.
#[derive(Debug, Clone)]
pub enum RuntimeChurn {
    /// `peer` leaves: its machine is abandoned where it stands, its
    /// workload cleared, and every frame still addressed to it counts
    /// as a `departed` loss.
    Depart {
        /// The departing peer.
        peer: PeerId,
    },
    /// A new peer joins `cluster` carrying `docs` and `workload`. It
    /// announces itself with a heartbeat to the cluster's snapshot
    /// representative and participates from the next round's collect
    /// phase.
    Arrive {
        /// The cluster joined.
        cluster: ClusterId,
        /// Documents the newcomer shares.
        docs: Vec<Document>,
        /// The newcomer's query workload.
        workload: Workload,
    },
}

/// Domain constant of the per-round, per-peer commit nonce derivation.
const NONCE_DOMAIN: u64 = 0x006e_6f6e_6365; // "nonce"

/// The message-passing protocol driver.
pub struct RuntimeEngine<S: RelocationStrategy> {
    strategy: S,
    config: ProtocolConfig,
    net: SimNet,
    liars: LiarConfig,
    /// Tick-stamped churn schedule, stable-sorted by tick.
    churn: Vec<(u64, RuntimeChurn)>,
    /// Next unapplied entry in `churn`.
    churn_idx: usize,
    /// Frustration reference points, engine-lifetime like the sync
    /// engine's (see [`crate::protocol::fold_min_costs`]).
    min_costs: Vec<f64>,
    /// The fabric clock, continuous across rounds and runs.
    now: u64,
    evidence: EvidenceLog,
    granted_total: u64,
    denied_total: u64,
    commits_voided: u64,
    grants_voided: u64,
}

impl<S: RelocationStrategy> RuntimeEngine<S> {
    /// Creates a runtime over the given protocol and network
    /// parameters. `NetConfig::ideal()` reproduces the sync engine
    /// bit-for-bit; anything else explores what the paper never tests.
    pub fn new(strategy: S, config: ProtocolConfig, net_config: NetConfig) -> Self {
        assert!(config.epsilon >= 0.0, "epsilon must be non-negative");
        RuntimeEngine {
            strategy,
            config,
            net: SimNet::new(net_config),
            liars: LiarConfig::none(),
            churn: Vec::new(),
            churn_idx: 0,
            min_costs: Vec::new(),
            now: 0,
            evidence: EvidenceLog::default(),
            granted_total: 0,
            denied_total: 0,
            commits_voided: 0,
            grants_voided: 0,
        }
    }

    /// Attaches a fault timetable to the fabric (partitions and crash
    /// windows; see [`FaultSchedule`](super::FaultSchedule)).
    pub fn with_faults(mut self, faults: super::simnet::FaultSchedule) -> Self {
        self.net = self.net.with_faults(faults);
        self
    }

    /// Schedules mid-round churn. Entries are applied when the fabric
    /// clock reaches their tick, in schedule order for equal ticks.
    pub fn with_churn(mut self, mut schedule: Vec<(u64, RuntimeChurn)>) -> Self {
        schedule.sort_by_key(|&(tick, _)| tick);
        self.churn = schedule;
        self.churn_idx = 0;
        self
    }

    /// Configures a fraction of peers to inflate their claimed gains.
    pub fn with_liars(mut self, liars: LiarConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&liars.fraction),
            "liar fraction must be in [0, 1]"
        );
        self.liars = liars;
        self
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// The protocol configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// Cumulative fabric counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// The fabric clock (ticks elapsed since engine creation).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Grants issued by representatives across all rounds.
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// Denies issued by representatives across all rounds.
    pub fn denied_total(&self) -> u64 {
        self.denied_total
    }

    /// Commits voided across all rounds: delivered `Commit` frames that
    /// were not valid moves (the peer had departed, or no longer sat in
    /// the cluster the frame claimed to leave), counted once per peer
    /// per round.
    pub fn commits_voided_total(&self) -> u64 {
        self.commits_voided
    }

    /// Grants converted to denies at round end because the granted peer
    /// departed before committing.
    pub fn grants_voided_total(&self) -> u64 {
        self.grants_voided
    }

    /// The commit audit trail.
    pub fn evidence(&self) -> &EvidenceLog {
        &self.evidence
    }

    /// Drains queued outbox frames onto the fabric and folds decision
    /// events into the round's request/grant tallies.
    fn flush(
        &mut self,
        out: &mut Outbox,
        ledger: &mut SimNetwork,
        requests: &mut Vec<RelocationRequest>,
        granted: &mut Vec<RelocationRequest>,
    ) {
        for (src, dst, msg, kind) in out.drain_frames() {
            self.net.send(self.now, src, dst, &msg, kind, ledger);
        }
        for event in out.drain_events() {
            match event {
                MachineEvent::Forwarded(req) => requests.push(req),
                MachineEvent::Granted(req) => {
                    self.granted_total += 1;
                    granted.push(req);
                }
                MachineEvent::Denied(..) => self.denied_total += 1,
            }
        }
    }

    /// Applies every churn entry due at or before the current tick:
    /// departures tear down the peer (system, workload, machine) and
    /// joiners enter the system and announce themselves to the round
    /// snapshot's representative of their cluster, when it is live.
    fn apply_due_churn(
        &mut self,
        system: &mut System,
        ledger: &mut SimNetwork,
        machines: &mut BTreeMap<PeerId, PeerStateMachine>,
        departed: &mut BTreeSet<PeerId>,
        rep_of: &HashMap<ClusterId, PeerId>,
    ) {
        while self
            .churn
            .get(self.churn_idx)
            .is_some_and(|&(tick, _)| tick <= self.now)
        {
            let (_, event) = self.churn[self.churn_idx].clone();
            self.churn_idx += 1;
            match event {
                RuntimeChurn::Depart { peer } => {
                    if system
                        .apply_churn_event(ledger, ChurnEvent::Leave { peer })
                        .is_none()
                    {
                        continue; // already gone — a no-op departure
                    }
                    system.set_workload(peer, Workload::new());
                    machines.remove(&peer);
                    departed.insert(peer);
                }
                RuntimeChurn::Arrive {
                    cluster,
                    docs,
                    workload,
                } => {
                    let Some(delta) =
                        system.apply_churn_event(ledger, ChurnEvent::Join { cluster, docs })
                    else {
                        continue;
                    };
                    let joiner = delta.peer();
                    system.set_workload(joiner, workload);
                    // The joiner announces itself mid-round. The
                    // collectors consume the heartbeat without counting
                    // it (the joiner is outside the round snapshot);
                    // admission happens at the next round's collect
                    // phase, whose snapshot includes the peer.
                    if let Some(&rep) = rep_of.get(&delta.cluster()) {
                        if machines.contains_key(&rep) {
                            let hb = Message::Heartbeat {
                                peer: joiner,
                                from: delta.cluster(),
                            };
                            self.net
                                .send(self.now, joiner, rep, &hb, MsgKind::Heartbeat, ledger);
                        }
                    }
                }
            }
        }
    }

    /// Executes one round end to end: snapshot, machine construction,
    /// tick loop until the fabric drains, commit application, outcome.
    pub fn run_round(
        &mut self,
        system: &mut System,
        ledger: &mut SimNetwork,
        round: usize,
    ) -> RoundOutcome {
        // Churn due before the round starts is applied pre-snapshot, so
        // the snapshot never sees a peer that already left.
        let mut machines: BTreeMap<PeerId, PeerStateMachine> = BTreeMap::new();
        let mut departed: BTreeSet<PeerId> = BTreeSet::new();
        self.apply_due_churn(
            system,
            ledger,
            &mut machines,
            &mut departed,
            &HashMap::new(),
        );
        departed.clear();

        self.strategy.prepare(system);
        let phase_ticks = self.net.config().phase_ticks;
        let allow_empty = crate::protocol::base_allow_empty(&self.config);

        // ---- Snapshot: derive every peer's local knowledge. ---------
        let mut true_gains: HashMap<PeerId, f64> = HashMap::new();
        let mut oracle_gains: HashMap<PeerId, f64> = HashMap::new();
        let rep_of: HashMap<ClusterId, PeerId>;
        let mut n_live = 0;
        {
            let view = system.view();
            crate::protocol::fold_min_costs(&view, &mut self.min_costs, &[]);
            let non_empty: Vec<ClusterId> = view.overlay().non_empty_ids().to_vec();
            rep_of = non_empty
                .iter()
                .map(|&cid| {
                    let rep = view
                        .overlay()
                        .cluster(cid)
                        .representative()
                        .expect("non-empty cluster has a representative");
                    (cid, rep)
                })
                .collect();
            for &cid in &non_empty {
                let members = view.overlay().cluster(cid).members().to_vec();
                let rep = rep_of[&cid];
                for &peer in &members {
                    n_live += 1;
                    let raw = self.strategy.propose(&view, peer, allow_empty);
                    let filtered = crate::protocol::apply_policy(
                        &self.config,
                        &self.min_costs,
                        &view,
                        peer,
                        raw,
                    );
                    let plan = match filtered {
                        Some(p) => {
                            true_gains.insert(peer, p.gain);
                            oracle_gains.insert(
                                peer,
                                crate::cost::pcost_current(&view, peer)
                                    - crate::cost::pcost(&view, peer, p.to),
                            );
                            let nonce = derive_seed(
                                derive_seed(NONCE_DOMAIN, round as u64),
                                u64::from(peer.0),
                            );
                            // What the peer claims now, what it commits
                            // to, and what its commitment covers — the
                            // liar mode decides which pieces disagree.
                            let (claimed, commit_gain, committed_gain) = if self.liars.is_liar(peer)
                            {
                                let boosted = p.gain * self.liars.boost;
                                match self.liars.mode {
                                    LiarMode::Consistent => (boosted, boosted, boosted),
                                    LiarMode::LateInflate => (p.gain, boosted, p.gain),
                                }
                            } else {
                                (p.gain, p.gain, p.gain)
                            };
                            ReportPlan {
                                report: Some((p.to, claimed)),
                                dst_rep: rep_of.get(&p.to).copied(),
                                commitment: gain_commitment(
                                    peer,
                                    cid,
                                    p.to,
                                    committed_gain.to_bits(),
                                    nonce,
                                ),
                                nonce,
                                commit_gain,
                            }
                        }
                        None => ReportPlan::heartbeat(),
                    };
                    let machine = if peer == rep {
                        let others: Vec<(ClusterId, PeerId)> = non_empty
                            .iter()
                            .filter(|&&c| c != cid)
                            .map(|&c| (c, rep_of[&c]))
                            .collect();
                        PeerStateMachine::representative(
                            peer,
                            cid,
                            members.clone(),
                            others,
                            plan,
                            self.config.use_locks,
                            self.now,
                            phase_ticks,
                        )
                    } else {
                        PeerStateMachine::member(peer, cid, rep, plan)
                    };
                    machines.insert(peer, machine);
                }
            }
        }

        // ---- Tick loop: deliver, poll, flush — until quiescent. -----
        let mut out = Outbox::new();
        let mut requests: Vec<RelocationRequest> = Vec::new();
        let mut granted: Vec<RelocationRequest> = Vec::new();
        let mut committed: Vec<PeerId> = Vec::new();
        let mut voided: BTreeSet<PeerId> = BTreeSet::new();
        // Commitments harvested from delivered Propose frames — the
        // auditor's only source, exactly as a real observer would have.
        let mut commitments: HashMap<PeerId, u64> = HashMap::new();
        for machine in machines.values_mut() {
            machine.poll(self.now, phase_ticks, &mut out);
        }
        self.flush(&mut out, ledger, &mut requests, &mut granted);
        loop {
            let mut next = self.net.next_tick();
            for machine in machines.values() {
                if let Some(d) = machine.next_deadline() {
                    next = Some(next.map_or(d, |n| n.min(d)));
                }
            }
            let Some(next) = next else { break };
            self.now = next.max(self.now + 1);
            self.apply_due_churn(system, ledger, &mut machines, &mut departed, &rep_of);
            while let Some((_, dst, msg)) = self.net.pop_due(self.now) {
                if let Message::Propose {
                    peer, commitment, ..
                } = msg
                {
                    commitments.entry(peer).or_insert(commitment);
                }
                if let Message::Commit {
                    peer,
                    from,
                    to,
                    claimed_gain,
                    nonce,
                } = msg
                {
                    // Apply on the first delivered copy only, and only
                    // if it is still a valid move: the peer has not
                    // departed and still sits in the cluster it claims
                    // to leave. (The departed check comes first — a
                    // freed slot can be reassigned to a joiner.)
                    if !committed.contains(&peer) {
                        if departed.contains(&peer)
                            || system.overlay().cluster_of(peer) != Some(from)
                        {
                            if voided.insert(peer) {
                                self.commits_voided += 1;
                            }
                        } else {
                            committed.push(peer);
                            system.move_peer(peer, to);
                            self.evidence.push(CommitRecord {
                                round,
                                peer,
                                from,
                                to,
                                claimed_gain,
                                true_gain: true_gains.get(&peer).copied().unwrap_or(claimed_gain),
                                commitment: commitments.get(&peer).copied(),
                                reveal_nonce: nonce,
                                oracle_gain: oracle_gains
                                    .get(&peer)
                                    .copied()
                                    .unwrap_or(claimed_gain),
                            });
                        }
                    }
                }
                match machines.get_mut(&dst) {
                    Some(machine) => {
                        if !machine.receive(&msg, &mut out) {
                            self.net.note_stale();
                        }
                    }
                    // The driver owns the machine set, so it can tell a
                    // mid-round departure from mere lateness.
                    None if departed.contains(&dst) => self.net.note_departed(),
                    None => self.net.note_stale(),
                }
            }
            for machine in machines.values_mut() {
                machine.poll(self.now, phase_ticks, &mut out);
            }
            self.flush(&mut out, ledger, &mut requests, &mut granted);
        }
        debug_assert!(
            machines.values().all(|m| m.done()),
            "round left work behind"
        );

        // A grant whose winner departed before committing is a deny at
        // the deadline: the representative's lock was spent on a move
        // that can no longer happen.
        granted.retain(|req| {
            let void = departed.contains(&req.peer) && !committed.contains(&req.peer);
            if void {
                self.granted_total -= 1;
                self.denied_total += 1;
                self.grants_voided += 1;
            }
            !void
        });

        // ---- Outcome: identical shape (and, under the ideal schedule,
        // identical bytes) to the sync engine's. --------------------
        let view = system.view();
        crate::protocol::fold_min_costs(&view, &mut self.min_costs, &committed);
        RelocationRequest::sort_requests(&mut requests);
        RelocationRequest::sort_requests(&mut granted);
        RoundOutcome {
            round,
            requests,
            granted,
            scost: scost_normalized(&view),
            wcost: wcost_normalized(&view),
            non_empty_clusters: view.overlay().non_empty_clusters(),
            proposals_recomputed: n_live,
            proposals_memoized: 0,
        }
    }

    /// Runs rounds until a request-free round (converged) or the round
    /// budget is exhausted — the sync engine's loop, verbatim.
    pub fn run(&mut self, system: &mut System, ledger: &mut SimNetwork) -> RunOutcome {
        let mut rounds = Vec::new();
        let mut converged = false;
        for round in 0..self.config.max_rounds {
            let outcome = self.run_round(system, ledger, round);
            let done = outcome.requests.is_empty();
            rounds.push(outcome);
            if done {
                converged = true;
                break;
            }
        }
        RunOutcome { rounds, converged }
    }
}

impl<S: RelocationStrategy + std::fmt::Debug> std::fmt::Debug for RuntimeEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeEngine")
            .field("strategy", &self.strategy)
            .field("config", &self.config)
            .field("net", &self.net.config())
            .field("liars", &self.liars)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, MsgKind, Overlay, Theta};
    use recluster_types::{Document, Query, Sym, Workload};

    use crate::protocol::ProtocolEngine;
    use crate::strategy::SelfishStrategy;
    use crate::system::GameConfig;
    use crate::tracker::simulate_period;

    /// The sync engine's two-category fixture: peers 0,1 on Sym(1),
    /// peers 2,3 on Sym(2), starting from singletons.
    fn two_category_system() -> System {
        let ov = Overlay::singletons(4);
        let mut store = ContentStore::new(4);
        for (i, sym) in [(0, 1u32), (1, 1), (2, 2), (3, 2)] {
            store.add(PeerId(i), Document::new(vec![Sym(sym)]));
        }
        let mut workloads = Vec::new();
        for sym in [1u32, 1, 2, 2] {
            let mut w = Workload::new();
            w.add(Query::keyword(Sym(sym)), 2);
            workloads.push(w);
        }
        System::new(
            ov,
            store,
            workloads,
            GameConfig {
                alpha: 0.5,
                theta: Theta::Linear,
            },
        )
    }

    fn config() -> ProtocolConfig {
        ProtocolConfig::builder().memoize(false).build()
    }

    #[test]
    fn ideal_schedule_matches_sync_engine_round_for_round() {
        let mut sys_a = two_category_system();
        let mut sys_b = two_category_system();
        let mut net_a = SimNetwork::new();
        let mut net_b = SimNetwork::new();
        let mut sync = ProtocolEngine::new(SelfishStrategy, config());
        let mut runtime = RuntimeEngine::new(SelfishStrategy, config(), NetConfig::ideal());
        let a = sync.run(&mut sys_a, &mut net_a);
        let b = runtime.run(&mut sys_b, &mut net_b);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.rounds.len(), b.rounds.len());
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.requests, rb.requests);
            assert_eq!(ra.granted, rb.granted);
            assert_eq!(ra.scost.to_bits(), rb.scost.to_bits());
            assert_eq!(ra.wcost.to_bits(), rb.wcost.to_bits());
            assert_eq!(ra.non_empty_clusters, rb.non_empty_clusters);
        }
        for p in 0..4 {
            assert_eq!(
                sys_a.overlay().cluster_of(PeerId(p)),
                sys_b.overlay().cluster_of(PeerId(p))
            );
        }
        // Member gain reports are charged like the sync engine's.
        assert_eq!(
            net_a.messages(MsgKind::GainReport),
            net_b.messages(MsgKind::GainReport)
        );
    }

    #[test]
    fn clock_advances_and_commits_are_logged() {
        let mut sys = two_category_system();
        let mut ledger = SimNetwork::new();
        let mut runtime = RuntimeEngine::new(SelfishStrategy, config(), NetConfig::ideal());
        let outcome = runtime.run(&mut sys, &mut ledger);
        assert!(outcome.converged);
        assert!(runtime.now() > 0);
        assert_eq!(
            runtime.evidence().records().len(),
            outcome
                .rounds
                .iter()
                .map(|r| r.granted.len())
                .sum::<usize>(),
            "ideal schedule: every grant commits"
        );
        for rec in runtime.evidence().records() {
            assert_eq!(rec.claimed_gain.to_bits(), rec.true_gain.to_bits());
        }
        assert_eq!(runtime.net_stats().dropped, 0);
        assert_eq!(runtime.net_stats().stale, 0);
    }

    #[test]
    fn liar_audit_flags_the_inflated_claims() {
        // Ground truth: every peer lies with a huge boost; observation
        // periods estimate honest costs, so all movers get flagged.
        let mut sys = two_category_system();
        let mut ledger = SimNetwork::new();
        let mut stats = ObservedStats::new(0.5);
        for _ in 0..4 {
            stats.absorb(&simulate_period(&sys, &mut ledger));
        }
        let liars = LiarConfig {
            fraction: 1.0,
            boost: 50.0,
            seed: 9,
            mode: LiarMode::Consistent,
        };
        let mut runtime =
            RuntimeEngine::new(SelfishStrategy, config(), NetConfig::ideal()).with_liars(liars);
        let outcome = runtime.run(&mut sys, &mut ledger);
        assert!(outcome.converged);
        assert!(!runtime.evidence().records().is_empty());
        let report = runtime.evidence().audit(&sys, &stats, 0.05);
        assert_eq!(report.skipped, 0);
        assert_eq!(
            report.flagged, report.liars,
            "all liars caught, no one else"
        );
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 1.0);
    }

    /// A late-inflating liar is proven from the frames alone: the audit
    /// needs no observation coverage (everything is `skipped`) yet
    /// catches every liar through the commitment/reveal mismatch.
    #[test]
    fn late_inflate_liars_are_proven_from_frames_alone() {
        let mut sys = two_category_system();
        let mut ledger = SimNetwork::new();
        let liars = LiarConfig {
            fraction: 1.0,
            boost: 50.0,
            seed: 9,
            mode: LiarMode::LateInflate,
        };
        let mut runtime =
            RuntimeEngine::new(SelfishStrategy, config(), NetConfig::ideal()).with_liars(liars);
        let outcome = runtime.run(&mut sys, &mut ledger);
        assert!(outcome.converged);
        assert!(!runtime.evidence().records().is_empty());
        // No observations at all: the estimate-backed check cannot run.
        let report = runtime
            .evidence()
            .audit(&sys, &ObservedStats::new(0.5), 0.05);
        assert_eq!(report.audited, 0);
        assert!(report.skipped > 0);
        assert!(!report.liars.is_empty());
        assert_eq!(report.reveal_mismatch, report.liars);
        assert_eq!(report.flagged, report.liars);
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 1.0);
    }

    /// A mid-round departure abandons the peer's machine, attributes
    /// its in-flight frames to the `departed` ledger, and never applies
    /// a commit for it.
    #[test]
    fn midround_departure_abandons_the_peer() {
        let mut sys = two_category_system();
        let mut ledger = SimNetwork::new();
        let mut runtime = RuntimeEngine::new(SelfishStrategy, config(), NetConfig::ideal())
            .with_churn(vec![(1, RuntimeChurn::Depart { peer: PeerId(1) })]);
        let outcome = runtime.run(&mut sys, &mut ledger);
        assert!(outcome.converged);
        assert_eq!(sys.overlay().cluster_of(PeerId(1)), None);
        // Its self-addressed report (sent at tick 0, due at tick 1)
        // found no machine: a departed loss, not a stale one.
        assert!(runtime.net_stats().departed > 0);
        assert_eq!(runtime.net_stats().stale, 0);
        for rec in runtime.evidence().records() {
            assert_ne!(rec.peer, PeerId(1), "no commit for a departed peer");
        }
    }

    /// A mid-round joiner enters the system immediately and is admitted
    /// at the next round's collect phase.
    #[test]
    fn midround_joiner_is_admitted_next_round() {
        let mut sys = two_category_system();
        let mut ledger = SimNetwork::new();
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 2);
        let mut runtime = RuntimeEngine::new(SelfishStrategy, config(), NetConfig::ideal())
            .with_churn(vec![(
                1,
                RuntimeChurn::Arrive {
                    cluster: ClusterId(0),
                    docs: vec![Document::new(vec![Sym(1)])],
                    workload: w,
                },
            )]);
        let outcome = runtime.run(&mut sys, &mut ledger);
        assert!(outcome.converged);
        // The joiner (the grown slot, PeerId(4)) is live and clustered.
        assert!(sys.overlay().cluster_of(PeerId(4)).is_some());
        // Its announcement heartbeat was consumed, not counted stale.
        assert_eq!(runtime.net_stats().stale, 0);
    }

    #[test]
    fn honest_run_audits_clean() {
        let mut sys = two_category_system();
        let mut ledger = SimNetwork::new();
        let mut stats = ObservedStats::new(0.5);
        for _ in 0..4 {
            stats.absorb(&simulate_period(&sys, &mut ledger));
        }
        let mut runtime = RuntimeEngine::new(SelfishStrategy, config(), NetConfig::ideal());
        runtime.run(&mut sys, &mut ledger);
        // Generous tolerance: the observation estimate is noisy, but an
        // honest claim is nowhere near a 50x inflation.
        let report = runtime.evidence().audit(&sys, &stats, 1.0);
        assert!(report.liars.is_empty());
        assert_eq!(report.recall, 1.0);
    }
}
