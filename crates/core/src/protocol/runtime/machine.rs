//! Per-peer protocol state machines.
//!
//! One [`PeerStateMachine`] per live peer per round. Machines never
//! touch shared state: everything they know arrives either at
//! construction (the peer's `SystemView`-derived local knowledge — its
//! own proposal, who its representative is) or through received
//! [`Message`]s. They communicate exclusively by queueing frames on an
//! [`Outbox`]; the [`RuntimeEngine`](super::RuntimeEngine) moves those
//! frames onto the [`SimNet`](super::SimNet) fabric.
//!
//! Representatives run two collect-then-fire phases mirroring §3.2:
//! phase 1 collects member gain reports and forwards the cluster's best
//! as a single request; phase 2 collects every other representative's
//! forward, sorts the union exactly like the sync engine
//! ([`RelocationRequest::sort_requests`]) and applies the anti-cycle
//! lock rule to decide its own cluster's grant. Each phase fires when
//! its collection is complete *or* its deadline passes — under an ideal
//! schedule collections always complete, which is what makes the
//! runtime bit-identical to [`ProtocolEngine`]; under delay or loss the
//! deadline path produces exactly the stale-view decisions the sweep
//! scenarios measure.
//!
//! Collectors are **identity-based**: a phase tracks *which* members
//! and clusters it has heard (sets), not how many. Under the fully
//! drained, churn-free schedules the two are indistinguishable — every
//! frame arrives at most once and only from snapshot peers — but under
//! mid-round churn a frame from a peer outside the round snapshot (a
//! joiner announcing itself via heartbeat) or a duplicate is consumed
//! without advancing any phase, so a collector can never fire early on
//! traffic the snapshot never promised it.
//!
//! [`ProtocolEngine`]: crate::protocol::ProtocolEngine

use std::collections::{BTreeMap, BTreeSet};

use recluster_overlay::MsgKind;
use recluster_types::{ClusterId, PeerId};

use super::message::{gain_commitment, DenyReason, Message};
use crate::protocol::locks::LockSet;
use crate::protocol::RelocationRequest;

/// A decision event a machine reports up to its driver — the runtime's
/// window into what representatives concluded, used to assemble
/// [`RoundOutcome`](crate::protocol::RoundOutcome)s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineEvent {
    /// A representative forwarded its cluster's best request (phase 1).
    Forwarded(RelocationRequest),
    /// A representative granted its own cluster's request (phase 2).
    Granted(RelocationRequest),
    /// A representative denied its own cluster's request (phase 2).
    Denied(RelocationRequest, DenyReason),
}

/// The outgoing-frame queue machines write to. The driver drains it
/// after every delivery/poll step and feeds the frames to the fabric.
#[derive(Debug, Default)]
pub struct Outbox {
    frames: Vec<(PeerId, PeerId, Message, MsgKind)>,
    events: Vec<MachineEvent>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues `msg` from `src` to `dst`, to be charged to the ledger
    /// under `kind`. The kind is context the sender picks, not a
    /// property of the frame: a member's `Heartbeat` stand-in for its
    /// gain report is charged as a [`MsgKind::GainReport`] (matching the
    /// sync engine's accounting), while a representative's phase-1
    /// heartbeat is a [`MsgKind::Heartbeat`].
    pub fn send(&mut self, src: PeerId, dst: PeerId, msg: Message, kind: MsgKind) {
        self.frames.push((src, dst, msg, kind));
    }

    /// Reports a decision event to the driver.
    pub fn event(&mut self, event: MachineEvent) {
        self.events.push(event);
    }

    /// Drains the queued frames in send order.
    pub fn drain_frames(&mut self) -> Vec<(PeerId, PeerId, Message, MsgKind)> {
        std::mem::take(&mut self.frames)
    }

    /// Drains the reported events in emit order.
    pub fn drain_events(&mut self) -> Vec<MachineEvent> {
        std::mem::take(&mut self.events)
    }
}

/// What a peer reports this round and how it backs the claim: the
/// proposal (already policy-filtered, already inflated for configured
/// liars), the [`gain_commitment`] the `Propose` carries, and the gain
/// bits + nonce the peer will reveal at `Commit`. [`ReportPlan::honest`]
/// builds the self-consistent plan; a liar mode builds a plan whose
/// pieces disagree, which is exactly what the audit detects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportPlan {
    /// The proposal to report: `(destination, claimed gain)`. `None`
    /// reports a heartbeat.
    pub report: Option<(ClusterId, f64)>,
    /// Representative of the proposal's destination cluster in the
    /// round snapshot (`None` when the destination is empty) — where
    /// the second [`Message::Commit`] copy goes.
    pub dst_rep: Option<PeerId>,
    /// The commitment the `Propose` carries.
    pub commitment: u64,
    /// The nonce revealed at `Commit`.
    pub nonce: u64,
    /// The gain restated at `Commit` (the reveal).
    pub commit_gain: f64,
}

impl ReportPlan {
    /// The "nothing to report" plan: a heartbeat, no commitment.
    pub fn heartbeat() -> Self {
        ReportPlan {
            report: None,
            dst_rep: None,
            commitment: 0,
            nonce: 0,
            commit_gain: 0.0,
        }
    }

    /// A self-consistent plan: the commitment covers exactly the gain
    /// bits the peer claims now and will reveal at `Commit`.
    pub fn honest(
        peer: PeerId,
        from: ClusterId,
        to: ClusterId,
        gain: f64,
        nonce: u64,
        dst_rep: Option<PeerId>,
    ) -> Self {
        ReportPlan {
            report: Some((to, gain)),
            dst_rep,
            commitment: gain_commitment(peer, from, to, gain.to_bits(), nonce),
            nonce,
            commit_gain: gain,
        }
    }
}

/// Representative-only state: the two collect-then-fire phases.
#[derive(Debug)]
struct RepState {
    /// Members of the cluster (ascending), `self` included.
    members: Vec<PeerId>,
    /// `(cluster, representative)` of every *other* non-empty cluster.
    others: Vec<(ClusterId, PeerId)>,
    /// The sync engine's lock switch ([`ProtocolConfig::use_locks`]).
    ///
    /// [`ProtocolConfig::use_locks`]: crate::protocol::ProtocolConfig
    use_locks: bool,
    /// Gain reports collected so far with their commitments (Propose
    /// frames only; heartbeats mark `reports_heard` but carry no
    /// candidate).
    reports: Vec<(RelocationRequest, u64)>,
    /// Which members have reported (identity, not count: duplicates and
    /// non-members never advance the phase).
    reports_heard: BTreeSet<PeerId>,
    phase1_deadline: u64,
    phase1_fired: bool,
    /// The cluster's own forwarded request with its commitment, if any.
    own_request: Option<(RelocationRequest, u64)>,
    /// Forwarded requests received from other representatives.
    peer_requests: Vec<RelocationRequest>,
    /// Which other clusters have spoken in phase 2 (request or
    /// heartbeat).
    clusters_heard: BTreeSet<ClusterId>,
    phase2_deadline: u64,
    phase2_fired: bool,
    /// Own-cluster size, maintained from delivered commits — the value
    /// broadcast in [`Message::SummaryUpdate`].
    own_size: u32,
    /// Latest summary heard per cluster (from `SummaryUpdate` frames).
    summaries: BTreeMap<ClusterId, u32>,
}

#[derive(Debug)]
enum Role {
    Member,
    Representative(Box<RepState>),
}

/// One peer's protocol automaton for one round.
#[derive(Debug)]
pub struct PeerStateMachine {
    peer: PeerId,
    cluster: ClusterId,
    /// This peer's cluster representative (itself, when representative).
    rep: PeerId,
    /// What this peer reports and reveals ([`ReportPlan`]).
    plan: ReportPlan,
    sent_report: bool,
    role: Role,
}

impl PeerStateMachine {
    /// A plain member: reports to `rep`, waits for grant or deny.
    pub fn member(peer: PeerId, cluster: ClusterId, rep: PeerId, plan: ReportPlan) -> Self {
        PeerStateMachine {
            peer,
            cluster,
            rep,
            plan,
            sent_report: false,
            role: Role::Member,
        }
    }

    /// A representative: a member plus the two collector phases.
    /// `members` must be the cluster's member list ascending (`peer`
    /// included); `others` the `(cluster, representative)` pairs of
    /// every other non-empty cluster. `round_start` and `phase_ticks`
    /// position the phase-1 deadline at `round_start + 1 + phase_ticks`
    /// (reports leave at `round_start` and arrive no earlier than one
    /// tick later); the phase-2 deadline is set the same way when
    /// phase 1 fires.
    #[allow(clippy::too_many_arguments)]
    pub fn representative(
        peer: PeerId,
        cluster: ClusterId,
        members: Vec<PeerId>,
        others: Vec<(ClusterId, PeerId)>,
        plan: ReportPlan,
        use_locks: bool,
        round_start: u64,
        phase_ticks: u64,
    ) -> Self {
        let own_size = members.len() as u32;
        PeerStateMachine {
            peer,
            cluster,
            rep: peer,
            plan,
            sent_report: false,
            role: Role::Representative(Box::new(RepState {
                members,
                others,
                use_locks,
                reports: Vec::new(),
                reports_heard: BTreeSet::new(),
                phase1_deadline: round_start + 1 + phase_ticks,
                phase1_fired: false,
                own_request: None,
                peer_requests: Vec::new(),
                clusters_heard: BTreeSet::new(),
                phase2_deadline: u64::MAX,
                phase2_fired: false,
                own_size,
                summaries: BTreeMap::new(),
            })),
        }
    }

    /// The peer this machine runs for.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// Whether this machine has completed every phase it owns — plain
    /// members are always "done" (they only react), representatives once
    /// phase 2 has fired.
    pub fn done(&self) -> bool {
        match &self.role {
            Role::Member => true,
            Role::Representative(rep) => rep.phase2_fired,
        }
    }

    /// The earliest unfired phase deadline, if any — the driver uses it
    /// to advance the clock when the fabric is idle.
    pub fn next_deadline(&self) -> Option<u64> {
        match &self.role {
            Role::Member => None,
            Role::Representative(rep) => {
                if !rep.phase1_fired {
                    Some(rep.phase1_deadline)
                } else if !rep.phase2_fired {
                    Some(rep.phase2_deadline)
                } else {
                    None
                }
            }
        }
    }

    /// Cluster sizes this peer has heard via `SummaryUpdate`, freshest
    /// value per cluster (representatives only; empty for members).
    pub fn heard_summaries(&self) -> Vec<(ClusterId, u32)> {
        match &self.role {
            Role::Member => Vec::new(),
            Role::Representative(rep) => rep.summaries.iter().map(|(&c, &s)| (c, s)).collect(),
        }
    }

    /// Advances time-driven behavior: sends the initial report on the
    /// first poll; fires a representative's phases when complete or past
    /// deadline. Called once per tick after deliveries, machines in
    /// ascending peer order.
    pub fn poll(&mut self, now: u64, phase_ticks: u64, out: &mut Outbox) {
        if !self.sent_report {
            self.sent_report = true;
            let msg = match self.plan.report {
                Some((to, claimed_gain)) => Message::Propose {
                    peer: self.peer,
                    from: self.cluster,
                    to,
                    claimed_gain,
                    commitment: self.plan.commitment,
                },
                None => Message::Heartbeat {
                    peer: self.peer,
                    from: self.cluster,
                },
            };
            // Members report to the representative — the representative
            // to itself, through the same fabric, so every member's
            // report is charged identically (as in the sync engine).
            out.send(self.peer, self.rep, msg, MsgKind::GainReport);
        }
        let (peer, cluster) = (self.peer, self.cluster);
        if let Role::Representative(rep) = &mut self.role {
            if !rep.phase1_fired
                && (rep.reports_heard.len() == rep.members.len() || now >= rep.phase1_deadline)
            {
                rep.fire_phase1(peer, cluster, now, phase_ticks, out);
            }
            if rep.phase1_fired
                && !rep.phase2_fired
                && (rep.clusters_heard.len() == rep.others.len() || now >= rep.phase2_deadline)
            {
                rep.fire_phase2(peer, cluster, out);
            }
        }
    }

    /// Handles one delivered frame. Returns whether the frame was
    /// consumed — `false` means it arrived after the phase that wanted
    /// it had already fired (the driver counts it stale).
    pub fn receive(&mut self, msg: &Message, out: &mut Outbox) -> bool {
        match *msg {
            Message::Propose {
                peer,
                from,
                to,
                claimed_gain,
                commitment,
            } => {
                let report = from == self.cluster;
                let Role::Representative(rep) = &mut self.role else {
                    return false;
                };
                let req = RelocationRequest {
                    src: from,
                    dst: to,
                    peer,
                    gain: claimed_gain,
                };
                if report {
                    // A frame from outside the snapshot's member list
                    // (a mid-round joiner) is consumed regardless of
                    // phase state — it is not late, just early.
                    if rep.members.binary_search(&peer).is_err() {
                        return true;
                    }
                    if rep.phase1_fired {
                        return false;
                    }
                    // A duplicate is consumed without advancing.
                    if !rep.reports_heard.insert(peer) {
                        return true;
                    }
                    rep.reports.push((req, commitment));
                } else {
                    // Same for a forward from a cluster the snapshot
                    // doesn't know, or one already heard.
                    if !rep.others.iter().any(|&(c, _)| c == from) {
                        return true;
                    }
                    if rep.phase2_fired {
                        return false;
                    }
                    if !rep.clusters_heard.insert(from) {
                        return true;
                    }
                    rep.peer_requests.push(req);
                }
                true
            }
            Message::Heartbeat { peer, from } => {
                let report = from == self.cluster;
                let Role::Representative(rep) = &mut self.role else {
                    return false;
                };
                if report {
                    if rep.members.binary_search(&peer).is_err() {
                        return true;
                    }
                    if rep.phase1_fired {
                        return false;
                    }
                    rep.reports_heard.insert(peer);
                } else {
                    if !rep.others.iter().any(|&(c, _)| c == from) {
                        return true;
                    }
                    if rep.phase2_fired {
                        return false;
                    }
                    rep.clusters_heard.insert(from);
                }
                true
            }
            Message::Grant { src, dst, peer, .. } => {
                if peer != self.peer {
                    return false;
                }
                // Execute the move: commit to the home representative
                // and, when the destination has one, to it too. The
                // commit reveals the plan's gain bits and nonce — the
                // auditor checks them against the Propose commitment.
                let commit = Message::Commit {
                    peer: self.peer,
                    from: src,
                    to: dst,
                    claimed_gain: self.plan.commit_gain,
                    nonce: self.plan.nonce,
                };
                out.send(self.peer, self.rep, commit, MsgKind::ClusterJoin);
                if let Some(dst_rep) = self.plan.dst_rep {
                    out.send(self.peer, dst_rep, commit, MsgKind::ClusterJoin);
                }
                true
            }
            Message::Deny { peer, .. } => peer == self.peer,
            Message::Commit { from, to, .. } => {
                let (peer, cluster) = (self.peer, self.cluster);
                let Role::Representative(rep) = &mut self.role else {
                    return false;
                };
                if from == cluster {
                    rep.own_size = rep.own_size.saturating_sub(1);
                } else if to == cluster {
                    rep.own_size += 1;
                }
                let update = Message::SummaryUpdate {
                    cluster,
                    size: rep.own_size,
                };
                for &(_, other) in &rep.others {
                    out.send(peer, other, update, MsgKind::SummaryUpdate);
                }
                true
            }
            Message::SummaryUpdate { cluster, size } => {
                if let Role::Representative(rep) = &mut self.role {
                    rep.summaries.insert(cluster, size);
                }
                true
            }
        }
    }
}

impl RepState {
    /// Phase 1: pick the cluster's best collected report with the sync
    /// engine's exact walk (ascending peer order, gain window
    /// `f64::EPSILON`, ties to the lower peer id) and forward it — or a
    /// heartbeat — to every other representative.
    fn fire_phase1(
        &mut self,
        peer: PeerId,
        cluster: ClusterId,
        now: u64,
        phase_ticks: u64,
        out: &mut Outbox,
    ) {
        self.phase1_fired = true;
        self.phase2_deadline = now + 1 + phase_ticks;
        self.reports.sort_by_key(|(r, _)| r.peer);
        let mut best: Option<(RelocationRequest, u64)> = None;
        for &candidate in &self.reports {
            let replace = match &best {
                None => true,
                Some((b, _)) => {
                    candidate.0.gain > b.gain + f64::EPSILON
                        || ((candidate.0.gain - b.gain).abs() <= f64::EPSILON
                            && candidate.0.peer < b.peer)
                }
            };
            if replace {
                best = Some(candidate);
            }
        }
        self.own_request = best;
        match best {
            Some((req, commitment)) => {
                // The forward relays the member's commitment verbatim —
                // a representative cannot launder a member's claim.
                let forward = Message::Propose {
                    peer: req.peer,
                    from: req.src,
                    to: req.dst,
                    claimed_gain: req.gain,
                    commitment,
                };
                for &(_, other) in &self.others {
                    out.send(peer, other, forward, MsgKind::RelocationRequest);
                }
                out.event(MachineEvent::Forwarded(req));
            }
            None => {
                let hb = Message::Heartbeat {
                    peer,
                    from: cluster,
                };
                for &(_, other) in &self.others {
                    out.send(peer, other, hb, MsgKind::Heartbeat);
                }
            }
        }
    }

    /// Phase 2: sort everything heard exactly like the sync engine and
    /// run the lock-rule scan; grant or deny the *own* cluster's request
    /// (every representative decides only for its own cluster, from
    /// what its view of the request list locks first).
    fn fire_phase2(&mut self, peer: PeerId, cluster: ClusterId, out: &mut Outbox) {
        self.phase2_fired = true;
        let mut all: Vec<RelocationRequest> = self.peer_requests.clone();
        if let Some((own, _)) = self.own_request {
            all.push(own);
        }
        RelocationRequest::sort_requests(&mut all);
        if self.own_request.is_none() {
            // Nothing of ours in the scan — no decision to make.
            return;
        }
        let mut locks = LockSet::new();
        for &req in &all {
            let is_own = req.src == cluster;
            if req.src == req.dst {
                if is_own {
                    self.deny(peer, req, DenyReason::SelfMove, out);
                }
                continue;
            }
            if !self.use_locks || locks.admissible(req.src, req.dst) {
                locks.grant(req.src, req.dst);
                if is_own {
                    out.send(
                        peer,
                        req.peer,
                        Message::Grant {
                            src: req.src,
                            dst: req.dst,
                            peer: req.peer,
                            gain: req.gain,
                        },
                        MsgKind::GrantCoordination,
                    );
                    out.event(MachineEvent::Granted(req));
                }
            } else if is_own {
                self.deny(peer, req, DenyReason::Locked, out);
            }
        }
    }

    fn deny(&self, peer: PeerId, req: RelocationRequest, reason: DenyReason, out: &mut Outbox) {
        out.send(
            peer,
            req.peer,
            Message::Deny {
                src: req.src,
                dst: req.dst,
                peer: req.peer,
                reason,
            },
            MsgKind::GrantCoordination,
        );
        out.event(MachineEvent::Denied(req, reason));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_to(out: &mut Outbox, dst: PeerId) -> Vec<Message> {
        out.drain_frames()
            .into_iter()
            .filter(|&(_, d, _, _)| d == dst)
            .map(|(_, _, m, _)| m)
            .collect()
    }

    /// Two clusters of two; cluster 0's rep collects both reports, picks
    /// the higher gain, forwards it, and grants it after hearing the
    /// other representative's heartbeat.
    #[test]
    fn representative_runs_both_phases_to_a_grant() {
        let mut out = Outbox::new();
        let mut rep = PeerStateMachine::representative(
            PeerId(0),
            ClusterId(0),
            vec![PeerId(0), PeerId(1)],
            vec![(ClusterId(1), PeerId(2))],
            ReportPlan::heartbeat(),
            true,
            0,
            8,
        );
        rep.poll(0, 8, &mut out);
        // Self-report (heartbeat) went to itself as a gain report.
        let frames = out.drain_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].1, PeerId(0));
        assert_eq!(frames[0].3, MsgKind::GainReport);

        assert!(rep.receive(
            &Message::Heartbeat {
                peer: PeerId(0),
                from: ClusterId(0)
            },
            &mut out
        ));
        assert!(rep.receive(
            &Message::Propose {
                peer: PeerId(1),
                from: ClusterId(0),
                to: ClusterId(1),
                claimed_gain: 0.5,
                commitment: 0xfeed,
            },
            &mut out,
        ));
        rep.poll(1, 8, &mut out);
        let fwd = drain_to(&mut out, PeerId(2));
        // The forward relays the member's commitment verbatim.
        assert_eq!(
            fwd,
            vec![Message::Propose {
                peer: PeerId(1),
                from: ClusterId(0),
                to: ClusterId(1),
                claimed_gain: 0.5,
                commitment: 0xfeed,
            }]
        );
        assert_eq!(
            out.drain_events(),
            vec![MachineEvent::Forwarded(RelocationRequest {
                src: ClusterId(0),
                dst: ClusterId(1),
                peer: PeerId(1),
                gain: 0.5,
            })]
        );
        assert!(!rep.done());

        assert!(rep.receive(
            &Message::Heartbeat {
                peer: PeerId(2),
                from: ClusterId(1)
            },
            &mut out
        ));
        rep.poll(2, 8, &mut out);
        assert!(rep.done());
        let grants = drain_to(&mut out, PeerId(1));
        assert_eq!(
            grants,
            vec![Message::Grant {
                src: ClusterId(0),
                dst: ClusterId(1),
                peer: PeerId(1),
                gain: 0.5,
            }]
        );
        assert!(matches!(out.drain_events()[..], [MachineEvent::Granted(_)]));
    }

    #[test]
    fn late_report_is_stale_after_deadline_fire() {
        let mut out = Outbox::new();
        let mut rep = PeerStateMachine::representative(
            PeerId(0),
            ClusterId(0),
            vec![PeerId(0), PeerId(1)],
            vec![],
            ReportPlan::heartbeat(),
            true,
            0,
            2,
        );
        rep.poll(0, 2, &mut out);
        assert!(rep.receive(
            &Message::Heartbeat {
                peer: PeerId(0),
                from: ClusterId(0)
            },
            &mut out
        ));
        // Deadline (0 + 1 + 2 = 3) passes with p1's report still in
        // flight: phase 1 fires on partial information...
        rep.poll(3, 2, &mut out);
        // ...phase 2 fires immediately (no other reps)...
        assert!(rep.done());
        // ...and the straggler is rejected as stale.
        assert!(!rep.receive(
            &Message::Propose {
                peer: PeerId(1),
                from: ClusterId(0),
                to: ClusterId(1),
                claimed_gain: 9.0,
                commitment: 0,
            },
            &mut out,
        ));
    }

    /// Identity-based collection: a report from outside the snapshot's
    /// member list (a mid-round joiner) and a duplicate are consumed
    /// without advancing the phase, so the collector still waits for
    /// the member it has not heard.
    #[test]
    fn joiner_and_duplicate_reports_do_not_advance_the_phase() {
        let mut out = Outbox::new();
        let mut rep = PeerStateMachine::representative(
            PeerId(0),
            ClusterId(0),
            vec![PeerId(0), PeerId(1)],
            vec![],
            ReportPlan::heartbeat(),
            true,
            0,
            8,
        );
        rep.poll(0, 8, &mut out);
        out.drain_frames();
        // A joiner's heartbeat: consumed (not stale), phase unmoved.
        assert!(rep.receive(
            &Message::Heartbeat {
                peer: PeerId(42),
                from: ClusterId(0)
            },
            &mut out
        ));
        // The rep's own report, twice — the duplicate is absorbed.
        for _ in 0..2 {
            assert!(rep.receive(
                &Message::Heartbeat {
                    peer: PeerId(0),
                    from: ClusterId(0)
                },
                &mut out
            ));
        }
        rep.poll(1, 8, &mut out);
        // Phase 1 must not have fired: PeerId(1) is still unheard and
        // neither the joiner nor the duplicate may stand in for it.
        assert!(rep.next_deadline() == Some(9));
        assert!(rep.receive(
            &Message::Propose {
                peer: PeerId(1),
                from: ClusterId(0),
                to: ClusterId(1),
                claimed_gain: 0.5,
                commitment: 1,
            },
            &mut out,
        ));
        rep.poll(2, 8, &mut out);
        assert!(rep.done());
    }

    #[test]
    fn epsilon_window_tie_breaks_to_lower_peer_id() {
        let mut out = Outbox::new();
        let mut rep = PeerStateMachine::representative(
            PeerId(0),
            ClusterId(0),
            vec![PeerId(0), PeerId(1), PeerId(2)],
            vec![(ClusterId(1), PeerId(9))],
            ReportPlan::heartbeat(),
            true,
            0,
            8,
        );
        rep.poll(0, 8, &mut out);
        out.drain_frames();
        assert!(rep.receive(
            &Message::Heartbeat {
                peer: PeerId(0),
                from: ClusterId(0)
            },
            &mut out
        ));
        // Delivered out of order: p2 first, then p1 with a gain inside
        // the epsilon window — the walk must still pick p1.
        for (p, g) in [(2u32, 0.5), (1, 0.5)] {
            assert!(rep.receive(
                &Message::Propose {
                    peer: PeerId(p),
                    from: ClusterId(0),
                    to: ClusterId(1),
                    claimed_gain: g,
                    commitment: u64::from(p),
                },
                &mut out,
            ));
        }
        rep.poll(1, 8, &mut out);
        match out.drain_events()[..] {
            [MachineEvent::Forwarded(req)] => assert_eq!(req.peer, PeerId(1)),
            ref other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn granted_member_commits_to_both_representatives() {
        let mut out = Outbox::new();
        let plan = ReportPlan::honest(
            PeerId(3),
            ClusterId(1),
            ClusterId(0),
            0.25,
            77,
            Some(PeerId(0)),
        );
        let mut member = PeerStateMachine::member(PeerId(3), ClusterId(1), PeerId(2), plan);
        member.poll(0, 8, &mut out);
        let report = out.drain_frames();
        assert_eq!(report[0].1, PeerId(2));
        match report[0].2 {
            Message::Propose { commitment, .. } => assert_eq!(commitment, plan.commitment),
            ref other => panic!("wrong frame: {other:?}"),
        }

        assert!(member.receive(
            &Message::Grant {
                src: ClusterId(1),
                dst: ClusterId(0),
                peer: PeerId(3),
                gain: 0.25,
            },
            &mut out,
        ));
        let commits = out.drain_frames();
        let dsts: Vec<PeerId> = commits.iter().map(|&(_, d, _, _)| d).collect();
        assert_eq!(dsts, vec![PeerId(2), PeerId(0)]);
        for (_, _, msg, kind) in commits {
            assert_eq!(kind, MsgKind::ClusterJoin);
            assert_eq!(
                msg,
                Message::Commit {
                    peer: PeerId(3),
                    from: ClusterId(1),
                    to: ClusterId(0),
                    claimed_gain: 0.25,
                    nonce: 77,
                }
            );
            // The honest reveal reproduces the commitment.
            if let Message::Commit {
                peer,
                from,
                to,
                claimed_gain,
                nonce,
            } = msg
            {
                assert_eq!(
                    gain_commitment(peer, from, to, claimed_gain.to_bits(), nonce),
                    plan.commitment
                );
            }
        }
    }

    #[test]
    fn commit_receipt_updates_size_and_broadcasts_summary() {
        let mut out = Outbox::new();
        let mut rep = PeerStateMachine::representative(
            PeerId(0),
            ClusterId(0),
            vec![PeerId(0), PeerId(1)],
            vec![(ClusterId(3), PeerId(5)), (ClusterId(4), PeerId(7))],
            ReportPlan::heartbeat(),
            true,
            0,
            8,
        );
        assert!(rep.receive(
            &Message::Commit {
                peer: PeerId(1),
                from: ClusterId(0),
                to: ClusterId(3),
                claimed_gain: 0.1,
                nonce: 0,
            },
            &mut out,
        ));
        let frames = out.drain_frames();
        assert_eq!(frames.len(), 2);
        for (_, _, msg, kind) in frames {
            assert_eq!(kind, MsgKind::SummaryUpdate);
            assert_eq!(
                msg,
                Message::SummaryUpdate {
                    cluster: ClusterId(0),
                    size: 1
                }
            );
        }
        // And the mirror update is recorded when heard.
        assert!(rep.receive(
            &Message::SummaryUpdate {
                cluster: ClusterId(3),
                size: 4
            },
            &mut out,
        ));
        assert_eq!(rep.heard_summaries(), vec![(ClusterId(3), 4)]);
    }
}
