//! The deterministic simulated network.
//!
//! [`SimNet`] is a discrete-time message fabric: a send at tick `t`
//! either drops (per-link Bernoulli draw) or is scheduled for delivery
//! at `t + 1 + delay`, with the delay drawn from the configured
//! [`DelayDist`]. Deliveries pop in total order on
//! `(deliver_tick, msg_seq)` — `msg_seq` is the global send counter —
//! so two runs over the same seed replay **byte-identically**, no
//! matter how messages interleave. All randomness comes from one
//! [`StdRng`] seeded from [`NetConfig::seed`] and consumed in send
//! order; nothing reads wall-clock or thread identity.
//!
//! On top of the random per-link schedule sits a *deterministic*
//! [`FaultSchedule`]: timed network partitions (peer-set bisections and
//! single-peer isolation) with heal ticks, plus per-peer crash/restart
//! windows. Faults are evaluated at the send tick **before** any RNG
//! draw, so attaching an empty schedule leaves the random stream — and
//! therefore every existing replay — byte-identical. [`NetStats`]
//! attributes each loss to its cause (`dropped` vs `cut` vs `crashed`
//! vs `departed`), so a partition can never masquerade as fabric loss.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::Rng;
use recluster_overlay::{MsgKind, SimNetwork};
use recluster_types::{seeded_rng, PeerId};

use super::message::Message;

/// Per-link delivery-delay distribution, in ticks on top of the
/// baseline 1-tick hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayDist {
    /// Every message takes exactly this many extra ticks.
    Fixed(u64),
    /// Uniformly distributed extra ticks in `[min, max]` — the
    /// reordering regime: a later send can overtake an earlier one.
    Uniform {
        /// Minimum extra delay.
        min: u64,
        /// Maximum extra delay (inclusive).
        max: u64,
    },
}

impl DelayDist {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d,
            DelayDist::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
        }
    }

    /// The largest delay this distribution can produce.
    pub fn max_delay(&self) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d,
            DelayDist::Uniform { min, max } => max.max(min),
        }
    }
}

/// Network parameters for a runtime run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Seed of the fabric's RNG (drop and delay draws).
    pub seed: u64,
    /// Extra per-message delay.
    pub delay: DelayDist,
    /// Probability a message is silently lost, in `[0, 1)`.
    pub drop_rate: f64,
    /// Ticks a collector waits for stragglers before acting on partial
    /// information: a representative fires phase 1 (respectively
    /// phase 2) when every expected message has arrived *or* this many
    /// ticks have passed since the round (respectively its forward)
    /// started. Messages landing after the collector fired are counted
    /// stale and discarded.
    pub phase_ticks: u64,
}

impl NetConfig {
    /// The degenerate schedule: zero extra delay, zero loss. Under it
    /// the runtime is bit-identical to [`ProtocolEngine`] (proven by
    /// the `prop_runtime` suite).
    ///
    /// [`ProtocolEngine`]: crate::protocol::ProtocolEngine
    pub fn ideal() -> Self {
        NetConfig {
            seed: 0,
            delay: DelayDist::Fixed(0),
            drop_rate: 0.0,
            phase_ticks: 8,
        }
    }

    /// A degraded schedule: uniform extra delay in `[min, max]` ticks
    /// and the given drop rate, with the phase timeout sized so an
    /// undropped straggler *can* still make its deadline.
    pub fn degraded(seed: u64, min_delay: u64, max_delay: u64, drop_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_rate),
            "drop_rate must be in [0, 1)"
        );
        NetConfig {
            seed,
            delay: DelayDist::Uniform {
                min: min_delay,
                max: max_delay,
            },
            drop_rate,
            phase_ticks: max_delay.max(min_delay) + 2,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::ideal()
    }
}

/// Which links an active partition severs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Splits the peer set in two: peers with id `< pivot` cannot
    /// exchange frames with peers whose id is `>= pivot` (in either
    /// direction). Intra-side traffic is unaffected.
    Bisect {
        /// First peer id of the far side.
        pivot: u32,
    },
    /// Cuts one peer off from everyone — the "representative behind a
    /// broken link" case: its collectors run on silence alone.
    Isolate {
        /// The isolated peer.
        peer: PeerId,
    },
}

/// One timed partition: active during `[start, heal)` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// What the partition severs while active.
    pub kind: PartitionKind,
    /// First tick the partition is active.
    pub start: u64,
    /// First tick the partition is healed (exclusive end).
    pub heal: u64,
}

impl Partition {
    fn severs(&self, src: PeerId, dst: PeerId, tick: u64) -> bool {
        if tick < self.start || tick >= self.heal {
            return false;
        }
        match self.kind {
            PartitionKind::Bisect { pivot } => (src.0 < pivot) != (dst.0 < pivot),
            PartitionKind::Isolate { peer } => src == peer || dst == peer,
        }
    }
}

/// One per-peer crash window: the peer is down during `[down, up)`
/// ticks — frames it would send vanish at the source, frames addressed
/// to it vanish at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing peer.
    pub peer: PeerId,
    /// First tick the peer is down.
    pub down: u64,
    /// First tick the peer is back up (exclusive end).
    pub up: u64,
}

/// A deterministic fault timetable the fabric consults on every send:
/// timed partitions with heal ticks plus per-peer crash/restart
/// windows. The empty schedule (the default) faults nothing and leaves
/// the fabric byte-identical to a schedule-less one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Timed partitions, each active during its own `[start, heal)`.
    pub partitions: Vec<Partition>,
    /// Per-peer crash windows.
    pub crashes: Vec<CrashWindow>,
}

impl FaultSchedule {
    /// The empty schedule: no partitions, no crashes.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Whether the schedule faults nothing at any tick.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty() && self.crashes.is_empty()
    }

    /// Whether `peer` is inside a crash window at `tick`.
    pub fn is_down(&self, peer: PeerId, tick: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.peer == peer && tick >= c.down && tick < c.up)
    }

    /// Whether an active partition severs the `src → dst` link at
    /// `tick`.
    pub fn severed(&self, src: PeerId, dst: PeerId, tick: u64) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, tick))
    }
}

/// Fabric counters, all cumulative over the engine's lifetime. The four
/// loss ledgers are disjoint by construction — `dropped` is the random
/// drop draw, `cut` an active partition, `crashed` a crash window,
/// `departed` a receiver that left the overlay mid-round — so loss
/// attribution is exact, never inferred.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the fabric.
    pub sent: u64,
    /// Frames delivered to their destination machine.
    pub delivered: u64,
    /// Frames lost to the drop draw.
    pub dropped: u64,
    /// Frames severed by an active network partition.
    pub cut: u64,
    /// Frames lost because the sender or receiver was inside a crash
    /// window at the send tick.
    pub crashed: u64,
    /// Frames delivered to a peer that had departed the overlay
    /// mid-round (noted by the driver, which owns the machine set).
    pub departed: u64,
    /// Frames delivered after their collector had already fired — the
    /// receiver discarded them.
    pub stale: u64,
}

/// One in-flight frame. Ordering is **only** `(deliver_tick, seq)`:
/// the total order that makes replays byte-identical.
#[derive(Debug, Clone)]
struct Envelope {
    deliver_tick: u64,
    seq: u64,
    src: PeerId,
    dst: PeerId,
    bytes: Vec<u8>,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_tick == other.deliver_tick && self.seq == other.seq
    }
}

impl Eq for Envelope {}

impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (tick, seq) first.
        (other.deliver_tick, other.seq).cmp(&(self.deliver_tick, self.seq))
    }
}

/// The deterministic scheduler: seeded drops and delays on send, a
/// total-order heap on delivery.
#[derive(Debug)]
pub struct SimNet {
    config: NetConfig,
    faults: FaultSchedule,
    rng: StdRng,
    heap: BinaryHeap<Envelope>,
    seq: u64,
    stats: NetStats,
}

impl SimNet {
    /// Creates a fabric over the given parameters (no faults).
    pub fn new(config: NetConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.drop_rate),
            "drop_rate must be in [0, 1)"
        );
        SimNet {
            rng: seeded_rng(config.seed),
            config,
            faults: FaultSchedule::none(),
            heap: BinaryHeap::new(),
            seq: 0,
            stats: NetStats::default(),
        }
    }

    /// Attaches a fault timetable. An empty schedule is a no-op: fault
    /// checks run before any RNG draw, so the random stream — and every
    /// replay — is byte-identical with or without this call.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// The parameters this fabric runs under.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// The attached fault timetable (empty unless [`with_faults`] set
    /// one).
    ///
    /// [`with_faults`]: SimNet::with_faults
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Sends `msg` from `src` to `dst` at tick `now`, charging its wire
    /// frame to `ledger` under `kind`. Returns the delivery tick, or
    /// `None` if the drop draw lost the frame. The ledger is charged
    /// either way — a dropped message still cost its bandwidth.
    pub fn send(
        &mut self,
        now: u64,
        src: PeerId,
        dst: PeerId,
        msg: &Message,
        kind: MsgKind,
        ledger: &mut SimNetwork,
    ) -> Option<u64> {
        let bytes = msg.encode();
        ledger.send(kind, bytes.len() as u64);
        self.stats.sent += 1;
        self.seq += 1;
        // Faults are deterministic and consulted before the drop/delay
        // draws: a faulted frame consumes no randomness, so the RNG
        // stream of the surviving frames matches a fault-free run's
        // prefix for the same send order.
        if self.faults.is_down(src, now) || self.faults.is_down(dst, now) {
            self.stats.crashed += 1;
            return None;
        }
        if self.faults.severed(src, dst, now) {
            self.stats.cut += 1;
            return None;
        }
        if self.config.drop_rate > 0.0 && self.rng.gen_bool(self.config.drop_rate) {
            self.stats.dropped += 1;
            return None;
        }
        let deliver_tick = now + 1 + self.config.delay.sample(&mut self.rng);
        self.heap.push(Envelope {
            deliver_tick,
            seq: self.seq,
            src,
            dst,
            bytes,
        });
        Some(deliver_tick)
    }

    /// The tick of the earliest in-flight frame.
    pub fn next_tick(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.deliver_tick)
    }

    /// Pops the next frame due at or before `tick`, in
    /// `(deliver_tick, seq)` order.
    ///
    /// # Panics
    /// Panics if an in-flight frame fails to decode — the fabric only
    /// carries frames produced by [`Message::encode`], so that is a
    /// codec bug, not a runtime condition.
    pub fn pop_due(&mut self, tick: u64) -> Option<(PeerId, PeerId, Message)> {
        if self.heap.peek().is_some_and(|e| e.deliver_tick <= tick) {
            let env = self.heap.pop().expect("peeked");
            let msg = Message::decode(&env.bytes).expect("in-flight frame must decode");
            self.stats.delivered += 1;
            Some((env.src, env.dst, msg))
        } else {
            None
        }
    }

    /// Whether any frame is still in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Counts a frame the receiver discarded as late.
    pub fn note_stale(&mut self) {
        self.stats.stale += 1;
    }

    /// Counts a frame delivered to a peer that departed the overlay
    /// mid-round — the driver owns the machine set, so it (not the
    /// fabric) tells departure apart from mere lateness.
    pub fn note_departed(&mut self) {
        self.stats.departed += 1;
    }

    /// Cumulative fabric counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::ClusterId;

    fn hb(peer: u32) -> Message {
        Message::Heartbeat {
            peer: PeerId(peer),
            from: ClusterId(0),
        }
    }

    #[test]
    fn ideal_fabric_delivers_in_send_order_next_tick() {
        let mut net = SimNet::new(NetConfig::ideal());
        let mut ledger = SimNetwork::new();
        for i in 0..5 {
            net.send(
                3,
                PeerId(i),
                PeerId(9),
                &hb(i),
                MsgKind::Heartbeat,
                &mut ledger,
            );
        }
        assert_eq!(net.next_tick(), Some(4));
        let mut order = Vec::new();
        while let Some((src, dst, _)) = net.pop_due(4) {
            assert_eq!(dst, PeerId(9));
            order.push(src.0);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(net.stats().delivered, 5);
        assert_eq!(ledger.messages(MsgKind::Heartbeat), 5);
    }

    #[test]
    fn uniform_delay_reorders_but_replays_identically() {
        let run = |seed: u64| {
            let mut net = SimNet::new(NetConfig::degraded(seed, 0, 5, 0.0));
            let mut ledger = SimNetwork::new();
            for i in 0..32 {
                net.send(
                    0,
                    PeerId(i),
                    PeerId(99),
                    &hb(i),
                    MsgKind::Heartbeat,
                    &mut ledger,
                );
            }
            let mut order = Vec::new();
            for t in 0..16 {
                while let Some((src, _, _)) = net.pop_due(t) {
                    order.push(src.0);
                }
            }
            order
        };
        let a = run(7);
        assert_eq!(a.len(), 32);
        assert_eq!(a, run(7), "same seed must replay identically");
        assert_ne!(a, run(8), "a different seed must shuffle differently");
        assert_ne!(a, (0..32).collect::<Vec<_>>(), "delays must reorder");
    }

    #[test]
    fn drops_are_seeded_and_charged() {
        let mut net = SimNet::new(NetConfig::degraded(11, 0, 0, 0.5));
        let mut ledger = SimNetwork::new();
        let mut delivered = 0;
        for i in 0..64 {
            if net
                .send(
                    0,
                    PeerId(i),
                    PeerId(9),
                    &hb(i),
                    MsgKind::Heartbeat,
                    &mut ledger,
                )
                .is_some()
            {
                delivered += 1;
            }
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 64);
        assert_eq!(stats.dropped + delivered, 64);
        assert!(stats.dropped > 8, "half-rate drops must actually drop");
        // Bandwidth is spent whether or not the frame arrives.
        assert_eq!(ledger.messages(MsgKind::Heartbeat), 64);
    }

    #[test]
    #[should_panic(expected = "drop_rate")]
    fn full_drop_rate_is_rejected() {
        let _ = SimNet::new(NetConfig {
            drop_rate: 1.0,
            ..NetConfig::ideal()
        });
    }

    /// A bisection severs exactly the cross-pivot links while active
    /// and heals on schedule; losses land in `cut`, not `dropped`.
    #[test]
    fn bisection_severs_cross_links_until_heal() {
        let faults = FaultSchedule {
            partitions: vec![Partition {
                kind: PartitionKind::Bisect { pivot: 4 },
                start: 10,
                heal: 20,
            }],
            crashes: vec![],
        };
        let mut net = SimNet::new(NetConfig::ideal()).with_faults(faults);
        let mut ledger = SimNetwork::new();
        // Before the partition: cross-pivot traffic flows.
        assert!(net
            .send(
                5,
                PeerId(0),
                PeerId(7),
                &hb(0),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_some());
        // Active: cross-pivot severed both ways, same-side unaffected.
        assert!(net
            .send(
                10,
                PeerId(0),
                PeerId(7),
                &hb(0),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_none());
        assert!(net
            .send(
                15,
                PeerId(7),
                PeerId(0),
                &hb(7),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_none());
        assert!(net
            .send(
                15,
                PeerId(1),
                PeerId(2),
                &hb(1),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_some());
        assert!(net
            .send(
                15,
                PeerId(6),
                PeerId(7),
                &hb(6),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_some());
        // Healed: the link is back.
        assert!(net
            .send(
                20,
                PeerId(0),
                PeerId(7),
                &hb(0),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_some());
        let stats = net.stats();
        assert_eq!(stats.cut, 2);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.crashed, 0);
        // Bandwidth is charged for severed frames too: the sender spent
        // it before the fabric lost the frame.
        assert_eq!(ledger.messages(MsgKind::Heartbeat), 6);
    }

    /// Isolation and crash windows blackhole the affected peer's
    /// traffic in both directions, each in its own ledger.
    #[test]
    fn isolation_and_crash_windows_attribute_losses() {
        let faults = FaultSchedule {
            partitions: vec![Partition {
                kind: PartitionKind::Isolate { peer: PeerId(3) },
                start: 0,
                heal: 5,
            }],
            crashes: vec![CrashWindow {
                peer: PeerId(1),
                down: 5,
                up: 8,
            }],
        };
        let mut net = SimNet::new(NetConfig::ideal()).with_faults(faults);
        let mut ledger = SimNetwork::new();
        assert!(net
            .send(
                0,
                PeerId(3),
                PeerId(0),
                &hb(3),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_none());
        assert!(net
            .send(
                2,
                PeerId(0),
                PeerId(3),
                &hb(0),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_none());
        assert!(net
            .send(
                5,
                PeerId(1),
                PeerId(0),
                &hb(1),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_none());
        assert!(net
            .send(
                7,
                PeerId(0),
                PeerId(1),
                &hb(0),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_none());
        // After the heal/restart ticks both peers are reachable again.
        assert!(net
            .send(
                5,
                PeerId(3),
                PeerId(0),
                &hb(3),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_some());
        assert!(net
            .send(
                8,
                PeerId(1),
                PeerId(0),
                &hb(1),
                MsgKind::Heartbeat,
                &mut ledger
            )
            .is_some());
        let stats = net.stats();
        assert_eq!(stats.cut, 2);
        assert_eq!(stats.crashed, 2);
        assert_eq!(stats.dropped, 0);
    }

    /// An empty fault schedule must not perturb the RNG stream: the
    /// delivery order under a lossy, reordering schedule is
    /// byte-identical with and without `with_faults(none)`.
    #[test]
    fn empty_schedule_preserves_the_random_stream() {
        let run = |faulted: bool| {
            let config = NetConfig::degraded(13, 0, 5, 0.2);
            let mut net = if faulted {
                SimNet::new(config).with_faults(FaultSchedule::none())
            } else {
                SimNet::new(config)
            };
            let mut ledger = SimNetwork::new();
            for i in 0..64 {
                net.send(
                    0,
                    PeerId(i),
                    PeerId(99),
                    &hb(i),
                    MsgKind::Heartbeat,
                    &mut ledger,
                );
            }
            let mut order = Vec::new();
            for t in 0..16 {
                while let Some((src, _, _)) = net.pop_due(t) {
                    order.push(src.0);
                }
            }
            (order, net.stats())
        };
        assert_eq!(run(false), run(true));
    }

    /// Seeded-expectation guard on the fabric itself: across three
    /// seeds, the realized drop rate and the delivery-delay histogram
    /// must match the configured distribution within tolerance — this
    /// holds the drop draw and the uniform delay sampler honest
    /// independently of any downstream digest.
    #[test]
    fn realized_drop_rate_and_delay_histogram_match_the_config() {
        const N: u64 = 4000;
        const DROP: f64 = 0.2;
        const MAX_DELAY: u64 = 6;
        for seed in [101u64, 202, 303] {
            let mut net = SimNet::new(NetConfig {
                seed,
                delay: DelayDist::Uniform {
                    min: 0,
                    max: MAX_DELAY,
                },
                drop_rate: DROP,
                phase_ticks: 8,
            });
            let mut ledger = SimNetwork::new();
            let mut hist = [0u64; (MAX_DELAY + 1) as usize];
            let mut delivered = 0u64;
            for i in 0..N {
                if let Some(tick) = net.send(
                    0,
                    PeerId((i % 50) as u32),
                    PeerId(99),
                    &hb(i as u32),
                    MsgKind::Heartbeat,
                    &mut ledger,
                ) {
                    delivered += 1;
                    hist[(tick - 1) as usize] += 1;
                }
            }
            let stats = net.stats();
            assert_eq!(stats.sent, N);
            assert_eq!(stats.dropped + delivered, N);
            // Drop rate within ±0.03 of the configured 0.2 (≈ 4.7 σ for
            // a Bernoulli(0.2) over 4000 draws).
            let realized = stats.dropped as f64 / N as f64;
            assert!(
                (realized - DROP).abs() < 0.03,
                "seed {seed}: realized drop rate {realized} vs configured {DROP}"
            );
            // Each uniform delay bucket within 20% of its expectation
            // (≈ 4.5 σ per bucket).
            let expected = delivered as f64 / (MAX_DELAY + 1) as f64;
            for (d, &n) in hist.iter().enumerate() {
                assert!(
                    (n as f64 - expected).abs() < 0.2 * expected,
                    "seed {seed}: delay {d} saw {n} frames, expected ≈{expected:.0}"
                );
            }
        }
    }
}
