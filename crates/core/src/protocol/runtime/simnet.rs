//! The deterministic simulated network.
//!
//! [`SimNet`] is a discrete-time message fabric: a send at tick `t`
//! either drops (per-link Bernoulli draw) or is scheduled for delivery
//! at `t + 1 + delay`, with the delay drawn from the configured
//! [`DelayDist`]. Deliveries pop in total order on
//! `(deliver_tick, msg_seq)` — `msg_seq` is the global send counter —
//! so two runs over the same seed replay **byte-identically**, no
//! matter how messages interleave. All randomness comes from one
//! [`StdRng`] seeded from [`NetConfig::seed`] and consumed in send
//! order; nothing reads wall-clock or thread identity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::Rng;
use recluster_overlay::{MsgKind, SimNetwork};
use recluster_types::{seeded_rng, PeerId};

use super::message::Message;

/// Per-link delivery-delay distribution, in ticks on top of the
/// baseline 1-tick hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayDist {
    /// Every message takes exactly this many extra ticks.
    Fixed(u64),
    /// Uniformly distributed extra ticks in `[min, max]` — the
    /// reordering regime: a later send can overtake an earlier one.
    Uniform {
        /// Minimum extra delay.
        min: u64,
        /// Maximum extra delay (inclusive).
        max: u64,
    },
}

impl DelayDist {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d,
            DelayDist::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
        }
    }

    /// The largest delay this distribution can produce.
    pub fn max_delay(&self) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d,
            DelayDist::Uniform { min, max } => max.max(min),
        }
    }
}

/// Network parameters for a runtime run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Seed of the fabric's RNG (drop and delay draws).
    pub seed: u64,
    /// Extra per-message delay.
    pub delay: DelayDist,
    /// Probability a message is silently lost, in `[0, 1)`.
    pub drop_rate: f64,
    /// Ticks a collector waits for stragglers before acting on partial
    /// information: a representative fires phase 1 (respectively
    /// phase 2) when every expected message has arrived *or* this many
    /// ticks have passed since the round (respectively its forward)
    /// started. Messages landing after the collector fired are counted
    /// stale and discarded.
    pub phase_ticks: u64,
}

impl NetConfig {
    /// The degenerate schedule: zero extra delay, zero loss. Under it
    /// the runtime is bit-identical to [`ProtocolEngine`] (proven by
    /// the `prop_runtime` suite).
    ///
    /// [`ProtocolEngine`]: crate::protocol::ProtocolEngine
    pub fn ideal() -> Self {
        NetConfig {
            seed: 0,
            delay: DelayDist::Fixed(0),
            drop_rate: 0.0,
            phase_ticks: 8,
        }
    }

    /// A degraded schedule: uniform extra delay in `[min, max]` ticks
    /// and the given drop rate, with the phase timeout sized so an
    /// undropped straggler *can* still make its deadline.
    pub fn degraded(seed: u64, min_delay: u64, max_delay: u64, drop_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_rate),
            "drop_rate must be in [0, 1)"
        );
        NetConfig {
            seed,
            delay: DelayDist::Uniform {
                min: min_delay,
                max: max_delay,
            },
            drop_rate,
            phase_ticks: max_delay.max(min_delay) + 2,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::ideal()
    }
}

/// Fabric counters, all cumulative over the engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the fabric.
    pub sent: u64,
    /// Frames delivered to their destination machine.
    pub delivered: u64,
    /// Frames lost to the drop draw.
    pub dropped: u64,
    /// Frames delivered after their collector had already fired — the
    /// receiver discarded them.
    pub stale: u64,
}

/// One in-flight frame. Ordering is **only** `(deliver_tick, seq)`:
/// the total order that makes replays byte-identical.
#[derive(Debug, Clone)]
struct Envelope {
    deliver_tick: u64,
    seq: u64,
    src: PeerId,
    dst: PeerId,
    bytes: Vec<u8>,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_tick == other.deliver_tick && self.seq == other.seq
    }
}

impl Eq for Envelope {}

impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (tick, seq) first.
        (other.deliver_tick, other.seq).cmp(&(self.deliver_tick, self.seq))
    }
}

/// The deterministic scheduler: seeded drops and delays on send, a
/// total-order heap on delivery.
#[derive(Debug)]
pub struct SimNet {
    config: NetConfig,
    rng: StdRng,
    heap: BinaryHeap<Envelope>,
    seq: u64,
    stats: NetStats,
}

impl SimNet {
    /// Creates a fabric over the given parameters.
    pub fn new(config: NetConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.drop_rate),
            "drop_rate must be in [0, 1)"
        );
        SimNet {
            rng: seeded_rng(config.seed),
            config,
            heap: BinaryHeap::new(),
            seq: 0,
            stats: NetStats::default(),
        }
    }

    /// The parameters this fabric runs under.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// Sends `msg` from `src` to `dst` at tick `now`, charging its wire
    /// frame to `ledger` under `kind`. Returns the delivery tick, or
    /// `None` if the drop draw lost the frame. The ledger is charged
    /// either way — a dropped message still cost its bandwidth.
    pub fn send(
        &mut self,
        now: u64,
        src: PeerId,
        dst: PeerId,
        msg: &Message,
        kind: MsgKind,
        ledger: &mut SimNetwork,
    ) -> Option<u64> {
        let bytes = msg.encode();
        ledger.send(kind, bytes.len() as u64);
        self.stats.sent += 1;
        self.seq += 1;
        if self.config.drop_rate > 0.0 && self.rng.gen_bool(self.config.drop_rate) {
            self.stats.dropped += 1;
            return None;
        }
        let deliver_tick = now + 1 + self.config.delay.sample(&mut self.rng);
        self.heap.push(Envelope {
            deliver_tick,
            seq: self.seq,
            src,
            dst,
            bytes,
        });
        Some(deliver_tick)
    }

    /// The tick of the earliest in-flight frame.
    pub fn next_tick(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.deliver_tick)
    }

    /// Pops the next frame due at or before `tick`, in
    /// `(deliver_tick, seq)` order.
    ///
    /// # Panics
    /// Panics if an in-flight frame fails to decode — the fabric only
    /// carries frames produced by [`Message::encode`], so that is a
    /// codec bug, not a runtime condition.
    pub fn pop_due(&mut self, tick: u64) -> Option<(PeerId, PeerId, Message)> {
        if self.heap.peek().is_some_and(|e| e.deliver_tick <= tick) {
            let env = self.heap.pop().expect("peeked");
            let msg = Message::decode(&env.bytes).expect("in-flight frame must decode");
            self.stats.delivered += 1;
            Some((env.src, env.dst, msg))
        } else {
            None
        }
    }

    /// Whether any frame is still in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Counts a frame the receiver discarded as late.
    pub fn note_stale(&mut self) {
        self.stats.stale += 1;
    }

    /// Cumulative fabric counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::ClusterId;

    fn hb(peer: u32) -> Message {
        Message::Heartbeat {
            peer: PeerId(peer),
            from: ClusterId(0),
        }
    }

    #[test]
    fn ideal_fabric_delivers_in_send_order_next_tick() {
        let mut net = SimNet::new(NetConfig::ideal());
        let mut ledger = SimNetwork::new();
        for i in 0..5 {
            net.send(
                3,
                PeerId(i),
                PeerId(9),
                &hb(i),
                MsgKind::Heartbeat,
                &mut ledger,
            );
        }
        assert_eq!(net.next_tick(), Some(4));
        let mut order = Vec::new();
        while let Some((src, dst, _)) = net.pop_due(4) {
            assert_eq!(dst, PeerId(9));
            order.push(src.0);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(net.stats().delivered, 5);
        assert_eq!(ledger.messages(MsgKind::Heartbeat), 5);
    }

    #[test]
    fn uniform_delay_reorders_but_replays_identically() {
        let run = |seed: u64| {
            let mut net = SimNet::new(NetConfig::degraded(seed, 0, 5, 0.0));
            let mut ledger = SimNetwork::new();
            for i in 0..32 {
                net.send(
                    0,
                    PeerId(i),
                    PeerId(99),
                    &hb(i),
                    MsgKind::Heartbeat,
                    &mut ledger,
                );
            }
            let mut order = Vec::new();
            for t in 0..16 {
                while let Some((src, _, _)) = net.pop_due(t) {
                    order.push(src.0);
                }
            }
            order
        };
        let a = run(7);
        assert_eq!(a.len(), 32);
        assert_eq!(a, run(7), "same seed must replay identically");
        assert_ne!(a, run(8), "a different seed must shuffle differently");
        assert_ne!(a, (0..32).collect::<Vec<_>>(), "delays must reorder");
    }

    #[test]
    fn drops_are_seeded_and_charged() {
        let mut net = SimNet::new(NetConfig::degraded(11, 0, 0, 0.5));
        let mut ledger = SimNetwork::new();
        let mut delivered = 0;
        for i in 0..64 {
            if net
                .send(
                    0,
                    PeerId(i),
                    PeerId(9),
                    &hb(i),
                    MsgKind::Heartbeat,
                    &mut ledger,
                )
                .is_some()
            {
                delivered += 1;
            }
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 64);
        assert_eq!(stats.dropped + delivered, 64);
        assert!(stats.dropped > 8, "half-rate drops must actually drop");
        // Bandwidth is spent whether or not the frame arrives.
        assert_eq!(ledger.messages(MsgKind::Heartbeat), 64);
    }

    #[test]
    #[should_panic(expected = "drop_rate")]
    fn full_drop_rate_is_rejected() {
        let _ = SimNet::new(NetConfig {
            drop_rate: 1.0,
            ..NetConfig::ideal()
        });
    }
}
