//! The protocol's wire grammar.
//!
//! Every message the runtime exchanges is one of six serialized frames.
//! The encoding is deliberately primitive — a tag byte followed by
//! fixed-width little-endian fields, gains as raw IEEE-754 bits — so a
//! frame's byte length is knowable from its tag and a decode either
//! reproduces the sent message exactly (bit-for-bit, NaNs included) or
//! fails with a [`DecodeError`] saying why. [`SimNet`](super::SimNet)
//! carries encoded frames, not values: every delivery in every run
//! exercises the round trip.
//!
//! Gain claims are commitment-bound: a `Propose` carries a
//! [`gain_commitment`] hash over `(peer, from, to, gain_bits, nonce)`
//! and the matching `Commit` reveals the gain bits and nonce, so an
//! auditor holding only the frames can prove a peer changed its story
//! between proposal and commit.

use recluster_overlay::MsgKind;
use recluster_types::{ClusterId, PeerId};

/// Why a representative denied its cluster's relocation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// The anti-cycle lock rule blocked the request: a higher-ranked
    /// grant already locked the source against leaves or the
    /// destination against joins.
    Locked,
    /// The request named its own cluster as destination (no-op move).
    SelfMove,
}

/// One protocol message. §3.2's verbal protocol, made concrete:
/// members *propose*, representatives *grant* or *deny*, granted peers
/// *commit*, and committed moves are announced through *summary
/// updates*. `Heartbeat` is the explicit "nothing to report" frame that
/// lets collectors distinguish silence from loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// A relocation proposal: `peer` wants to leave `from` for `to`,
    /// claiming `claimed_gain`. Sent member → representative as the
    /// phase-1 gain report, and relayed representative →
    /// representative verbatim as the cluster's forwarded request (the
    /// receiver tells the two apart by `from`: its own cluster id means
    /// a report). The gain is *claimed*: the runtime takes it on faith
    /// in-round and audits it against observed statistics after the
    /// fact ([`EvidenceLog`](super::EvidenceLog)).
    Propose {
        /// The peer that wants to relocate.
        peer: PeerId,
        /// Its current cluster.
        from: ClusterId,
        /// The cluster it wants to join.
        to: ClusterId,
        /// The gain it claims the move yields (self-reported).
        claimed_gain: f64,
        /// [`gain_commitment`] over the gain this peer will reveal at
        /// `Commit`. Representatives relay it verbatim; the auditor
        /// checks the reveal against it.
        commitment: u64,
    },
    /// "Nothing to propose": sent member → representative in place of a
    /// report, and representative → representative in place of a
    /// forwarded request. `from` is the sender's cluster.
    Heartbeat {
        /// The reporting peer.
        peer: PeerId,
        /// Its cluster.
        from: ClusterId,
    },
    /// Representative → its winning member: the cluster's request
    /// survived the lock-rule pass; execute the move.
    Grant {
        /// Source cluster of the granted request.
        src: ClusterId,
        /// Destination cluster.
        dst: ClusterId,
        /// The granted peer.
        peer: PeerId,
        /// The claimed gain the grant was ranked by.
        gain: f64,
    },
    /// Representative → its winning member: the request lost.
    Deny {
        /// Source cluster of the denied request.
        src: ClusterId,
        /// Destination cluster.
        dst: ClusterId,
        /// The denied peer.
        peer: PeerId,
        /// Why it was denied.
        reason: DenyReason,
    },
    /// Granted peer → the affected representatives: the relocation is
    /// executed. The runtime applies the move to the [`System`] when the
    /// first copy of this frame is delivered — a commit lost to the
    /// network is a relocation that never happened.
    ///
    /// [`System`]: crate::system::System
    Commit {
        /// The relocating peer.
        peer: PeerId,
        /// The cluster it left.
        from: ClusterId,
        /// The cluster it joined.
        to: ClusterId,
        /// The claimed gain, restated for the audit trail. This is the
        /// *reveal*: [`gain_commitment`] over these bits and `nonce`
        /// must reproduce the `Propose` commitment.
        claimed_gain: f64,
        /// The nonce that blinded the commitment.
        nonce: u64,
    },
    /// Post-commit broadcast: `cluster` now has `size` members. Keeps
    /// the other representatives' summaries current; consumed by every
    /// state machine in any state.
    SummaryUpdate {
        /// The cluster whose membership changed.
        cluster: ClusterId,
        /// Its new size.
        size: u32,
    },
}

/// Why a frame failed to decode. The codec never guesses: every
/// rejection is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The first byte is not a known message tag.
    UnknownTag(u8),
    /// The buffer ended before the tag's fixed-width fields did.
    Truncated,
    /// Bytes remained after the tag's last field.
    TrailingBytes,
    /// An enum field held an undefined discriminant.
    BadDiscriminant(u8),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::Truncated => write!(f, "frame shorter than its tag demands"),
            DecodeError::TrailingBytes => write!(f, "frame longer than its tag demands"),
            DecodeError::BadDiscriminant(d) => write!(f, "undefined enum discriminant {d}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The commitment a `Propose` carries and a `Commit` must reproduce:
/// FNV-1a over the little-endian bytes of `(peer, from, to, gain_bits,
/// nonce)`. Not cryptographic — the threat model is a selfish peer in a
/// deterministic simulation, not an adversary with a hash cracker — but
/// any change to the gain bits between proposal and reveal changes the
/// digest.
pub fn gain_commitment(
    peer: PeerId,
    from: ClusterId,
    to: ClusterId,
    gain_bits: u64,
    nonce: u64,
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(&peer.0.to_le_bytes());
    eat(&from.0.to_le_bytes());
    eat(&to.0.to_le_bytes());
    eat(&gain_bits.to_le_bytes());
    eat(&nonce.to_le_bytes());
    hash
}

const TAG_PROPOSE: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_GRANT: u8 = 3;
const TAG_DENY: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_SUMMARY: u8 = 6;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let v = u32::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl Message {
    /// Serializes the message to its wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29);
        match *self {
            Message::Propose {
                peer,
                from,
                to,
                claimed_gain,
                commitment,
            } => {
                out.push(TAG_PROPOSE);
                put_u32(&mut out, peer.0);
                put_u32(&mut out, from.0);
                put_u32(&mut out, to.0);
                put_f64(&mut out, claimed_gain);
                put_u64(&mut out, commitment);
            }
            Message::Heartbeat { peer, from } => {
                out.push(TAG_HEARTBEAT);
                put_u32(&mut out, peer.0);
                put_u32(&mut out, from.0);
            }
            Message::Grant {
                src,
                dst,
                peer,
                gain,
            } => {
                out.push(TAG_GRANT);
                put_u32(&mut out, src.0);
                put_u32(&mut out, dst.0);
                put_u32(&mut out, peer.0);
                put_f64(&mut out, gain);
            }
            Message::Deny {
                src,
                dst,
                peer,
                reason,
            } => {
                out.push(TAG_DENY);
                put_u32(&mut out, src.0);
                put_u32(&mut out, dst.0);
                put_u32(&mut out, peer.0);
                out.push(match reason {
                    DenyReason::Locked => 0,
                    DenyReason::SelfMove => 1,
                });
            }
            Message::Commit {
                peer,
                from,
                to,
                claimed_gain,
                nonce,
            } => {
                out.push(TAG_COMMIT);
                put_u32(&mut out, peer.0);
                put_u32(&mut out, from.0);
                put_u32(&mut out, to.0);
                put_f64(&mut out, claimed_gain);
                put_u64(&mut out, nonce);
            }
            Message::SummaryUpdate { cluster, size } => {
                out.push(TAG_SUMMARY);
                put_u32(&mut out, cluster.0);
                put_u32(&mut out, size);
            }
        }
        out
    }

    /// Parses a wire frame. Rejects an unknown tag, a short buffer,
    /// trailing bytes and invalid enum discriminants with the matching
    /// [`DecodeError`] — a decode never guesses.
    pub fn decode(bytes: &[u8]) -> Result<Message, DecodeError> {
        use DecodeError::Truncated;
        let mut r = Reader { bytes, pos: 0 };
        let msg = match r.u8().ok_or(Truncated)? {
            TAG_PROPOSE => Message::Propose {
                peer: PeerId(r.u32().ok_or(Truncated)?),
                from: ClusterId(r.u32().ok_or(Truncated)?),
                to: ClusterId(r.u32().ok_or(Truncated)?),
                claimed_gain: r.f64().ok_or(Truncated)?,
                commitment: r.u64().ok_or(Truncated)?,
            },
            TAG_HEARTBEAT => Message::Heartbeat {
                peer: PeerId(r.u32().ok_or(Truncated)?),
                from: ClusterId(r.u32().ok_or(Truncated)?),
            },
            TAG_GRANT => Message::Grant {
                src: ClusterId(r.u32().ok_or(Truncated)?),
                dst: ClusterId(r.u32().ok_or(Truncated)?),
                peer: PeerId(r.u32().ok_or(Truncated)?),
                gain: r.f64().ok_or(Truncated)?,
            },
            TAG_DENY => Message::Deny {
                src: ClusterId(r.u32().ok_or(Truncated)?),
                dst: ClusterId(r.u32().ok_or(Truncated)?),
                peer: PeerId(r.u32().ok_or(Truncated)?),
                reason: match r.u8().ok_or(Truncated)? {
                    0 => DenyReason::Locked,
                    1 => DenyReason::SelfMove,
                    d => return Err(DecodeError::BadDiscriminant(d)),
                },
            },
            TAG_COMMIT => Message::Commit {
                peer: PeerId(r.u32().ok_or(Truncated)?),
                from: ClusterId(r.u32().ok_or(Truncated)?),
                to: ClusterId(r.u32().ok_or(Truncated)?),
                claimed_gain: r.f64().ok_or(Truncated)?,
                nonce: r.u64().ok_or(Truncated)?,
            },
            TAG_SUMMARY => Message::SummaryUpdate {
                cluster: ClusterId(r.u32().ok_or(Truncated)?),
                size: r.u32().ok_or(Truncated)?,
            },
            tag => return Err(DecodeError::UnknownTag(tag)),
        };
        if r.done() {
            Ok(msg)
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }

    /// The ledger category this frame is charged to. Reports and their
    /// heartbeat stand-ins are gain reports; relayed proposals are
    /// relocation requests (the caller picks between the two `Propose`
    /// charges by context, see
    /// [`Outbox::send`](super::machine::Outbox::send)).
    pub fn default_kind(&self) -> MsgKind {
        match self {
            Message::Propose { .. } => MsgKind::GainReport,
            Message::Heartbeat { .. } => MsgKind::Heartbeat,
            Message::Grant { .. } | Message::Deny { .. } => MsgKind::GrantCoordination,
            Message::Commit { .. } => MsgKind::ClusterJoin,
            Message::SummaryUpdate { .. } => MsgKind::SummaryUpdate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("frame must decode");
        // Bit-level equality, so NaN gains survive too.
        match (msg, back) {
            (
                Message::Propose {
                    claimed_gain: a, ..
                },
                Message::Propose {
                    claimed_gain: b, ..
                },
            ) => assert_eq!(a.to_bits(), b.to_bits()),
            (Message::Grant { gain: a, .. }, Message::Grant { gain: b, .. }) => {
                assert_eq!(a.to_bits(), b.to_bits())
            }
            _ => {}
        }
        assert_eq!(Message::decode(&bytes), Ok(msg));
    }

    #[test]
    fn every_variant_round_trips() {
        roundtrip(Message::Propose {
            peer: PeerId(7),
            from: ClusterId(1),
            to: ClusterId(4),
            claimed_gain: 0.12345,
            commitment: 0xdead_beef_cafe_f00d,
        });
        roundtrip(Message::Heartbeat {
            peer: PeerId(0),
            from: ClusterId(9),
        });
        roundtrip(Message::Grant {
            src: ClusterId(2),
            dst: ClusterId(3),
            peer: PeerId(11),
            gain: -0.5,
        });
        roundtrip(Message::Deny {
            src: ClusterId(2),
            dst: ClusterId(3),
            peer: PeerId(11),
            reason: DenyReason::Locked,
        });
        roundtrip(Message::Deny {
            src: ClusterId(0),
            dst: ClusterId(0),
            peer: PeerId(1),
            reason: DenyReason::SelfMove,
        });
        roundtrip(Message::Commit {
            peer: PeerId(5),
            from: ClusterId(0),
            to: ClusterId(8),
            claimed_gain: f64::MIN_POSITIVE,
            nonce: u64::MAX,
        });
        roundtrip(Message::SummaryUpdate {
            cluster: ClusterId(6),
            size: 42,
        });
    }

    #[test]
    fn gain_bits_survive_including_nan() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let msg = Message::Propose {
            peer: PeerId(1),
            from: ClusterId(0),
            to: ClusterId(2),
            claimed_gain: weird,
            commitment: gain_commitment(PeerId(1), ClusterId(0), ClusterId(2), weird.to_bits(), 9),
        };
        match Message::decode(&msg.encode()).unwrap() {
            Message::Propose { claimed_gain, .. } => {
                assert_eq!(claimed_gain.to_bits(), weird.to_bits())
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_rejected_with_the_right_error() {
        assert_eq!(Message::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(
            Message::decode(&[99, 0, 0]),
            Err(DecodeError::UnknownTag(99))
        );
        // Truncated propose.
        let mut bytes = Message::Propose {
            peer: PeerId(7),
            from: ClusterId(1),
            to: ClusterId(4),
            claimed_gain: 1.0,
            commitment: 0,
        }
        .encode();
        bytes.pop();
        assert_eq!(Message::decode(&bytes), Err(DecodeError::Truncated));
        // Trailing garbage.
        let mut bytes = Message::Heartbeat {
            peer: PeerId(0),
            from: ClusterId(0),
        }
        .encode();
        bytes.push(0);
        assert_eq!(Message::decode(&bytes), Err(DecodeError::TrailingBytes));
        // Bad deny discriminant.
        let mut bytes = Message::Deny {
            src: ClusterId(0),
            dst: ClusterId(1),
            peer: PeerId(2),
            reason: DenyReason::Locked,
        }
        .encode();
        *bytes.last_mut().unwrap() = 7;
        assert_eq!(
            Message::decode(&bytes),
            Err(DecodeError::BadDiscriminant(7))
        );
    }

    #[test]
    fn commitment_binds_every_field() {
        let base = gain_commitment(PeerId(3), ClusterId(1), ClusterId(2), 0.5f64.to_bits(), 42);
        assert_eq!(
            base,
            gain_commitment(PeerId(3), ClusterId(1), ClusterId(2), 0.5f64.to_bits(), 42)
        );
        for other in [
            gain_commitment(PeerId(4), ClusterId(1), ClusterId(2), 0.5f64.to_bits(), 42),
            gain_commitment(PeerId(3), ClusterId(0), ClusterId(2), 0.5f64.to_bits(), 42),
            gain_commitment(PeerId(3), ClusterId(1), ClusterId(3), 0.5f64.to_bits(), 42),
            gain_commitment(PeerId(3), ClusterId(1), ClusterId(2), 0.6f64.to_bits(), 42),
            gain_commitment(PeerId(3), ClusterId(1), ClusterId(2), 0.5f64.to_bits(), 43),
        ] {
            assert_ne!(base, other);
        }
    }
}
