//! The anti-cycle lock rule of phase 2 (§3.2).
//!
//! "To speed-up this phase, we try to avoid cycles due to groups of peers
//! moving in loops among the same set of clusters. To achieve this, we
//! enforce the following rule: if peer p ∈ ci moves to cj, then ci is
//! locked with direction *leave* and cj with direction *join*. In the
//! same round, no more peers can join ci or leave cj."

use std::collections::HashSet;

use recluster_types::ClusterId;

/// Round-scoped cluster locks.
///
/// # Examples
/// ```
/// use recluster_core::protocol::LockSet;
/// use recluster_types::ClusterId;
///
/// let mut locks = LockSet::new();
/// locks.grant(ClusterId(0), ClusterId(1)); // c0 → c1 granted
/// assert!(!locks.admissible(ClusterId(2), ClusterId(0))); // joining c0 blocked
/// assert!(!locks.admissible(ClusterId(1), ClusterId(2))); // leaving c1 blocked
/// assert!(locks.admissible(ClusterId(0), ClusterId(1)));  // more c0 → c1 fine
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockSet {
    /// Clusters that lost a peer this round: no one may *join* them.
    no_join: HashSet<ClusterId>,
    /// Clusters that gained a peer this round: no one may *leave* them.
    no_leave: HashSet<ClusterId>,
}

impl LockSet {
    /// An empty lock set (fresh round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a request `src → dst` may still be granted.
    pub fn admissible(&self, src: ClusterId, dst: ClusterId) -> bool {
        !self.no_leave.contains(&src) && !self.no_join.contains(&dst)
    }

    /// Records a granted request `src → dst`, installing both locks.
    pub fn grant(&mut self, src: ClusterId, dst: ClusterId) {
        self.no_join.insert(src);
        self.no_leave.insert(dst);
    }

    /// Whether cluster `c` is locked against joins.
    pub fn join_locked(&self, c: ClusterId) -> bool {
        self.no_join.contains(&c)
    }

    /// Whether cluster `c` is locked against leaves.
    pub fn leave_locked(&self, c: ClusterId) -> bool {
        self.no_leave.contains(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_locks_admit_everything() {
        let locks = LockSet::new();
        assert!(locks.admissible(ClusterId(0), ClusterId(1)));
        assert!(!locks.join_locked(ClusterId(0)));
        assert!(!locks.leave_locked(ClusterId(0)));
    }

    #[test]
    fn grant_blocks_reverse_swap() {
        // p: c0 → c1 granted; the swap q: c1 → c0 must be blocked on
        // both directions.
        let mut locks = LockSet::new();
        locks.grant(ClusterId(0), ClusterId(1));
        assert!(!locks.admissible(ClusterId(1), ClusterId(0)));
    }

    #[test]
    fn grant_blocks_cycles_of_length_three() {
        // c0→c1 and c1→c2 cannot both be granted: after c0→c1, leaving
        // c1 is locked.
        let mut locks = LockSet::new();
        locks.grant(ClusterId(0), ClusterId(1));
        assert!(!locks.admissible(ClusterId(1), ClusterId(2)));
        // But c2→c1 (another join to c1) is fine…
        assert!(locks.admissible(ClusterId(2), ClusterId(1)));
        // …and so is another leave from c0.
        assert!(locks.admissible(ClusterId(0), ClusterId(3)));
    }

    #[test]
    fn multiple_leaves_from_same_cluster_allowed() {
        let mut locks = LockSet::new();
        locks.grant(ClusterId(0), ClusterId(1));
        locks.grant(ClusterId(0), ClusterId(2));
        assert!(locks.join_locked(ClusterId(0)));
        assert!(locks.leave_locked(ClusterId(1)));
        assert!(locks.leave_locked(ClusterId(2)));
    }

    #[test]
    fn no_round_can_both_join_and_leave_a_locked_pair() {
        // Exhaustive over small id space: after any grant (a→b), any
        // admissible follow-up (s→d) must satisfy d ≠ a and s ≠ b.
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a == b {
                    continue;
                }
                let mut locks = LockSet::new();
                locks.grant(ClusterId(a), ClusterId(b));
                for s in 0..4u32 {
                    for d in 0..4u32 {
                        if s == d {
                            continue;
                        }
                        if locks.admissible(ClusterId(s), ClusterId(d)) {
                            assert_ne!(d, a, "join into leave-locked {a}");
                            assert_ne!(s, b, "leave from join-locked {b}");
                        }
                    }
                }
            }
        }
    }
}
