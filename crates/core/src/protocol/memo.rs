//! Cross-round proposal memoization with a per-(peer, cluster) gate.
//!
//! Phase 1 of every protocol round asks each peer for its proposal — a
//! pure function of the peer's workload rows, the candidate clusters'
//! sizes and recall masses, `|P|` and the game parameters. Between two
//! rounds most of those inputs do not change: a round that granted `k`
//! relocations touched `2k` clusters and dirtied the cost-cache entries
//! of the movers' query co-holders, and a churn-free, update-free round
//! touched nothing at all. [`ProposalMemo`] exploits this with a
//! round-level **changed-cluster set** `D` plus per-entry stamps, and
//! re-emits a stored proposal — without rerunning the candidate scan —
//! exactly when a fresh scan would read the same bits.
//!
//! # The gate
//!
//! [`ProposalMemo::begin_round`] runs once per round (O(candidates)):
//! it derives the current candidate sequence (non-empty clusters plus
//! the first empty slot when admissible, in scan order), versions it,
//! computes `D` = the candidates whose cluster epoch moved since the
//! previous round's snapshot, and declares the whole round stale when
//! the *global* epoch moved (`|P|`, result totals, parameters,
//! escape-hatch mutations — anything a cluster stamp does not locate).
//!
//! [`ProposalMemo::lookup`] then validates one entry in
//! O(|workload| · |D|), with `|D| = 2k` after a round that granted `k`
//! moves and `|D| = 0` after a quiet round. A hit requires **all** of:
//!
//! 1. same system lineage, round not wholesale-stale;
//! 2. the entry's candidate-sequence version is current and its
//!    `allow_empty` matches (a different sequence shifts scan
//!    positions, so position-based reasoning below would not carry);
//! 3. the peer's cost-cache mark counters are unchanged (its workload
//!    rows and its current cluster's cached recall terms are
//!    untouched), and its current cluster is not in `D` — together
//!    these pin the peer's own cost `γ = pcost(p, current)` bitwise;
//! 4. no cluster of the stored scan's **take chain** (the successive
//!    running-best improvements recorded by
//!    [`best_response_with_chain`](crate::equilibrium::best_response_with_chain))
//!    is in `D` — so every cluster the old scan *took* still reads the
//!    same bits ([`ChainInfo::Unknown`] degrades this to requiring
//!    `D = ∅`, the coarse pre-trace gate);
//! 5. every cluster in `D` *fails* a fresh take test against `γ`:
//!    `pcost(p, c) ≥ γ − COST_EPS`.
//!
//! # Why a hit is bit-identical to recomputing
//!
//! Under (2) a fresh scan visits the same candidates at the same
//! positions. A cluster outside `D` reads the same size and the same
//! recall masses as when the entry was validated (relocations stamp
//! both endpoint clusters; every non-local change stamps the global
//! epoch, which empties the memo), so its cost is bit-identical; with
//! (3) so is `γ`. By induction over scan positions the running best at
//! every position is what it was, except possibly at clusters in `D` —
//! and those cannot flip: the scan takes `c` only when
//! `pcost(p, c) < best − COST_EPS` with `best ≤ γ` at every position,
//! which (5) rules out, and the old scan took no cluster of `D` by (4),
//! so it rejected them against the same running best then, too. Both
//! scans therefore take exactly the chain clusters at the same
//! positions and produce the same [`BestResponse`] bits. Condition (5)
//! uses a cheap fast path: when the peer's workload shares no result
//! mass with `c`, the recall term equals the cached *away* column
//! ([`CostCache::away_of`](crate::costcache::CostCache::away_of)) —
//! adding a cluster mass of exactly `0.0` is a bitwise no-op — so only
//! genuine overlaps pay a full [`pcost`].
//!
//! The induction's base is the store/validate discipline of phase 1:
//! every live peer is either freshly stored or hit-validated *every
//! round*, so entry validity only ever needs to carry across one
//! round boundary. Peers absent from a round (departed) always imply a
//! global bump (churn), which wholesale-invalidates on return.
//!
//! All of this is property-tested against arbitrary interleavings of
//! moves, churn, content and workload updates in
//! `crates/core/tests/prop_view_memo.rs`, and the memo-on/off protocol
//! byte-equality is asserted in `crates/sim/tests/determinism.rs`. The
//! net effect at scale: a quiet repair round at 10⁶ peers costs O(1)
//! per peer instead of O(candidates × workload), and after a round
//! with `k` grants only the ~`2k` affected clusters are re-examined
//! per peer rather than every candidate.
//!
//! Only strategies that declare
//! [`memoizable`](crate::strategy::RelocationStrategy::memoizable) opt
//! in — the gate conditions cover the selfish best response completely,
//! but not round-level state like the altruistic contribution matrix.
//!
//! [`BestResponse`]: crate::equilibrium::BestResponse

use recluster_types::{ClusterId, PeerId};

use crate::cost::{membership_cost, pcost, pcost_current};
use crate::equilibrium::COST_EPS;
use crate::strategy::{ChainInfo, Proposal};
use crate::view::SystemView;

/// Above this many changed candidate clusters the per-entry `D` checks
/// cost more than wholesale recomputation would save — declare the
/// round stale instead. Post-repair rounds change `2k ≤ 2·candidates`
/// clusters, and converging runs grant ever fewer moves, so the cap
/// only fires in genuinely turbulent rounds where hit rates would be
/// poor anyway.
const MAX_CHANGED: usize = 16;

/// One peer's memoized proposal plus the stamps it is valid under.
#[derive(Debug, Clone)]
struct MemoEntry {
    /// The peer's cost-cache mark counter at computation time.
    slot_marks: u64,
    /// The cache's wholesale mark counter at computation time.
    all_marks: u64,
    /// The candidate-sequence version the scan ran against.
    cand_version: u64,
    /// Whether empty clusters were admissible when computed.
    allow_empty: bool,
    /// Whether this entry holds a proposal at all.
    occupied: bool,
    /// The memoized proposal.
    proposal: Option<Proposal>,
    /// The scan's take chain (see [`ChainInfo`]).
    chain: ChainInfo,
}

impl Default for MemoEntry {
    fn default() -> Self {
        MemoEntry {
            slot_marks: 0,
            all_marks: 0,
            cand_version: 0,
            allow_empty: false,
            occupied: false,
            proposal: None,
            chain: ChainInfo::Unknown,
        }
    }
}

/// Memoized per-peer proposals with epoch-stamped validity and a
/// per-round changed-cluster gate. Drive it with one
/// [`begin_round`](ProposalMemo::begin_round) per round, then any
/// number of concurrent [`lookup`](ProposalMemo::lookup)s (`&self` —
/// safe inside the sharded phase 1), then
/// [`store`](ProposalMemo::store) for every miss.
#[derive(Debug, Clone)]
pub struct ProposalMemo {
    /// The system lineage the entries were computed against
    /// ([`Epochs::system_id`](crate::view::Epochs::system_id); 0 =
    /// empty memo). Stamps of different systems are not comparable —
    /// two fresh systems both start their clocks at zero — so a store
    /// against a new lineage drops every old entry, and lookups against
    /// a different lineage always miss.
    system_id: u64,
    entries: Vec<MemoEntry>,
    /// The journal clock value of the previous `begin_round` — the
    /// snapshot every surviving entry was validated against.
    stamp: u64,
    /// Version counter of the candidate sequence; bumped whenever the
    /// sequence (or `allow_empty`) differs from the previous round's.
    cand_version: u64,
    /// The candidate sequence of the current round, in scan order.
    last_candidates: Vec<ClusterId>,
    /// `allow_empty` of the current round.
    last_allow_empty: bool,
    /// `D`: candidates whose cluster epoch moved since `stamp`, sorted
    /// ascending. Meaningless when `all_stale`.
    changed: Vec<ClusterId>,
    /// Whether every entry is stale this round (global epoch moved,
    /// lineage switch, or `|D|` blew the [`MAX_CHANGED`] cap).
    all_stale: bool,
}

impl Default for ProposalMemo {
    fn default() -> Self {
        ProposalMemo {
            system_id: 0,
            entries: Vec::new(),
            stamp: 0,
            cand_version: 0,
            last_candidates: Vec::new(),
            last_allow_empty: false,
            changed: Vec::new(),
            all_stale: true,
        }
    }
}

impl ProposalMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a round: adopts the view's lineage, versions the candidate
    /// sequence, computes the changed-cluster set `D` since the
    /// previous round's snapshot and advances the snapshot stamp.
    /// O(candidates). Must run before any [`lookup`](Self::lookup) of
    /// the round — the engine calls it right after building the round's
    /// view.
    pub fn begin_round(&mut self, view: &SystemView<'_>, allow_empty: bool) {
        let epochs = view.epochs();
        if self.system_id != epochs.system_id() {
            self.entries.clear();
            self.system_id = epochs.system_id();
            self.all_stale = true;
        } else {
            self.all_stale = epochs.global() > self.stamp;
        }

        // The scan-order candidate sequence: non-empty ids ascending
        // with the first empty slot interleaved at its id position —
        // exactly `best_response`'s visit order.
        let overlay = view.overlay();
        let non_empty = overlay.non_empty_ids();
        let mut candidates: Vec<ClusterId> = Vec::with_capacity(non_empty.len() + 1);
        let mut pending_empty = if allow_empty {
            overlay.first_empty_cluster()
        } else {
            None
        };
        for &cid in non_empty {
            if let Some(empty) = pending_empty {
                if empty < cid {
                    candidates.push(empty);
                    pending_empty = None;
                }
            }
            candidates.push(cid);
        }
        if let Some(empty) = pending_empty {
            candidates.push(empty);
        }

        if candidates != self.last_candidates || allow_empty != self.last_allow_empty {
            self.cand_version += 1;
            self.last_candidates = candidates;
            self.last_allow_empty = allow_empty;
        }

        self.changed.clear();
        if !self.all_stale {
            for &cid in &self.last_candidates {
                if epochs.cluster(cid) > self.stamp {
                    self.changed.push(cid);
                }
            }
            if self.changed.len() > MAX_CHANGED {
                self.all_stale = true;
                self.changed.clear();
            }
        }
        self.stamp = epochs.now();
    }

    /// Looks up `peer`'s memoized proposal under the gate opened by the
    /// round's [`begin_round`](Self::begin_round). `Some(proposal)`
    /// means re-emitting it is bit-identical to recomputing; `None`
    /// means the caller must recompute (and [`store`](Self::store) the
    /// result). Takes `&self` — safe to call concurrently from the
    /// sharded phase 1.
    pub fn lookup(&self, view: &SystemView<'_>, peer: PeerId) -> Option<Option<Proposal>> {
        if self.all_stale || self.system_id != view.epochs().system_id() {
            return None;
        }
        let e = self.entries.get(peer.index())?;
        if !e.occupied
            || e.allow_empty != self.last_allow_empty
            || e.cand_version != self.cand_version
        {
            return None;
        }
        let cache = view.cost_cache();
        if e.slot_marks != cache.slot_marks(peer.index()) || e.all_marks != cache.all_marks() {
            return None;
        }
        // Gate conditions over the changed set D (empty after a quiet
        // round — every check below short-circuits to a hit).
        let current = view.overlay().cluster_of(peer)?;
        if sorted_contains(&self.changed, current) {
            return None;
        }
        match &e.chain {
            ChainInfo::Unknown => {
                // No trace: only a fully unchanged candidate set is safe.
                if !self.changed.is_empty() {
                    return None;
                }
            }
            ChainInfo::Known(chain) => {
                if chain.iter().any(|&c| sorted_contains(&self.changed, c)) {
                    return None;
                }
                if !self.changed.is_empty() {
                    // Re-test every changed cluster against the peer's
                    // (unchanged) current cost: none may newly clear the
                    // take threshold. `γ ≥ running best` at every scan
                    // position, so failing against γ fails everywhere.
                    let gamma = pcost_current(view, peer);
                    let index = view.index();
                    for &c in &self.changed {
                        let overlaps = index
                            .workload_of(peer)
                            .iter()
                            .any(|&(qid, _)| index.cluster_mass_num(qid, c) > 0);
                        let cost = if overlaps {
                            pcost(view, peer, c)
                        } else {
                            // Zero shared mass: the recall term equals
                            // the cached away column bit-for-bit.
                            membership_cost(view, peer, c) + view.cost_cache().away_of(peer)
                        };
                        if cost < gamma - COST_EPS {
                            return None;
                        }
                    }
                }
            }
        }
        Some(e.proposal)
    }

    /// Stores a freshly computed proposal (and its scan chain) with the
    /// current stamps.
    pub fn store(
        &mut self,
        view: &SystemView<'_>,
        peer: PeerId,
        allow_empty: bool,
        proposal: Option<Proposal>,
        chain: ChainInfo,
    ) {
        let system_id = view.epochs().system_id();
        if self.system_id != system_id {
            // A different system lineage: none of the old stamps mean
            // anything here — start over (the next `begin_round`
            // re-derives the round state against the new lineage).
            self.entries.clear();
            self.system_id = system_id;
        }
        if self.entries.len() <= peer.index() {
            self.entries.resize(peer.index() + 1, MemoEntry::default());
        }
        let cache = view.cost_cache();
        self.entries[peer.index()] = MemoEntry {
            slot_marks: cache.slot_marks(peer.index()),
            all_marks: cache.all_marks(),
            cand_version: self.cand_version,
            allow_empty,
            occupied: true,
            proposal,
            chain,
        };
    }

    /// Drops every entry (e.g. when the engine switches system).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.all_stale = true;
    }
}

/// Binary search membership in the ascending changed set.
fn sorted_contains(sorted: &[ClusterId], cid: ClusterId) -> bool {
    sorted.binary_search(&cid).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{best_response_with_chain, COST_EPS};
    use crate::system::{GameConfig, System};
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Query, Sym, Workload};

    fn fixture() -> System {
        let ov = Overlay::singletons(3);
        let mut store = ContentStore::new(3);
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(2), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w0, Workload::new(), w2],
            GameConfig {
                alpha: 1.0,
                theta: Theta::Linear,
            },
        )
    }

    fn traced_proposal(sys: &mut System, peer: PeerId) -> (Option<Proposal>, ChainInfo) {
        let view = sys.view();
        let mut chain = Vec::new();
        let br = best_response_with_chain(&view, peer, true, &mut chain);
        let proposal = (br.gain > COST_EPS).then_some(Proposal {
            to: br.cluster,
            gain: br.gain,
        });
        (proposal, ChainInfo::Known(chain.into_boxed_slice()))
    }

    /// Runs the phase-1 discipline for one peer: begin the round, then
    /// store a freshly computed entry.
    fn prime(memo: &mut ProposalMemo, sys: &mut System, peer: PeerId) -> Option<Proposal> {
        memo.begin_round(&sys.view(), true);
        let (fresh, chain) = traced_proposal(sys, peer);
        memo.store(&sys.view(), peer, true, fresh, chain);
        fresh
    }

    #[test]
    fn memo_hits_when_nothing_changed() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        let fresh = prime(&mut memo, &mut sys, PeerId(0));
        memo.begin_round(&sys.view(), true);
        assert_eq!(memo.lookup(&sys.view(), PeerId(0)), Some(fresh));
    }

    #[test]
    fn memo_rechecks_changed_clusters_through_the_fine_gate() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        // p0 wants c1 (the Sym(1) holder); its chain is [c1].
        let fresh = prime(&mut memo, &mut sys, PeerId(0)).expect("p0 wants to move");
        assert_eq!(fresh.to, ClusterId(1));
        // p2's move c2 → c1 changes two candidate clusters, one of them
        // *on* p0's chain — the fine gate must miss.
        sys.move_peer(PeerId(2), ClusterId(1));
        memo.begin_round(&sys.view(), true);
        assert_eq!(memo.lookup(&sys.view(), PeerId(0)), None);
    }

    #[test]
    fn memo_survives_changes_off_the_chain() {
        // Four singletons; p0's scan takes c1 (the Sym(1) holder) and
        // rejects everything else. A move between c2 and c3 — off p0's
        // chain, not its own cluster, sharing no result mass with its
        // workload — keeps the entry alive through the fine gate.
        let ov = Overlay::singletons(4);
        let mut store = ContentStore::new(4);
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(3), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(2)), 1);
        let mut sys = System::new(
            ov,
            store,
            vec![w0, Workload::new(), w2, Workload::new()],
            GameConfig {
                alpha: 1.0,
                theta: Theta::Linear,
            },
        );
        let mut memo = ProposalMemo::new();
        let fresh = prime(&mut memo, &mut sys, PeerId(0)).expect("p0 wants c1");
        assert_eq!(fresh.to, ClusterId(1));
        // p2 joins p3: candidates c2, c3 change; p0's chain is [c1].
        sys.move_peer(PeerId(2), ClusterId(3));
        memo.begin_round(&sys.view(), true);
        assert_eq!(
            memo.lookup(&sys.view(), PeerId(0)),
            Some(Some(fresh)),
            "changes off the chain that do not undercut γ must not evict"
        );
        // And the hit is honest: recomputing agrees.
        let (recomputed, _) = traced_proposal(&mut sys, PeerId(0));
        assert_eq!(recomputed, Some(fresh));
    }

    #[test]
    fn memo_misses_when_a_changed_cluster_newly_undercuts() {
        // p0 queries Sym(1), held only inside c1 — but c1 has three
        // members, and at α = 2 the membership jump 1/5 → 4/5 outweighs
        // the full recall recovery (1.6 > 1.4), so p0 stays put with an
        // *empty* chain. Then a member leaves c1: joining the now
        // smaller cluster costs 6/5 < 1.4 — a changed cluster *off* the
        // (empty) chain newly undercuts the unchanged current cost, and
        // only the fine gate's cost re-check can catch it.
        let mut ov = Overlay::singletons(5);
        ov.move_peer(PeerId(2), ClusterId(1));
        ov.move_peer(PeerId(3), ClusterId(1));
        let mut store = ContentStore::new(5);
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 1);
        let mut sys = System::new(
            ov,
            store,
            vec![
                w0,
                Workload::new(),
                Workload::new(),
                Workload::new(),
                Workload::new(),
            ],
            GameConfig {
                alpha: 2.0,
                theta: Theta::Linear,
            },
        );
        let mut memo = ProposalMemo::new();
        let fresh = prime(&mut memo, &mut sys, PeerId(0));
        assert_eq!(fresh, None, "fixture: p0 must start with no move");
        // p3 leaves c1 for p4's cluster: D = {c1, c4}, both off p0's
        // empty chain, p0's own cluster and marks untouched.
        sys.move_peer(PeerId(3), ClusterId(4));
        memo.begin_round(&sys.view(), true);
        assert_eq!(
            memo.lookup(&sys.view(), PeerId(0)),
            None,
            "the cost re-check must evict: c1 newly undercuts"
        );
        let (recomputed, _) = traced_proposal(&mut sys, PeerId(0));
        assert_eq!(
            recomputed
                .expect("p0 now wants the smaller holder cluster")
                .to,
            ClusterId(1)
        );
    }

    #[test]
    fn memo_misses_after_own_workload_changed() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        prime(&mut memo, &mut sys, PeerId(0));
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(2)), 1);
        sys.set_workload(PeerId(0), w);
        memo.begin_round(&sys.view(), true);
        assert_eq!(memo.lookup(&sys.view(), PeerId(0)), None);
        // …and the fresh proposal differs (the peer now wants p2's
        // cluster), which is exactly why the gate had to fire.
        let (after, _) = traced_proposal(&mut sys, PeerId(0));
        assert_eq!(after.expect("still wants to move").to, ClusterId(2));
    }

    #[test]
    fn memo_distinguishes_allow_empty() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        memo.begin_round(&sys.view(), true);
        memo.store(&sys.view(), PeerId(0), true, None, ChainInfo::Unknown);
        memo.begin_round(&sys.view(), false);
        assert_eq!(
            memo.lookup(&sys.view(), PeerId(0)),
            None,
            "a proposal computed with empty targets must not serve a round without them"
        );
    }

    #[test]
    fn memo_never_crosses_system_lineages() {
        // A fresh system's clocks and mark counters are all zero — the
        // same values another fresh system's stamps carry. Entries are
        // keyed on the lineage id precisely so one engine reused on a
        // second system recomputes instead of replaying the first
        // system's proposals.
        let mut sys_a = fixture();
        let mut memo = ProposalMemo::new();
        let fresh = prime(&mut memo, &mut sys_a, PeerId(0));
        let mut sys_b = fixture();
        memo.begin_round(&sys_b.view(), true);
        assert_eq!(memo.lookup(&sys_b.view(), PeerId(0)), None);
        // Storing against the new lineage adopts it and works normally.
        memo.store(&sys_b.view(), PeerId(0), true, None, ChainInfo::Unknown);
        memo.begin_round(&sys_b.view(), true);
        assert_eq!(memo.lookup(&sys_b.view(), PeerId(0)), Some(None));
        // ...and a clone forks a *fresh* lineage too: after the fork the
        // two histories diverge with independently advancing clocks, so
        // stamps taken on one must never validate against the other.
        let mut clone = sys_a.clone();
        let mut memo2 = ProposalMemo::new();
        memo2.begin_round(&sys_a.view(), true);
        let (_, chain) = traced_proposal(&mut sys_a, PeerId(0));
        memo2.store(&sys_a.view(), PeerId(0), true, fresh, chain);
        memo2.begin_round(&clone.view(), true);
        assert_eq!(memo2.lookup(&clone.view(), PeerId(0)), None);
    }

    #[test]
    fn memo_misses_for_unknown_peers() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        memo.begin_round(&sys.view(), true);
        assert_eq!(memo.lookup(&sys.view(), PeerId(0)), None);
    }

    #[test]
    fn unknown_chain_requires_an_unchanged_candidate_set() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        memo.begin_round(&sys.view(), true);
        memo.store(&sys.view(), PeerId(0), true, None, ChainInfo::Unknown);
        // Quiet round: Unknown-chain entries still hit.
        memo.begin_round(&sys.view(), true);
        assert_eq!(memo.lookup(&sys.view(), PeerId(0)), Some(None));
        // Any candidate change: Unknown-chain entries miss wholesale,
        // even when the change is provably irrelevant to the peer.
        sys.move_peer(PeerId(2), ClusterId(1));
        memo.begin_round(&sys.view(), true);
        assert_eq!(memo.lookup(&sys.view(), PeerId(0)), None);
    }
}
