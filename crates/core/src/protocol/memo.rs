//! Cross-round proposal memoization.
//!
//! Phase 1 of every protocol round asks each peer for its proposal — a
//! pure function of the peer's workload rows, the candidate clusters'
//! sizes and recall masses, `|P|` and the game parameters. Between two
//! rounds most of those inputs do not change: a round that granted `k`
//! relocations touched `2k` clusters and dirtied the cost-cache entries
//! of the movers' query co-holders, and a churn-free, update-free round
//! touched nothing at all. [`ProposalMemo`] exploits this: it stamps
//! every stored proposal with the [`Epochs`](crate::view::Epochs) clock
//! and the cost cache's invalidation counters, and re-emits it — without
//! recomputation — exactly when
//!
//! 1. the peer's cache entry stayed clean (its per-slot mark counter and
//!    the wholesale counter are unchanged, so its workload rows and its
//!    current cluster's recall terms are untouched), and
//! 2. no candidate cluster's size or mass changed (every candidate's
//!    epoch stamp, and the global stamp, are at or before the memo's
//!    clock value).
//!
//! Under those two conditions a fresh
//! [`best_response`](crate::equilibrium::best_response) reads exactly
//! the same values as the memoized call did, so the memoized proposal is
//! **bit-identical** to recomputation — property-tested against
//! arbitrary interleavings of moves, churn, content and workload updates
//! in `crates/core/tests/prop_view_memo.rs`. The net effect: a phase-1
//! round after quiet rounds costs O(1) per clean peer instead of
//! O(candidates × workload), and the terminal (request-free) round of
//! every run is nearly free.
//!
//! Only strategies that declare
//! [`memoizable`](crate::strategy::RelocationStrategy::memoizable) opt
//! in — the gate conditions cover the selfish best response completely,
//! but not round-level state like the altruistic contribution matrix.

use recluster_types::PeerId;

use crate::strategy::Proposal;
use crate::view::SystemView;

/// One peer's memoized proposal plus the stamps it is valid under.
#[derive(Debug, Clone, Copy, Default)]
struct MemoEntry {
    /// The journal clock value when the proposal was computed.
    sys_stamp: u64,
    /// The peer's cost-cache mark counter at computation time.
    slot_marks: u64,
    /// The cache's wholesale mark counter at computation time.
    all_marks: u64,
    /// Whether empty clusters were admissible when computed.
    allow_empty: bool,
    /// Whether this entry holds a proposal at all.
    occupied: bool,
    /// The memoized proposal.
    proposal: Option<Proposal>,
}

/// The per-round summary of the candidate-cluster gate: the newest
/// stamp among the global epoch and every candidate cluster's epoch.
/// Computed once per round (O(candidates)) and compared against each
/// entry's clock value (O(1) per peer).
#[derive(Debug, Clone, Copy)]
pub struct RoundGate {
    max_candidate_epoch: u64,
    allow_empty: bool,
}

/// Memoized per-peer proposals with epoch-stamped validity.
#[derive(Debug, Clone, Default)]
pub struct ProposalMemo {
    /// The system lineage the entries were computed against
    /// ([`Epochs::system_id`](crate::view::Epochs::system_id); 0 =
    /// empty memo). Stamps of different systems are not comparable —
    /// two fresh systems both start their clocks at zero — so a store
    /// against a new lineage drops every old entry, and lookups against
    /// a different lineage always miss.
    system_id: u64,
    entries: Vec<MemoEntry>,
}

impl ProposalMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the round's candidate gate from the view: the maximum
    /// of the global stamp and every candidate cluster's stamp (all
    /// non-empty clusters, plus the first empty slot when empty targets
    /// are admissible). Entries stamped at or after this value saw every
    /// candidate in its current state.
    pub fn round_gate(view: &SystemView<'_>, allow_empty: bool) -> RoundGate {
        let epochs = view.epochs();
        let mut max = epochs.global();
        for &cid in view.overlay().non_empty_ids() {
            max = max.max(epochs.cluster(cid));
        }
        if allow_empty {
            if let Some(empty) = view.overlay().first_empty_cluster() {
                max = max.max(epochs.cluster(empty));
            }
        }
        RoundGate {
            max_candidate_epoch: max,
            allow_empty,
        }
    }

    /// Looks up `peer`'s memoized proposal. `Some(proposal)` means the
    /// entry is valid under the gate — re-emitting it is bit-identical
    /// to recomputing; `None` means the caller must recompute (and
    /// should [`store`](ProposalMemo::store) the result).
    pub fn lookup(
        &self,
        gate: &RoundGate,
        view: &SystemView<'_>,
        peer: PeerId,
    ) -> Option<Option<Proposal>> {
        if self.system_id != view.epochs().system_id() {
            return None;
        }
        let e = self.entries.get(peer.index())?;
        let cache = view.cost_cache();
        (e.occupied
            && e.allow_empty == gate.allow_empty
            && e.sys_stamp >= gate.max_candidate_epoch
            && e.slot_marks == cache.slot_marks(peer.index())
            && e.all_marks == cache.all_marks())
        .then_some(e.proposal)
    }

    /// Stores a freshly computed proposal with the current stamps.
    pub fn store(
        &mut self,
        view: &SystemView<'_>,
        peer: PeerId,
        allow_empty: bool,
        proposal: Option<Proposal>,
    ) {
        let system_id = view.epochs().system_id();
        if self.system_id != system_id {
            // A different system lineage: none of the old stamps mean
            // anything here — start over.
            self.entries.clear();
            self.system_id = system_id;
        }
        if self.entries.len() <= peer.index() {
            self.entries.resize(peer.index() + 1, MemoEntry::default());
        }
        let cache = view.cost_cache();
        self.entries[peer.index()] = MemoEntry {
            sys_stamp: view.epochs().now(),
            slot_marks: cache.slot_marks(peer.index()),
            all_marks: cache.all_marks(),
            allow_empty,
            occupied: true,
            proposal,
        };
    }

    /// Drops every entry (e.g. when the engine switches system).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{best_response, COST_EPS};
    use crate::system::{GameConfig, System};
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{ClusterId, Document, Query, Sym, Workload};

    fn fixture() -> System {
        let ov = Overlay::singletons(3);
        let mut store = ContentStore::new(3);
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(2), Document::new(vec![Sym(2)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w0, Workload::new(), w2],
            GameConfig {
                alpha: 1.0,
                theta: Theta::Linear,
            },
        )
    }

    fn proposal_of(sys: &mut System, peer: PeerId) -> Option<Proposal> {
        let br = best_response(&sys.view(), peer, true);
        (br.gain > COST_EPS).then_some(Proposal {
            to: br.cluster,
            gain: br.gain,
        })
    }

    #[test]
    fn memo_hits_when_nothing_changed() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        let fresh = proposal_of(&mut sys, PeerId(0));
        memo.store(&sys.view(), PeerId(0), true, fresh);
        let view = sys.view();
        let gate = ProposalMemo::round_gate(&view, true);
        assert_eq!(memo.lookup(&gate, &view, PeerId(0)), Some(fresh));
    }

    #[test]
    fn memo_misses_after_candidate_cluster_changed() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        let fresh = proposal_of(&mut sys, PeerId(0));
        memo.store(&sys.view(), PeerId(0), true, fresh);
        // p2's move changes two candidate clusters' sizes: every memo
        // must be re-checked against a fresh best response.
        sys.move_peer(PeerId(2), ClusterId(1));
        let view = sys.view();
        let gate = ProposalMemo::round_gate(&view, true);
        assert_eq!(memo.lookup(&gate, &view, PeerId(0)), None);
    }

    #[test]
    fn memo_misses_after_own_workload_changed() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        let fresh = proposal_of(&mut sys, PeerId(0));
        memo.store(&sys.view(), PeerId(0), true, fresh);
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(2)), 1);
        sys.set_workload(PeerId(0), w);
        {
            let view = sys.view();
            let gate = ProposalMemo::round_gate(&view, true);
            assert_eq!(memo.lookup(&gate, &view, PeerId(0)), None);
        }
        // …and the fresh proposal differs (the peer now wants p2's
        // cluster), which is exactly why the gate had to fire.
        let after = proposal_of(&mut sys, PeerId(0)).expect("still wants to move");
        assert_eq!(after.to, ClusterId(2));
    }

    #[test]
    fn memo_distinguishes_allow_empty() {
        let mut sys = fixture();
        let mut memo = ProposalMemo::new();
        memo.store(&sys.view(), PeerId(0), true, None);
        let view = sys.view();
        let gate = ProposalMemo::round_gate(&view, false);
        assert_eq!(
            memo.lookup(&gate, &view, PeerId(0)),
            None,
            "a proposal computed with empty targets must not serve a round without them"
        );
    }

    #[test]
    fn memo_never_crosses_system_lineages() {
        // A fresh system's clocks and mark counters are all zero — the
        // same values another fresh system's stamps carry. Entries are
        // keyed on the lineage id precisely so one engine reused on a
        // second system recomputes instead of replaying the first
        // system's proposals.
        let mut sys_a = fixture();
        let mut memo = ProposalMemo::new();
        let fresh = proposal_of(&mut sys_a, PeerId(0));
        memo.store(&sys_a.view(), PeerId(0), true, fresh);
        let mut sys_b = fixture();
        let view_b = sys_b.view();
        let gate = ProposalMemo::round_gate(&view_b, true);
        assert_eq!(memo.lookup(&gate, &view_b, PeerId(0)), None);
        // Storing against the new lineage adopts it and works normally.
        memo.store(&view_b, PeerId(0), true, None);
        assert_eq!(memo.lookup(&gate, &view_b, PeerId(0)), Some(None));
        // ...and a clone forks a *fresh* lineage too: after the fork the
        // two histories diverge with independently advancing clocks, so
        // stamps taken on one must never validate against the other.
        let mut clone = sys_a.clone();
        let view_c = clone.view();
        let mut memo2 = ProposalMemo::new();
        memo2.store(&sys_a.view(), PeerId(0), true, fresh);
        let gate_c = ProposalMemo::round_gate(&view_c, true);
        assert_eq!(memo2.lookup(&gate_c, &view_c, PeerId(0)), None);
    }

    #[test]
    fn memo_misses_for_unknown_peers() {
        let mut sys = fixture();
        let memo = ProposalMemo::new();
        let view = sys.view();
        let gate = ProposalMemo::round_gate(&view, true);
        assert_eq!(memo.lookup(&gate, &view, PeerId(0)), None);
    }
}
