//! Asynchronous players (paper §6: "variations of the game, i.e., with
//! asynchronous players").
//!
//! Instead of the synchronized two-phase rounds of §3.2, peers act one
//! at a time in a (seeded) random order, immediately applying their best
//! relocation. There are no representatives, no request ranking and no
//! lock rule — the anti-cycle protection comes only from the strict-gain
//! requirement. This is the natural "fully uncoordinated" baseline for
//! the round-based protocol.

use rand::seq::SliceRandom;
use recluster_overlay::{MsgKind, SimNetwork};
use recluster_types::{seeded_rng, PeerId};

use crate::global::{scost_normalized, wcost_normalized};
use crate::protocol::{EmptyTargetPolicy, ProtocolConfig};
use crate::strategy::RelocationStrategy;
use crate::system::System;

/// The result of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncOutcome {
    /// Individual peer activations executed.
    pub steps: usize,
    /// Relocations performed.
    pub moves: usize,
    /// Whether a full sweep with no move occurred before the step
    /// budget expired.
    pub converged: bool,
    /// Normalized social cost after each completed sweep.
    pub scost_per_sweep: Vec<f64>,
    /// Normalized workload cost after each completed sweep.
    pub wcost_per_sweep: Vec<f64>,
}

/// Runs the asynchronous game: sweeps over all live peers in a seeded
/// random order (reshuffled per sweep); each activated peer plays its
/// strategy's proposal immediately. Stops after a moveless sweep or
/// `max_sweeps`.
///
/// `config.epsilon` gates moves exactly as in the synchronous protocol;
/// `config.empty_targets` is honored for `Never`/`Always`
/// (`OnCostIncrease` falls back to `Always` — there are no periods to
/// compare against without rounds).
pub fn run_async<S: RelocationStrategy>(
    system: &mut System,
    strategy: &mut S,
    config: ProtocolConfig,
    max_sweeps: usize,
    seed: u64,
    net: &mut SimNetwork,
) -> AsyncOutcome {
    let allow_empty = !matches!(config.empty_targets, EmptyTargetPolicy::Never);
    let mut rng = seeded_rng(seed);
    let mut steps = 0;
    let mut moves = 0;
    let mut scost_per_sweep = Vec::new();
    let mut wcost_per_sweep = Vec::new();
    let mut converged = false;

    for _ in 0..max_sweeps {
        let mut order: Vec<PeerId> = system.overlay().peers().collect();
        order.shuffle(&mut rng);
        let mut moved_this_sweep = false;
        for peer in order {
            steps += 1;
            // Asynchronous peers still need fresh statistics; contribution
            // matrices change with every applied move.
            strategy.prepare(system);
            // A per-activation view: flushes the cache touched by the
            // previous activation's move, then reads are plain borrows.
            let proposal = strategy.propose(&system.view(), peer, allow_empty);
            if let Some(p) = proposal {
                if p.gain > config.epsilon {
                    net.send(MsgKind::ClusterLeave, 24);
                    net.send(MsgKind::ClusterJoin, 24);
                    system.move_peer(peer, p.to);
                    moves += 1;
                    moved_this_sweep = true;
                }
            }
        }
        scost_per_sweep.push(scost_normalized(system));
        wcost_per_sweep.push(wcost_normalized(system));
        if !moved_this_sweep {
            converged = true;
            break;
        }
    }
    AsyncOutcome {
        steps,
        moves,
        converged,
        scost_per_sweep,
        wcost_per_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{ClusterId, Document, Query, Sym, Workload};

    use crate::equilibrium::is_nash_equilibrium;
    use crate::strategy::SelfishStrategy;
    use crate::system::GameConfig;

    fn two_category_system() -> System {
        let ov = Overlay::singletons(6);
        let mut store = ContentStore::new(6);
        let mut workloads = Vec::new();
        for i in 0..6u32 {
            let sym = if i < 3 { Sym(1) } else { Sym(2) };
            store.add(PeerId(i), Document::new(vec![sym]));
            let mut w = Workload::new();
            w.add(Query::keyword(sym), 2);
            workloads.push(w);
        }
        System::new(
            ov,
            store,
            workloads,
            GameConfig {
                alpha: 0.5,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn async_run_reaches_the_same_equilibrium_structure() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let outcome = run_async(
            &mut sys,
            &mut SelfishStrategy,
            ProtocolConfig::default(),
            50,
            7,
            &mut net,
        );
        assert!(outcome.converged);
        assert!(is_nash_equilibrium(&sys, true));
        assert_eq!(sys.overlay().non_empty_clusters(), 2);
        assert_eq!(
            sys.overlay().cluster_of(PeerId(0)),
            sys.overlay().cluster_of(PeerId(2))
        );
        assert_eq!(
            sys.overlay().cluster_of(PeerId(3)),
            sys.overlay().cluster_of(PeerId(5))
        );
    }

    #[test]
    fn async_costs_decrease_per_sweep() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let outcome = run_async(
            &mut sys,
            &mut SelfishStrategy,
            ProtocolConfig::default(),
            50,
            8,
            &mut net,
        );
        for w in outcome.scost_per_sweep.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "async sweep raised scost");
        }
        assert!(outcome.moves >= 4);
    }

    #[test]
    fn async_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sys = two_category_system();
            let mut net = SimNetwork::new();
            let o = run_async(
                &mut sys,
                &mut SelfishStrategy,
                ProtocolConfig::default(),
                50,
                seed,
                &mut net,
            );
            (o.steps, o.moves, sys.overlay().sizes())
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn epsilon_gates_async_moves_too() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let cfg = ProtocolConfig {
            epsilon: 10.0,
            ..Default::default()
        };
        let outcome = run_async(&mut sys, &mut SelfishStrategy, cfg, 10, 1, &mut net);
        assert!(outcome.converged);
        assert_eq!(outcome.moves, 0);
    }

    #[test]
    fn never_policy_respected_async() {
        let mut sys = two_category_system();
        // Merge into two clusters, then forbid empty targets.
        sys.move_peers(&[
            (PeerId(1), ClusterId(0)),
            (PeerId(2), ClusterId(0)),
            (PeerId(4), ClusterId(3)),
            (PeerId(5), ClusterId(3)),
        ]);
        let before = sys.overlay().non_empty_clusters();
        let cfg = ProtocolConfig {
            empty_targets: EmptyTargetPolicy::Never,
            ..Default::default()
        };
        let mut net = SimNetwork::new();
        let _ = run_async(&mut sys, &mut SelfishStrategy, cfg, 20, 2, &mut net);
        assert!(sys.overlay().non_empty_clusters() <= before);
    }
}
