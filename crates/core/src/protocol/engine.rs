//! The round-based protocol engine.
//!
//! Drives a [`RelocationStrategy`] through the two-phase protocol of
//! §3.2, charging every logical message to a [`SimNetwork`] ledger and
//! recording per-round quality measures (the series plotted in the
//! paper's Figure 1).
//!
//! Phase 1 is a pure read of global state: the engine builds one
//! [`SystemView`] per round (flushing the cost cache exactly once), then
//! computes every peer's proposal against it — sharded across the rayon
//! shim's workers when the system is large and the strategy's `propose`
//! is pure, merged back in peer order so the parallel round is
//! **byte-identical** to the sequential one (asserted in
//! `crates/sim/tests/determinism.rs`). Proposals of
//! [`memoizable`](RelocationStrategy::memoizable) strategies are
//! additionally memoized across rounds through a [`ProposalMemo`]:
//! peers whose epoch stamps did not move re-emit their previous
//! proposal in O(1).

use rayon::prelude::*;
use recluster_overlay::{MsgKind, SimNetwork};
use recluster_types::{ClusterId, PeerId};

use crate::global::{scost_normalized, wcost_normalized};
use crate::protocol::locks::LockSet;
use crate::protocol::memo::ProposalMemo;
use crate::protocol::{ProtocolConfig, RelocationRequest};
use crate::strategy::{ChainInfo, Proposal, RelocationStrategy};
use crate::system::System;
use crate::view::SystemView;

/// What happened in one protocol round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Round number (0-based).
    pub round: usize,
    /// All requests forwarded by representatives (one per cluster max).
    pub requests: Vec<RelocationRequest>,
    /// The subset granted under the lock rule, in grant order.
    pub granted: Vec<RelocationRequest>,
    /// Normalized social cost after the round's moves.
    pub scost: f64,
    /// Normalized workload cost after the round's moves.
    pub wcost: f64,
    /// Non-empty clusters after the round's moves.
    pub non_empty_clusters: usize,
    /// Phase-1 proposals computed from scratch this round (the "dirty"
    /// peers whose memo stamps had moved — every peer when memoization
    /// is off or the strategy is not memoizable).
    pub proposals_recomputed: usize,
    /// Phase-1 proposals re-emitted from the memo without recomputation.
    pub proposals_memoized: usize,
}

/// The result of a full protocol run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-round records, in order. The final entry is the request-free
    /// round that terminated the protocol (when converged).
    pub rounds: Vec<RoundOutcome>,
    /// Whether a round produced no requests before `max_rounds` expired.
    pub converged: bool,
}

impl RunOutcome {
    /// Rounds executed until convergence (excluding the terminal empty
    /// round, matching how the paper counts "# Rounds"), or the full
    /// budget when not converged.
    pub fn rounds_to_converge(&self) -> usize {
        if self.converged {
            self.rounds.len().saturating_sub(1)
        } else {
            self.rounds.len()
        }
    }

    /// Final normalized social cost.
    pub fn final_scost(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.scost)
    }

    /// Final normalized workload cost.
    pub fn final_wcost(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.wcost)
    }

    /// Final number of non-empty clusters.
    pub fn final_clusters(&self) -> usize {
        self.rounds.last().map_or(0, |r| r.non_empty_clusters)
    }

    /// Total peers moved across all rounds.
    pub fn total_moves(&self) -> usize {
        self.rounds.iter().map(|r| r.granted.len()).sum()
    }

    /// Total phase-1 proposals computed from scratch across all rounds.
    pub fn total_recomputed(&self) -> usize {
        self.rounds.iter().map(|r| r.proposals_recomputed).sum()
    }

    /// Total phase-1 proposals served from the memo across all rounds.
    pub fn total_memoized(&self) -> usize {
        self.rounds.iter().map(|r| r.proposals_memoized).sum()
    }
}

/// Drives the reformulation protocol for one strategy.
#[derive(Debug)]
pub struct ProtocolEngine<S: RelocationStrategy> {
    strategy: S,
    config: ProtocolConfig,
    /// The best (lowest) individual cost each peer has held during the
    /// current protocol run — the reference point of the `OnCostIncrease`
    /// new-cluster rule ("its cost has significantly been increased
    /// since the last time period").
    min_costs: Vec<f64>,
    /// Cross-round proposal memo (engine-lifetime, like `min_costs`:
    /// the stamps make stale entries self-invalidating within a system
    /// lineage, and entries from a *different* system never validate —
    /// the memo is keyed on the journal's system id — so it safely
    /// persists across runs of the same engine).
    memo: ProposalMemo,
    /// `config.memoize_proposals`, further gated by the
    /// `RECLUSTER_MEMO=0` environment override (read once here).
    memo_enabled: bool,
}

impl<S: RelocationStrategy> ProtocolEngine<S> {
    /// Creates an engine.
    pub fn new(strategy: S, config: ProtocolConfig) -> Self {
        assert!(config.epsilon >= 0.0, "epsilon must be non-negative");
        let memo_enabled =
            config.memoize_proposals && std::env::var("RECLUSTER_MEMO").map_or(true, |v| v != "0");
        ProtocolEngine {
            strategy,
            config,
            min_costs: Vec::new(),
            memo: ProposalMemo::new(),
            memo_enabled,
        }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// The configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// The `allow_empty` flag the configured policy hands to the
    /// strategy's `propose` — shared with the message runtime via
    /// [`crate::protocol::base_allow_empty`].
    fn base_allow_empty(&self) -> bool {
        crate::protocol::base_allow_empty(&self.config)
    }

    /// Applies the empty-target policy and the `ε` threshold to a raw
    /// strategy proposal — delegated to the policy helper both protocol
    /// drivers share ([`crate::protocol::apply_policy`]), so the two
    /// cannot drift on policy arithmetic.
    fn apply_policy(
        &self,
        view: &SystemView<'_>,
        peer: PeerId,
        raw: Option<Proposal>,
    ) -> Option<Proposal> {
        crate::protocol::apply_policy(&self.config, &self.min_costs, view, peer, raw)
    }

    /// Phase 1 against a snapshot: every live peer's raw proposal —
    /// memo hits re-emitted, misses recomputed (sharded by peer range
    /// across the rayon shim when the system is large enough and the
    /// strategy's `propose` is pure; the index-order merge makes the
    /// sharded result byte-identical to the sequential one) — then the
    /// per-cluster representative selection and message charging in
    /// exactly the sequential order. Returns the forwarded requests and
    /// the (recomputed, memoized) proposal counts.
    fn phase1(
        &mut self,
        view: &SystemView<'_>,
        net: &mut SimNetwork,
    ) -> (Vec<RelocationRequest>, usize, usize) {
        let allow_empty = self.base_allow_empty();
        let non_empty: Vec<ClusterId> = view.overlay().non_empty_ids().to_vec();
        // The flattened gain-report order: clusters ascending, members
        // ascending within each — identical to the nested loops below.
        let peers: Vec<PeerId> = non_empty
            .iter()
            .flat_map(|&cid| view.overlay().cluster(cid).members().iter().copied())
            .collect();

        let memo_on = self.memo_enabled && self.strategy.memoizable();
        if memo_on {
            // Opens the round's validity gate (candidate-sequence
            // version + changed-cluster set) before the immutable
            // parallel section borrows the memo.
            self.memo.begin_round(view, allow_empty);
        }
        let memo = &self.memo;
        let strategy = &self.strategy;
        // A `None` chain marks a memo hit; `Some(chain)` a recomputed
        // proposal to be stored below.
        let compute = |&peer: &PeerId| -> (Option<Proposal>, Option<ChainInfo>) {
            if memo_on {
                if let Some(hit) = memo.lookup(view, peer) {
                    return (hit, None);
                }
                let (proposal, chain) = strategy.propose_traced(view, peer, allow_empty);
                (proposal, Some(chain))
            } else {
                (strategy.propose(view, peer, allow_empty), None)
            }
        };
        let sharded =
            self.strategy.sharded_phase1() && peers.len() >= self.config.min_parallel_peers;
        let mut raw: Vec<(Option<Proposal>, Option<ChainInfo>)> = if sharded {
            peers.par_iter().map(compute).collect()
        } else {
            peers.iter().map(compute).collect()
        };

        // Write recomputed proposals back into the memo and tally.
        let mut recomputed = 0;
        let mut memoized = 0;
        if memo_on {
            for (&peer, slot) in peers.iter().zip(raw.iter_mut()) {
                match slot.1.take() {
                    Some(chain) => {
                        recomputed += 1;
                        self.memo.store(view, peer, allow_empty, slot.0, chain);
                    }
                    None => memoized += 1,
                }
            }
        } else {
            recomputed = peers.len();
        }

        // Per-cluster representative selection, in the exact order (and
        // with the exact message charges) of the sequential protocol.
        let mut requests: Vec<RelocationRequest> = Vec::new();
        let mut next = 0;
        for &cid in &non_empty {
            // Every member reports its gain to the representative.
            let members = view.overlay().cluster(cid).members();
            net.send_many(MsgKind::GainReport, 16, members.len() as u64);

            // The representative selects the highest-gain peer
            // (deterministic tie-break by peer id).
            let mut best: Option<RelocationRequest> = None;
            for &peer in members {
                let (proposal, _) = &raw[next];
                let proposal = *proposal;
                next += 1;
                if let Some(p) = self.apply_policy(view, peer, proposal) {
                    let candidate = RelocationRequest {
                        src: cid,
                        dst: p.to,
                        peer,
                        gain: p.gain,
                    };
                    let replace = match &best {
                        None => true,
                        Some(b) => {
                            p.gain > b.gain + f64::EPSILON
                                || ((p.gain - b.gain).abs() <= f64::EPSILON
                                    && candidate.peer < b.peer)
                        }
                    };
                    if replace {
                        best = Some(candidate);
                    }
                }
            }
            // Request or heartbeat to every other representative.
            let fanout = (non_empty.len() as u64).saturating_sub(1);
            match best {
                Some(req) => {
                    net.send_many(MsgKind::RelocationRequest, 24, fanout);
                    requests.push(req);
                }
                None => net.send_many(MsgKind::Heartbeat, 8, fanout),
            }
        }
        (requests, recomputed, memoized)
    }

    /// Executes one round. Returns the outcome; an empty `requests` list
    /// means the protocol has terminated.
    pub fn run_round(
        &mut self,
        system: &mut System,
        net: &mut SimNetwork,
        round: usize,
    ) -> RoundOutcome {
        self.strategy.prepare(system);

        // ---- Phase 1: pure reads against one snapshot. --------------
        // `view()` flushes the cost cache exactly once; everything after
        // is `&self` with no interior mutability, safe to shard.
        let (mut requests, recomputed, memoized) = {
            let view = system.view();
            self.fold_min_costs(&view, &[]);
            self.phase1(&view, net)
        };

        // ---- Phase 2: identical sorted list at every representative. --
        RelocationRequest::sort_requests(&mut requests);
        let mut locks = LockSet::new();
        let mut granted = Vec::new();
        for &req in &requests {
            if req.src == req.dst {
                continue;
            }
            if !self.config.use_locks || locks.admissible(req.src, req.dst) {
                locks.grant(req.src, req.dst);
                net.send_many(MsgKind::GrantCoordination, 16, 2);
                granted.push(req);
            }
        }
        let moves: Vec<(PeerId, ClusterId)> = granted.iter().map(|r| (r.peer, r.dst)).collect();
        system.move_peers(&moves);

        // Update the frustration reference points: track the minimum cost
        // per peer, but *reset* movers to their fresh post-move cost so a
        // pioneering escape consumes the accumulated frustration instead
        // of re-firing every round.
        let movers: Vec<PeerId> = moves.iter().map(|&(p, _)| p).collect();
        let view = system.view();
        self.fold_min_costs(&view, &movers);

        RoundOutcome {
            round,
            requests,
            granted,
            scost: scost_normalized(&view),
            wcost: wcost_normalized(&view),
            non_empty_clusters: view.overlay().non_empty_clusters(),
            proposals_recomputed: recomputed,
            proposals_memoized: memoized,
        }
    }

    /// Folds the current individual costs into `min_costs`; peers listed
    /// in `reset` take the current cost outright (fresh start after a
    /// move). Departed peers get `INFINITY`. Shared with the message
    /// runtime via [`crate::protocol::fold_min_costs`].
    fn fold_min_costs(&mut self, view: &SystemView<'_>, reset: &[PeerId]) {
        crate::protocol::fold_min_costs(view, &mut self.min_costs, reset);
    }

    /// Runs rounds until a request-free round (converged) or the round
    /// budget is exhausted. Frustration reference points persist across
    /// runs of the same engine: "increased since the last time period"
    /// compares against the best cost held in earlier periods, so a
    /// workload/content shock between two runs is visible to the second.
    pub fn run(&mut self, system: &mut System, net: &mut SimNetwork) -> RunOutcome {
        let mut rounds = Vec::new();
        let mut converged = false;
        for round in 0..self.config.max_rounds {
            let outcome = self.run_round(system, net, round);
            let done = outcome.requests.is_empty();
            rounds.push(outcome);
            if done {
                converged = true;
                break;
            }
        }
        RunOutcome { rounds, converged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Query, Sym, Workload};

    use crate::equilibrium::is_nash_equilibrium;
    use crate::protocol::EmptyTargetPolicy;
    use crate::strategy::SelfishStrategy;
    use crate::system::GameConfig;

    /// Four peers in two "categories": peers 0,1 hold & query Sym(1);
    /// peers 2,3 hold & query Sym(2). Start from singletons; the selfish
    /// protocol should pair them up.
    fn two_category_system() -> System {
        let ov = Overlay::singletons(4);
        let mut store = ContentStore::new(4);
        for (i, sym) in [(0, 1u32), (1, 1), (2, 2), (3, 2)] {
            store.add(PeerId(i), Document::new(vec![Sym(sym)]));
        }
        let mut workloads = Vec::new();
        for sym in [1u32, 1, 2, 2] {
            let mut w = Workload::new();
            w.add(Query::keyword(Sym(sym)), 2);
            workloads.push(w);
        }
        System::new(
            ov,
            store,
            workloads,
            GameConfig {
                alpha: 0.5,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn selfish_run_converges_to_category_pairs() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
        let outcome = engine.run(&mut sys, &mut net);
        assert!(outcome.converged, "small system must converge");
        assert_eq!(outcome.final_clusters(), 2);
        // Pairs share their category: cluster of p0 == cluster of p1.
        assert_eq!(
            sys.overlay().cluster_of(PeerId(0)),
            sys.overlay().cluster_of(PeerId(1))
        );
        assert_eq!(
            sys.overlay().cluster_of(PeerId(2)),
            sys.overlay().cluster_of(PeerId(3))
        );
        assert!(is_nash_equilibrium(&sys, true));
    }

    #[test]
    fn converged_state_has_membership_only_cost() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
        let outcome = engine.run(&mut sys, &mut net);
        // 2 clusters of 2 among 4 peers, α=0.5, linear θ → 0.5·2/4 = 0.25.
        assert!((outcome.final_scost() - 0.25).abs() < 1e-9);
        assert!((outcome.final_wcost() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn at_most_one_request_per_cluster_per_round() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
        let outcome = engine.run_round(&mut sys, &mut net, 0);
        let mut srcs: Vec<_> = outcome.requests.iter().map(|r| r.src).collect();
        srcs.sort();
        srcs.dedup();
        assert_eq!(srcs.len(), outcome.requests.len());
    }

    #[test]
    fn granted_moves_respect_the_lock_rule() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
        for round in 0..10 {
            let outcome = engine.run_round(&mut sys, &mut net, round);
            let mut locks = LockSet::new();
            for g in &outcome.granted {
                assert!(
                    locks.admissible(g.src, g.dst),
                    "grant order violated the lock rule"
                );
                locks.grant(g.src, g.dst);
            }
            if outcome.requests.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn epsilon_blocks_tiny_gains() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        // With ε larger than any possible gain, nothing moves.
        let cfg = ProtocolConfig {
            epsilon: 10.0,
            ..Default::default()
        };
        let mut engine = ProtocolEngine::new(SelfishStrategy, cfg);
        let outcome = engine.run(&mut sys, &mut net);
        assert!(outcome.converged);
        assert_eq!(outcome.total_moves(), 0);
        assert_eq!(outcome.rounds_to_converge(), 0);
    }

    #[test]
    fn never_policy_keeps_cluster_count_fixed_or_lower() {
        let mut sys = two_category_system();
        // Pre-merge into 2 clusters, then forbid empty targets.
        sys.move_peers(&[(PeerId(1), ClusterId(0)), (PeerId(3), ClusterId(2))]);
        let before = sys.overlay().non_empty_clusters();
        let cfg = ProtocolConfig {
            empty_targets: EmptyTargetPolicy::Never,
            ..Default::default()
        };
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(SelfishStrategy, cfg);
        let outcome = engine.run(&mut sys, &mut net);
        assert!(outcome.final_clusters() <= before);
    }

    #[test]
    fn network_traffic_is_charged() {
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
        engine.run(&mut sys, &mut net);
        assert!(net.messages(MsgKind::GainReport) > 0);
        assert!(net.total_messages() > 0);
    }

    #[test]
    fn scost_history_is_monotone_nonincreasing_for_selfish_runs() {
        // Not guaranteed in general games, but holds on this separable
        // fixture and guards against sign errors in the gain.
        let mut sys = two_category_system();
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
        let outcome = engine.run(&mut sys, &mut net);
        for w in outcome.rounds.windows(2) {
            assert!(
                w[1].scost <= w[0].scost + 1e-9,
                "scost rose: {} -> {}",
                w[0].scost,
                w[1].scost
            );
        }
    }

    #[test]
    fn on_cost_increase_policy_allows_escape_after_shock() {
        // 6 peers, α = 3: p0,p1 in c0 (hold & query Sym(1)); p2..p5 in
        // c1 (hold & query Sym(2)). After p0's workload shifts to Sym(2),
        // joining the big cluster is too expensive (membership 2.5 vs
        // current 2.0) but seeding a singleton pays (1.5) — exactly the
        // §3.2 new-cluster case.
        let mut ov = Overlay::singletons(6);
        ov.move_peer(PeerId(1), ClusterId(0));
        for i in 3..6 {
            ov.move_peer(PeerId(i), ClusterId(2));
        }
        let mut store = ContentStore::new(6);
        for i in 0..2 {
            store.add(PeerId(i), Document::new(vec![Sym(1)]));
        }
        for i in 2..6 {
            store.add(PeerId(i as u32), Document::new(vec![Sym(2)]));
        }
        let mut workloads = Vec::new();
        for sym in [1u32, 1, 2, 2, 2, 2] {
            let mut w = Workload::new();
            w.add(Query::keyword(Sym(sym)), 2);
            workloads.push(w);
        }
        let mut sys = System::new(
            ov,
            store,
            workloads,
            GameConfig {
                alpha: 3.0,
                theta: Theta::Linear,
            },
        );
        let mut net = SimNetwork::new();
        let cfg = ProtocolConfig {
            empty_targets: EmptyTargetPolicy::OnCostIncrease(0.05),
            ..Default::default()
        };
        let mut engine = ProtocolEngine::new(SelfishStrategy, cfg);
        let outcome = engine.run(&mut sys, &mut net);
        assert!(outcome.converged);
        assert_eq!(
            sys.overlay()
                .size(sys.overlay().cluster_of(PeerId(0)).unwrap()),
            2,
            "p0 starts in its pair"
        );
        // Shock: p0's interest shifts to the other category.
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(2)), 2);
        sys.set_workload(PeerId(0), w);
        let shocked_scost = crate::global::scost_normalized(&sys);
        let outcome2 = engine.run(&mut sys, &mut net);
        assert!(outcome2.converged);
        // p0's first move must be the §3.2 escape into a previously
        // empty cluster (c1 — freed when p1 merged into c0 at setup).
        let p0_move = outcome2
            .rounds
            .iter()
            .flat_map(|r| r.granted.iter())
            .find(|g| g.peer == PeerId(0))
            .expect("p0 must escape after the shock");
        assert_eq!(p0_move.src, ClusterId(0));
        assert_eq!(p0_move.dst, ClusterId(1), "escape goes to the empty slot");
        // The maintenance run must repair (some of) the shock's damage.
        assert!(outcome2.final_scost() < shocked_scost);
    }

    #[test]
    #[should_panic(expected = "epsilon must be non-negative")]
    fn negative_epsilon_panics() {
        let _ = ProtocolEngine::new(
            SelfishStrategy,
            ProtocolConfig {
                epsilon: -0.1,
                ..Default::default()
            },
        );
    }
}
