//! Relocation driven by *observed* statistics (§3.1 as deployed).
//!
//! Every other strategy in this module reads oracle state — the exact
//! recall masses of the [`SystemView`] it proposes against. A deployed
//! peer never sees that; it only has the cid-annotated query results it
//! gathered over the last period(s), folded into an
//! [`ObservedStats`](crate::tracker::ObservedStats) accumulator. The
//! [`ObservedStrategy`] adapter evaluates the same three objectives
//! (selfish / altruistic / hybrid) over those estimates instead, using
//! the *same candidate enumeration and tie-break rules* as the oracle
//! strategies — so under flood (or exact-summary) routing with decay
//! disabled the selfish variant reproduces the oracle `best_response`
//! decision exactly (the `prop_observed` keystone), and under `lossy:<k>`
//! routing its decisions degrade with the observation precision.

use std::fmt;

use recluster_types::PeerId;

use crate::equilibrium::COST_EPS;
use crate::strategy::{membership_increase, Proposal, RelocationStrategy};
use crate::tracker::ObservedStats;
use crate::view::SystemView;

/// Where relocation decisions read their statistics from — the sim
/// layer's `RECLUSTER_DECISIONS` knob parses into this.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DecisionSource {
    /// Oracle state: strategies read exact costs from the `SystemView`
    /// (the repo's historical behavior, and the default).
    #[default]
    Oracle,
    /// Tracker observations, folded with the given EMA retention.
    Observed {
        /// Retention of past periods in `[0, 1)`; `0` keeps only the
        /// latest period (the oracle-equivalent setting under lossless
        /// routing).
        decay: f64,
    },
}

impl DecisionSource {
    /// Parses `oracle`, `observed`, or `observed:<decay>` (decay in
    /// `[0, 1)`); `None` on anything else.
    pub fn parse(raw: &str) -> Option<DecisionSource> {
        match raw {
            "oracle" => Some(DecisionSource::Oracle),
            "observed" => Some(DecisionSource::Observed { decay: 0.0 }),
            _ => {
                let decay: f64 = raw.strip_prefix("observed:")?.parse().ok()?;
                (0.0..1.0)
                    .contains(&decay)
                    .then_some(DecisionSource::Observed { decay })
            }
        }
    }

    /// Whether this source reads observed (non-oracle) statistics.
    pub fn is_observed(&self) -> bool {
        matches!(self, DecisionSource::Observed { .. })
    }
}

impl fmt::Display for DecisionSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionSource::Oracle => write!(f, "oracle"),
            DecisionSource::Observed { decay } if *decay == 0.0 => write!(f, "observed"),
            DecisionSource::Observed { decay } => write!(f, "observed:{decay}"),
        }
    }
}

/// Which oracle objective the observed adapter mirrors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObservedObjective {
    /// Minimize the estimated individual cost (Eq. 5 on observations).
    Selfish,
    /// Maximize the observed contribution (Eq. 6 on served counts).
    Altruistic,
    /// Convex mix `λ·pgain + (1−λ)·clgain` over the estimates.
    Hybrid(f64),
}

/// A [`RelocationStrategy`] whose proposals are computed from an
/// [`ObservedStats`] accumulator instead of oracle view state. The
/// accumulator is owned by the simulation driver (it outlives any one
/// repair) and borrowed here for the duration of one protocol run.
///
/// `propose` is a pure function of `(stats, view, peer, allow_empty)`,
/// so phase-1 sharding stays enabled; proposals are *not* memoizable —
/// the epoch journal knows nothing about the external statistics.
#[derive(Debug, Clone, Copy)]
pub struct ObservedStrategy<'a> {
    stats: &'a ObservedStats,
    objective: ObservedObjective,
}

impl<'a> ObservedStrategy<'a> {
    /// Observed counterpart of [`SelfishStrategy`](crate::strategy::SelfishStrategy).
    pub fn selfish(stats: &'a ObservedStats) -> Self {
        ObservedStrategy {
            stats,
            objective: ObservedObjective::Selfish,
        }
    }

    /// Observed counterpart of [`AltruisticStrategy`](crate::strategy::AltruisticStrategy).
    pub fn altruistic(stats: &'a ObservedStats) -> Self {
        ObservedStrategy {
            stats,
            objective: ObservedObjective::Altruistic,
        }
    }

    /// Observed counterpart of [`HybridStrategy`](crate::strategy::HybridStrategy).
    ///
    /// # Panics
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn hybrid(stats: &'a ObservedStats, lambda: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda must be in [0, 1], got {lambda}"
        );
        ObservedStrategy {
            stats,
            objective: ObservedObjective::Hybrid(lambda),
        }
    }

    /// The mirrored objective.
    pub fn objective(&self) -> ObservedObjective {
        self.objective
    }
}

impl RelocationStrategy for ObservedStrategy<'_> {
    fn name(&self) -> &'static str {
        match self.objective {
            ObservedObjective::Selfish => "observed-selfish",
            ObservedObjective::Altruistic => "observed-altruistic",
            ObservedObjective::Hybrid(_) => "observed-hybrid",
        }
    }

    fn propose(&self, view: &SystemView<'_>, peer: PeerId, allow_empty: bool) -> Option<Proposal> {
        let current = view.overlay().cluster_of(peer)?;
        if !self.stats.covers(peer) {
            // No observation slot (nothing absorbed yet, or the peer
            // joined after the last period): a real peer has nothing to
            // decide on and stays put.
            return None;
        }
        match self.objective {
            ObservedObjective::Selfish => {
                let current_cost = self
                    .stats
                    .estimated_pcost(view, peer, current, Some(current));
                let (to, cost) =
                    self.stats
                        .selfish_choice(view, peer, Some(current), allow_empty)?;
                if to == current {
                    return None;
                }
                let gain = current_cost - cost;
                (gain > COST_EPS).then_some(Proposal { to, gain })
            }
            ObservedObjective::Altruistic => {
                if self.stats.served_total(peer) == 0.0 {
                    return None; // the peer serves nobody; altruism is moot
                }
                // Maximum observed contribution, mirroring the oracle
                // altruistic scan (empty clusters contribute nothing and
                // are skipped outright when forbidden).
                let mut best = None;
                for cid in view.overlay().cluster_ids() {
                    if view.overlay().cluster(cid).is_empty() && !allow_empty {
                        continue;
                    }
                    let c = self.stats.estimated_contribution(peer, cid);
                    let better = match best {
                        None => true,
                        Some((_, b)) => c > b + f64::EPSILON,
                    };
                    if better {
                        best = Some((cid, c));
                    }
                }
                let (cnew, contribution_new) = best?;
                if cnew == current {
                    return None;
                }
                let clgain = contribution_new
                    - self.stats.estimated_contribution(peer, current)
                    - membership_increase(view, peer, cnew);
                (clgain > COST_EPS).then_some(Proposal {
                    to: cnew,
                    gain: clgain,
                })
            }
            ObservedObjective::Hybrid(lambda) => {
                let current_cost = self
                    .stats
                    .estimated_pcost(view, peer, current, Some(current));
                let current_contribution = self.stats.estimated_contribution(peer, current);
                let mut best = None;
                for cid in view.overlay().cluster_ids() {
                    if cid == current {
                        continue;
                    }
                    if view.overlay().cluster(cid).is_empty() && !allow_empty {
                        continue;
                    }
                    let pgain =
                        current_cost - self.stats.estimated_pcost(view, peer, cid, Some(current));
                    let clgain = self.stats.estimated_contribution(peer, cid)
                        - current_contribution
                        - membership_increase(view, peer, cid);
                    let score = lambda * pgain + (1.0 - lambda) * clgain;
                    let better = match best {
                        None => score > COST_EPS,
                        Some((_, b)) => score > b + f64::EPSILON,
                    };
                    if better {
                        best = Some((cid, score));
                    }
                }
                best.map(|(to, gain)| Proposal { to, gain })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, SimNetwork, Theta};
    use recluster_types::{ClusterId, Document, Query, Sym, Workload};

    use crate::strategy::SelfishStrategy;
    use crate::system::{GameConfig, System};
    use crate::tracker::simulate_period;

    /// Two peers; p0's single query is answered only by p1 (the selfish
    /// seeker fixture).
    fn seeker_system(alpha: f64) -> System {
        let ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 1);
        System::new(
            ov,
            store,
            vec![w, Workload::new()],
            GameConfig {
                alpha,
                theta: Theta::Linear,
            },
        )
    }

    fn observe(sys: &System, decay: f64) -> ObservedStats {
        let mut stats = ObservedStats::new(decay);
        let mut net = SimNetwork::new();
        stats.absorb(&simulate_period(sys, &mut net));
        stats
    }

    #[test]
    fn observed_selfish_matches_oracle_proposal_under_flood() {
        let mut sys = seeker_system(1.0);
        let stats = observe(&sys, 0.0);
        let observed = ObservedStrategy::selfish(&stats);
        for (peer, allow_empty) in [(PeerId(0), true), (PeerId(0), false), (PeerId(1), true)] {
            let view = sys.view();
            let oracle = SelfishStrategy.propose(&view, peer, allow_empty);
            let ours = observed.propose(&view, peer, allow_empty);
            match (oracle, ours) {
                (Some(o), Some(p)) => {
                    assert_eq!(o.to, p.to);
                    assert!((o.gain - p.gain).abs() < 1e-9);
                }
                (o, p) => assert_eq!(o.is_some(), p.is_some(), "{peer}"),
            }
        }
    }

    #[test]
    fn no_proposal_without_observations() {
        let mut sys = seeker_system(1.0);
        let stats = ObservedStats::new(0.0);
        let observed = ObservedStrategy::selfish(&stats);
        assert!(observed.propose(&sys.view(), PeerId(0), true).is_none());
    }

    #[test]
    fn observed_altruistic_moves_provider_to_consumer() {
        // p0 holds data demanded from c1 (p1, heavy) and c2 (p2, light):
        // the observed contribution pull matches the oracle altruistic
        // decision.
        let ov = Overlay::singletons(3);
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(1)]));
        let mut w1 = Workload::new();
        w1.add(Query::keyword(Sym(1)), 3);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(1)), 1);
        let mut sys = System::new(
            ov,
            store,
            vec![Workload::new(), w1, w2],
            GameConfig {
                alpha: 0.0,
                theta: Theta::Linear,
            },
        );
        let stats = observe(&sys, 0.0);
        let observed = ObservedStrategy::altruistic(&stats);
        let p = observed.propose(&sys.view(), PeerId(0), true).unwrap();
        assert_eq!(p.to, ClusterId(1));
        assert!(p.gain > 0.0);
        // Consumers serve nothing: no altruistic move.
        assert!(observed.propose(&sys.view(), PeerId(1), true).is_none());
    }

    #[test]
    fn observed_hybrid_extremes_follow_their_parents() {
        let mut sys = seeker_system(0.5);
        let stats = observe(&sys, 0.0);
        let selfish = ObservedStrategy::selfish(&stats);
        let hybrid1 = ObservedStrategy::hybrid(&stats, 1.0);
        let view = sys.view();
        let a = selfish.propose(&view, PeerId(0), true).unwrap();
        let b = hybrid1.propose(&view, PeerId(0), true).unwrap();
        assert_eq!(a.to, b.to);
        assert!((a.gain - b.gain).abs() < 1e-12);
    }

    #[test]
    fn decision_source_parses_and_displays() {
        assert_eq!(
            DecisionSource::parse("oracle"),
            Some(DecisionSource::Oracle)
        );
        assert_eq!(
            DecisionSource::parse("observed"),
            Some(DecisionSource::Observed { decay: 0.0 })
        );
        assert_eq!(
            DecisionSource::parse("observed:0.5"),
            Some(DecisionSource::Observed { decay: 0.5 })
        );
        assert_eq!(DecisionSource::parse("observed:1.0"), None);
        assert_eq!(DecisionSource::parse("observed:-0.1"), None);
        assert_eq!(DecisionSource::parse("psychic"), None);
        assert_eq!(DecisionSource::Oracle.to_string(), "oracle");
        assert_eq!(
            DecisionSource::Observed { decay: 0.0 }.to_string(),
            "observed"
        );
        assert_eq!(
            DecisionSource::Observed { decay: 0.25 }.to_string(),
            "observed:0.25"
        );
        assert!(DecisionSource::default() == DecisionSource::Oracle);
        assert!(DecisionSource::Observed { decay: 0.0 }.is_observed());
    }
}
