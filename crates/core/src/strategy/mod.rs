//! Relocation strategies (§3.1).
//!
//! A strategy answers one question per period: *should this peer move,
//! where to, and how large is the gain?* The paper defines two behavioral
//! patterns — [`SelfishStrategy`] (move to the cluster minimizing the
//! peer's own `pcost`; gain is `pgain`) and [`AltruisticStrategy`] (move
//! to the cluster whose recall the peer improves the most; gain is
//! `clgain` derived from the `contribution` measure, Eq. 6) — and
//! sketches a hybrid as future work, implemented here as
//! [`HybridStrategy`].

mod altruistic;
mod hybrid;
mod observed;
mod selfish;

pub use altruistic::AltruisticStrategy;
pub use hybrid::HybridStrategy;
pub use observed::{DecisionSource, ObservedObjective, ObservedStrategy};
pub use selfish::SelfishStrategy;

use recluster_types::{ClusterId, PeerId};

use crate::system::System;
use crate::view::{SystemRead, SystemView};

/// A relocation proposal: the destination and the strategy's gain value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proposal {
    /// The cluster the peer wants to move to.
    pub to: ClusterId,
    /// The strategy-specific gain (compared against the protocol's
    /// threshold `ε` and used to rank requests in phase 2).
    pub gain: f64,
}

/// What a strategy knows about the cluster dependencies of one
/// [`propose`](RelocationStrategy::propose) outcome, reported through
/// [`RelocationStrategy::propose_traced`] for the memo gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainInfo {
    /// The strategy did not trace its scan: the memoized outcome can
    /// only be trusted while *no* candidate cluster changed (the
    /// coarse, pre-trace gate).
    Unknown,
    /// The ascending-scan take chain of
    /// [`best_response_with_chain`](crate::equilibrium::best_response_with_chain):
    /// the clusters that successively improved the running best, in
    /// scan order (empty when staying was optimal). A memoized outcome
    /// stays valid under changes to clusters **outside** the chain as
    /// long as none of them newly undercuts the peer's current cost —
    /// the fine per-(peer, cluster) gate.
    Known(Box<[ClusterId]>),
}

/// A peer-relocation strategy.
///
/// `Sync` is a supertrait because [`propose`] is a pure read evaluated
/// against a [`SystemView`] — the engine's phase 1 shares one strategy
/// reference across the rayon shim's workers. A strategy whose
/// `propose` is *not* a pure function of `(view, peer, allow_empty)`
/// (e.g. one drawing from an internal RNG stream) must return `false`
/// from [`sharded_phase1`] so the engine keeps its call order
/// sequential and deterministic.
///
/// [`propose`]: RelocationStrategy::propose
/// [`sharded_phase1`]: RelocationStrategy::sharded_phase1
pub trait RelocationStrategy: Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Called once per protocol round before any [`propose`] call —
    /// strategies precompute round-level state here (e.g. the altruistic
    /// contribution matrix).
    ///
    /// [`propose`]: RelocationStrategy::propose
    fn prepare(&mut self, _system: &System) {}

    /// Proposes a relocation for `peer`, or `None` if the peer has no
    /// (positive-gain) move. `allow_empty` controls whether empty
    /// clusters are admissible destinations (§4.2 forbids them to keep
    /// the cluster count fixed; §3.2's new-cluster rule requires them).
    ///
    /// Takes a [`SystemView`] — a `Sync` snapshot with a pre-flushed
    /// cost cache — so the engine can fan proposal computation across
    /// threads with no interior mutability in the read path.
    fn propose(&self, view: &SystemView<'_>, peer: PeerId, allow_empty: bool) -> Option<Proposal>;

    /// [`propose`](RelocationStrategy::propose) plus the cluster-
    /// dependency trace of the outcome, consumed by the proposal memo's
    /// per-(peer, cluster) validity gate. The default delegates to
    /// `propose` and reports [`ChainInfo::Unknown`], which makes the
    /// memo fall back to its coarse any-candidate-changed gate — exactly
    /// the pre-trace behaviour. Strategies whose scan is
    /// [`best_response_with_chain`](crate::equilibrium::best_response_with_chain)
    /// override this to hand the real chain over.
    fn propose_traced(
        &self,
        view: &SystemView<'_>,
        peer: PeerId,
        allow_empty: bool,
    ) -> (Option<Proposal>, ChainInfo) {
        (self.propose(view, peer, allow_empty), ChainInfo::Unknown)
    }

    /// Whether [`propose`](RelocationStrategy::propose) is a pure
    /// function of its arguments, making it safe to shard peers across
    /// threads (results are merged in peer order either way, so sharding
    /// never changes the bytes — only whether calls may interleave).
    fn sharded_phase1(&self) -> bool {
        true
    }

    /// Whether this strategy's proposals depend *only* on the inputs the
    /// [`Epochs`](crate::view::Epochs) journal and the cost cache's mark
    /// counters track — the peer's own workload/terms, the candidate
    /// clusters' sizes and recall masses, `|P|`, result totals and the
    /// game parameters. When true, the engine memoizes proposals across
    /// rounds ([`ProposalMemo`](crate::protocol::ProposalMemo)): a peer
    /// whose stamps are unchanged re-emits its previous proposal without
    /// recomputation. Strategies with round-level state of their own
    /// (contribution matrices, RNG streams) must leave this `false`.
    fn memoizable(&self) -> bool {
        false
    }
}

/// "The increase in the membership cost of c_new p will cause if it
/// joins it" (§3.1.2): the membership-cost delta the *mover* takes on,
/// `α · (θ(n_dst + 1) − θ(n_src)) / |P|` — what it will pay in the
/// destination minus what it pays at home. Used as the penalty inside
/// the altruistic `clgain`.
///
/// The paper's wording is ambiguous; of the candidate readings this one
/// is the only well-behaved penalty: the cluster-total increase
/// (`((n+1)θ(n+1) − nθ(n))/|P|` ≈ `2n/|P|` for linear `θ`) dwarfs any
/// contribution difference and freezes the strategy, while a
/// size-independent marginal lets contribution gradients snowball every
/// peer into one giant cluster. The mover's own delta is tiny between
/// similar-sized clusters (preserving the Fig. 2/3 tipping behaviour)
/// yet grows linearly when joining a much larger cluster (blocking the
/// snowball).
pub fn membership_increase<S: SystemRead + ?Sized>(
    system: &S,
    peer: PeerId,
    cid: ClusterId,
) -> f64 {
    let n_dst = system.overlay().size(cid);
    let n_src = system
        .overlay()
        .cluster_of(peer)
        .map_or(0, |c| system.overlay().size(c));
    let cfg = system.config();
    let n_peers = system.n_peers().max(1) as f64;
    cfg.alpha * (cfg.theta.cost(n_dst + 1) - cfg.theta.cost(n_src)) / n_peers
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::Workload;

    use crate::system::GameConfig;

    #[test]
    fn membership_increase_is_the_movers_delta() {
        // p3 (singleton c3) joining c0 (2 members): (θ(3) − θ(1))/4.
        let mut ov = Overlay::singletons(4);
        ov.move_peer(PeerId(1), ClusterId(0)); // c0 has 2 members
        let sys = System::new(
            ov,
            ContentStore::new(4),
            vec![Workload::new(); 4],
            GameConfig {
                alpha: 1.0,
                theta: Theta::Linear,
            },
        );
        let inc = membership_increase(&sys, PeerId(3), ClusterId(0));
        assert!((inc - 0.5).abs() < 1e-12);
        // Moving between singletons: θ(2) − θ(1) = 1 → 0.25.
        let lateral = membership_increase(&sys, PeerId(3), ClusterId(2));
        assert!((lateral - 0.25).abs() < 1e-12);
        // Moving to an empty cluster from a pair is a membership *gain*.
        let escape = membership_increase(&sys, PeerId(0), ClusterId(1));
        assert!((escape - (1.0 - 2.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn membership_increase_grows_with_destination_size() {
        let mut ov = Overlay::singletons(6);
        for i in 1..4 {
            ov.move_peer(PeerId(i), ClusterId(0)); // c0 has 4 members
        }
        let sys = System::new(
            ov,
            ContentStore::new(6),
            vec![Workload::new(); 6],
            GameConfig::default(),
        );
        let big = membership_increase(&sys, PeerId(5), ClusterId(0));
        let small = membership_increase(&sys, PeerId(5), ClusterId(4));
        assert!(big > small, "joining the bigger cluster must cost more");
    }

    #[test]
    fn membership_increase_scales_with_alpha() {
        let ov = Overlay::singletons(2);
        let mk = |alpha| {
            System::new(
                ov.clone(),
                ContentStore::new(2),
                vec![Workload::new(); 2],
                GameConfig {
                    alpha,
                    theta: Theta::Linear,
                },
            )
        };
        let base = membership_increase(&mk(1.0), PeerId(0), ClusterId(1));
        let doubled = membership_increase(&mk(2.0), PeerId(0), ClusterId(1));
        assert!((doubled - 2.0 * base).abs() < 1e-12);
    }
}
