//! The altruistic relocation strategy (§3.1.2).
//!
//! "The peers decide to move to the cluster whose recall could improve
//! the most by this movement." Each peer tracks its contribution to every
//! cluster (Eq. 6):
//!
//! ```text
//! contribution(p, ci) = Σ_{pi∈ci} Σ_{qm∈Q(pi)} result(qm, p)
//!                     / Σ_{pj∈P}  Σ_{qm∈Q(pj)} result(qm, p)
//! ```
//!
//! and selects the cluster with the maximum contribution. The paper's
//! cluster gain (`clgain`) combines that contribution with "the increase
//! in the membership cost of c_new p will cause if it joins it"; the
//! wording is ambiguous about sign, so (as recorded in DESIGN.md) we use
//!
//! ```text
//! clgain = contribution(p, c_new) − contribution(p, c_cur)
//!        − membership_increase(c_new)
//! ```
//!
//! i.e. the *net benefit to the destination* of the move: larger is
//! better, comparable against the protocol's `ε`, and it reproduces the
//! observed dynamics of §4.2 (a provider moves only when the demand it
//! serves elsewhere overtakes the demand it already serves at home, by
//! enough to offset the destination's growth).

use recluster_types::{ClusterId, PeerId};

use crate::equilibrium::COST_EPS;
use crate::strategy::{membership_increase, Proposal, RelocationStrategy};
use crate::system::System;
use crate::view::SystemView;

/// The altruistic strategy.
///
/// Call [`RelocationStrategy::prepare`] once per round to (re)compute the
/// contribution matrix before proposing.
#[derive(Debug, Clone, Default)]
pub struct AltruisticStrategy {
    /// `contribution_num[p][c]`: demand-weighted results peer `p` serves
    /// to members of cluster `c`.
    contribution_num: Vec<Vec<f64>>,
    /// `totals[p]`: demand-weighted results peer `p` serves system-wide.
    totals: Vec<f64>,
}

impl AltruisticStrategy {
    /// Creates an (unprepared) altruistic strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// `contribution(p, c)` per Eq. 6 under the statistics of the last
    /// [`RelocationStrategy::prepare`] call; zero if `p` serves nothing.
    pub fn contribution(&self, peer: PeerId, cid: ClusterId) -> f64 {
        let total = self.totals[peer.index()];
        if total == 0.0 {
            0.0
        } else {
            self.contribution_num[peer.index()][cid.index()] / total
        }
    }
}

impl RelocationStrategy for AltruisticStrategy {
    fn name(&self) -> &'static str {
        "altruistic"
    }

    fn prepare(&mut self, system: &System) {
        let n_slots = system.overlay().n_slots();
        let cmax = system.overlay().cmax();
        let index = system.index();
        self.contribution_num = vec![vec![0.0; cmax]; n_slots];
        self.totals = vec![0.0; n_slots];
        // For every requester pi and every query occurrence in Q(pi),
        // credit each answering peer p with result(qm, p). A peer's own
        // results for its own queries are excluded: Eq. 6 counts "the
        // number of results it *sends* to queries coming from a
        // particular cluster", and nothing is sent to oneself — without
        // this exclusion a self-sufficient peer would appear maximally
        // useful to whatever cluster it already sits in.
        for requester in system.overlay().peers() {
            let cid = system.overlay().cluster_of(requester).expect("live peer");
            let wl = &system.workloads()[requester.index()];
            let peer_total = wl.total();
            if peer_total == 0 {
                continue;
            }
            for &(qid, rel_freq) in index.workload_of(requester) {
                let occurrences = rel_freq * peer_total as f64; // num(qm, Q(pi))
                for slot in 0..n_slots {
                    if slot == requester.index() {
                        continue;
                    }
                    let served = index.result(qid, PeerId::from_index(slot));
                    if served > 0 {
                        let credit = occurrences * served as f64;
                        self.contribution_num[slot][cid.index()] += credit;
                        self.totals[slot] += credit;
                    }
                }
            }
        }
    }

    fn propose(&self, view: &SystemView<'_>, peer: PeerId, allow_empty: bool) -> Option<Proposal> {
        assert!(
            !self.totals.is_empty(),
            "AltruisticStrategy::prepare must run before propose"
        );
        let current = view.overlay().cluster_of(peer)?;
        if self.totals[peer.index()] == 0.0 {
            return None; // the peer serves nobody; altruism is moot
        }
        // The cluster with the maximum contribution (§3.1.2). Empty
        // clusters have zero contribution and are therefore never
        // selected, regardless of `allow_empty`.
        let mut best: Option<(ClusterId, f64)> = None;
        for cid in view.overlay().cluster_ids() {
            if view.overlay().cluster(cid).is_empty() && !allow_empty {
                continue;
            }
            let c = self.contribution(peer, cid);
            let better = match best {
                None => true,
                Some((_, b)) => c > b + f64::EPSILON,
            };
            if better {
                best = Some((cid, c));
            }
        }
        let (cnew, contribution_new) = best?;
        if cnew == current {
            return None;
        }
        let clgain = contribution_new
            - self.contribution(peer, current)
            - membership_increase(view, peer, cnew);
        if clgain > COST_EPS {
            Some(Proposal {
                to: cnew,
                gain: clgain,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Query, Sym, Workload};

    use crate::system::GameConfig;

    /// p0 holds the data wanted (heavily) by p1 and (lightly) by p2;
    /// p1 ∈ c1, p2 ∈ c2, p0 ∈ c0. α tiny so membership hardly matters.
    fn provider_system(demand1: u64, demand2: u64, alpha: f64) -> System {
        let ov = Overlay::singletons(3);
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(1)]));
        let mut w1 = Workload::new();
        w1.add(Query::keyword(Sym(1)), demand1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(1)), demand2);
        System::new(
            ov,
            store,
            vec![Workload::new(), w1, w2],
            GameConfig {
                alpha,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn contribution_fractions_follow_demand() {
        let sys = provider_system(3, 1, 0.0);
        let mut s = AltruisticStrategy::new();
        s.prepare(&sys);
        assert!((s.contribution(PeerId(0), ClusterId(1)) - 0.75).abs() < 1e-12);
        assert!((s.contribution(PeerId(0), ClusterId(2)) - 0.25).abs() < 1e-12);
        assert_eq!(s.contribution(PeerId(0), ClusterId(0)), 0.0);
    }

    #[test]
    fn provider_moves_to_its_biggest_consumer() {
        let mut sys = provider_system(3, 1, 0.0);
        let mut s = AltruisticStrategy::new();
        s.prepare(&sys);
        let p = s.propose(&sys.view(), PeerId(0), true).unwrap();
        assert_eq!(p.to, ClusterId(1));
        assert!(p.gain > 0.0);
    }

    #[test]
    fn non_serving_peer_does_not_move() {
        let mut sys = provider_system(3, 1, 0.0);
        let mut s = AltruisticStrategy::new();
        s.prepare(&sys);
        assert!(s.propose(&sys.view(), PeerId(1), true).is_none());
    }

    #[test]
    fn membership_increase_gates_the_move() {
        // With a huge α the destination's membership growth outweighs the
        // contribution benefit.
        let mut sys = provider_system(3, 1, 10.0);
        let mut s = AltruisticStrategy::new();
        s.prepare(&sys);
        assert!(s.propose(&sys.view(), PeerId(0), true).is_none());
    }

    #[test]
    fn provider_already_serving_home_stays_until_demand_shifts() {
        // p0 co-clustered with its heavy consumer p1; light external
        // demand from p2 must not dislodge it.
        let mut sys = provider_system(3, 1, 0.0);
        sys.move_peer(PeerId(1), ClusterId(0));
        let mut s = AltruisticStrategy::new();
        s.prepare(&sys);
        assert!(s.propose(&sys.view(), PeerId(0), true).is_none());

        // Demand flips: p2 now dominates → p0 relocates to c2.
        let mut sys = provider_system(1, 5, 0.0);
        sys.move_peer(PeerId(1), ClusterId(0));
        let mut s = AltruisticStrategy::new();
        s.prepare(&sys);
        let p = s.propose(&sys.view(), PeerId(0), true).unwrap();
        assert_eq!(p.to, ClusterId(2));
    }

    #[test]
    fn equal_demand_does_not_justify_moving() {
        // Same demand at home and away: clgain ≤ 0 (and membership
        // increase strictly penalizes the move).
        let mut sys = provider_system(2, 2, 1.0);
        sys.move_peer(PeerId(1), ClusterId(0));
        let mut s = AltruisticStrategy::new();
        s.prepare(&sys);
        assert!(s.propose(&sys.view(), PeerId(0), true).is_none());
    }

    #[test]
    #[should_panic(expected = "prepare must run")]
    fn propose_without_prepare_panics() {
        let mut sys = provider_system(1, 1, 1.0);
        let s = AltruisticStrategy::new();
        let _ = s.propose(&sys.view(), PeerId(0), true);
    }
}
