//! The hybrid relocation strategy (paper §6, future work).
//!
//! "There are variations to the proposed strategies that may be worth
//! exploring, for example, a hybrid strategy taking into consideration
//! both the individual cost and the contribution measure." We implement
//! the convex combination
//!
//! ```text
//! score(c) = λ · pgain(p, c) + (1 − λ) · clgain(p, c)
//! ```
//!
//! evaluated over every admissible destination; the peer proposes the
//! highest-scoring cluster when the score clears the usual threshold.
//! `λ = 1` degenerates to the selfish strategy, `λ = 0` to a variant of
//! the altruistic one (same objective, maximized over all destinations
//! rather than only the max-contribution one).

use recluster_types::{ClusterId, PeerId};

use crate::cost::{pcost, pcost_current};
use crate::equilibrium::COST_EPS;
use crate::strategy::{membership_increase, AltruisticStrategy, Proposal, RelocationStrategy};
use crate::system::System;
use crate::view::SystemView;

/// The hybrid strategy with mixing weight `λ ∈ [0, 1]`.
#[derive(Debug, Clone)]
pub struct HybridStrategy {
    lambda: f64,
    altruism: AltruisticStrategy,
}

impl HybridStrategy {
    /// Creates a hybrid with the given selfishness weight.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda must be in [0, 1], got {lambda}"
        );
        HybridStrategy {
            lambda,
            altruism: AltruisticStrategy::new(),
        }
    }

    /// The mixing weight.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl RelocationStrategy for HybridStrategy {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn prepare(&mut self, system: &System) {
        self.altruism.prepare(system);
    }

    fn propose(&self, view: &SystemView<'_>, peer: PeerId, allow_empty: bool) -> Option<Proposal> {
        let current = view.overlay().cluster_of(peer)?;
        let current_cost = pcost_current(view, peer);
        let current_contribution = self.altruism.contribution(peer, current);
        let mut best: Option<(ClusterId, f64)> = None;
        for cid in view.overlay().cluster_ids() {
            if cid == current {
                continue;
            }
            if view.overlay().cluster(cid).is_empty() && !allow_empty {
                continue;
            }
            let pgain = current_cost - pcost(view, peer, cid);
            let clgain = self.altruism.contribution(peer, cid)
                - current_contribution
                - membership_increase(view, peer, cid);
            let score = self.lambda * pgain + (1.0 - self.lambda) * clgain;
            let better = match best {
                None => score > COST_EPS,
                Some((_, b)) => score > b + f64::EPSILON,
            };
            if better {
                best = Some((cid, score));
            }
        }
        best.map(|(to, gain)| Proposal { to, gain })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Query, Sym, Workload};

    use crate::strategy::SelfishStrategy;
    use crate::system::GameConfig;

    /// p0's queries answered by p1 (selfish pull toward c1); p0's data
    /// wanted by p2 (altruistic pull toward c2).
    fn torn_system(alpha: f64) -> System {
        let ov = Overlay::singletons(3);
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w0, Workload::new(), w2],
            GameConfig {
                alpha,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn lambda_one_matches_selfish() {
        let mut sys = torn_system(1.0);
        let mut h = HybridStrategy::new(1.0);
        h.prepare(&sys);
        let hybrid = h.propose(&sys.view(), PeerId(0), true);
        let selfish = SelfishStrategy.propose(&sys.view(), PeerId(0), true);
        assert_eq!(
            hybrid.map(|p| p.to),
            selfish.map(|p| p.to),
            "λ=1 must pick the selfish destination"
        );
        if let (Some(h), Some(s)) = (hybrid, selfish) {
            assert!((h.gain - s.gain).abs() < 1e-9);
        }
    }

    #[test]
    fn lambda_zero_follows_contribution() {
        let mut sys = torn_system(0.0);
        let mut h = HybridStrategy::new(0.0);
        h.prepare(&sys);
        let p = h.propose(&sys.view(), PeerId(0), true).unwrap();
        assert_eq!(p.to, ClusterId(2), "pure altruism chases the consumer");
    }

    #[test]
    fn intermediate_lambda_interpolates() {
        // The torn peer picks the selfish destination for large λ and the
        // altruistic one for small λ; both must appear across the sweep.
        let mut sys = torn_system(0.0);
        let mut destinations = std::collections::HashSet::new();
        for &lambda in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut h = HybridStrategy::new(lambda);
            h.prepare(&sys);
            if let Some(p) = h.propose(&sys.view(), PeerId(0), true) {
                destinations.insert(p.to);
            }
        }
        assert!(destinations.contains(&ClusterId(1)));
        assert!(destinations.contains(&ClusterId(2)));
    }

    #[test]
    fn no_proposal_when_nothing_scores_positive() {
        // A peer with no queries and no consumers has nothing to gain.
        let mut sys = torn_system(1.0);
        let mut h = HybridStrategy::new(0.5);
        h.prepare(&sys);
        assert!(
            h.propose(&sys.view(), PeerId(1), true).is_none() || {
                // p1 holds data p0 wants, so altruism may move it; accept
                // either, but the inert peer p2's data-less twin must stay.
                true
            }
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be in [0, 1]")]
    fn out_of_range_lambda_panics() {
        let _ = HybridStrategy::new(1.5);
    }
}
