//! The selfish relocation strategy (§3.1.1).
//!
//! "Each peer selects the ci for which pcost(p, ci) = min_cj pcost(p,cj)
//! […] the peer computes a measure called individual peer gain:
//! pgain(p, c_new) = pcost(p, c_cur) − pcost(p, c_new)."

use recluster_types::PeerId;

use crate::equilibrium::{best_response, best_response_with_chain, COST_EPS};
use crate::strategy::{ChainInfo, Proposal, RelocationStrategy};
use crate::view::SystemView;

/// The selfish strategy: pure individual-cost minimization.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfishStrategy;

impl RelocationStrategy for SelfishStrategy {
    fn name(&self) -> &'static str {
        "selfish"
    }

    fn propose(&self, view: &SystemView<'_>, peer: PeerId, allow_empty: bool) -> Option<Proposal> {
        let br = best_response(view, peer, allow_empty);
        if br.gain > COST_EPS {
            Some(Proposal {
                to: br.cluster,
                gain: br.gain,
            })
        } else {
            None
        }
    }

    /// The same scan with its take chain recorded, so the memo can keep
    /// an entry alive across rounds that only touched clusters the scan
    /// rejected (or never reached).
    fn propose_traced(
        &self,
        view: &SystemView<'_>,
        peer: PeerId,
        allow_empty: bool,
    ) -> (Option<Proposal>, ChainInfo) {
        let mut chain = Vec::new();
        let br = best_response_with_chain(view, peer, allow_empty, &mut chain);
        let proposal = if br.gain > COST_EPS {
            Some(Proposal {
                to: br.cluster,
                gain: br.gain,
            })
        } else {
            None
        };
        (proposal, ChainInfo::Known(chain.into_boxed_slice()))
    }

    /// `best_response` reads exactly the quantities the change journal
    /// stamps — the peer's workload rows, the candidate clusters' sizes
    /// and masses, `|P|` and the game parameters — so the memo's
    /// validity gate covers it completely.
    fn memoizable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{ClusterId, Document, Query, Sym, Workload};

    use crate::system::{GameConfig, System};

    /// Two peers; p0's single query is answered only by p1.
    fn seeker_system(alpha: f64) -> System {
        let ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 1);
        System::new(
            ov,
            store,
            vec![w, Workload::new()],
            GameConfig {
                alpha,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn proposes_move_toward_results() {
        let mut sys = seeker_system(1.0);
        let p = SelfishStrategy
            .propose(&sys.view(), PeerId(0), true)
            .unwrap();
        assert_eq!(p.to, ClusterId(1));
        // pgain = (0.5 + 1) − (1 + 0) = 0.5.
        assert!((p.gain - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_proposal_when_satisfied() {
        let mut sys = seeker_system(1.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        assert!(SelfishStrategy
            .propose(&sys.view(), PeerId(0), true)
            .is_none());
    }

    #[test]
    fn high_alpha_suppresses_the_move() {
        // With α = 3, joining (membership 2·3/2 = 3) beats staying
        // (0.5·3 + 1 = 2.5)? No: 3 > 2.5, so the peer stays.
        let mut sys = seeker_system(3.0);
        assert!(SelfishStrategy
            .propose(&sys.view(), PeerId(0), true)
            .is_none());
    }

    #[test]
    fn respects_allow_empty_flag() {
        // p1 (the data holder) would flee to an empty cluster after p0
        // joins it (membership drops 1.0 → 0.5 with no recall loss).
        let mut sys = seeker_system(1.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        let with_empty = SelfishStrategy.propose(&sys.view(), PeerId(1), true);
        assert!(with_empty.is_some());
        let without_empty = SelfishStrategy.propose(&sys.view(), PeerId(1), false);
        assert!(without_empty.is_none());
    }

    #[test]
    fn name_is_selfish() {
        assert_eq!(SelfishStrategy.name(), "selfish");
    }
}
