//! Best responses and Nash equilibria (§2.3).
//!
//! "A (pure) Nash equilibrium is a set of strategies S such that […] no
//! peer has an incentive to change the set of clusters it currently
//! belongs to." The paper proves by a two-peer example that an
//! equilibrium does not always exist; that example is reproduced in this
//! module's tests.

use recluster_types::{ClusterId, PeerId};

use crate::cost::{pcost, pcost_current};
use crate::view::SystemRead;

/// Float slack used when comparing costs, so ulp-level noise never counts
/// as an "improvement".
pub const COST_EPS: f64 = 1e-9;

/// A peer's best response: the cheapest cluster and the gain over its
/// current cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestResponse {
    /// The cost-minimizing cluster (the peer's current one if no strict
    /// improvement exists).
    pub cluster: ClusterId,
    /// `pcost(p, current) − pcost(p, best)`; zero when staying is
    /// optimal.
    pub gain: f64,
}

/// Computes the best response of `peer` over all `Cmax` clusters
/// (including empty ones unless `allow_empty` is false — §4.2 fixes the
/// cluster count and forbids moves to empty clusters).
///
/// Ties are broken toward the current cluster first, then the lowest
/// cluster id, so the result is deterministic.
///
/// Cost: O(non-empty clusters), not O(`Cmax`). Every empty cluster has
/// the same cost for a given peer (size 0, no recall mass), so only the
/// *first* empty slot can ever win a strict-improvement scan over
/// ascending ids — it is evaluated at exactly its id position and the
/// rest are skipped, which selects the same cluster a full scan would.
pub fn best_response<S: SystemRead + ?Sized>(
    system: &S,
    peer: PeerId,
    allow_empty: bool,
) -> BestResponse {
    let mut chain = Vec::new();
    best_response_with_chain(system, peer, allow_empty, &mut chain)
}

/// [`best_response`] that additionally records the scan's **take
/// chain** into `chain` (cleared first): the successive clusters that
/// strictly improved the running best, in scan order, ending with the
/// returned cluster (empty when staying is optimal). The chain is what
/// cross-round proposal memoization needs — a memoized scan replays
/// identically as long as no cluster *in the chain* changed and no
/// changed cluster newly undercuts the final best, because a cluster
/// outside the chain was rejected against a running best that is at
/// most the current cost at every scan position.
pub fn best_response_with_chain<S: SystemRead + ?Sized>(
    system: &S,
    peer: PeerId,
    allow_empty: bool,
    chain: &mut Vec<ClusterId>,
) -> BestResponse {
    chain.clear();
    let current = system
        .overlay()
        .cluster_of(peer)
        .unwrap_or_else(|| panic!("{peer} is unassigned"));
    let current_cost = pcost_current(system, peer);
    let mut best = BestResponse {
        cluster: current,
        gain: 0.0,
    };
    let mut best_cost = current_cost;
    let mut consider = |cid: ClusterId, best: &mut BestResponse, best_cost: &mut f64| {
        if cid == current {
            return;
        }
        let cost = pcost(system, peer, cid);
        if cost < *best_cost - COST_EPS {
            *best_cost = cost;
            *best = BestResponse {
                cluster: cid,
                gain: current_cost - cost,
            };
            chain.push(cid);
        }
    };
    let mut pending_empty = if allow_empty {
        system.overlay().first_empty_cluster()
    } else {
        None
    };
    for &cid in system.overlay().non_empty_ids() {
        if let Some(empty) = pending_empty {
            if empty < cid {
                consider(empty, &mut best, &mut best_cost);
                pending_empty = None;
            }
        }
        consider(cid, &mut best, &mut best_cost);
    }
    if let Some(empty) = pending_empty {
        consider(empty, &mut best, &mut best_cost);
    }
    best
}

/// Whether the current configuration is a (pure) Nash equilibrium: no
/// peer can strictly lower its cost by relocating.
pub fn is_nash_equilibrium<S: SystemRead + ?Sized>(system: &S, allow_empty: bool) -> bool {
    system
        .overlay()
        .peers()
        .all(|p| best_response(system, p, allow_empty).gain <= COST_EPS)
}

/// Best response in the *general* §2.1 game where strategies are cluster
/// sets: enumerates all subsets of the non-empty clusters (plus one
/// empty slot) up to `max_set_size` and returns the cheapest, with its
/// cost. Exponential in `max_set_size` — intended for analysis on small
/// systems, not for the protocol hot path.
pub fn best_response_set<S: SystemRead + ?Sized>(
    system: &S,
    peer: PeerId,
    max_set_size: usize,
) -> (Vec<ClusterId>, f64) {
    let mut candidates: Vec<ClusterId> = system.overlay().non_empty_ids().to_vec();
    if let Some(empty) = system.overlay().first_empty_cluster() {
        candidates.push(empty);
    }
    best_response_set_over(system, peer, &candidates, max_set_size)
}

/// [`best_response_set`] over an explicit candidate list. The candidate
/// clusters of the §2.1 game (non-empty ids plus the first empty slot)
/// are identical for every peer, so callers sweeping *many* peers
/// against one fixed configuration — the ablation drivers — compute the
/// list once (a plain borrow of the overlay's maintained non-empty ids)
/// instead of re-deriving it per peer.
pub fn best_response_set_over<S: SystemRead + ?Sized>(
    system: &S,
    peer: PeerId,
    candidates: &[ClusterId],
    max_set_size: usize,
) -> (Vec<ClusterId>, f64) {
    let mut best_set = Vec::new();
    let mut best_cost = crate::cost::pcost_set(system, peer, &[]);
    // Subset enumeration by bitmask over the candidate list.
    let n = candidates.len().min(20); // cap the mask width defensively
    for mask in 1u32..(1 << n) {
        if (mask.count_ones() as usize) > max_set_size {
            continue;
        }
        let set: Vec<ClusterId> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| candidates[i])
            .collect();
        let cost = crate::cost::pcost_set(system, peer, &set);
        if cost < best_cost - COST_EPS {
            best_cost = cost;
            best_set = set;
        }
    }
    (best_set, best_cost)
}

/// The largest best-response gain over all peers (zero at equilibrium) —
/// a convergence diagnostic.
pub fn max_gain<S: SystemRead + ?Sized>(system: &S, allow_empty: bool) -> f64 {
    system
        .overlay()
        .peers()
        .map(|p| best_response(system, p, allow_empty).gain)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Query, Sym, Workload};

    use crate::system::{GameConfig, System};

    /// The §2.3 counter-example: Q(p1) = {q1} answered only by p2,
    /// Q(p2) = {q2} answered only by p2, linear θ, α > 0.
    fn paper_counter_example(alpha: f64) -> System {
        let ov = Overlay::singletons(2);
        let mut store = ContentStore::new(2);
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(2)]));
        let mut w1 = Workload::new();
        w1.add(Query::keyword(Sym(1)), 1);
        let mut w2 = Workload::new();
        w2.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w1, w2],
            GameConfig {
                alpha,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn no_configuration_of_the_paper_example_is_an_equilibrium() {
        // Configuration A: p1 ∈ c1, p2 ∈ c2 (as built): p1 wants to move.
        let sys = paper_counter_example(1.0);
        assert!(!is_nash_equilibrium(&sys, true));
        let br = best_response(&sys, PeerId(0), true);
        assert_eq!(br.cluster, ClusterId(1));
        assert!((br.gain - 0.5).abs() < 1e-12);

        // Configuration B: both in the same cluster: p2 wants to flee to
        // an empty cluster.
        let mut sys = paper_counter_example(1.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        assert!(!is_nash_equilibrium(&sys, true));
        let br = best_response(&sys, PeerId(1), true);
        assert!(sys.overlay().cluster(br.cluster).is_empty());
        assert!((br.gain - 0.5).abs() < 1e-12);

        // Configuration C: swapped singletons (symmetric to A).
        let mut sys = paper_counter_example(1.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        sys.move_peer(PeerId(1), ClusterId(0));
        assert!(!is_nash_equilibrium(&sys, true));
    }

    #[test]
    fn counter_example_cycles_for_small_positive_alpha() {
        // The paper states the example has no equilibrium "for any value
        // of α > 0", but its own arithmetic (pcost(p1,c2) = α ≤ α/2 + 1)
        // requires α < 2 for a *strict* improvement; at α ≥ 2 the
        // split configuration is stable. We reproduce the claim on its
        // actual domain.
        for &alpha in &[0.1, 0.5, 1.0, 1.9] {
            let sys = paper_counter_example(alpha);
            assert!(
                !is_nash_equilibrium(&sys, true),
                "alpha={alpha} should not be an equilibrium"
            );
        }
    }

    #[test]
    fn counter_example_stabilizes_for_large_alpha() {
        // α ≥ 2: membership dominates; the singleton split is stable.
        let sys = paper_counter_example(3.0);
        assert!(is_nash_equilibrium(&sys, true));
    }

    #[test]
    fn alpha_zero_makes_joint_cluster_an_equilibrium() {
        // With α = 0 membership is free: both peers together is stable.
        let mut sys = paper_counter_example(0.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        assert!(is_nash_equilibrium(&sys, true));
    }

    #[test]
    fn forbidding_empty_targets_can_stabilize() {
        // In configuration B, p2's only improving move is to an empty
        // cluster; with empty targets forbidden the state is stable.
        let mut sys = paper_counter_example(1.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        assert!(!is_nash_equilibrium(&sys, true));
        assert!(is_nash_equilibrium(&sys, false));
    }

    #[test]
    fn best_response_prefers_staying_on_ties() {
        // Symmetric system: two peers, no data, no queries.
        let ov = Overlay::singletons(2);
        let store = ContentStore::new(2);
        let sys = System::new(
            ov,
            store,
            vec![Workload::new(), Workload::new()],
            GameConfig::default(),
        );
        let br = best_response(&sys, PeerId(0), true);
        assert_eq!(br.cluster, ClusterId(0));
        assert_eq!(br.gain, 0.0);
    }

    #[test]
    fn max_gain_is_zero_at_equilibrium() {
        let mut sys = paper_counter_example(0.0);
        sys.move_peer(PeerId(0), ClusterId(1));
        assert_eq!(max_gain(&sys, true), 0.0);
    }

    #[test]
    fn set_best_response_dominates_single_cluster() {
        // The §2.1 general game can only do better than single
        // membership: its optimum is ≤ the single-cluster optimum.
        let sys = paper_counter_example(0.2);
        for p in [PeerId(0), PeerId(1)] {
            let single = best_response(&sys, p, true);
            let single_cost = pcost(&sys, p, single.cluster);
            let (_, set_cost) = best_response_set(&sys, p, 2);
            assert!(set_cost <= single_cost + 1e-12);
        }
    }

    #[test]
    fn set_best_response_joins_everything_when_membership_is_cheap() {
        // α = 0: membership is free, so the optimal set reaches every
        // result; for p1 that means including p2's cluster.
        let sys = paper_counter_example(0.0);
        let (set, cost) = best_response_set(&sys, PeerId(0), 2);
        assert!(set.contains(&ClusterId(1)), "must cover p2's data: {set:?}");
        assert!(cost.abs() < 1e-12);
    }

    #[test]
    fn set_best_response_stays_single_when_membership_dominates() {
        // Large α: every extra cluster costs more than the recall it
        // recovers, so the best set has at most one cluster.
        let sys = paper_counter_example(3.0);
        let (set, _) = best_response_set(&sys, PeerId(1), 2);
        assert!(
            set.len() <= 1,
            "α=3 should not buy extra memberships: {set:?}"
        );
    }

    #[test]
    fn max_gain_matches_best_peer() {
        let sys = paper_counter_example(1.0);
        let g0 = best_response(&sys, PeerId(0), true).gain;
        let g1 = best_response(&sys, PeerId(1), true).gain;
        assert!((max_gain(&sys, true) - g0.max(g1)).abs() < 1e-12);
    }
}
