//! Per-peer cached cost vectors.
//!
//! `scost` (Eq. 2) and the recall term of `WCost` (Eq. 3) both sum a
//! per-peer quantity over every live peer, and each peer's term costs
//! O(|Q(p)|) to recompute — so the naive implementations are
//! O(peers × workload) *per call*, on paths the protocol hits every
//! round. [`CostCache`] stores each peer's two terms:
//!
//! * `recall[p]` — the recall-loss part of `pcost(p, c_p)` at the peer's
//!   current cluster (the membership part is O(1) and computed on the
//!   fly),
//! * `wrecall[p]` — the peer's unnormalized contribution to the `WCost`
//!   recall term, `Σ_q num(q, Q(p)) · (1 − mass(q, c_p))`, and
//! * `away[p]` — the recall loss of evaluating any cluster that shares
//!   **no** result mass with the peer's workload,
//!   `Σ_q w(q) · (1 − r(q, p).min(1))` over answerable queries: the
//!   out-of-cluster `recall_loss` arithmetic with `mass = 0`, which is
//!   bit-identical to it because a zero mass numerator reads as exactly
//!   `0.0` and `0.0 + r == r` bitwise. The memo gate's O(1) fast path
//!   for costing a changed cluster a peer's workload cannot reach,
//!
//! plus the live demand `num(Q)` (the `WCost` denominator). Every
//! [`System`](crate::system::System) mutator marks exactly the peers
//! whose terms its change can affect — via per-query *holder* lists
//! (query → peers with that query in their workload), the inverse of the
//! index's weight rows — and the cache lazily recomputes the dirty
//! subset on the next read. A full rebuild (via
//! [`System::rebuild_cost_cache`](crate::system::System::rebuild_cost_cache))
//! is the oracle: because a dirty peer is recomputed by the *same*
//! function over the *same* index state, the delta-maintained cache is
//! bit-for-bit identical to a rebuilt one (property-tested in
//! `tests/prop_incremental.rs`).
//!
//! Net effect: after a protocol round that moved `k` peers, refreshing
//! every global cost report costs O(affected peers) — the holders of
//! queries the movers hold results for, inside the two clusters each
//! move touched — instead of O(all peers × workload).

use recluster_types::{ClusterId, PeerId, Workload};

use crate::recall::RecallIndex;

/// Cached per-peer cost terms with lazy dirty-set recomputation. Owned
/// by [`System`](crate::system::System); read through
/// [`System::cost_cache`](crate::system::System::cost_cache), which
/// flushes pending recomputations first.
#[derive(Debug, Clone)]
pub struct CostCache {
    /// Per peer slot: the recall-loss term of `pcost(p, c_p)` (0 for
    /// unassigned peers).
    recall: Vec<f64>,
    /// Per peer slot: `Σ_q num(q, Q(p)) · (1 − mass(q, c_p).min(1))`
    /// over answerable queries (0 for unassigned peers).
    wrecall: Vec<f64>,
    /// Per peer slot: the recall loss against a zero-overlap cluster,
    /// `Σ_q w(q) · (1 − r(q, p).min(1))` over answerable queries (0 for
    /// unassigned peers). The struct-of-arrays columns (`recall` /
    /// `wrecall` / `away` as three flat `f64` vectors rather than one
    /// array of structs) keep the flush write-back and the global-cost
    /// sweeps, which each touch one column, on dense cache lines.
    away: Vec<f64>,
    /// `Σ` workload totals over *assigned* peers — `num(Q)` of Eq. 3.
    live_demand: u64,
    /// Per query id: peer slots whose workload row contains it (the
    /// inverse of `RecallIndex::workload_of`; unordered).
    holders: Vec<Vec<u32>>,
    /// Per peer slot: whether the cached terms are stale.
    dirty: Vec<bool>,
    /// Slots with `dirty` set (no duplicates).
    dirty_list: Vec<u32>,
    /// Everything is stale (fresh system, or an escape-hatch mutation):
    /// the next flush rebuilds values, holders and live demand wholesale.
    all_dirty: bool,
    /// Per peer slot: monotone count of invalidations (how often the
    /// slot was first-marked since construction). Never reset by a
    /// flush — proposal memoization compares it to detect "this peer's
    /// cached terms may have changed since I memoized".
    marks: Vec<u64>,
    /// Monotone count of wholesale invalidations ([`CostCache::mark_all`]
    /// calls) — the per-slot counters' global companion.
    all_marks: u64,
}

impl CostCache {
    /// A cache over `n_slots` peer slots with everything marked stale.
    ///
    /// # Panics
    /// Panics if `n_slots` exceeds `u32::MAX`: slot ids are stored as
    /// compact `u32` throughout (`dirty_list`, `holders`), so a >4B-slot
    /// configuration must fail loudly here instead of truncating ids
    /// silently later.
    pub(crate) fn new_all_dirty(n_slots: usize) -> Self {
        assert!(
            n_slots <= u32::MAX as usize,
            "CostCache stores slot ids as u32: {n_slots} slots exceed u32::MAX"
        );
        CostCache {
            recall: vec![0.0; n_slots],
            wrecall: vec![0.0; n_slots],
            away: vec![0.0; n_slots],
            live_demand: 0,
            holders: Vec::new(),
            dirty: vec![false; n_slots],
            dirty_list: Vec::new(),
            all_dirty: true,
            marks: vec![0; n_slots],
            all_marks: 0,
        }
    }

    /// The cached recall-loss term of `pcost(peer, current cluster)`.
    /// Zero for unassigned peers.
    pub fn recall_loss_of(&self, peer: PeerId) -> f64 {
        self.recall[peer.index()]
    }

    /// The cached unnormalized `WCost` recall contribution of `peer`.
    /// Zero for unassigned peers.
    pub fn wrecall_of(&self, peer: PeerId) -> f64 {
        self.wrecall[peer.index()]
    }

    /// The cached recall loss of `peer` against any cluster sharing no
    /// result mass with its workload — bit-identical to
    /// [`recall_loss`](crate::cost::recall_loss) at such a cluster.
    /// Zero for unassigned peers.
    pub fn away_of(&self, peer: PeerId) -> f64 {
        self.away[peer.index()]
    }

    /// `num(Q)`: total query demand of the assigned peers.
    pub fn live_demand(&self) -> u64 {
        self.live_demand
    }

    /// Whether any slot still awaits recomputation (false after a flush).
    pub fn is_fresh(&self) -> bool {
        !self.all_dirty && self.dirty_list.is_empty()
    }

    pub(crate) fn mark_all(&mut self) {
        self.all_dirty = true;
        self.all_marks += 1;
        self.dirty_list.clear();
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    pub(crate) fn mark(&mut self, slot: usize) {
        if self.all_dirty || self.dirty[slot] {
            return;
        }
        debug_assert!(u32::try_from(slot).is_ok(), "slot id {slot} overflows u32");
        self.dirty[slot] = true;
        self.marks[slot] += 1;
        self.dirty_list.push(slot as u32);
    }

    /// Monotone invalidation count of a peer slot — unchanged means the
    /// slot was never (first-)marked since the caller last read it. Used
    /// by [`ProposalMemo`](crate::protocol::ProposalMemo) as the "cache
    /// entry stayed clean" gate.
    pub fn slot_marks(&self, slot: usize) -> u64 {
        self.marks.get(slot).copied().unwrap_or(0)
    }

    /// Monotone count of wholesale invalidations (escape-hatch
    /// mutations, rebuilds). Any change invalidates every memo.
    pub fn all_marks(&self) -> u64 {
        self.all_marks
    }

    /// The live peer slots holding query `qid` in their workloads (the
    /// query → holders inverse of `RecallIndex::workload_of`), unordered;
    /// empty for unknown ids. Only meaningful on a *flushed* cache —
    /// read it through [`System::cost_cache`](crate::system::System::cost_cache)
    /// or a [`SystemView`](crate::view::SystemView). Includes unassigned
    /// holders (their workloads persist across churn); callers that need
    /// live demand must filter by assignment.
    pub fn holders_of(&self, qid: usize) -> &[u32] {
        self.holders.get(qid).map_or(&[], Vec::as_slice)
    }

    /// Grows the per-slot tables (churn joins grow the overlay); fresh
    /// slots start dirty.
    ///
    /// # Panics
    /// Panics if `n_slots` exceeds `u32::MAX` (compact slot ids — see
    /// [`CostCache::new_all_dirty`]).
    pub(crate) fn ensure_slots(&mut self, n_slots: usize) {
        assert!(
            n_slots <= u32::MAX as usize,
            "CostCache stores slot ids as u32: {n_slots} slots exceed u32::MAX"
        );
        while self.recall.len() < n_slots {
            self.recall.push(0.0);
            self.wrecall.push(0.0);
            self.away.push(0.0);
            self.dirty.push(false);
            self.marks.push(0);
            let slot = self.dirty.len() - 1;
            self.mark(slot);
        }
    }

    pub(crate) fn add_live_demand(&mut self, demand: u64) {
        if !self.all_dirty {
            self.live_demand += demand;
        }
    }

    pub(crate) fn sub_live_demand(&mut self, demand: u64) {
        if !self.all_dirty {
            self.live_demand -= demand;
        }
    }

    pub(crate) fn add_holder(&mut self, qid: usize, slot: usize) {
        if self.all_dirty {
            return;
        }
        debug_assert!(u32::try_from(slot).is_ok(), "slot id {slot} overflows u32");
        if self.holders.len() <= qid {
            self.holders.resize_with(qid + 1, Vec::new);
        }
        self.holders[qid].push(slot as u32);
    }

    pub(crate) fn remove_holder(&mut self, qid: usize, slot: usize) {
        if self.all_dirty || qid >= self.holders.len() {
            return;
        }
        if let Some(pos) = self.holders[qid].iter().position(|&h| h == slot as u32) {
            self.holders[qid].swap_remove(pos);
        }
    }

    /// Marks every holder of `qid` accepted by `pred` — the peers whose
    /// cached terms depend on a mass or total of `qid` that just changed.
    pub(crate) fn mark_holders(&mut self, qid: usize, pred: impl Fn(u32) -> bool) {
        if self.all_dirty || qid >= self.holders.len() {
            return;
        }
        for i in 0..self.holders[qid].len() {
            let h = self.holders[qid][i];
            if pred(h) {
                self.mark(h as usize);
            }
        }
    }

    /// Recomputes the dirty slots (or, after [`CostCache::mark_all`],
    /// everything including holders and live demand). Called by
    /// `System::cost_cache` before any read.
    ///
    /// Large dirty sets — a churn batch marks every holder of every
    /// touched query — shard over contiguous ranges of the dirty list:
    /// each slot's terms are a pure function of the (read-only) index,
    /// assignment and workloads, so the range results, written back in
    /// list order, are byte-identical to the sequential walk
    /// (`prop_sharded_flush`).
    pub(crate) fn flush(
        &mut self,
        index: &RecallIndex,
        overlay: &recluster_overlay::Overlay,
        workloads: &[Workload],
    ) {
        if self.all_dirty {
            self.rebuild(index, overlay, workloads);
            return;
        }
        if self.dirty_list.is_empty() {
            return;
        }
        let list = std::mem::take(&mut self.dirty_list);
        if crate::shard::should_shard(list.len()) {
            let parts = crate::shard::map_ranges(list.len(), |range| {
                list[range]
                    .iter()
                    .map(|&slot| slot_terms(index, overlay, workloads, slot as usize))
                    .collect::<Vec<_>>()
            });
            let mut slots = list.iter();
            for part in parts {
                for (recall, wrecall, away) in part {
                    let slot = *slots.next().expect("one term triple per dirty slot") as usize;
                    self.dirty[slot] = false;
                    self.recall[slot] = recall;
                    self.wrecall[slot] = wrecall;
                    self.away[slot] = away;
                }
            }
            debug_assert!(slots.next().is_none());
        } else {
            for &slot in &list {
                let (recall, wrecall, away) = slot_terms(index, overlay, workloads, slot as usize);
                self.dirty[slot as usize] = false;
                self.recall[slot as usize] = recall;
                self.wrecall[slot as usize] = wrecall;
                self.away[slot as usize] = away;
            }
        }
    }

    /// The from-scratch oracle: recomputes every peer's terms, the
    /// holder lists and the live demand from the index, assignment and
    /// workloads. The delta path (marks + [`CostCache::flush`]) must be
    /// bit-identical to this. The per-slot term computation shards like
    /// the flush; the holder scatter and demand sum stay sequential
    /// (they fold into shared rows).
    pub(crate) fn rebuild(
        &mut self,
        index: &RecallIndex,
        overlay: &recluster_overlay::Overlay,
        workloads: &[Workload],
    ) {
        let n_slots = overlay.n_slots();
        assert!(
            n_slots <= u32::MAX as usize,
            "CostCache stores slot ids as u32: {n_slots} slots exceed u32::MAX"
        );
        self.recall = vec![0.0; n_slots];
        self.wrecall = vec![0.0; n_slots];
        self.away = vec![0.0; n_slots];
        self.dirty = vec![false; n_slots];
        self.marks.resize(n_slots, 0);
        self.dirty_list.clear();
        self.live_demand = 0;
        self.holders = vec![Vec::new(); index.n_queries()];
        for (slot, workload) in workloads.iter().enumerate().take(n_slots) {
            let peer = PeerId::from_index(slot);
            for &(qid, _) in index.workload_of(peer) {
                self.holders[qid as usize].push(slot as u32);
            }
            if overlay.cluster_of(peer).is_some() {
                self.live_demand += workload.total();
            }
        }
        if crate::shard::should_shard(n_slots) {
            let parts = crate::shard::map_ranges(n_slots, |range| {
                range
                    .map(|slot| slot_terms(index, overlay, workloads, slot))
                    .collect::<Vec<_>>()
            });
            let mut slot = 0;
            for part in parts {
                for (recall, wrecall, away) in part {
                    self.recall[slot] = recall;
                    self.wrecall[slot] = wrecall;
                    self.away[slot] = away;
                    slot += 1;
                }
            }
            debug_assert_eq!(slot, n_slots);
        } else {
            for slot in 0..n_slots {
                let (recall, wrecall, away) = slot_terms(index, overlay, workloads, slot);
                self.recall[slot] = recall;
                self.wrecall[slot] = wrecall;
                self.away[slot] = away;
            }
        }
        self.all_dirty = false;
    }
}

/// One slot's cached terms `(recall, wrecall, away)` — the single
/// recomputation function both the sequential and the sharded
/// flush/rebuild paths call, so parallel results are bit-identical by
/// construction.
fn slot_terms(
    index: &RecallIndex,
    overlay: &recluster_overlay::Overlay,
    workloads: &[Workload],
    slot: usize,
) -> (f64, f64, f64) {
    let peer = PeerId::from_index(slot);
    match overlay.cluster_of(peer) {
        Some(cid) => (
            recall_loss_in(index, peer, cid),
            wrecall_term(index, workloads, peer, cid),
            away_term(index, peer),
        ),
        None => (0.0, 0.0, 0.0),
    }
}

/// The recall-loss term of Eq. 1 for a peer evaluated **at its own
/// cluster** — the arithmetic [`cost::recall_loss`](crate::cost::recall_loss)
/// uses for the in-cluster case, shared so the cached value is
/// bit-identical to the direct computation.
pub(crate) fn recall_loss_in(index: &RecallIndex, peer: PeerId, cid: ClusterId) -> f64 {
    let mut loss = 0.0;
    for &(qid, weight) in index.workload_of(peer) {
        if index.total(qid) == 0 {
            continue; // unanswerable query: no recall to lose
        }
        let inside = index.cluster_mass(qid, cid);
        loss += weight * (1.0 - inside.min(1.0));
    }
    loss
}

/// The recall-loss term of Eq. 1 for a peer evaluated at a cluster
/// sharing **no** result mass with its workload: the out-of-cluster
/// arithmetic of [`cost::recall_loss`](crate::cost::recall_loss) with
/// every `cluster_mass` equal to `0.0` — bit-identical to it there
/// because `0.0 + r(q, p)` reproduces `r(q, p)` exactly and the
/// accumulation order (workload order) and operations are the same.
pub(crate) fn away_term(index: &RecallIndex, peer: PeerId) -> f64 {
    let mut loss = 0.0;
    for &(qid, weight) in index.workload_of(peer) {
        if index.total(qid) == 0 {
            continue; // unanswerable query: no recall to lose
        }
        let inside = index.r(qid, peer);
        loss += weight * (1.0 - inside.min(1.0));
    }
    loss
}

/// One peer's unnormalized contribution to the `WCost` recall term
/// (Eq. 3): `Σ_q num(q, Q(p)) · (1 − mass(q, c_p).min(1))` over
/// answerable queries.
pub(crate) fn wrecall_term(
    index: &RecallIndex,
    workloads: &[Workload],
    peer: PeerId,
    cid: ClusterId,
) -> f64 {
    let peer_total = workloads[peer.index()].total();
    if peer_total == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for &(qid, rel_freq) in index.workload_of(peer) {
        if index.total(qid) == 0 {
            continue;
        }
        let num_q_pi = rel_freq * peer_total as f64; // num(q, Q(pi))
        let loss = 1.0 - index.cluster_mass(qid, cid).min(1.0);
        acc += num_q_pi * loss;
    }
    acc
}
